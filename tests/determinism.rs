//! Determinism and reproducibility across the whole stack: identical
//! configurations must produce bit-identical traces, series and campaign
//! outcomes — the property that makes the experiment tables trustworthy.

use easis::injection::{CampaignBuilder, ErrorClass, Injection, Injector};
use easis::rte::runnable::RunnableId;
use easis::sim::time::{Duration, Instant};
use easis::validator::scenario;
use easis::validator::{CentralNode, NodeConfig};

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

fn run_node_trace() -> String {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(150),
        ms(350),
    )]);
    node.run_until(ms(600), &mut injector);
    node.os.trace().render()
}

#[test]
fn full_node_runs_are_bit_identical() {
    let a = run_node_trace();
    let b = run_node_trace();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn figure_series_are_reproducible() {
    let a = scenario::fig5_aliveness(3_000_000);
    let b = scenario::fig5_aliveness(3_000_000);
    for name in ["AC", "CCA", "AM Result"] {
        assert_eq!(a.series(name).unwrap(), b.series(name).unwrap(), "{name}");
    }
}

#[test]
fn campaign_outcomes_are_reproducible() {
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let build_plan = || {
        CampaignBuilder::new(77, targets.clone())
            .loop_targets(vec![RunnableId(4), RunnableId(7)])
            .trials_per_class(1)
            .window(ms(200), Duration::from_millis(200))
            .build()
    };
    let horizon = ms(800);
    let a = build_plan().run(|t| scenario::run_trial(t, horizon));
    let b = build_plan().run(|t| scenario::run_trial(t, horizon));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.trials().iter().zip(b.trials()) {
        assert_eq!(x.class, y.class);
        assert_eq!(x.detections, y.detections);
    }
}

#[test]
fn different_seeds_change_campaigns_but_not_the_class_mix() {
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let a = CampaignBuilder::new(1, targets.clone()).trials_per_class(2).build();
    let b = CampaignBuilder::new(2, targets).trials_per_class(2).build();
    let tags = |p: &easis::injection::CampaignPlan| {
        let mut t: Vec<&str> = p.trials().iter().map(|x| x.injection.class.tag()).collect();
        t.sort();
        t
    };
    assert_eq!(tags(&a), tags(&b), "class mix is seed-independent");
    assert_ne!(a.trials(), b.trials(), "targets/windows differ by seed");
}

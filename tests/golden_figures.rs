//! Golden-fingerprint regression tests of the figure series.
//!
//! Each figure scenario is summarised per series (length, max, last, sum)
//! and compared against checked-in fingerprints in `tests/goldens/`. The
//! simulation is deterministic, so any drift means a behavioural change in
//! the platform — review it and regenerate the goldens deliberately.

use easis::sim::series::SeriesSet;
use easis::validator::scenario;
use std::fmt::Write as _;

fn fingerprint(set: &SeriesSet) -> String {
    let mut out = String::new();
    for name in set.series_names() {
        let s = set.series(name).expect("listed series exists");
        let sum: f64 = s.values().sum();
        let _ = writeln!(
            out,
            "{name}|len={}|max={:.3}|last={:.3}|sum={:.3}",
            s.len(),
            s.max().unwrap_or(0.0),
            s.last_value().unwrap_or(0.0),
            sum
        );
    }
    out
}

#[test]
fn fig5_matches_golden() {
    assert_eq!(
        fingerprint(&scenario::fig5_aliveness(3_000_000)),
        include_str!("goldens/fig5.txt"),
        "fig5 drifted — review the change, then regenerate tests/goldens/fig5.txt"
    );
}

#[test]
fn fig6_matches_golden() {
    assert_eq!(
        fingerprint(&scenario::fig6_collaboration()),
        include_str!("goldens/fig6.txt"),
        "fig6 drifted — review the change, then regenerate tests/goldens/fig6.txt"
    );
}

#[test]
fn arrival_rate_matches_golden() {
    assert_eq!(
        fingerprint(&scenario::exp_arrival_rate(2)),
        include_str!("goldens/arrival.txt"),
        "E-ARR drifted — review the change, then regenerate tests/goldens/arrival.txt"
    );
}

#[test]
fn program_flow_matches_golden() {
    assert_eq!(
        fingerprint(&scenario::exp_program_flow()),
        include_str!("goldens/pfc.txt"),
        "E-PFC drifted — review the change, then regenerate tests/goldens/pfc.txt"
    );
}

//! Long-horizon soak tests: the platform must stay healthy, bounded and
//! deterministic over extended runs. The short variants run in the normal
//! suite; the minutes-long ones are `#[ignore]`d (run with
//! `cargo test -- --ignored`).

use easis::injection::{CampaignBuilder, Injector};
use easis::rte::runnable::RunnableId;
use easis::sim::time::{Duration, Instant};
use easis::validator::hil::HilValidator;
use easis::validator::{scenario, CentralNode, NodeConfig};

#[test]
fn central_node_stays_clean_for_ten_simulated_seconds() {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let mut injector = Injector::none();
    node.run_until(Instant::from_millis(10_000), &mut injector);
    assert!(node.world.fault_log.is_empty());
    assert_eq!(node.world.hw_watchdog.expirations(), 0);
    assert_eq!(node.world.watchdog.cycles_run(), 999);
    // The trace grows linearly, not explosively (~60 events per 10ms
    // hyperperiod across 5 tasks).
    assert!(node.os.trace().len() < 100_000, "{}", node.os.trace().len());
}

#[test]
fn hil_long_run_remains_stable_and_supervised() {
    let mut hil = HilValidator::motorway(25.0, 13.9, None, 99);
    let mut injector = Injector::none();
    let report = hil.run(Duration::from_secs(120), &mut injector, None);
    assert!((report.final_speed - 13.9).abs() < 1.5);
    assert_eq!(report.faults_detected, 0);
    // Bus traffic is proportional to time: 120s × (100 speed+50 lat+20 lim)/s.
    assert!(report.can_frames > 15_000);
}

#[test]
#[ignore = "minutes-long campaign; run with --ignored"]
fn large_campaign_soak() {
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(7, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(50)
        .with_horizon(horizon)
        .build();
    let stats = plan.run(|t| scenario::run_trial(t, horizon));
    assert_eq!(stats.len(), 250);
    // Every runnable-level class stays fully covered at scale.
    for class in ["heartbeat_loss", "skip_runnable"] {
        assert_eq!(stats.sw_coverage(class), 1.0, "{class}");
    }
}

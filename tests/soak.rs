//! Long-horizon soak tests: the platform must stay healthy, bounded and
//! deterministic over extended runs. The short variants run in the normal
//! suite; the minutes-long ones are `#[ignore]`d (run with
//! `cargo test -- --ignored`).

use easis::injection::{CampaignBuilder, Injector};
use easis::rte::runnable::RunnableId;
use easis::sim::event::EventQueue;
use easis::sim::rng::SimRng;
use easis::sim::time::{Duration, Instant};
use easis::validator::hil::HilValidator;
use easis::validator::{scenario, CentralNode, NodeConfig};

/// Simulated soak horizon in milliseconds. Defaults to two hours; CI smoke
/// runs set `EASIS_SOAK_HORIZON_MS` to a short horizon (still several
/// timer-wheel cascade periods — the top wheel level spans 2^24 µs ≈ 16.8 s).
fn soak_horizon_ms() -> u64 {
    std::env::var("EASIS_SOAK_HORIZON_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 * 60 * 60 * 1000)
}

/// One top-level timer-wheel rotation: events scheduled further ahead than
/// this land in the overflow `BTreeMap` and must cascade back into the
/// wheel when the cursor crosses the next rotation boundary.
const WHEEL_HORIZON_US: u64 = 1 << 24;

#[test]
fn central_node_stays_clean_for_ten_simulated_seconds() {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let mut injector = Injector::none();
    node.run_until(Instant::from_millis(10_000), &mut injector);
    assert!(node.world.fault_log.is_empty());
    assert_eq!(node.world.hw_watchdog.expirations(), 0);
    assert_eq!(node.world.watchdog.cycles_run(), 999);
    // The trace grows linearly, not explosively (~60 events per 10ms
    // hyperperiod across 5 tasks).
    assert!(node.os.trace().len() < 100_000, "{}", node.os.trace().len());
}

#[test]
fn hil_long_run_remains_stable_and_supervised() {
    let mut hil = HilValidator::motorway(25.0, 13.9, None, 99);
    let mut injector = Injector::none();
    let report = hil.run(Duration::from_secs(120), &mut injector, None);
    assert!((report.final_speed - 13.9).abs() < 1.5);
    assert_eq!(report.faults_detected, 0);
    // Bus traffic is proportional to time: 120s × (100 speed+50 lat+20 lim)/s.
    assert!(report.can_frames > 15_000);
}

/// Heap-of-record for the wheel soak: the same lazy-cancellation
/// `BinaryHeap` model the property suite uses, kept minimal here so the
/// soak is self-contained.
struct HeapOfRecord {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
}

impl HeapOfRecord {
    fn new() -> Self {
        HeapOfRecord {
            heap: std::collections::BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: Instant) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((at.as_micros(), seq)));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        seq < self.next_seq && self.cancelled.insert(seq)
    }

    fn peek_time(&mut self) -> Option<Instant> {
        while let Some(&std::cmp::Reverse((at, seq))) = self.heap.peek() {
            if self.cancelled.remove(&seq) {
                self.heap.pop();
            } else {
                return Some(Instant::from_micros(at));
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Instant, u64)> {
        while let Some(std::cmp::Reverse((at, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            return Some((Instant::from_micros(at), seq));
        }
        None
    }
}

/// Hours of simulated time through the hierarchical timer wheel, in
/// lockstep with a binary-heap model: a 10 ms tick that stays inside the
/// wheel, a 60 s re-arming alarm that *always* lands in the overflow
/// `BTreeMap` (60 s > 2^24 µs), random far one-shots up to 90 minutes out,
/// and occasional cancellations of overflow residents. Peek and pop must
/// agree at every event — in particular across every top-rotation boundary,
/// where the overflow cascade re-files events into the wheel.
#[test]
fn timer_wheel_soak_matches_heap_across_overflow_cascades() {
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        FastTick,
        SlowAlarm,
        FarOneShot,
    }

    let horizon = Instant::from_millis(soak_horizon_ms());
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut record = HeapOfRecord::new();
    let mut rng = SimRng::seed_from(0x50AC);
    // Payloads are the reference sequence numbers; `kinds[seq]` says how to
    // react to the expiry (re-arm fast/slow, or nothing for one-shots).
    let mut kinds: Vec<Kind> = Vec::new();

    fn schedule(
        wheel: &mut EventQueue<u64>,
        record: &mut HeapOfRecord,
        kinds: &mut Vec<Kind>,
        kind: Kind,
        at: Instant,
    ) -> easis::sim::event::EventId {
        let id = wheel.schedule(at, record.next_seq);
        let seq = record.schedule(at);
        assert_eq!(id.raw(), seq, "seq allocation diverged");
        kinds.push(kind);
        id
    }

    // Seed the periodic sources.
    let mut overflow_spills: u64 = 0; // events scheduled past the wheel horizon
    let mut cascade_crossings: u64 = 0; // top-rotation boundaries crossed
    let fast_period = Duration::from_millis(10);
    let slow_period = Duration::from_secs(60);
    schedule(&mut wheel, &mut record, &mut kinds, Kind::FastTick, Instant::ZERO + fast_period);
    schedule(&mut wheel, &mut record, &mut kinds, Kind::SlowAlarm, Instant::ZERO + slow_period);
    overflow_spills += 1;
    let mut far_ids = Vec::new();

    let mut last_rotation = 0u64;
    loop {
        assert_eq!(wheel.peek_time(), record.peek_time(), "peek diverged");
        let wheel_pop = wheel.pop();
        let record_pop = record.pop();
        assert_eq!(wheel_pop, record_pop, "pop stream diverged");
        let Some((now, seq)) = wheel_pop else {
            break;
        };
        if now > horizon {
            break;
        }
        let rotation = now.as_micros() >> 24;
        if rotation != last_rotation {
            cascade_crossings += 1;
            last_rotation = rotation;
            // Right on a cascade boundary the overflow entries for this
            // rotation have just been re-filed into the wheel: the head of
            // both queues must still agree.
            assert_eq!(wheel.peek_time(), record.peek_time(), "peek diverged after cascade");
        }

        // Re-arm the periodic sources relative to their own expiry, the way
        // kernel alarms do; sprinkle in far one-shots and cancellations.
        match kinds[seq as usize] {
            Kind::FastTick => {
                schedule(&mut wheel, &mut record, &mut kinds, Kind::FastTick, now + fast_period);
                if rng.next_below(100) < 2 {
                    let far = Duration::from_millis(rng.next_in(20_000, 5_400_000));
                    let id = schedule(
                        &mut wheel,
                        &mut record,
                        &mut kinds,
                        Kind::FarOneShot,
                        now + far,
                    );
                    if far.as_micros() > WHEEL_HORIZON_US {
                        overflow_spills += 1;
                    }
                    far_ids.push(id);
                    if far_ids.len() > 8 {
                        // Cancel an old far event — often already cascaded
                        // or fired; the verdicts must agree either way.
                        let pick = rng.next_below(far_ids.len() as u64) as usize;
                        let victim = far_ids.remove(pick);
                        assert_eq!(
                            wheel.cancel(victim),
                            record.cancel(victim.raw()),
                            "cancel verdict diverged"
                        );
                    }
                }
            }
            Kind::SlowAlarm => {
                schedule(&mut wheel, &mut record, &mut kinds, Kind::SlowAlarm, now + slow_period);
                overflow_spills += 1;
            }
            Kind::FarOneShot => {}
        }
    }

    // The soak must actually have exercised the overflow path, not just the
    // in-wheel levels: every 60 s re-arm spills, and hours of time cross
    // many top-rotation boundaries.
    let expected_rotations = soak_horizon_ms() * 1000 / WHEEL_HORIZON_US;
    assert!(
        overflow_spills >= expected_rotations.div_ceil(4).max(2),
        "only {overflow_spills} overflow spills — soak did not reach past the wheel horizon"
    );
    assert_eq!(
        cascade_crossings, expected_rotations,
        "cascade boundary count diverged from the simulated horizon"
    );

    // Drain both completely: far one-shots beyond the horizon included.
    loop {
        assert_eq!(wheel.peek_time(), record.peek_time(), "drain peek diverged");
        let wheel_pop = wheel.pop();
        assert_eq!(wheel_pop, record.pop(), "drain diverged");
        if wheel_pop.is_none() {
            break;
        }
    }
}

/// The same overflow machinery end-to-end through the OSEK kernel: a 10 ms
/// task and a 60 s task (whose cyclic alarm re-arms into the overflow map
/// every time) run for hours of simulated time on arena-backed bodies with
/// the trace disabled. Activation counts must come out exact — a lost or
/// duplicated cascade would skew them — and the run must stay allocation-
/// bounded enough to finish in test time.
#[test]
fn kernel_alarm_soak_exact_activation_counts_past_wheel_horizon() {
    use easis::osek::alarm::{AlarmAction, AlarmId};
    use easis::osek::kernel::Os;
    use easis::osek::plan::{Plan, TaskBody};
    use easis::osek::task::{Priority, TaskConfig};

    struct CountBody {
        slot: usize,
        cost: Duration,
    }
    impl TaskBody<[u64; 2]> for CountBody {
        fn plan_into(&mut self, _now: Instant, _world: &[u64; 2], out: &mut Plan<[u64; 2]>) {
            out.push_compute(self.cost);
            out.push_effect_ref(0);
        }
        fn run_effect(
            &mut self,
            _token: u32,
            world: &mut [u64; 2],
            _ctx: &mut easis::osek::plan::EffectCtx<'_, [u64; 2]>,
        ) {
            world[self.slot] += 1;
        }
        fn name(&self) -> &str {
            "count"
        }
    }

    let horizon_ms = soak_horizon_ms();
    let horizon = Instant::from_millis(horizon_ms);
    let mut os: Os<[u64; 2]> = Os::with_disabled_trace();
    let fast = os.add_task(
        TaskConfig::new("fast", Priority(2)),
        CountBody { slot: 0, cost: Duration::from_micros(50) },
    );
    let slow = os.add_task(
        TaskConfig::new("slow", Priority(1)),
        CountBody { slot: 1, cost: Duration::from_micros(200) },
    );
    os.add_alarm("fast", AlarmAction::ActivateTask(fast));
    os.add_alarm("slow", AlarmAction::ActivateTask(slow));

    let mut world = [0u64; 2];
    os.start(&mut world);
    os.set_rel_alarm(AlarmId(0), Duration::from_millis(10), Some(Duration::from_millis(10)))
        .unwrap();
    os.set_rel_alarm(AlarmId(1), Duration::from_secs(60), Some(Duration::from_secs(60)))
        .unwrap();
    os.run_until(horizon, &mut world);

    assert_eq!(world[0], horizon_ms.div_ceil(10).saturating_sub(1), "fast activations");
    assert_eq!(world[1], (horizon_ms / 1000).div_ceil(60).saturating_sub(1), "slow activations");
    assert_eq!(os.now(), horizon);
}

/// Kernel-visible long-horizon cascade scenario: a full central node runs
/// past the top-level timer-wheel rotation (2^24 µs ≈ 16.8 s) while a
/// heartbeat loss on SAFE_CC is injected across the rotation boundary
/// itself — the injection window opens before the cascade re-files the
/// overflow residents and closes after it. The cascade must neither drop
/// nor delay the dependability pipeline: the Software Watchdog detects the
/// loss inside the window, the FMF reaction strictly follows the first
/// detection, and after the window closes the node returns to a clean
/// steady state for the rest of the horizon. `EASIS_SOAK_HORIZON_MS`
/// gates how far past the boundary the CI smoke runs (clamped so the
/// default two-hour soak setting stays test-time bounded — the scenario's
/// interesting region is the boundary plus a settle margin).
#[test]
fn central_node_detects_and_treats_fault_across_cascade_boundary() {
    use easis::fmf::policy::Treatment;
    use easis::injection::{ErrorClass, Injection};

    // First top-level rotation boundary, in ms (16_777.216 ms).
    let boundary_ms = WHEEL_HORIZON_US / 1000;
    let from = Instant::from_millis(boundary_ms - 80);
    let to = Instant::from_millis(boundary_ms + 120);
    let horizon_ms = soak_horizon_ms().clamp(boundary_ms + 3_000, 60_000);
    let horizon = Instant::from_millis(horizon_ms);

    // Full default node (treatment enabled); the kernel trace would grow
    // linearly over tens of simulated seconds without informing any
    // assertion here, so it stays off like in the other soaks.
    let mut node = CentralNode::build(NodeConfig {
        kernel_trace: false,
        ..NodeConfig::default()
    });
    node.start();
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss {
            runnable: RunnableId(4), // SAFE_CC in the full node
        },
        from,
        to,
    )]);
    node.run_until(horizon, &mut injector);
    assert_eq!(node.os.now(), horizon);

    // Detection: the aliveness unit catches the loss despite the cascade
    // crossing inside the window, and every fault lies in the window (plus
    // trailing supervision-window latency) — nothing fires spuriously in
    // the clean stretches before injection or after recovery.
    let first_fault = *node.world.fault_log.first().expect("heartbeat loss detected");
    let late = Instant::from_millis(to.as_millis() + 500);
    assert!(first_fault.at >= from, "detection at {} precedes injection", first_fault.at);
    for fault in &node.world.fault_log {
        assert!(
            fault.at >= from && fault.at <= late,
            "fault at {} outside the injection window — node did not return clean",
            fault.at
        );
    }

    // Reaction: the FMF treats the faulty application, strictly after the
    // first detection and in causal order.
    let treatments = &node.world.treatments;
    assert!(!treatments.is_empty(), "detected fault produced no reaction");
    assert!(
        treatments
            .iter()
            .any(|t| matches!(t.treatment, Treatment::RestartApplication(_))),
        "expected an application restart among the reactions"
    );
    assert!(
        treatments[0].at >= first_fault.at,
        "reaction at {} precedes first detection at {}",
        treatments[0].at,
        first_fault.at
    );
    for pair in treatments.windows(2) {
        assert!(pair[0].at <= pair[1].at, "reactions out of causal order");
    }
    assert!(
        treatments.last().expect("nonempty").at <= late,
        "reactions kept firing after the fault window closed"
    );

    // The software stack caught it — the hardware watchdog never starved.
    assert_eq!(node.world.hw_watchdog.expirations(), 0);
    // The supervision loop itself ran the whole horizon (one cycle per
    // 10 ms period, minus the final boundary cycle).
    assert!(node.world.watchdog.cycles_run() >= horizon_ms / 10 - 2);
}

/// The detection pipeline is rotation-boundary independent: a
/// heartbeat-loss window of identical shape, aligned to the node's 20 ms
/// hyperperiod so the phase between injection start and the next watchdog
/// check is the same every time, is swept across three consecutive
/// top-level timer-wheel rotation boundaries (2^24 µs apart), straddling
/// each. The overflow cascade that re-files long-horizon events at every
/// boundary must neither delay nor advance detection: the first-detection
/// latency has to come out bit-identical at all three boundaries.
#[test]
fn heartbeat_loss_latency_is_rotation_boundary_independent() {
    use easis::injection::{ErrorClass, Injection};

    let mut latencies = Vec::new();
    for rotation in 1..=3u64 {
        let boundary_us = rotation * WHEEL_HORIZON_US;
        // Align the window start to the 20 ms hyperperiod grid (watchdog
        // cycle 10 ms, app periods 5/10/20 ms), 80 ms before the boundary;
        // the 200 ms window then straddles the cascade crossing.
        let from_ms = (boundary_us / 1_000 / 20) * 20 - 80;
        let from = Instant::from_millis(from_ms);
        let to = from + Duration::from_millis(200);
        let horizon = Instant::from_millis(from_ms + 1_000);

        let mut node = CentralNode::build(NodeConfig {
            kernel_trace: false,
            ..NodeConfig::default()
        });
        node.start();
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss {
                runnable: RunnableId(4), // SAFE_CC in the full node
            },
            from,
            to,
        )]);
        node.run_until(horizon, &mut injector);

        let first = node
            .world
            .fault_log
            .first()
            .unwrap_or_else(|| panic!("loss undetected at rotation {rotation}"));
        assert!(
            first.at >= from && first.at <= to + Duration::from_millis(500),
            "rotation {rotation}: detection at {} outside the injection window",
            first.at
        );
        latencies.push(first.at.saturating_duration_since(from));
    }

    assert!(
        latencies.windows(2).all(|pair| pair[0] == pair[1]),
        "detection latency varies across rotation boundaries: {latencies:?}"
    );
}

/// The macro-stepping engine over a genuinely long horizon: the
/// injection-free prefix spans the first top-level timer-wheel rotation
/// boundary (2^24 µs ≈ 16.8 s), which no closed-form jump may cross — the
/// engine must cap the jump just short of it, simulate the cascade
/// hyperperiod event-by-event (a counted fallback) and resume jumping.
/// A heartbeat loss opens just past the boundary, so detection and
/// treatment run on a node whose entire pre-fault history was
/// fast-forwarded; the dependability verdict and the final node state must
/// come out bit-identical to the event-level run that simulated every one
/// of the ~16 million microseconds.
#[test]
fn macro_stepped_soak_crosses_rotation_boundary_and_detects_fault_past_it() {
    use easis::fmf::policy::Treatment;
    use easis::injection::{ErrorClass, Injection};

    let boundary_ms = WHEEL_HORIZON_US / 1000; // 16_777
    let from = Instant::from_millis(boundary_ms + 20);
    let to = Instant::from_millis(boundary_ms + 220);
    let horizon = Instant::from_millis(boundary_ms + 3_000);

    let run = |ffwd: bool| {
        let mut node = CentralNode::build(NodeConfig {
            kernel_trace: false,
            ..NodeConfig::default()
        });
        node.set_fastforward(Some(ffwd));
        node.start();
        // Quiescent prefix across the rotation boundary.
        node.run_span(from);
        node.set_injection_armed(true);
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss {
                runnable: RunnableId(4), // SAFE_CC in the full node
            },
            from,
            to,
        )]);
        node.run_until(to, &mut injector);
        node.set_injection_armed(false);
        node.run_span(horizon);
        node
    };
    let mut fast = run(true);
    let mut plain = run(false);

    // The prefix really was macro-stepped (most of ~16.8 s elided), and the
    // rotation crossing really was simulated (a counted fallback).
    let stats = fast.ffwd_stats();
    assert!(
        stats.fastforwarded >= Duration::from_secs(10),
        "long prefix barely fast-forwarded: {stats:?}"
    );
    assert!(
        stats.fallbacks >= 1,
        "the rotation boundary must force an event-level crossing: {stats:?}"
    );
    assert!(stats.certifications >= 1, "{stats:?}");
    assert_eq!(plain.ffwd_stats().fastforwarded, Duration::ZERO);

    // The fault just past the boundary is detected and treated in causal
    // order on the fast-forwarded node.
    let first_fault = *fast.world.fault_log.first().expect("heartbeat loss detected");
    assert!(
        first_fault.at >= from,
        "detection at {} precedes injection",
        first_fault.at
    );
    let treatments = &fast.world.treatments;
    assert!(
        treatments
            .iter()
            .any(|t| matches!(t.treatment, Treatment::RestartApplication(_))),
        "expected an application restart among the reactions"
    );
    assert!(
        treatments[0].at >= first_fault.at,
        "reaction at {} precedes first detection at {}",
        treatments[0].at,
        first_fault.at
    );
    assert_eq!(fast.world.hw_watchdog.expirations(), 0);

    // And the whole run is bit-identical to the event-level reference.
    assert_eq!(fast.os.now(), plain.os.now());
    let a = fast.snapshot();
    let b = plain.snapshot();
    assert!(
        a.content_eq(&b),
        "macro-stepped soak diverged from the event-level run"
    );
    assert_eq!(a.os_canonical(), b.os_canonical());
}

#[test]
#[ignore = "minutes-long campaign; run with --ignored"]
fn large_campaign_soak() {
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(7, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(50)
        .with_horizon(horizon)
        .build();
    let stats = plan.run(|t| scenario::run_trial(t, horizon));
    assert_eq!(stats.len(), 250);
    // Every runnable-level class stays fully covered at scale.
    for class in ["heartbeat_loss", "skip_runnable"] {
        assert_eq!(stats.sw_coverage(class), 1.0, "{class}");
    }
}

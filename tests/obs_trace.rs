//! End-to-end observability trace test.
//!
//! Runs the paper's central node with the flight recorder enabled, injects
//! a heartbeat loss, and checks that the JSONL trace tells the whole story
//! in sim-time order: the injection arming, the aliveness miss detected
//! inside a cycle check, and the TSI state transition that follows.

use easis::injection::injector::{ErrorClass, Injection, Injector};
use easis::obs::{FaultClass, ObsEvent, StateScope};
use easis::sim::time::{Duration, Instant};
use easis::validator::{CentralNode, NodeConfig};

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

fn faulty_trial_node() -> CentralNode {
    let config = NodeConfig {
        obs_capacity: Some(4096),
        ..NodeConfig::safespeed_only()
    };
    let mut node = CentralNode::build(config);
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(400),
    )]);
    node.run_until(ms(1_000), &mut injector);
    node
}

#[test]
fn trace_contains_the_fault_story_in_sim_time_order() {
    let node = faulty_trial_node();
    let target = node.runnable("SAFE_CC_process");
    let events = node.world.obs.events();
    assert!(!events.is_empty(), "enabled sink recorded nothing");

    // The trace is in causal (recording) order: sequence numbers are
    // strictly monotonic. The `at` stamps carry each event's semantic
    // time — e.g. an FMF reaction is stamped with the fault's detection
    // time, which may precede the cycle check that delivered it.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "{pair:?} sequence not monotonic");
    }

    let pos = |pred: &dyn Fn(&ObsEvent) -> bool| events.iter().position(|e| pred(&e.event));

    let armed = pos(&|e| {
        matches!(e, ObsEvent::InjectionActivated { class } if *class == "heartbeat_loss")
    })
    .expect("injection arming on the trace");
    let miss = pos(&|e| {
        matches!(e, ObsEvent::FaultDetected { runnable, kind }
            if *runnable == target && *kind == FaultClass::Aliveness)
    })
    .expect("aliveness miss on the trace");
    let transition = pos(&|e| {
        matches!(e, ObsEvent::StateTransition { scope: StateScope::Task(_), faulty: true })
    })
    .expect("task state transition on the trace");
    assert!(armed < miss, "miss detected before the injection armed");
    assert!(miss <= transition, "state transition before the first miss");
    // The story events are also ordered in sim-time.
    assert!(events[armed].at <= events[miss].at);
    assert!(events[miss].at <= events[transition].at);

    // The miss was detected inside a cycle-check bracket that counted it.
    let check_start = events[..miss]
        .iter()
        .rposition(|e| matches!(e.event, ObsEvent::CycleCheckStart { .. }))
        .expect("cycle check opened before the miss");
    let check_end = events[miss..]
        .iter()
        .position(|e| matches!(e.event, ObsEvent::CycleCheckEnd { .. }))
        .map(|i| miss + i)
        .expect("cycle check closed after the miss");
    assert!(check_start < miss && miss < check_end);
    let ObsEvent::CycleCheckEnd { faults, .. } = events[check_end].event else {
        unreachable!()
    };
    assert!(faults > 0, "closing bracket did not count the miss");

    // The injection disarmed later and the trace says so.
    let disarmed = pos(&|e| {
        matches!(e, ObsEvent::InjectionDeactivated { class } if *class == "heartbeat_loss")
    })
    .expect("injection disarm on the trace");
    assert!(disarmed > armed);
}

#[test]
fn jsonl_export_carries_the_same_story() {
    let node = faulty_trial_node();
    let jsonl = node.world.obs.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), node.world.obs.events().len());
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(jsonl.contains("injection_activated"));
    assert!(jsonl.contains("fault_detected"));
    assert!(jsonl.contains("state_transition"));
    assert!(jsonl.contains("cycle_check_start"));
    assert!(jsonl.contains("cycle_check_end"));
}

#[test]
fn metrics_count_what_the_trace_shows() {
    let node = faulty_trial_node();
    let sink = &node.world.obs;
    let events = sink.events();
    let detected = events
        .iter()
        .filter(|e| matches!(e.event, ObsEvent::FaultDetected { .. }))
        .count() as u64;
    assert!(detected > 0);
    assert_eq!(sink.counter("fault_detected"), detected);
    let snapshot = sink.metrics_snapshot();
    let site = snapshot
        .site("watchdog.cycle_check")
        .expect("cycle latency site populated");
    assert!(site.count >= 98, "one sample per watchdog cycle, got {}", site.count);
    assert!(site.latency.is_some());
}

/// Macro-stepping must stand down whenever a trace could observe the
/// difference: an elided hyperperiod records no flight-recorder events and
/// no kernel trace entries, so with either trace enabled the engine must
/// not elide anything — and the traces must come out byte-identical to a
/// run that never heard of fast-forwarding.
#[test]
fn fastforward_auto_disables_under_traces_keeping_them_byte_identical() {
    let run = |ffwd: bool| {
        let config = NodeConfig {
            obs_capacity: Some(4096),
            ..NodeConfig::safespeed_only()
        };
        let mut node = CentralNode::build(config);
        node.set_fastforward(Some(ffwd));
        node.start();
        // An injection-free span the engine would otherwise macro-step.
        node.run_span(ms(600));
        let target = node.runnable("SAFE_CC_process");
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: target },
            ms(700),
            ms(900),
        )]);
        node.run_until(ms(1_500), &mut injector);
        node
    };
    let fast = run(true);
    let plain = run(false);

    // Both traces are enabled, so the engine stood down: the spans were
    // recorded (the denominator moves) but nothing was fast-forwarded.
    let stats = fast.ffwd_stats();
    assert_eq!(stats.fastforwarded, Duration::ZERO, "{stats:?}");
    assert_eq!(stats.certifications, 0, "{stats:?}");
    assert!(stats.span > Duration::ZERO, "{stats:?}");

    // Byte-identical observability JSONL and kernel trace.
    assert!(!fast.world.obs.to_jsonl().is_empty());
    assert_eq!(fast.world.obs.to_jsonl(), plain.world.obs.to_jsonl());
    assert_eq!(
        format!("{:?}", fast.os.trace()),
        format!("{:?}", plain.os.trace())
    );

    // Each trace gates the engine independently: kernel trace only…
    let mut kernel_only = CentralNode::build(NodeConfig::safespeed_only());
    kernel_only.set_fastforward(Some(true));
    kernel_only.start();
    kernel_only.run_span(ms(600));
    assert_eq!(kernel_only.ffwd_stats().fastforwarded, Duration::ZERO);

    // …and flight recorder only.
    let mut obs_only = CentralNode::build(NodeConfig {
        obs_capacity: Some(4096),
        kernel_trace: false,
        ..NodeConfig::safespeed_only()
    });
    obs_only.set_fastforward(Some(true));
    obs_only.start();
    obs_only.run_span(ms(600));
    assert_eq!(obs_only.ffwd_stats().fastforwarded, Duration::ZERO);

    // With both traces off the same span does fast-forward — the gate is
    // the traces, not the configuration shape.
    let mut untraced = CentralNode::build(NodeConfig {
        kernel_trace: false,
        ..NodeConfig::safespeed_only()
    });
    untraced.set_fastforward(Some(true));
    untraced.start();
    untraced.run_span(ms(600));
    assert!(untraced.ffwd_stats().fastforwarded > Duration::ZERO);
}

#[test]
fn disabled_sink_records_nothing_on_the_same_trial() {
    let mut node = CentralNode::build(NodeConfig::safespeed_only());
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(400),
    )]);
    node.run_until(ms(1_000), &mut injector);
    assert!(!node.world.obs.is_enabled());
    assert!(node.world.obs.events().is_empty());
    assert!(node.world.obs.to_jsonl().is_empty());
    // The fault is still detected — observability is read-only.
    assert!(!node.world.fault_log.is_empty());
}

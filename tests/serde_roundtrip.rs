//! Serialisation round-trips of the configuration and report types — the
//! artifacts a real deployment would persist (fault hypotheses, DTC
//! memory, experiment records).

use easis::fmf::dtc::{DtcStore, FreezeFrame};
use easis::rte::mapping::SystemMapping;
use easis::rte::runnable::RunnableId;
use easis::osek::task::TaskId;
use easis::sim::series::SeriesSet;
use easis::sim::time::{Duration, Instant};
use easis::watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis::watchdog::report::{DetectedFault, FaultKind, RunnableCounters};

#[test]
fn watchdog_config_round_trips_through_json() {
    let mut mapping = SystemMapping::new();
    let app = mapping.add_application("SafeSpeed");
    mapping.assign_task(TaskId(0), app);
    mapping.assign_runnable(RunnableId(0), TaskId(0));
    let config = WatchdogConfig::builder(Duration::from_millis(10))
        .mapping(mapping)
        .monitor(
            RunnableHypothesis::new(RunnableId(0))
                .alive_at_least(1, 2)
                .arrive_at_most(3, 2),
        )
        .allow_entry(RunnableId(0))
        .allow_flow(RunnableId(0), RunnableId(1))
        .error_threshold(5)
        .ecu_faulty_after_apps(2)
        .build();
    let json = serde_json::to_string(&config).expect("serialise");
    let back: WatchdogConfig = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.check_period(), config.check_period());
    assert_eq!(back.error_threshold(), config.error_threshold());
    assert_eq!(back.ecu_faulty_app_threshold(), config.ecu_faulty_app_threshold());
    assert_eq!(
        back.hypothesis(RunnableId(0)),
        config.hypothesis(RunnableId(0))
    );
    assert_eq!(back.flow_table(), config.flow_table());
}

#[test]
fn dtc_store_round_trips_with_records() {
    let mut store = DtcStore::new(2, 10);
    for ms in [10, 20, 30] {
        store.record(
            DetectedFault {
                at: Instant::from_millis(ms),
                runnable: RunnableId(4),
                kind: FaultKind::ProgramFlow,
            },
            FreezeFrame {
                conditions: vec![("speed_measured".into(), 19.4)],
            },
        );
    }
    let json = serde_json::to_string(&store).expect("serialise");
    let back: DtcStore = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.len(), store.len());
    let code = easis::fmf::dtc::DtcCode::of(RunnableId(4), FaultKind::ProgramFlow);
    assert_eq!(back.get(code), store.get(code));
}

#[test]
fn series_set_round_trips_for_experiment_records() {
    let mut set = SeriesSet::new("fig_demo");
    for i in 0..20 {
        set.push(Instant::from_millis(i * 10), "AC", (i % 3) as f64);
    }
    let json = serde_json::to_string(&set).expect("serialise");
    let back: SeriesSet = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.name(), "fig_demo");
    assert_eq!(
        back.series("AC").unwrap().samples(),
        set.series("AC").unwrap().samples()
    );
}

#[test]
fn counters_and_faults_are_stable_wire_types() {
    let fault = DetectedFault {
        at: Instant::from_millis(42),
        runnable: RunnableId(3),
        kind: FaultKind::ArrivalRate,
    };
    let json = serde_json::to_string(&fault).unwrap();
    assert_eq!(serde_json::from_str::<DetectedFault>(&json).unwrap(), fault);

    let counters = RunnableCounters {
        ac: 1,
        arc: 2,
        cca: 3,
        ccar: 4,
        activation: true,
        aliveness_errors: 5,
        arrival_rate_errors: 6,
        program_flow_errors: 7,
    };
    let json = serde_json::to_string(&counters).unwrap();
    assert_eq!(
        serde_json::from_str::<RunnableCounters>(&json).unwrap(),
        counters
    );
}

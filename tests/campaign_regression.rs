//! Coverage regression harness.
//!
//! Pins the fixed-seed reference campaign's [`CampaignReport`] as a golden
//! JSON fixture (`tests/goldens/campaign_report.json`) and asserts:
//!
//! 1. a serial run reproduces the golden **byte for byte**;
//! 2. a 4-worker parallel run serialises to exactly the same bytes as the
//!    serial run (the executor's determinism guarantee);
//! 3. no error class lost Software-Watchdog coverage relative to the
//!    golden — any per-class coverage regression fails the suite even if
//!    the overall bytes were regenerated.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```text
//! EASIS_REGEN_GOLDENS=1 cargo test --test campaign_regression
//! ```

use easis::injection::{CampaignBuilder, CampaignExecutor, CampaignPlan, CampaignReport};
use easis::rte::runnable::RunnableId;
use easis::sim::time::{Duration, Instant};
use easis::validator::scenario;

const GOLDEN: &str = include_str!("goldens/campaign_report.json");

/// The reference campaign: the T-COV configuration at 3 trials per class,
/// small enough for the test suite but covering every error class.
fn reference_plan() -> (CampaignPlan, Instant) {
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xC0FFEE, (0..9).map(RunnableId).collect())
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(3)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();
    (plan, horizon)
}

fn report_json(executor: &CampaignExecutor) -> String {
    let (plan, horizon) = reference_plan();
    let stats = scenario::run_plan(&plan, horizon, executor);
    let report = CampaignReport::from_stats(&stats);
    let mut json = serde_json::to_string_pretty(&report).expect("report serialises");
    json.push('\n');
    json
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/campaign_report.json")
}

#[test]
fn serial_run_matches_golden_report_bytes() {
    let json = report_json(&CampaignExecutor::serial());
    if std::env::var_os("EASIS_REGEN_GOLDENS").is_some() {
        std::fs::write(golden_path(), &json).expect("write golden");
        return;
    }
    assert_eq!(
        json, GOLDEN,
        "campaign report drifted from the golden fixture; if the change is\n\
         intentional, regenerate with EASIS_REGEN_GOLDENS=1"
    );
}

#[test]
fn four_workers_serialise_byte_identical_to_serial() {
    let serial = report_json(&CampaignExecutor::serial());
    let parallel = report_json(&CampaignExecutor::new(4));
    assert_eq!(serial, parallel, "worker count leaked into the report bytes");
}

#[test]
fn chunked_executors_serialise_byte_identical_to_golden() {
    if std::env::var_os("EASIS_REGEN_GOLDENS").is_some() {
        return; // the serial test owns regeneration; don't race it
    }
    for workers in [2, 4] {
        for chunk in [1, 3, 7] {
            let json = report_json(&CampaignExecutor::new(workers).with_chunk_size(chunk));
            assert_eq!(
                json, GOLDEN,
                "chunked run ({workers} workers, chunk {chunk}) drifted from the golden"
            );
        }
    }
    let json = report_json(&CampaignExecutor::from_env());
    assert_eq!(json, GOLDEN, "from_env run drifted from the golden");
}

#[test]
fn no_error_class_lost_software_watchdog_coverage() {
    let golden: CampaignReport = serde_json::from_str(GOLDEN).expect("golden parses");
    let (plan, horizon) = reference_plan();
    let stats = scenario::run_plan(&plan, horizon, &CampaignExecutor::from_env());
    let current = CampaignReport::from_stats(&stats);
    assert_eq!(current.trials, golden.trials, "trial count changed");
    for pinned in &golden.classes {
        let now = current
            .class(&pinned.class)
            .unwrap_or_else(|| panic!("class {} vanished from the report", pinned.class));
        assert!(
            now.sw_coverage >= pinned.sw_coverage,
            "Software Watchdog coverage regressed on {}: {:.2} < {:.2}",
            pinned.class,
            now.sw_coverage,
            pinned.sw_coverage,
        );
        for pinned_det in &pinned.detectors {
            let now_det = now
                .detectors
                .iter()
                .find(|d| d.detector == pinned_det.detector)
                .expect("detector set is fixed");
            assert!(
                now_det.coverage >= pinned_det.coverage,
                "{:?} coverage regressed on {}: {:.2} < {:.2}",
                pinned_det.detector,
                pinned.class,
                now_det.coverage,
                pinned_det.coverage,
            );
        }
    }
}

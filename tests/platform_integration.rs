//! Cross-crate platform integration: OSEK scheduling + runnable layer +
//! watchdog supervision interacting under load, preemption and resource
//! contention.

use easis::injection::Injector;
use easis::osek::alarm::AlarmAction;
use easis::osek::kernel::Os;
use easis::osek::plan::{Plan, ResourceId, Step};
use easis::osek::task::{Priority, TaskConfig};
use easis::rte::assembly::SequencedTask;
use easis::rte::runnable::{RunnableDef, RunnableRegistry};
use easis::rte::world::{BasicEcuWorld, EcuWorld};
use easis::sim::time::{Duration, Instant};
use easis::validator::{CentralNode, NodeConfig};

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

#[test]
fn preemption_preserves_heartbeat_ordering_within_each_task() {
    // A slow low-priority task is preempted every period by a fast
    // high-priority one; heartbeats of each task must still appear in the
    // task's own program order.
    let mut registry = RunnableRegistry::new();
    let slow_specs: Vec<_> = (0..3)
        .map(|i| registry.register(format!("slow{i}"), Duration::from_millis(3)))
        .collect();
    let fast_spec = registry.register("fast", Duration::from_micros(100));
    let slow_ids: Vec<_> = slow_specs.iter().map(|s| s.id()).collect();
    let fast_id = fast_spec.id();

    let mut os: Os<BasicEcuWorld> = Os::new();
    let slow_task = os.add_task(
        TaskConfig::new("slow", Priority(1)),
        SequencedTask::fixed("slow", slow_specs.into_iter().map(RunnableDef::no_op).collect()),
    );
    let fast_task = os.add_task(
        TaskConfig::new("fast", Priority(5)),
        SequencedTask::fixed("fast", vec![RunnableDef::no_op(fast_spec)]),
    );
    let a_slow = os.add_alarm("slow", AlarmAction::ActivateTask(slow_task));
    let a_fast = os.add_alarm("fast", AlarmAction::ActivateTask(fast_task));
    let mut world = BasicEcuWorld::new();
    os.start(&mut world);
    os.set_rel_alarm(a_slow, Duration::from_millis(20), Some(Duration::from_millis(20)))
        .unwrap();
    os.set_rel_alarm(a_fast, Duration::from_millis(2), Some(Duration::from_millis(2)))
        .unwrap();
    os.run_until(ms(200), &mut world);

    // The fast task interleaved (it ran ~100 times, the slow one ~9).
    let fast_beats = world.heartbeats.iter().filter(|&&(r, _)| r == fast_id).count();
    assert!(fast_beats >= 90, "fast ran {fast_beats} times");
    // Per-task projection of the heartbeat stream is strictly cyclic.
    let slow_seq: Vec<_> = world
        .heartbeats
        .iter()
        .filter(|(r, _)| slow_ids.contains(r))
        .map(|&(r, _)| r)
        .collect();
    assert!(!slow_seq.is_empty());
    for (i, r) in slow_seq.iter().enumerate() {
        assert_eq!(*r, slow_ids[i % 3], "slow sequence broken at {i}");
    }
    assert_eq!(os.trace().count_kind("deadline_miss"), 0);
}

#[test]
fn resource_contention_delays_but_does_not_corrupt_supervision() {
    // Two tasks share a resource with a ceiling; the watchdog node's
    // full-stack equivalent is exercised in the validator, here we check
    // the kernel+rte layer composition directly.
    let mut registry = RunnableRegistry::new();
    let a_spec = registry.register("A", Duration::from_millis(1));
    let b_spec = registry.register("B", Duration::from_millis(1));
    let a_id = a_spec.id();
    let b_id = b_spec.id();
    let r = ResourceId(0);

    let mut os: Os<BasicEcuWorld> = Os::new();
    let a_logic = RunnableDef::no_op(a_spec);
    let t_a = os.add_task(TaskConfig::new("A", Priority(2)), move |_n: Instant, _w: &BasicEcuWorld| {
        let def = a_logic.clone();
        let logic = def.logic();
        let id = def.spec().id();
        Plan::new()
            .step(Step::GetResource(r))
            .compute(Duration::from_millis(4))
            .step(Step::ReleaseResource(r))
            .effect(move |w: &mut BasicEcuWorld, ctx| {
                w.indicate_heartbeat(id, ctx.now());
                logic(w, ctx);
            })
    });
    let b_logic = RunnableDef::no_op(b_spec);
    let t_b = os.add_task(TaskConfig::new("B", Priority(4)), move |_n: Instant, _w: &BasicEcuWorld| {
        let def = b_logic.clone();
        let logic = def.logic();
        let id = def.spec().id();
        Plan::new()
            .step(Step::GetResource(r))
            .compute(Duration::from_millis(1))
            .step(Step::ReleaseResource(r))
            .effect(move |w: &mut BasicEcuWorld, ctx| {
                w.indicate_heartbeat(id, ctx.now());
                logic(w, ctx);
            })
    });
    os.add_resource("shared", Priority(5));
    let al_a = os.add_alarm("a", AlarmAction::ActivateTask(t_a));
    let al_b = os.add_alarm("b", AlarmAction::ActivateTask(t_b));
    let mut world = BasicEcuWorld::new();
    os.start(&mut world);
    os.set_rel_alarm(al_a, Duration::from_millis(10), Some(Duration::from_millis(10)))
        .unwrap();
    // B arrives while A holds the resource.
    os.set_rel_alarm(al_b, Duration::from_millis(12), Some(Duration::from_millis(10)))
        .unwrap();
    os.run_until(ms(100), &mut world);
    // No resource-order errors, and both tasks heartbeat every period.
    assert_eq!(os.trace().count_kind("os_error"), 0, "{}", os.trace().render());
    let beats_a = world.heartbeats.iter().filter(|&&(x, _)| x == a_id).count();
    let beats_b = world.heartbeats.iter().filter(|&&(x, _)| x == b_id).count();
    assert!(beats_a >= 8, "A heartbeats: {beats_a}");
    assert!(beats_b >= 8, "B heartbeats: {beats_b}");
}

#[test]
fn watchdog_task_survives_heavy_application_load() {
    // Even with the CPU ~95% loaded, the highest-priority watchdog task
    // keeps its cycle cadence.
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    // Stretch every steer runnable so the 5 ms task consumes most of the CPU.
    let r0 = node.runnable("ReadHandwheel");
    node.world.controls.runnable_mut(r0).exec_scale_ppm = 150_000_000; // 20µs → 3ms
    let mut injector = Injector::none();
    node.run_until(ms(500), &mut injector);
    let cycles = node.world.watchdog.cycles_run();
    assert!(cycles >= 48, "watchdog starved: only {cycles} cycles");
    assert!(node.os.utilization() > 0.5, "load {}", node.os.utilization());
}

#[test]
fn trace_contains_the_full_dispatch_story() {
    let mut node = CentralNode::build(NodeConfig::safespeed_only());
    node.start();
    let mut injector = Injector::none();
    node.run_until(ms(100), &mut injector);
    let trace = node.os.trace();
    assert!(trace.count_kind("startup") == 1);
    assert!(trace.count_kind("alarm") >= 19); // 10ms task + wd + kick
    assert!(trace.count_kind("dispatch") >= 19);
    assert!(trace.count_kind("terminate") >= 19);
    assert!(trace.of_kind("runnable").count() >= 27); // 9 periods × 3
}

//! End-to-end dependability tests: injected error → watchdog detection →
//! TSI rollup → FMF treatment → recovery, across the whole stack.

use easis::fmf::policy::{Treatment, TreatmentPolicy};
use easis::injection::{ErrorClass, Injection, Injector};
use easis::sim::time::Instant;
use easis::validator::{CentralNode, NodeConfig};
use easis::watchdog::report::{FaultKind, HealthState};

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

#[test]
fn heartbeat_loss_is_detected_treated_and_recovered() {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let task = node.tasks["SafeSpeedTask"];
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(300),
    )]);
    node.run_until(ms(800), &mut injector);

    // Detection: aliveness faults on the right runnable.
    let aliveness: Vec<_> = node
        .world
        .fault_log
        .iter()
        .filter(|f| f.kind == FaultKind::Aliveness)
        .collect();
    assert!(!aliveness.is_empty());
    assert!(aliveness.iter().all(|f| f.runnable == target));

    // Treatment: the application was restarted.
    assert!(node
        .world
        .treatments
        .iter()
        .any(|t| matches!(t.treatment, Treatment::RestartApplication(_))));

    // Recovery: after the window everything is healthy again.
    assert_eq!(node.world.watchdog.task_state(task), HealthState::Ok);
    assert!(node.counters_of("SAFE_CC_process").activation);
}

#[test]
fn persistent_fault_escalates_to_application_termination() {
    // The fault outlives the restart budget (3): the FMF terminates the
    // application, which cancels its activation alarm.
    let mut node = CentralNode::build(NodeConfig {
        policy: TreatmentPolicy {
            reset_on_ecu_faulty: false, // isolate the app-level escalation
            ..TreatmentPolicy::default()
        },
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(200),
        ms(2_000),
    )]);
    node.run_until(ms(2_500), &mut injector);

    let app = node.apps["SafeSpeed"];
    assert!(node.world.fmf.is_terminated(app));
    assert_eq!(node.world.fmf.restarts_of(app), 3);
    assert!(node
        .world
        .treatments
        .iter()
        .any(|t| matches!(t.treatment, Treatment::TerminateApplication(_))));
    // The activation alarm was cancelled: the task stops running, so the
    // trace shows no SafeSpeedTask dispatches near the end of the run.
    let last_dispatch = node
        .os
        .trace()
        .of_kind("dispatch")
        .filter(|e| e.detail == "SafeSpeedTask")
        .last()
        .expect("task ran at least once")
        .at;
    assert!(last_dispatch < ms(2_400), "task still running at {last_dispatch}");
}

#[test]
fn single_app_node_escalates_to_ecu_reset() {
    // With one application, app-faulty implies ECU-faulty (default
    // threshold: all apps); the policy then commands a software reset.
    let mut node = CentralNode::build(NodeConfig::safespeed_only());
    node.start();
    let target = node.runnable("Speed_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(400),
    )]);
    node.run_until(ms(1_000), &mut injector);
    assert!(node.world.ecu_resets > 0, "expected an ECU software reset");
    assert!(node
        .world
        .treatments
        .iter()
        .any(|t| t.treatment == Treatment::EcuReset));
    // The reset cleared the budgets: the FMF can restart again later.
    assert!(!node.world.fmf.is_terminated(node.apps["SafeSpeed"]));
}

#[test]
fn faults_in_one_app_do_not_disturb_the_others() {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let target = node.runnable("LDW_process"); // SafeLane
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(400),
    )]);
    node.run_until(ms(1_000), &mut injector);
    // SafeLane was flagged (the lost heartbeat shows up as an aliveness
    // error on LDW_process and as flow errors on its observed successor —
    // both SafeLane runnables)…
    let safelane_task = node.tasks["SafeLaneTask"];
    let mapping = node.world.watchdog.config().mapping().clone();
    assert!(!node.world.fault_log.is_empty());
    assert!(
        node.world
            .fault_log
            .iter()
            .all(|f| mapping.task_of(f.runnable) == Some(safelane_task)),
        "{:?}",
        node.world.fault_log
    );
    let _ = target;
    // …while SafeSpeed and steer-by-wire stayed healthy.
    assert_eq!(
        node.world.watchdog.task_state(node.tasks["SafeSpeedTask"]),
        HealthState::Ok
    );
    assert_eq!(
        node.world.watchdog.task_state(node.tasks["SteerByWireTask"]),
        HealthState::Ok
    );
    assert_eq!(node.world.watchdog.ecu_state(), HealthState::Ok);
}

#[test]
fn cpu_saturating_fault_reaches_the_hardware_watchdog() {
    let mut node = CentralNode::build(NodeConfig {
        keep_monitoring_faulty: true,
        policy: TreatmentPolicy::observe_only(),
        ..NodeConfig::default()
    });
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::ExecutionSlowdown {
            runnable: target,
            scale_ppm: 400_000_000, // 400× ≈ 48 ms per activation
        },
        ms(200),
        ms(500),
    )]);
    node.run_until(ms(1_000), &mut injector);
    // The kick task starves; the hardware watchdog expires.
    assert!(node.world.hw_watchdog.expirations() > 0);
    // And the software monitors detected it much earlier.
    let first_sw = node.world.fault_log.first().expect("sw detection").at;
    let hw = node.world.hw_watchdog.first_expiry().expect("hw expiry");
    assert!(first_sw < hw, "sw {first_sw} must beat hw {hw}");
}

#[test]
fn application_restart_resets_internal_state() {
    // Drive the integrator up, then force a restart treatment: the
    // restarted component must start from initialised state.
    let mut node = CentralNode::build(NodeConfig::safespeed_only());
    node.start();
    let measured = node.world.signals.id_of("speed_measured").unwrap();
    let limit = node.world.signals.id_of("speed_limit").unwrap();
    node.world.signals.write(measured, 30.0, Instant::ZERO);
    node.world.signals.write(limit, 10.0, Instant::ZERO);
    let mut quiet = Injector::none();
    node.run_until(ms(300), &mut quiet);
    let integrator = node.world.signals.id_of("safespeed.integrator").unwrap();
    assert_eq!(node.world.signals.read(integrator), 5.0, "integrator saturated");

    // A heartbeat loss triggers detection → restart treatment.
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(300),
        ms(340),
    )]);
    node.run_until(ms(400), &mut injector);
    assert!(node
        .world
        .treatments
        .iter()
        .any(|t| matches!(t.treatment, Treatment::RestartApplication(_))));
    // Right after the restart the integrator was cleared; it then winds up
    // again from zero (~0.2/period), so by 400 ms it is far below the
    // saturated pre-fault value…
    let wound_again = node.world.signals.read(integrator);
    assert!(wound_again < 2.0, "integrator after restart: {wound_again}");
    // …while non-app-internal signals (inputs) were left untouched.
    assert_eq!(node.world.signals.read(measured), 30.0);
}

/// Freeze-frame condition names are interned `Arc<str>`s owned by the
/// watchdog task body: every frame captured in every trial clones the same
/// two allocations ("speed_measured", "lateral_measured"), and
/// `CentralNode::reset()` — the world-pooling reset between campaign
/// trials — must keep those interned strings alive and stable rather than
/// re-allocating them per run.
#[test]
fn freeze_frame_strings_stay_interned_across_node_reset() {
    let mut node = CentralNode::build(NodeConfig::default());
    let faulty_run = |node: &mut CentralNode| {
        node.start();
        let target = node.runnable("SAFE_CC_process");
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: target },
            ms(200),
            ms(300),
        )]);
        node.run_until(ms(500), &mut injector);
        let conditions: Vec<std::sync::Arc<str>> = node
            .world
            .fmf
            .dtc()
            .iter()
            .flat_map(|rec| rec.freeze_frame.conditions.iter())
            .map(|(name, _)| std::sync::Arc::clone(name))
            .collect();
        assert!(!conditions.is_empty(), "faulty run must capture freeze frames");
        conditions
    };

    let first = faulty_run(&mut node);
    // Within one run, frames never duplicate a name's allocation: any two
    // conditions with equal text share one `Arc`.
    for a in &first {
        for b in &first {
            if **a == **b {
                assert!(
                    std::sync::Arc::ptr_eq(a, b),
                    "`{a}` captured twice with distinct allocations"
                );
            }
        }
    }

    node.reset();
    assert!(node.world.fmf.dtc().is_empty(), "reset clears the fault memory");
    let second = faulty_run(&mut node);

    // Across the reset, the very same interned allocations are re-used:
    // each name in the replay is pointer-identical to its first-run twin.
    assert_eq!(first.len(), second.len(), "replay must capture identical frames");
    for name in &second {
        assert!(
            first.iter().any(|original| std::sync::Arc::ptr_eq(original, name)),
            "condition `{name}` was re-allocated instead of re-using the interned string"
        );
    }
    // And the names are exactly the watchdog's capture set.
    for expected in ["speed_measured", "lateral_measured"] {
        assert!(
            second.iter().any(|n| &**n == expected),
            "missing condition `{expected}`"
        );
    }
}

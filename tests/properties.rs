//! Property-based tests (proptest) on the core invariants of the
//! monitoring units and substrates, exercised through the public API.

use easis::baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
use easis::injection::campaign::{CampaignBuilder, TrialSpec};
use easis::injection::executor::CampaignExecutor;
use easis::injection::stats::{DetectorId, TrialOutcome};
use easis::rte::runnable::RunnableId;
use easis::sim::cpu::CostMeter;
use easis::sim::event::EventQueue;
use easis::sim::rng::SimRng;
use easis::sim::time::{Duration, Instant};
use easis::watchdog::config::{IdIndex, RunnableHypothesis, WatchdogConfig};
use easis::watchdog::heartbeat::HeartbeatMonitor;
use easis::watchdog::pfc::{FlowTable, FlowVerdict, ProgramFlowChecker};
use easis::watchdog::report::{DetectedFault, FaultKind, RunnableCounters};
use easis::watchdog::SoftwareWatchdog;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A cheap trial runner whose outcome is a pure function of the spec —
/// stands in for the (expensive) full-node scenario so the executor
/// property can sweep many plans and worker counts.
fn synthetic_runner(spec: &TrialSpec) -> TrialOutcome {
    let mut rng = SimRng::seed_from(spec.seed);
    let mut outcome = TrialOutcome::new(spec.injection.class.tag());
    for detector in DetectorId::ALL {
        if rng.next_below(100) < 55 {
            outcome.record(detector, Duration::from_micros(rng.next_in(50, 80_000)));
        }
    }
    outcome
}

/// The pre-dense heartbeat data plane, kept verbatim as the reference
/// model: a `BTreeMap` of per-runnable counter structs. The dense
/// `HeartbeatMonitor` must be observationally equivalent to this for
/// every operation sequence.
struct ReferenceHeartbeatMonitor {
    states: BTreeMap<RunnableId, ReferenceState>,
}

struct ReferenceState {
    hypothesis: RunnableHypothesis,
    ac: u32,
    arc: u32,
    cca: u32,
    ccar: u32,
    active: bool,
    aliveness_errors: u32,
    arrival_rate_errors: u32,
}

impl ReferenceState {
    fn new(hypothesis: RunnableHypothesis) -> Self {
        ReferenceState {
            active: hypothesis.initially_active,
            hypothesis,
            ac: 0,
            arc: 0,
            cca: 0,
            ccar: 0,
            aliveness_errors: 0,
            arrival_rate_errors: 0,
        }
    }
}

impl ReferenceHeartbeatMonitor {
    fn new(hypotheses: impl IntoIterator<Item = RunnableHypothesis>) -> Self {
        ReferenceHeartbeatMonitor {
            states: hypotheses
                .into_iter()
                .map(|h| (h.runnable, ReferenceState::new(h)))
                .collect(),
        }
    }

    fn record(&mut self, runnable: RunnableId, costs: &mut CostMeter) {
        costs.charge(easis::watchdog::heartbeat::HEARTBEAT_COST_CYCLES);
        if let Some(st) = self.states.get_mut(&runnable) {
            if st.active {
                st.ac = st.ac.saturating_add(1);
                st.arc = st.arc.saturating_add(1);
            }
        }
    }

    fn end_of_cycle(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault> {
        let mut faults = Vec::new();
        for (&runnable, st) in &mut self.states {
            if !st.active {
                continue;
            }
            costs.charge(easis::watchdog::heartbeat::CHECK_COST_CYCLES);
            if let Some(spec) = st.hypothesis.aliveness {
                st.cca += 1;
                if st.cca >= spec.cycles {
                    if st.ac < spec.min_indications {
                        st.aliveness_errors += 1;
                        faults.push(DetectedFault { at: now, runnable, kind: FaultKind::Aliveness });
                    }
                    st.ac = 0;
                    st.cca = 0;
                }
            }
            if let Some(spec) = st.hypothesis.arrival_rate {
                st.ccar += 1;
                if st.ccar >= spec.cycles {
                    if st.arc > spec.max_indications {
                        st.arrival_rate_errors += 1;
                        faults.push(DetectedFault { at: now, runnable, kind: FaultKind::ArrivalRate });
                    }
                    st.arc = 0;
                    st.ccar = 0;
                }
            }
        }
        faults
    }

    fn reconfigure(&mut self, hypothesis: RunnableHypothesis) {
        match self.states.get_mut(&hypothesis.runnable) {
            Some(st) => {
                st.hypothesis = hypothesis;
                st.ac = 0;
                st.arc = 0;
                st.cca = 0;
                st.ccar = 0;
            }
            None => {
                self.states
                    .insert(hypothesis.runnable, ReferenceState::new(hypothesis));
            }
        }
    }

    fn set_active(&mut self, runnable: RunnableId, active: bool) -> bool {
        match self.states.get_mut(&runnable) {
            Some(st) => {
                st.active = active;
                if !active {
                    st.ac = 0;
                    st.arc = 0;
                    st.cca = 0;
                    st.ccar = 0;
                }
                true
            }
            None => false,
        }
    }

    fn is_active(&self, runnable: RunnableId) -> bool {
        self.states.get(&runnable).is_some_and(|s| s.active)
    }

    fn counters(&self, runnable: RunnableId) -> Option<RunnableCounters> {
        self.states.get(&runnable).map(|st| RunnableCounters {
            ac: st.ac,
            arc: st.arc,
            cca: st.cca,
            ccar: st.ccar,
            activation: st.active,
            aliveness_errors: st.aliveness_errors,
            arrival_rate_errors: st.arrival_rate_errors,
            program_flow_errors: 0,
        })
    }
}

proptest! {
    /// The campaign executor is deterministic: for any plan and any
    /// worker count, the aggregated stats — and their JSON bytes — equal
    /// the serial run's exactly.
    #[test]
    fn campaign_executor_is_deterministic_for_any_plan_and_worker_count(
        seed in any::<u64>(),
        n_targets in 1u32..6,
        trials_per_class in 1usize..5,
        workers in 1usize..=8,
    ) {
        let targets: Vec<RunnableId> = (0..n_targets).map(RunnableId).collect();
        let plan = CampaignBuilder::new(seed, targets)
            .trials_per_class(trials_per_class)
            .build();
        let serial = CampaignExecutor::serial().run(&plan, synthetic_runner);
        let parallel = CampaignExecutor::new(workers).run(&plan, synthetic_runner);
        prop_assert_eq!(&serial, &parallel, "stats diverged at {} workers", workers);
        prop_assert_eq!(
            serde_json::to_string_pretty(&serial).unwrap(),
            serde_json::to_string_pretty(&parallel).unwrap(),
            "JSON bytes diverged at {} workers", workers
        );
    }

    /// The event queue is a stable priority queue: pops are sorted by time
    /// and FIFO within a timestamp.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(t), i);
        }
        let mut last: Option<(Instant, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated within a timestamp");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Heartbeat monitoring never reports an aliveness error while at
    /// least `min` heartbeats arrive per monitoring period, and always
    /// reports within one period once heartbeats stop entirely.
    #[test]
    fn aliveness_detection_is_sound_and_complete(
        min in 1u32..4,
        cycles in 1u32..4,
        healthy_periods in 1u64..10,
    ) {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(min, cycles))
            .build();
        let mut wd = SoftwareWatchdog::new(config);
        let mut now = Instant::ZERO;
        // Healthy phase: exactly `min` beats per cycle (≥ min per window).
        for _ in 0..healthy_periods * cycles as u64 {
            for _ in 0..min {
                wd.heartbeat(RunnableId(0), now);
            }
            now += Duration::from_millis(10);
            let report = wd.run_cycle(now);
            prop_assert!(report.faults.is_empty(), "false positive: {report:?}");
        }
        // Silent phase: the error must come within `cycles` checks.
        let mut detected = false;
        for _ in 0..cycles {
            now += Duration::from_millis(10);
            if !wd.run_cycle(now).faults.is_empty() {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "missed detection after {cycles} silent cycles");
    }

    /// Arrival-rate monitoring is exact: `max` beats per window pass,
    /// `max + k` (k ≥ 1) beats are flagged at the window close.
    #[test]
    fn arrival_rate_threshold_is_exact(max in 0u32..5, excess in 1u32..4) {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).arrive_at_most(max, 1))
            .build();
        let mut wd = SoftwareWatchdog::new(config);
        for _ in 0..max {
            wd.heartbeat(RunnableId(0), Instant::from_millis(1));
        }
        prop_assert!(wd.run_cycle(Instant::from_millis(10)).faults.is_empty());
        for _ in 0..max + excess {
            wd.heartbeat(RunnableId(0), Instant::from_millis(11));
        }
        let report = wd.run_cycle(Instant::from_millis(20));
        prop_assert_eq!(report.faults.len(), 1);
    }

    /// Walking any legal path of a flow table never raises a violation;
    /// each counter-table jump raises exactly one.
    #[test]
    fn flow_table_accepts_exactly_its_language(
        chain_len in 2u32..8,
        steps in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        // Table: cycle 0→1→…→n-1→0. `true` = legal next, `false` = skip one
        // (illegal).
        let mut table = FlowTable::new();
        for i in 0..chain_len {
            table.allow(RunnableId(i), RunnableId((i + 1) % chain_len));
        }
        let mut pfc = ProgramFlowChecker::new(table);
        let mut pos = 0u32;
        prop_assert_eq!(pfc.observe(RunnableId(0)), FlowVerdict::Ok);
        let mut expected_errors = 0u64;
        for &legal in &steps {
            let next = if legal {
                (pos + 1) % chain_len
            } else {
                (pos + 2) % chain_len // skips one node: illegal for len > 2
            };
            // For chain_len == 2 the "skip" lands back on `pos` itself,
            // which is equally illegal (no self loops in the table).
            let verdict = pfc.observe(RunnableId(next));
            if legal {
                prop_assert_eq!(verdict, FlowVerdict::Ok);
            } else {
                expected_errors += 1;
                let violated = matches!(verdict, FlowVerdict::Violation { .. });
                prop_assert!(violated);
            }
            pos = next;
        }
        prop_assert_eq!(pfc.errors_detected(), expected_errors);
    }

    /// CFCSS never flags a legal random walk and always flags a random
    /// illegal jump on a chain graph.
    #[test]
    fn cfcss_is_sound_on_legal_walks(
        blocks in 3usize..32,
        walk_len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), seed);
        let mut monitor = CfcssMonitor::new(program, BlockId(0));
        let mut costs = CostMeter::new();
        for i in 1..=walk_len {
            let failed = monitor.enter(BlockId((i % blocks) as u32), &mut costs);
            prop_assert!(!failed, "false positive at step {i}");
        }
        prop_assert_eq!(monitor.errors(), 0);
    }

    #[test]
    fn cfcss_flags_illegal_jumps(
        blocks in 4usize..32,
        jump in 2usize..30,
        seed in any::<u64>(),
    ) {
        let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), seed);
        let mut monitor = CfcssMonitor::new(program, BlockId(0));
        let mut costs = CostMeter::new();
        prop_assert!(!monitor.enter(BlockId(1), &mut costs));
        // Jump somewhere that is not the successor of block 1.
        let target = 1 + 1 + (jump % (blocks - 2).max(1));
        prop_assume!(target % blocks != 2 && target % blocks != 1);
        let failed = monitor.enter(BlockId((target % blocks) as u32), &mut costs);
        prop_assert!(failed, "illegal jump 1→{target} undetected");
    }

    /// TSI threshold semantics: exactly at the threshold the task flips,
    /// never before.
    #[test]
    fn tsi_threshold_is_exact(threshold in 1u32..10) {
        use easis::osek::task::TaskId;
        use easis::rte::mapping::SystemMapping;
        use easis::watchdog::report::{DetectedFault, FaultKind};
        use easis::watchdog::tsi::TaskStateIndication;
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_runnable(RunnableId(0), TaskId(0));
        let mut tsi = TaskStateIndication::new(mapping, threshold, u32::MAX);
        for i in 1..=threshold {
            let changes = tsi.record(DetectedFault {
                at: Instant::from_millis(i as u64),
                runnable: RunnableId(0),
                kind: FaultKind::Aliveness,
            });
            if i < threshold {
                prop_assert!(changes.is_empty(), "flipped early at {i}");
            } else {
                prop_assert!(!changes.is_empty(), "did not flip at {threshold}");
            }
        }
    }

    /// The dense-index heartbeat monitor is observationally equivalent to
    /// the `BTreeMap` reference model over arbitrary operation sequences:
    /// identical faults (content *and* order), counters, activation
    /// verdicts, and cost charges — including operations on unknown ids,
    /// which both silently ignore (`set_active` returning `false`).
    #[test]
    fn dense_heartbeat_monitor_matches_btreemap_reference(
        monitored in prop::collection::btree_set(0u32..12, 1..6),
        ops in prop::collection::vec((0u8..4, 0u32..16, 1u32..4, 1u32..4), 1..100),
    ) {
        let hypotheses: Vec<RunnableHypothesis> = monitored
            .iter()
            .map(|&i| {
                RunnableHypothesis::new(RunnableId(i))
                    .alive_at_least(1, 2)
                    .arrive_at_most(2, 3)
            })
            .collect();
        let mut dense = HeartbeatMonitor::new(hypotheses.clone());
        let mut reference = ReferenceHeartbeatMonitor::new(hypotheses);
        let mut dense_costs = CostMeter::new();
        let mut reference_costs = CostMeter::new();
        let mut now = Instant::ZERO;
        for &(op, id, a, b) in &ops {
            let runnable = RunnableId(id);
            match op {
                0 => {
                    dense.record(runnable, now, &mut dense_costs);
                    reference.record(runnable, &mut reference_costs);
                }
                1 => {
                    now += Duration::from_millis(10);
                    let dense_faults = dense.end_of_cycle(now, &mut dense_costs);
                    let reference_faults = reference.end_of_cycle(now, &mut reference_costs);
                    prop_assert_eq!(dense_faults, reference_faults, "cycle faults diverged");
                }
                2 => {
                    let active = a % 2 == 0;
                    prop_assert_eq!(
                        dense.set_active(runnable, active),
                        reference.set_active(runnable, active),
                        "set_active verdict diverged for {:?}", runnable
                    );
                }
                _ => {
                    let hypothesis = RunnableHypothesis::new(runnable)
                        .alive_at_least(a.min(b), a.max(b))
                        .arrive_at_most(a + b, b);
                    dense.reconfigure(hypothesis);
                    reference.reconfigure(hypothesis);
                }
            }
        }
        prop_assert_eq!(dense_costs, reference_costs, "cost charges diverged");
        for id in 0..16u32 {
            let runnable = RunnableId(id);
            prop_assert_eq!(dense.counters(runnable), reference.counters(runnable));
            prop_assert_eq!(dense.is_active(runnable), reference.is_active(runnable));
        }
        prop_assert_eq!(
            dense.monitored().collect::<Vec<_>>(),
            reference.states.keys().copied().collect::<Vec<_>>(),
            "monitored sets diverged"
        );
    }

    /// The compiled bitset flow checker accepts exactly the language of
    /// the builder table, transition by transition, for arbitrary tables
    /// and observation sequences — including unmonitored ids, which stay
    /// transparent (no predecessor update, no error).
    #[test]
    fn dense_pfc_matches_table_reference(
        pairs in prop::collection::vec((0u32..10, 0u32..10), 1..30),
        entries in prop::collection::vec(0u32..10, 0..3),
        observations in prop::collection::vec(0u32..14, 1..120),
    ) {
        let mut table = FlowTable::new();
        for &entry in &entries {
            table.allow_entry(RunnableId(entry));
        }
        for &(pred, succ) in &pairs {
            table.allow(RunnableId(pred), RunnableId(succ));
        }
        let mut dense = ProgramFlowChecker::new(table.clone());
        let mut last: Option<RunnableId> = None;
        let mut errors = 0u64;
        for &observed in &observations {
            let runnable = RunnableId(observed);
            let verdict = dense.observe(runnable);
            let expected = if !table.is_monitored(runnable) {
                FlowVerdict::Ok
            } else {
                let v = match last {
                    None if table.is_entry(runnable) => FlowVerdict::Ok,
                    None => FlowVerdict::Violation { predecessor: None },
                    Some(prev) if table.is_allowed(prev, runnable) => FlowVerdict::Ok,
                    Some(prev) => FlowVerdict::Violation { predecessor: Some(prev) },
                };
                if matches!(v, FlowVerdict::Violation { .. }) {
                    errors += 1;
                }
                last = Some(runnable);
                v
            };
            prop_assert_eq!(verdict, expected, "verdict diverged at {:?}", runnable);
            prop_assert_eq!(dense.last_observed(), last, "predecessor diverged");
        }
        prop_assert_eq!(dense.errors_detected(), errors);
    }

    /// `IdIndex` is an order isomorphism onto `0..len`: slots are dense,
    /// ascending with id, stable under lookup, and unknown ids probe to
    /// `None` — for arbitrary id sets across the direct-map and
    /// binary-search regimes.
    #[test]
    fn id_index_is_a_dense_order_isomorphism(
        ids in prop::collection::btree_set(any::<u32>(), 0..64),
        probes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let index = IdIndex::from_ids(ids.iter().copied());
        prop_assert_eq!(index.len(), ids.len());
        for (slot, &id) in ids.iter().enumerate() {
            prop_assert_eq!(index.slot_of(id), Some(slot as u32));
            prop_assert_eq!(index.id_at(slot as u32), id);
        }
        for &probe in &probes {
            let expected = ids.iter().position(|&id| id == probe).map(|p| p as u32);
            prop_assert_eq!(index.slot_of(probe), expected, "probe {} diverged", probe);
        }
        prop_assert_eq!(index.iter().collect::<Vec<_>>(), ids.into_iter().collect::<Vec<_>>());
    }

    /// Incremental `IdIndex::insert` reaches the same frozen index as
    /// rebuilding from scratch, and the returned slot is immediately
    /// consistent with lookup.
    #[test]
    fn id_index_insert_matches_rebuild(
        initial in prop::collection::btree_set(0u32..1_000, 0..20),
        inserted in prop::collection::vec(0u32..1_000, 1..20),
    ) {
        let mut index = IdIndex::from_ids(initial.iter().copied());
        let mut all = initial.clone();
        for &id in &inserted {
            let slot = index.insert(id);
            all.insert(id);
            prop_assert_eq!(index.slot_of(id), Some(slot));
        }
        prop_assert_eq!(index, IdIndex::from_ids(all));
    }

    /// Chunked parallel execution is invisible in the output: any
    /// worker-count/chunk-size combination produces byte-identical stats.
    #[test]
    fn campaign_executor_chunking_is_invisible(
        seed in any::<u64>(),
        trials_per_class in 1usize..5,
        workers in 2usize..=6,
        chunk in 0usize..10,
    ) {
        let plan = CampaignBuilder::new(seed, vec![RunnableId(0), RunnableId(1)])
            .trials_per_class(trials_per_class)
            .build();
        let serial = CampaignExecutor::serial().run(&plan, synthetic_runner);
        let chunked = CampaignExecutor::new(workers)
            .with_chunk_size(chunk)
            .run(&plan, synthetic_runner);
        prop_assert_eq!(&serial, &chunked, "chunk {} diverged", chunk);
        prop_assert_eq!(
            serde_json::to_string_pretty(&serial).unwrap(),
            serde_json::to_string_pretty(&chunked).unwrap()
        );
    }
}

/// The pre-wheel event queue, kept verbatim as the reference model: a
/// `BinaryHeap` of `(time, seq)` keys with lazy cancellation. The timer
/// wheel must produce the identical cancel verdicts, peek times and pop
/// stream for every operation sequence.
struct ReferenceEventQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
}

impl ReferenceEventQueue {
    fn new() -> Self {
        ReferenceEventQueue {
            heap: std::collections::BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: Instant) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse((at.as_micros(), seq)));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        seq < self.next_seq && self.cancelled.insert(seq)
    }

    fn peek_time(&mut self) -> Option<Instant> {
        while let Some(&std::cmp::Reverse((at, seq))) = self.heap.peek() {
            if self.cancelled.remove(&seq) {
                self.heap.pop();
            } else {
                return Some(Instant::from_micros(at));
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Instant, u64)> {
        while let Some(std::cmp::Reverse((at, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            return Some((Instant::from_micros(at), seq));
        }
        None
    }
}

proptest! {
    /// The hierarchical timer wheel is observationally equivalent to the
    /// `BinaryHeap` it replaced: identical cancel verdicts (including
    /// double-cancel and cancel-after-fire), identical peek times, and an
    /// identical `(time, FIFO)` pop stream — over arbitrary interleavings
    /// of schedule/pop/cancel with heavy same-instant collisions, events
    /// beyond the top wheel level, and events behind the cursor.
    #[test]
    fn timer_wheel_matches_binary_heap_reference(
        ops in prop::collection::vec(
            (0u8..8, 0u64..(1u64 << 27), any::<u32>()),
            1..300,
        ),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        let mut issued = Vec::new();
        for &(op, t, pick) in &ops {
            match op {
                // Schedule: half the draws collapse into a small range so
                // same-instant FIFO and cascade co-location are stressed;
                // the other half reach past the top wheel level.
                0..=4 => {
                    let at = Instant::from_micros(if t & 1 == 0 { t >> 14 } else { t });
                    let id = wheel.schedule(at, reference.next_seq);
                    let seq = reference.schedule(at);
                    prop_assert_eq!(id.raw(), seq, "seq allocation diverged");
                    issued.push(id);
                }
                5..=6 => {
                    prop_assert_eq!(wheel.peek_time(), reference.peek_time());
                    let wheel_pop = wheel.pop();
                    let reference_pop = reference.pop();
                    prop_assert_eq!(wheel_pop, reference_pop, "pop stream diverged");
                }
                _ => {
                    if let Some(&id) = issued.get(pick as usize % issued.len().max(1)) {
                        prop_assert_eq!(
                            wheel.cancel(id),
                            reference.cancel(id.raw()),
                            "cancel verdict diverged for {:?}", id
                        );
                    }
                }
            }
        }
        // Drain both completely: the tails must match too.
        loop {
            prop_assert_eq!(wheel.peek_time(), reference.peek_time());
            let wheel_pop = wheel.pop();
            let reference_pop = reference.pop();
            prop_assert_eq!(wheel_pop, reference_pop, "drain diverged");
            if wheel_pop.is_none() {
                break;
            }
        }
    }
}

/// A randomized per-activation effect, executable through either task-body
/// style (see [`apply_effect`]).
#[derive(Clone, Debug)]
enum EffectSpec {
    /// Bump this task's world counter and log `(time, task, value)`.
    Bump(u64),
    /// Record a trace event through the effect context.
    TraceMark,
    /// Request `ActivateTask` on another task.
    Activate(u32),
}

/// Shared world for the arena-vs-boxed equivalence runs: per-task counters,
/// a cost meter charged by every effect, and an ordered observation log.
#[derive(Default)]
struct EquivWorld {
    counters: Vec<u64>,
    meter: CostMeter,
    log: Vec<(u64, u32, u64)>,
}

/// The single source of truth for what an effect does — both body styles
/// call this, so any observable divergence is a dispatch-path bug, not a
/// spec mismatch.
fn apply_effect(
    task: u32,
    spec: &EffectSpec,
    n_tasks: u32,
    world: &mut EquivWorld,
    ctx: &mut easis::osek::plan::EffectCtx<'_, EquivWorld>,
) {
    use easis::osek::task::TaskId;
    world.meter.charge(7);
    match spec {
        EffectSpec::Bump(k) => {
            world.counters[task as usize] += k;
            world.log.push((ctx.now().as_micros(), task, world.counters[task as usize]));
        }
        EffectSpec::TraceMark => {
            ctx.trace("equiv", "mark", format!("t{task}"));
        }
        EffectSpec::Activate(t) => {
            // Direct synchronous service call on the kernel core (the
            // post-redesign style); activating an already-saturated task
            // is spec'd as a lost activation, so errors are ignored.
            let _ = ctx.activate_task(TaskId(t % n_tasks), world);
        }
    }
}

/// Arena-native body: plans `Compute` + `EffectRef` tokens into the
/// kernel-owned buffer; the kernel dispatches the tokens back into
/// `run_effect` on this same (state-retaining) value. Allocation-free per
/// activation — the production style.
struct ArenaSpecBody {
    task: u32,
    n_tasks: u32,
    steps: Vec<(u64, EffectSpec)>,
}

impl easis::osek::plan::TaskBody<EquivWorld> for ArenaSpecBody {
    fn plan_into(
        &mut self,
        _now: Instant,
        _world: &EquivWorld,
        out: &mut easis::osek::plan::Plan<EquivWorld>,
    ) {
        for (token, (cost, _)) in self.steps.iter().enumerate() {
            out.push_compute(Duration::from_micros(*cost));
            out.push_effect_ref(token as u32);
        }
    }

    fn run_effect(
        &mut self,
        token: u32,
        world: &mut EquivWorld,
        ctx: &mut easis::osek::plan::EffectCtx<'_, EquivWorld>,
    ) {
        let spec = self.steps[token as usize].1.clone();
        apply_effect(self.task, &spec, self.n_tasks, world, ctx);
    }

    fn name(&self) -> &str {
        "arena-spec"
    }
}

/// One randomized task: unique priority, cyclic activation period, and a
/// short step list of `(compute µs, effect)` pairs.
#[derive(Clone, Debug)]
struct EquivTaskSpec {
    priority_bit: u8,
    period_ms: u64,
    steps: Vec<(u64, EffectSpec)>,
}

/// Builds an OS running the given task specs with either arena-native
/// bodies (`arena = true`) or the pre-arena reference style (`false`): a
/// boxed closure returning a freshly allocated `Plan` whose effects are
/// per-activation boxed closures — exactly the allocation pattern the
/// `PlanArena` redesign replaced.
fn build_equiv_os(
    specs: &[EquivTaskSpec],
    arena: bool,
) -> easis::osek::kernel::Os<EquivWorld> {
    use easis::osek::alarm::AlarmAction;
    use easis::osek::kernel::Os;
    use easis::osek::plan::Plan;
    use easis::osek::task::{Priority, TaskConfig};
    let n_tasks = specs.len() as u32;
    let mut os: Os<EquivWorld> = Os::new();
    for (idx, spec) in specs.iter().enumerate() {
        // Unique priorities: interleaving is then fully determined by the
        // spec, not by same-priority FIFO accidents of insertion order.
        let priority = Priority((idx as u8 + 1) * 2 + (spec.priority_bit & 1));
        let config = TaskConfig::new(format!("t{idx}"), priority).autostart();
        let id = if arena {
            os.add_task(
                config,
                ArenaSpecBody {
                    task: idx as u32,
                    n_tasks,
                    steps: spec.steps.clone(),
                },
            )
        } else {
            let steps = spec.steps.clone();
            let task = idx as u32;
            os.add_task(config, move |_now: Instant, _w: &EquivWorld| {
                let mut plan = Plan::new();
                for (cost, effect) in &steps {
                    plan = plan.compute(Duration::from_micros(*cost));
                    let effect = effect.clone();
                    plan = plan.effect(move |w, ctx| apply_effect(task, &effect, n_tasks, w, ctx));
                }
                plan
            })
        };
        os.add_alarm(format!("a{idx}"), AlarmAction::ActivateTask(id));
    }
    os
}

/// Starts `os` on a fresh world, arms every cyclic alarm and runs to the
/// horizon; returns the world for observation.
fn run_equiv_os(
    os: &mut easis::osek::kernel::Os<EquivWorld>,
    specs: &[EquivTaskSpec],
    horizon: Instant,
) -> EquivWorld {
    use easis::osek::alarm::AlarmId;
    let mut world = EquivWorld {
        counters: vec![0; specs.len()],
        ..EquivWorld::default()
    };
    os.start(&mut world);
    for (idx, spec) in specs.iter().enumerate() {
        let period = Duration::from_millis(spec.period_ms);
        os.set_rel_alarm(AlarmId(idx as u32), period, Some(period))
            .expect("alarm arms on a fresh/reset OS");
    }
    os.run_until(horizon, &mut world);
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena-backed task bodies are observationally equivalent to the
    /// boxed-closure reference style they replaced: over randomized task
    /// sets (priorities, periods, compute costs, effect mixes) the kernel
    /// trace, the world counters/log and the `CostMeter` charges are
    /// bit-identical — and stay so when the arena OS is `reset()` and the
    /// campaign is replayed on the retained (capacity-warm) buffers.
    #[test]
    fn arena_bodies_match_boxed_closure_reference(
        raw_tasks in prop::collection::vec(
            (
                any::<u8>(),                                   // priority bit
                1u64..8,                                       // period ms
                prop::collection::vec(
                    (1u64..300, 0u8..3, any::<u32>()),         // (cost µs, kind, param)
                    0..5,
                ),
            ),
            1..5,
        ),
        horizon_ms in 10u64..50,
    ) {
        let specs: Vec<EquivTaskSpec> = raw_tasks
            .iter()
            .map(|(bit, period, raw_steps)| EquivTaskSpec {
                priority_bit: *bit,
                period_ms: *period,
                steps: raw_steps
                    .iter()
                    .map(|&(cost, kind, param)| {
                        let effect = match kind {
                            0 => EffectSpec::Bump(u64::from(param % 9) + 1),
                            1 => EffectSpec::TraceMark,
                            _ => EffectSpec::Activate(param),
                        };
                        (cost, effect)
                    })
                    .collect(),
            })
            .collect();
        let horizon = Instant::from_millis(horizon_ms);

        let mut reference_os = build_equiv_os(&specs, false);
        let reference_world = run_equiv_os(&mut reference_os, &specs, horizon);
        let mut arena_os = build_equiv_os(&specs, true);
        let arena_world = run_equiv_os(&mut arena_os, &specs, horizon);

        prop_assert_eq!(
            arena_os.trace().events(),
            reference_os.trace().events(),
            "kernel + effect trace diverged"
        );
        prop_assert_eq!(&arena_world.counters, &reference_world.counters);
        prop_assert_eq!(&arena_world.log, &reference_world.log, "effect order diverged");
        prop_assert_eq!(&arena_world.meter, &reference_world.meter, "cost charges diverged");

        // Campaign replay: reset the arena OS (slots keep their capacity)
        // and run the identical scenario again — still bit-identical.
        arena_os.reset();
        let replay_world = run_equiv_os(&mut arena_os, &specs, horizon);
        prop_assert_eq!(
            arena_os.trace().events(),
            reference_os.trace().events(),
            "trace diverged after arena reset replay"
        );
        prop_assert_eq!(&replay_world.counters, &reference_world.counters);
        prop_assert_eq!(&replay_world.log, &reference_world.log);
        prop_assert_eq!(&replay_world.meter, &reference_world.meter);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// World pooling is invisible: a trial on a pooled node — built from a
    /// campaign blueprint, dirtied by a different trial, then `reset()` —
    /// produces an outcome byte-identical to the same trial on a freshly
    /// built node. Few cases: every case builds full central nodes and
    /// simulates several hundred milliseconds.
    #[test]
    fn pooled_reset_trial_equals_fresh_build_trial(
        seed in any::<u64>(),
        test_pick in any::<u32>(),
        dirty_pick in any::<u32>(),
    ) {
        use easis::validator::node::NodeBlueprint;
        use easis::validator::scenario::{campaign_node_config, run_trial, run_trial_pooled};
        let horizon = Instant::from_millis(700);
        let plan = CampaignBuilder::new(seed, (0..9).map(RunnableId).collect())
            .loop_targets(vec![RunnableId(4), RunnableId(7)])
            .trials_per_class(1)
            .window(Instant::from_millis(200), Duration::from_millis(200))
            .with_horizon(horizon)
            .build();
        let trials = plan.trials();
        let spec = &trials[test_pick as usize % trials.len()];
        let dirty = &trials[dirty_pick as usize % trials.len()];
        let fresh = run_trial(spec, horizon);
        let blueprint = NodeBlueprint::compile(campaign_node_config());
        // Dirty the pooled world with an unrelated trial first, so the
        // comparison exercises reset-from-a-faulted state, not first-use.
        let _ = run_trial_pooled(&blueprint, dirty, horizon);
        let pooled = run_trial_pooled(&blueprint, spec, horizon);
        prop_assert_eq!(&fresh, &pooled, "pooled reset diverged from fresh build");
        prop_assert_eq!(
            serde_json::to_string_pretty(&fresh).unwrap(),
            serde_json::to_string_pretty(&pooled).unwrap(),
            "JSON bytes diverged"
        );
    }

    /// Golden-run prefix checkpointing is invisible: a random campaign run
    /// through the snapshot-forking engine (`run_plan` — golden prefix
    /// simulated once, every trial restored from a fork-point
    /// `NodeSnapshot`, behavior-identical tails collapsed) produces stats
    /// byte-identical to per-trial fresh builds and to the pooled
    /// per-trial engine, at any worker count. Few cases: every case
    /// simulates a whole (small) campaign three times over.
    #[test]
    fn forked_snapshot_replay_equals_fresh_and_pooled_runs(
        seed in any::<u64>(),
        trials_per_class in 1usize..3,
        workers in 1usize..=4,
    ) {
        use easis::validator::scenario::{run_plan, run_plan_pooled, run_trial};
        let horizon = Instant::from_millis(700);
        let plan = CampaignBuilder::new(seed, (0..9).map(RunnableId).collect())
            .loop_targets(vec![RunnableId(4), RunnableId(7)])
            .trials_per_class(trials_per_class)
            .window(Instant::from_millis(200), Duration::from_millis(200))
            .with_horizon(horizon)
            .build();
        let fresh = CampaignExecutor::serial().run(&plan, |spec| run_trial(spec, horizon));
        let executor = CampaignExecutor::new(workers);
        let forked = run_plan(&plan, horizon, &executor);
        let pooled = run_plan_pooled(&plan, horizon, &executor);
        prop_assert_eq!(&fresh, &forked, "forked diverged from fresh at {} workers", workers);
        prop_assert_eq!(&fresh, &pooled, "pooled diverged from fresh");
        prop_assert_eq!(
            serde_json::to_string_pretty(&fresh).unwrap(),
            serde_json::to_string_pretty(&forked).unwrap(),
            "JSON bytes diverged"
        );
    }

    /// Delta and full restore paths are interchangeable: the forked
    /// engine's campaign report is byte-identical whether its restores
    /// ride the delta path (multi-trial chunks — the worker's slot
    /// captures at one fork epoch, restores, advances to the next fork
    /// and captures again, so restores interleave across epochs) or
    /// degrade to the exact full path (chunk size 1 — every trial
    /// `reset()`s the node, severing the snapshot lineage, and shared
    /// prefix-cache checkpoints arrive with alien lineage) — and both
    /// equal the fresh per-trial reference, over randomized plans, fork
    /// windows and worker counts. Few cases: every case simulates three
    /// whole campaigns.
    #[test]
    fn delta_and_full_restore_paths_produce_identical_reports(
        seed in any::<u64>(),
        window_from_ms in 150u64..400,
        window_len_ms in 50u64..300,
        workers in 1usize..=4,
        chunk in 2usize..8,
    ) {
        use easis::validator::scenario::{run_plan, run_trial};
        let horizon = Instant::from_millis(700);
        let plan = CampaignBuilder::new(seed, (0..9).map(RunnableId).collect())
            .loop_targets(vec![RunnableId(4), RunnableId(7)])
            .trials_per_class(2)
            .window(
                Instant::from_millis(window_from_ms),
                Duration::from_millis(window_len_ms),
            )
            .with_horizon(horizon)
            .build();
        let fresh = CampaignExecutor::serial().run(&plan, |spec| run_trial(spec, horizon));
        let delta = run_plan(
            &plan,
            horizon,
            &CampaignExecutor::new(workers).with_chunk_size(chunk),
        );
        let full = run_plan(
            &plan,
            horizon,
            &CampaignExecutor::new(workers).with_chunk_size(1),
        );
        prop_assert_eq!(&fresh, &delta, "delta-restore run diverged at chunk {}", chunk);
        prop_assert_eq!(&fresh, &full, "full-restore run diverged at {} workers", workers);
        prop_assert_eq!(
            serde_json::to_string_pretty(&fresh).unwrap(),
            serde_json::to_string_pretty(&delta).unwrap(),
            "JSON bytes diverged on the delta path"
        );
        prop_assert_eq!(
            serde_json::to_string_pretty(&fresh).unwrap(),
            serde_json::to_string_pretty(&full).unwrap(),
            "JSON bytes diverged on the full path"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hyperperiod macro-stepping is invisible: driving a random campaign
    /// trial through the node's public API with fast-forwarding enabled
    /// ends in a state bit-identical to the same trial simulated purely
    /// event-by-event. The random window start/length and horizon move the
    /// certification points, the k-jump spans and the sub-hyperperiod
    /// residues around, so the cases also exercise mid-span fallbacks
    /// (arming transients, DTC age-out crossings) — the engine must land
    /// on the exact event-level state every time. Few cases: every case
    /// simulates two full trials.
    #[test]
    fn macro_stepped_trial_equals_event_level_simulation(
        seed in any::<u64>(),
        window_from_ms in 150u64..500,
        window_len_ms in 20u64..300,
        horizon_ms in 800u64..1500,
        pick in any::<u32>(),
    ) {
        use easis::injection::injector::Injector;
        use easis::validator::scenario::campaign_node_config;
        use easis::validator::CentralNode;
        let horizon = Instant::from_millis(horizon_ms);
        let plan = CampaignBuilder::new(seed, (0..9).map(RunnableId).collect())
            .loop_targets(vec![RunnableId(4), RunnableId(7)])
            .trials_per_class(1)
            .window(
                Instant::from_millis(window_from_ms),
                Duration::from_millis(window_len_ms),
            )
            .with_horizon(horizon)
            .build();
        let trials = plan.trials();
        let spec = &trials[pick as usize % trials.len()];
        let run = |ffwd: bool| {
            let mut node = CentralNode::build(campaign_node_config());
            node.set_fastforward(Some(ffwd));
            node.start();
            // Injection-free prefix: eligible for macro-stepping.
            node.run_span(spec.injection.from);
            // Armed window: the engine stands down, the injector ticks
            // at millisecond granularity like the experiments do.
            node.set_injection_armed(true);
            let mut injector = Injector::new([spec.injection.clone()]);
            node.run_until(spec.injection.to, &mut injector);
            node.set_injection_armed(false);
            // Quiescent tail: eligible again (modulo DTC aging et al.).
            node.run_span(horizon);
            node
        };
        let mut fast = run(true);
        let mut plain = run(false);
        prop_assert_eq!(fast.os.now(), plain.os.now());
        // The engine saw the spans even when it chose not to jump.
        prop_assert!(fast.ffwd_stats().span > Duration::ZERO);
        prop_assert_eq!(plain.ffwd_stats().fastforwarded, Duration::ZERO);
        let a = fast.snapshot();
        let b = plain.snapshot();
        prop_assert!(
            a.content_eq(&b),
            "macro-stepped end state diverged from event-level for {:?}",
            spec.injection
        );
        prop_assert_eq!(
            a.os_canonical(),
            b.os_canonical(),
            "canonical kernel state diverged for {:?}",
            spec.injection
        );
    }
}

/// Forced mid-span fallback, case 1 — DTC aging and age-out: this exact
/// slowdown (lifted from the campaign plan) leaves a Pending DTC record
/// deep in its aging drain at disarm, so the tail forces the whole
/// fallback machinery in sequence: certify with a non-zero per-hyperperiod
/// DTC-aging delta, jump in spans capped at the age-out horizon, cross the
/// age-out event itself at event level (a fallback), re-certify the new
/// steady state and jump again — and still land bit-identical to the
/// event-level run.
#[test]
fn macro_stepping_falls_back_and_recovers_across_dtc_age_out() {
    use easis::injection::injector::{ErrorClass, Injection, Injector};
    use easis::validator::scenario::campaign_node_config;
    use easis::validator::CentralNode;
    let horizon = Instant::from_millis(1_500);
    let injection = Injection::new(
        ErrorClass::ExecutionSlowdown {
            runnable: RunnableId(3),
            scale_ppm: 223_000_000,
        },
        Instant::from_micros(305_337),
        Instant::from_micros(355_337),
    );
    let run = |ffwd: bool| {
        let mut node = CentralNode::build(campaign_node_config());
        node.set_fastforward(Some(ffwd));
        node.start();
        node.run_span(injection.from);
        node.set_injection_armed(true);
        let mut injector = Injector::new([injection.clone()]);
        node.run_until(injection.to, &mut injector);
        node.set_injection_armed(false);
        // The scenario's whole point: a Pending DTC is still aging when
        // the quiescent tail begins.
        assert!(
            node.world.fmf.pending_cycles_to_age_out().is_some(),
            "scenario drifted: no Pending DTC left at disarm"
        );
        node.run_span(horizon);
        node
    };
    let mut fast = run(true);
    let mut plain = run(false);

    let stats = fast.ffwd_stats();
    assert!(
        stats.fastforwarded >= Duration::from_millis(800),
        "the tail should mostly fast-forward despite the drain: {stats:?}"
    );
    assert!(
        stats.fallbacks >= 2,
        "the age-out crossing must fall back to event level: {stats:?}"
    );
    assert!(
        stats.certifications >= 3,
        "the engine must re-certify after the age-out event: {stats:?}"
    );

    assert_eq!(fast.os.now(), plain.os.now());
    let a = fast.snapshot();
    let b = plain.snapshot();
    assert!(
        a.content_eq(&b),
        "macro-stepped end state diverged from event-level across the age-out"
    );
    assert_eq!(a.os_canonical(), b.os_canonical());
}

/// Forced mid-span fallback, case 2 — sampling-phase collision: the window
/// ends exactly on a 10 ms task-period boundary, so every h-spaced
/// certification sample initially lands mid-dispatch (a task running,
/// ready bits set) and is rejected. The backoff's one-millisecond phase
/// nudge must walk the sampler off the boundary, after which the tail
/// certifies and fast-forwards — bit-identical to the event-level run.
#[test]
fn macro_stepping_rephases_off_task_period_boundaries() {
    use easis::injection::injector::{ErrorClass, Injection, Injector};
    use easis::validator::scenario::campaign_node_config;
    use easis::validator::CentralNode;
    let horizon = Instant::from_millis(1_500);
    let injection = Injection::new(
        ErrorClass::ExecutionSlowdown {
            runnable: RunnableId(4),
            scale_ppm: 4_000_000,
        },
        Instant::from_millis(300),
        Instant::from_millis(450),
    );
    let run = |ffwd: bool| {
        let mut node = CentralNode::build(campaign_node_config());
        node.set_fastforward(Some(ffwd));
        node.start();
        node.run_span(injection.from);
        node.set_injection_armed(true);
        let mut injector = Injector::new([injection.clone()]);
        node.run_until(injection.to, &mut injector);
        node.set_injection_armed(false);
        node.run_span(horizon);
        node
    };
    let mut fast = run(true);
    let mut plain = run(false);

    let stats = fast.ffwd_stats();
    assert!(
        stats.fallbacks >= 1,
        "the boundary-phased samples must be rejected at least once: {stats:?}"
    );
    assert!(
        stats.certifications >= 2,
        "the nudged sampler must certify the tail after re-phasing: {stats:?}"
    );
    assert!(
        stats.fastforwarded >= Duration::from_millis(500),
        "prefix and re-phased tail should both fast-forward: {stats:?}"
    );

    assert_eq!(fast.os.now(), plain.os.now());
    let a = fast.snapshot();
    let b = plain.snapshot();
    assert!(
        a.content_eq(&b),
        "macro-stepped end state diverged from event-level after re-phasing"
    );
    assert_eq!(a.os_canonical(), b.os_canonical());
}

//! Property-based tests (proptest) on the core invariants of the
//! monitoring units and substrates, exercised through the public API.

use easis::baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
use easis::injection::campaign::{CampaignBuilder, TrialSpec};
use easis::injection::executor::CampaignExecutor;
use easis::injection::stats::{DetectorId, TrialOutcome};
use easis::rte::runnable::RunnableId;
use easis::sim::cpu::CostMeter;
use easis::sim::event::EventQueue;
use easis::sim::rng::SimRng;
use easis::sim::time::{Duration, Instant};
use easis::watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis::watchdog::pfc::{FlowTable, FlowVerdict, ProgramFlowChecker};
use easis::watchdog::SoftwareWatchdog;
use proptest::prelude::*;

/// A cheap trial runner whose outcome is a pure function of the spec —
/// stands in for the (expensive) full-node scenario so the executor
/// property can sweep many plans and worker counts.
fn synthetic_runner(spec: &TrialSpec) -> TrialOutcome {
    let mut rng = SimRng::seed_from(spec.seed);
    let mut outcome = TrialOutcome::new(spec.injection.class.tag());
    for detector in DetectorId::ALL {
        if rng.next_below(100) < 55 {
            outcome.record(detector, Duration::from_micros(rng.next_in(50, 80_000)));
        }
    }
    outcome
}

proptest! {
    /// The campaign executor is deterministic: for any plan and any
    /// worker count, the aggregated stats — and their JSON bytes — equal
    /// the serial run's exactly.
    #[test]
    fn campaign_executor_is_deterministic_for_any_plan_and_worker_count(
        seed in any::<u64>(),
        n_targets in 1u32..6,
        trials_per_class in 1usize..5,
        workers in 1usize..=8,
    ) {
        let targets: Vec<RunnableId> = (0..n_targets).map(RunnableId).collect();
        let plan = CampaignBuilder::new(seed, targets)
            .trials_per_class(trials_per_class)
            .build();
        let serial = CampaignExecutor::serial().run(&plan, synthetic_runner);
        let parallel = CampaignExecutor::new(workers).run(&plan, synthetic_runner);
        prop_assert_eq!(&serial, &parallel, "stats diverged at {} workers", workers);
        prop_assert_eq!(
            serde_json::to_string_pretty(&serial).unwrap(),
            serde_json::to_string_pretty(&parallel).unwrap(),
            "JSON bytes diverged at {} workers", workers
        );
    }

    /// The event queue is a stable priority queue: pops are sorted by time
    /// and FIFO within a timestamp.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(t), i);
        }
        let mut last: Option<(Instant, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated within a timestamp");
                }
            }
            last = Some((at, idx));
        }
    }

    /// Heartbeat monitoring never reports an aliveness error while at
    /// least `min` heartbeats arrive per monitoring period, and always
    /// reports within one period once heartbeats stop entirely.
    #[test]
    fn aliveness_detection_is_sound_and_complete(
        min in 1u32..4,
        cycles in 1u32..4,
        healthy_periods in 1u64..10,
    ) {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(min, cycles))
            .build();
        let mut wd = SoftwareWatchdog::new(config);
        let mut now = Instant::ZERO;
        // Healthy phase: exactly `min` beats per cycle (≥ min per window).
        for _ in 0..healthy_periods * cycles as u64 {
            for _ in 0..min {
                wd.heartbeat(RunnableId(0), now);
            }
            now += Duration::from_millis(10);
            let report = wd.run_cycle(now);
            prop_assert!(report.faults.is_empty(), "false positive: {report:?}");
        }
        // Silent phase: the error must come within `cycles` checks.
        let mut detected = false;
        for _ in 0..cycles {
            now += Duration::from_millis(10);
            if !wd.run_cycle(now).faults.is_empty() {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "missed detection after {cycles} silent cycles");
    }

    /// Arrival-rate monitoring is exact: `max` beats per window pass,
    /// `max + k` (k ≥ 1) beats are flagged at the window close.
    #[test]
    fn arrival_rate_threshold_is_exact(max in 0u32..5, excess in 1u32..4) {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).arrive_at_most(max, 1))
            .build();
        let mut wd = SoftwareWatchdog::new(config);
        for _ in 0..max {
            wd.heartbeat(RunnableId(0), Instant::from_millis(1));
        }
        prop_assert!(wd.run_cycle(Instant::from_millis(10)).faults.is_empty());
        for _ in 0..max + excess {
            wd.heartbeat(RunnableId(0), Instant::from_millis(11));
        }
        let report = wd.run_cycle(Instant::from_millis(20));
        prop_assert_eq!(report.faults.len(), 1);
    }

    /// Walking any legal path of a flow table never raises a violation;
    /// each counter-table jump raises exactly one.
    #[test]
    fn flow_table_accepts_exactly_its_language(
        chain_len in 2u32..8,
        steps in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        // Table: cycle 0→1→…→n-1→0. `true` = legal next, `false` = skip one
        // (illegal).
        let mut table = FlowTable::new();
        for i in 0..chain_len {
            table.allow(RunnableId(i), RunnableId((i + 1) % chain_len));
        }
        let mut pfc = ProgramFlowChecker::new(table);
        let mut pos = 0u32;
        prop_assert_eq!(pfc.observe(RunnableId(0)), FlowVerdict::Ok);
        let mut expected_errors = 0u64;
        for &legal in &steps {
            let next = if legal {
                (pos + 1) % chain_len
            } else {
                (pos + 2) % chain_len // skips one node: illegal for len > 2
            };
            // For chain_len == 2 the "skip" lands back on `pos` itself,
            // which is equally illegal (no self loops in the table).
            let verdict = pfc.observe(RunnableId(next));
            if legal {
                prop_assert_eq!(verdict, FlowVerdict::Ok);
            } else {
                expected_errors += 1;
                let violated = matches!(verdict, FlowVerdict::Violation { .. });
                prop_assert!(violated);
            }
            pos = next;
        }
        prop_assert_eq!(pfc.errors_detected(), expected_errors);
    }

    /// CFCSS never flags a legal random walk and always flags a random
    /// illegal jump on a chain graph.
    #[test]
    fn cfcss_is_sound_on_legal_walks(
        blocks in 3usize..32,
        walk_len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), seed);
        let mut monitor = CfcssMonitor::new(program, BlockId(0));
        let mut costs = CostMeter::new();
        for i in 1..=walk_len {
            let failed = monitor.enter(BlockId((i % blocks) as u32), &mut costs);
            prop_assert!(!failed, "false positive at step {i}");
        }
        prop_assert_eq!(monitor.errors(), 0);
    }

    #[test]
    fn cfcss_flags_illegal_jumps(
        blocks in 4usize..32,
        jump in 2usize..30,
        seed in any::<u64>(),
    ) {
        let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), seed);
        let mut monitor = CfcssMonitor::new(program, BlockId(0));
        let mut costs = CostMeter::new();
        prop_assert!(!monitor.enter(BlockId(1), &mut costs));
        // Jump somewhere that is not the successor of block 1.
        let target = 1 + 1 + (jump % (blocks - 2).max(1));
        prop_assume!(target % blocks != 2 && target % blocks != 1);
        let failed = monitor.enter(BlockId((target % blocks) as u32), &mut costs);
        prop_assert!(failed, "illegal jump 1→{target} undetected");
    }

    /// TSI threshold semantics: exactly at the threshold the task flips,
    /// never before.
    #[test]
    fn tsi_threshold_is_exact(threshold in 1u32..10) {
        use easis::osek::task::TaskId;
        use easis::rte::mapping::SystemMapping;
        use easis::watchdog::report::{DetectedFault, FaultKind};
        use easis::watchdog::tsi::TaskStateIndication;
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_runnable(RunnableId(0), TaskId(0));
        let mut tsi = TaskStateIndication::new(mapping, threshold, u32::MAX);
        for i in 1..=threshold {
            let changes = tsi.record(DetectedFault {
                at: Instant::from_millis(i as u64),
                runnable: RunnableId(0),
                kind: FaultKind::Aliveness,
            });
            if i < threshold {
                prop_assert!(changes.is_empty(), "flipped early at {i}");
            } else {
                prop_assert!(!changes.is_empty(), "did not flip at {threshold}");
            }
        }
    }
}

//! Look-up-table PFC vs embedded-signature CFC, side by side.
//!
//! The paper rejects signature-based control-flow checking (Oh et al.,
//! CFCSS) because of "high performance overhead and low flexibility". This
//! example runs the same runnable sequence through both checkers and
//! prints the cycle cost per monitored unit: CFCSS instruments every basic
//! block, the Software Watchdog only runnable boundaries.
//!
//! Run with: `cargo run --release --example watchdog_vs_signatures`

use easis::baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
use easis::rte::runnable::RunnableId;
use easis::sim::cpu::{CostMeter, CpuModel};
use easis::sim::time::{Duration, Instant};
use easis::watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis::watchdog::SoftwareWatchdog;

/// Basic blocks per runnable — a small control routine easily has dozens.
const BLOCKS_PER_RUNNABLE: usize = 24;
const RUNNABLES: u32 = 3;
const PERIODS: u64 = 10_000;

fn main() {
    // --- Software Watchdog: one heartbeat + look-up per runnable. -------
    let mut builder = WatchdogConfig::builder(Duration::from_millis(10))
        .allow_entry(RunnableId(0));
    for i in 0..RUNNABLES {
        builder = builder
            .monitor(RunnableHypothesis::new(RunnableId(i)).alive_at_least(1, 1))
            .allow_flow(RunnableId(i), RunnableId((i + 1) % RUNNABLES));
    }
    let mut wd = SoftwareWatchdog::new(builder.build());
    for period in 0..PERIODS {
        let now = Instant::from_millis(10 * (period + 1));
        for i in 0..RUNNABLES {
            wd.heartbeat(RunnableId(i), now);
        }
        wd.run_cycle(now);
    }
    let wd_cycles = wd.costs().total_cycles();

    // --- CFCSS: a signature check at every basic block. -----------------
    let blocks = BLOCKS_PER_RUNNABLE * RUNNABLES as usize;
    let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), 7);
    let mut monitor = CfcssMonitor::new(program, BlockId(0));
    let mut costs = CostMeter::new();
    for _ in 0..PERIODS {
        for b in 1..=blocks {
            monitor.enter(BlockId((b % blocks) as u32), &mut costs);
        }
    }
    let cfcss_cycles = costs.total_cycles();

    println!("monitored execution: {PERIODS} periods × {RUNNABLES} runnables × {BLOCKS_PER_RUNNABLE} blocks");
    println!();
    println!("{:<28} {:>14} {:>12} {:>12}", "monitor", "total cycles", "AutoBox", "S12XF");
    for (name, cycles) in [
        ("Software Watchdog (table)", wd_cycles),
        ("CFCSS (signatures)", cfcss_cycles),
    ] {
        println!(
            "{:<28} {:>14} {:>10}ms {:>10}ms",
            name,
            cycles,
            CpuModel::AUTOBOX.cycles_to_time(cycles).as_millis(),
            CpuModel::S12XF.cycles_to_time(cycles).as_millis(),
        );
    }
    let factor = cfcss_cycles as f64 / wd_cycles as f64;
    println!();
    println!("CFCSS costs {factor:.1}× the cycles of the look-up-table watchdog");
    assert!(factor > 2.0, "the paper's overhead claim should reproduce");
    assert_eq!(monitor.errors(), 0, "legal path must be clean");
    assert_eq!(wd.pfc_errors_total(), 0);
}

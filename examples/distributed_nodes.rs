//! Two ECUs, two domains, one dependability service each.
//!
//! SafeSpeed + steer-by-wire run on a FlexRay-domain node, SafeLane on a
//! CAN-domain node; the gateway bridges them, frame reception is
//! interrupt-driven, and each node has its own Software Watchdog and Fault
//! Management Framework. A fault injected into the lane node is detected,
//! recorded as a DTC with a freeze frame, and stays contained to that ECU.
//!
//! Run with: `cargo run --release --example distributed_nodes`

use easis::injection::{ErrorClass, Injection, Injector};
use easis::sim::time::{Duration, Instant};
use easis::validator::DistributedValidator;

fn main() {
    let mut rig = DistributedValidator::motorway(25.0, 13.9, 7);
    let target = rig.lane_node.runnable("LDW_process");
    let mut lane_injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        Instant::from_millis(3_000),
        Instant::from_millis(3_500),
    )]);
    let mut speed_injector = Injector::none();

    let report = rig.run(Duration::from_secs(30), &mut speed_injector, &mut lane_injector);

    println!("final vehicle speed:     {:6.2} m/s (limit 13.9)", report.final_speed);
    println!("speed node faults:       {}", report.speed_node_faults);
    println!("lane  node faults:       {}", report.lane_node_faults);
    println!("speed node RX IRQs:      {}", report.speed_node_rx_irqs);
    println!("lane  node RX IRQs:      {}", report.lane_node_rx_irqs);

    println!("\nDTC memory of the lane node:");
    for rec in rig.lane_node.world.fmf.dtc().iter() {
        println!(
            "  {}  runnable {} kind {:?} x{} [{}..{}] status {:?}",
            rec.code,
            rec.code.runnable(),
            rec.code.kind(),
            rec.occurrences,
            rec.first_seen,
            rec.last_seen,
            rec.status
        );
        for (name, value) in &rec.freeze_frame.conditions {
            println!("      freeze frame: {name} = {value:.2}");
        }
    }

    assert!(report.lane_node_faults > 0, "lane node must detect the loss");
    assert_eq!(report.speed_node_faults, 0, "speed node must stay clean");
    assert!(!rig.lane_node.world.fmf.dtc().is_empty(), "DTCs must be stored");
}

//! SafeSpeed on the full HIL validator.
//!
//! The paper's headline scenario end-to-end: the driver holds 25 m/s, the
//! externally commanded limit drops to 13.9 m/s at 500 m; the measured
//! speed travels over CAN, through the gateway into the FlexRay domain,
//! the central node's SafeSpeed runnables compute the limiter, and the
//! commands travel back to the actuator node — all while the Software
//! Watchdog supervises every runnable.
//!
//! Run with: `cargo run --release --example safespeed_hil`

use easis::injection::Injector;
use easis::sim::series::SeriesSet;
use easis::sim::time::Duration;
use easis::validator::hil::HilValidator;
use easis::vehicle::driver::DriftEpisode;

fn main() {
    // A distraction episode at t = 30 s drifts the car out of its lane so
    // SafeLane has something to warn about, too.
    let drift = DriftEpisode {
        from_s: 30.0,
        to_s: 34.0,
        steer: 0.02,
    };
    let mut hil = HilValidator::motorway(25.0, 13.9, Some(drift), 42);
    let mut injector = Injector::none();
    let mut series = SeriesSet::new("safespeed_hil");

    let report = hil.run(Duration::from_secs(90), &mut injector, Some(&mut series));

    println!("{}", series.render_table(30));
    println!("final speed:       {:6.2} m/s", report.final_speed);
    println!("commanded limit:   {:6.2} m/s", report.final_limit);
    println!("peak overspeed:    {:6.2} m/s", report.peak_overspeed);
    println!("lane warning:      {}", report.ldw_warned);
    println!("watchdog faults:   {}", report.faults_detected);
    println!("CAN frames:        {}", report.can_frames);
    println!("FlexRay frames:    {}", report.flexray_frames);

    assert!(
        (report.final_speed - report.final_limit).abs() < 2.0,
        "SafeSpeed should settle near the commanded limit"
    );
    assert!(report.ldw_warned, "SafeLane should have warned during the drift");
}

//! Quickstart: build a watchdog-supervised ECU in ~60 lines.
//!
//! One periodic OSEK task hosts two runnables; the Software Watchdog
//! monitors their heartbeats and program flow. Halfway through the run we
//! suppress one runnable's aliveness indication — the watchdog detects the
//! aliveness error at the next cycle check.
//!
//! Run with: `cargo run --example quickstart`

use easis::injection::{ErrorClass, Injection, Injector};
use easis::sim::time::{Duration, Instant};
use easis::validator::{CentralNode, NodeConfig};

fn main() {
    // The validator assembles the paper's SafeSpeed setup: three runnables
    // (GetSensorValue → SAFE_CC_process → Speed_process) on one 10 ms task,
    // supervised by the Software Watchdog.
    let mut node = CentralNode::build(NodeConfig::safespeed_only());
    node.start();

    // Phase 1: healthy operation.
    let mut quiet = Injector::none();
    node.run_until(Instant::from_millis(500), &mut quiet);
    println!("after 500 ms healthy operation:");
    print_counters(&node);
    assert!(node.world.fault_log.is_empty());

    // Phase 2: lose the heartbeat of the control runnable for 200 ms.
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        Instant::from_millis(500),
        Instant::from_millis(700),
    )]);
    node.run_until(Instant::from_millis(1_000), &mut injector);

    println!("\nafter a 200 ms heartbeat loss on SAFE_CC_process:");
    print_counters(&node);
    println!("\ndetected faults (first 5 of {}):", node.world.fault_log.len());
    for fault in node.world.fault_log.iter().take(5) {
        println!("  {fault}");
    }
    println!(
        "\nfault treatments executed (first 5 of {}):",
        node.world.treatments.len()
    );
    for action in node.world.treatments.iter().take(5) {
        println!("  [{}] {} ({})", action.at, action.treatment, action.reason);
    }
    println!("\n{}", node.world.watchdog.supervision_report());
    assert!(!node.world.fault_log.is_empty(), "the loss must be detected");
    let _ = Duration::from_millis(0); // (see DESIGN.md for the full API tour)
}

fn print_counters(node: &CentralNode) {
    for name in ["GetSensorValue", "SAFE_CC_process", "Speed_process"] {
        let c = node.counters_of(name);
        println!(
            "  {name:<16} AC={} CCA={} aliveness_errors={} pfc_errors={} AS={}",
            c.ac, c.cca, c.aliveness_errors, c.program_flow_errors, c.activation
        );
    }
}

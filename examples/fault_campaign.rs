//! A miniature fault-injection campaign.
//!
//! Injects 3 trials of each of the five runnable-level error classes into
//! the full central node (all three ISS applications) and prints the
//! detection-coverage and latency tables across all six monitors. The
//! full-size campaign lives in `cargo run -p easis-bench --bin table_coverage`.
//!
//! Run with: `cargo run --release --example fault_campaign`

use easis::injection::{CampaignBuilder, DetectorId};
use easis::rte::runnable::RunnableId;
use easis::sim::time::{Duration, Instant};
use easis::validator::scenario;

fn main() {
    // The full node registers 9 runnables (steer 0-2, safespeed 3-5,
    // safelane 6-8); the ones with loop terms are SAFE_CC_process (4) and
    // LDW_process (7).
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let plan = CampaignBuilder::new(2024, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(3)
        .window(Instant::from_millis(300), Duration::from_millis(300))
        .with_horizon(Instant::from_millis(1_200))
        .build();

    println!("running {} trials…", plan.len());
    let horizon = Instant::from_millis(1_200);
    let stats = plan.run(|trial| {
        let outcome = scenario::run_trial(trial, horizon);
        let caught = DetectorId::ALL
            .iter()
            .filter(|&&d| outcome.detected_by(d))
            .map(|d| d.label())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "  {:<20} target {:?} → [{}]",
            trial.injection.class.tag(),
            trial.injection.class.target_runnable(),
            caught
        );
        outcome
    });

    println!("\n=== detection coverage ===");
    print!("{}", stats.render_coverage_table());
    println!("\n=== detection latency ===");
    print!("{}", stats.render_latency_table());
}

//! A miniature fault-injection campaign.
//!
//! Injects 3 trials of each of the five runnable-level error classes into
//! the full central node (all three ISS applications) through the parallel
//! [`CampaignExecutor`], then prints the per-trial detections, the
//! detection-coverage and latency tables across all six monitors, and the
//! confidence-interval report. The executor merges outcomes by trial
//! index, so the output is identical for any worker count. The full-size
//! campaign lives in `cargo run -p easis-bench --bin table_coverage`.
//!
//! Run with: `cargo run --release --example fault_campaign`
//!
//! [`CampaignExecutor`]: easis::injection::CampaignExecutor

use easis::injection::{CampaignBuilder, CampaignExecutor, CampaignReport, DetectorId};
use easis::rte::runnable::RunnableId;
use easis::sim::time::{Duration, Instant};
use easis::validator::scenario;

fn main() {
    // The full node registers 9 runnables (steer 0-2, safespeed 3-5,
    // safelane 6-8); the ones with loop terms are SAFE_CC_process (4) and
    // LDW_process (7).
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_200);
    let plan = CampaignBuilder::new(2024, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(3)
        .window(Instant::from_millis(300), Duration::from_millis(300))
        .with_horizon(horizon)
        .build();

    let executor = CampaignExecutor::from_env();
    println!(
        "running {} trials on {} worker(s)…",
        plan.len(),
        executor.workers()
    );
    let stats = scenario::run_plan(&plan, horizon, &executor);

    // Outcomes come back in plan order regardless of worker scheduling,
    // so they zip cleanly with the trial specs.
    for (trial, outcome) in plan.trials().iter().zip(stats.trials()) {
        let caught = DetectorId::ALL
            .iter()
            .filter(|&&d| outcome.detected_by(d))
            .map(|d| d.label())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "  {:<20} target {:?} → [{}]",
            trial.injection.class.tag(),
            trial.injection.class.target_runnable(),
            caught
        );
    }

    println!("\n=== detection coverage ===");
    print!("{}", stats.render_coverage_table());
    println!("\n=== detection latency ===");
    print!("{}", stats.render_latency_table());
    println!("\n=== coverage confidence report ===");
    print!("{}", CampaignReport::from_stats(&stats).render());
}

//! Visualise one hyperperiod of the supervised central node.
//!
//! Runs the full node (steer-by-wire 5 ms, SafeSpeed 10 ms, SafeLane 20 ms,
//! watchdog 10 ms, hardware-watchdog kick 10 ms) for 60 ms and renders the
//! kernel trace as a Gantt chart — the schedule the paper's Figure 3 tool
//! chain would have produced on the AutoBox.
//!
//! Run with: `cargo run --example schedule_trace`

use easis::injection::Injector;
use easis::osek::gantt::{render_gantt, running_intervals};
use easis::sim::time::Instant;
use easis::validator::{CentralNode, NodeConfig};

fn main() {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let mut injector = Injector::none();
    node.run_until(Instant::from_millis(61), &mut injector);

    println!("one hyperperiod (0–60 ms) of the supervised central node:\n");
    print!(
        "{}",
        render_gantt(node.os.trace(), Instant::ZERO, Instant::from_millis(61), 100)
    );

    println!("\nper-task CPU slices:");
    for (task, slices) in running_intervals(node.os.trace()) {
        let busy_us: u64 = slices
            .iter()
            .map(|s| s.to.as_micros() - s.from.as_micros())
            .sum();
        println!("  {task:<22} {:>3} slices, {busy_us:>6} us total", slices.len());
    }
    println!("\nCPU utilisation: {:.1}%", node.os.utilization() * 100.0);
    assert!(node.world.fault_log.is_empty());
}

//! # easis-apps — the ISS applications of the EASIS validator
//!
//! The Integrated Safety System applications the paper's validator hosts
//! (§4.1/§4.3), decomposed into the same runnables:
//!
//! * [`safespeed`] — automatic speed limiting (`GetSensorValue` →
//!   `SAFE_CC_process` → `Speed_process`);
//! * [`safelane`] — lane departure warning;
//! * [`steer`] — the steer-by-wire command path;
//! * [`lightctl`] — the light-control node's function;
//! * [`control`] — the pure control laws inside the runnables;
//! * [`bundle`] — the [`bundle::AppBundle`] glue consumed by the validator.
//!
//! # Examples
//!
//! ```
//! use easis_apps::safespeed;
//! use easis_rte::runnable::RunnableRegistry;
//! use easis_rte::world::BasicEcuWorld;
//!
//! let mut world = BasicEcuWorld::new();
//! let mut registry = RunnableRegistry::new();
//! let bundle = safespeed::build::<BasicEcuWorld>(&mut world.signals, &mut registry);
//! assert_eq!(bundle.app_name, "SafeSpeed");
//! assert_eq!(bundle.runnables.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod control;
pub mod lightctl;
pub mod safelane;
pub mod safespeed;
pub mod steer;

pub use bundle::AppBundle;

//! Steer-by-wire command path.
//!
//! The validator hosts SafeSpeed "with Steer-by-Wire technology" (paper
//! §4.1): there is no mechanical column, so the handwheel angle travels as
//! a signal through the ECU to the steering actuator — the availability of
//! this path is safety-critical, which is why its runnables are prime
//! candidates for watchdog supervision at a short period.

use crate::bundle::AppBundle;
use crate::control::steer_by_wire_shape;
use easis_osek::task::Priority;
use easis_rte::runnable::{RunnableDef, RunnableRegistry};
use easis_rte::signal::SignalDb;
use easis_rte::world::EcuWorld;
use easis_sim::time::Duration;

/// Signal names used by steer-by-wire.
pub mod signals {
    /// Input: handwheel angle \[rad\].
    pub const HANDWHEEL: &str = "handwheel_angle";
    /// Internal: sampled handwheel angle.
    pub const HANDWHEEL_INTERNAL: &str = "sbw.handwheel_internal";
    /// Output: road-wheel steering command \[rad\].
    pub const CMD_STEER: &str = "cmd.steer";
}

/// Road-wheel slew-rate limit \[rad/s\].
pub const MAX_STEER_RATE: f64 = 0.8;

/// Builds the steer-by-wire application (5 ms period, priority 6 — the
/// most time-critical path on the node).
pub fn build<W: EcuWorld + 'static>(
    db: &mut SignalDb,
    registry: &mut RunnableRegistry,
) -> AppBundle<W> {
    let period = Duration::from_millis(5);
    let dt_s = period.as_secs_f64();

    let s_hand = db.declare(signals::HANDWHEEL, 0.0);
    let s_internal = db.declare(signals::HANDWHEEL_INTERNAL, 0.0);
    let s_cmd = db.declare(signals::CMD_STEER, 0.0);

    let read_hw = registry.register("ReadHandwheel", Duration::from_micros(20));
    let shape = registry.register("SbW_process", Duration::from_micros(45));
    let actuate = registry.register("Steer_actuate", Duration::from_micros(20));

    let runnables = vec![
        RunnableDef::new(read_hw, move |w: &mut W, ctx| {
            let now = ctx.now();
            let v = w.signals().read(s_hand);
            w.signals_mut().write(s_internal, v, now);
        }),
        RunnableDef::new(shape, move |w: &mut W, ctx| {
            let now = ctx.now();
            let hand = w.signals().read(s_internal);
            let prev = w.signals().read(s_cmd);
            let cmd = steer_by_wire_shape(hand, prev, MAX_STEER_RATE, dt_s);
            w.signals_mut().write(s_cmd, cmd, now);
        }),
        // The actuate runnable exists to model the transmission cost; the
        // command signal is already final.
        RunnableDef::no_op(actuate),
    ];

    AppBundle {
        app_name: "SteerByWire",
        task_name: "SteerByWireTask",
        period,
        signal_prefix: "sbw.",
        priority: Priority(6),
        runnables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::task::TaskConfig;
    use easis_rte::assembly::SequencedTask;
    use easis_rte::world::BasicEcuWorld;
    use easis_sim::time::Instant;

    #[test]
    fn handwheel_propagates_with_rate_limit() {
        let mut world = BasicEcuWorld::new();
        let mut registry = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut world.signals, &mut registry);
        let mut os = Os::new();
        let body = SequencedTask::fixed(bundle.task_name, bundle.runnables);
        let task = os.add_task(TaskConfig::new(bundle.task_name, bundle.priority), body);
        let alarm = os.add_alarm("sbw_cycle", AlarmAction::ActivateTask(task));
        os.start(&mut world);
        os.set_rel_alarm(alarm, bundle.period, Some(bundle.period)).unwrap();

        let hand = world.signals.id_of(signals::HANDWHEEL).unwrap();
        world.signals.write(hand, 1.5, Instant::ZERO);
        os.run_until(Instant::from_millis(20), &mut world);
        let cmd = world.signals.read(world.signals.id_of(signals::CMD_STEER).unwrap());
        // 4 periods × 0.8 rad/s × 5 ms = 0.016 rad max travel.
        assert!(cmd > 0.0 && cmd <= 0.016 + 1e-9, "cmd {cmd}");
        // Long run converges to 1.5/15 = 0.1.
        os.run_until(Instant::from_millis(2_000), &mut world);
        let cmd = world.signals.read(world.signals.id_of(signals::CMD_STEER).unwrap());
        assert!((cmd - 0.1).abs() < 1e-6, "cmd {cmd}");
    }

    #[test]
    fn bundle_is_fastest_and_highest_priority() {
        let mut db = SignalDb::new();
        let mut reg = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut db, &mut reg);
        assert_eq!(bundle.period, Duration::from_millis(5));
        assert_eq!(bundle.priority, Priority(6));
        assert_eq!(bundle.runnables.len(), 3);
    }
}

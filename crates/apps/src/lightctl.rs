//! Light control.
//!
//! The validator's node list (paper §4.1) includes a "light control node".
//! The application is simple — ambient-light-dependent headlight control
//! with hysteresis plus speed-dependent daytime running lights — but as a
//! body-domain component it broadens the deployment the watchdog
//! supervises beyond the chassis/powertrain functions.

use crate::bundle::AppBundle;
use easis_osek::task::Priority;
use easis_rte::runnable::{RunnableDef, RunnableRegistry};
use easis_rte::signal::SignalDb;
use easis_rte::world::EcuWorld;
use easis_sim::time::Duration;

/// Signal names used by light control.
pub mod signals {
    /// Input: ambient illuminance \[lx\].
    pub const AMBIENT_LUX: &str = "ambient_lux";
    /// Input: vehicle speed (for daytime running lights) \[m/s\].
    pub const SPEED_FOR_LIGHTS: &str = "speed_measured";
    /// Internal: filtered ambient level.
    pub const FILTERED_LUX: &str = "lightctl.filtered_lux";
    /// Internal: current headlight decision (hysteresis state).
    pub const HEADLIGHT_STATE: &str = "lightctl.headlight_state";
    /// Output: low-beam headlights on/off.
    pub const CMD_HEADLIGHTS: &str = "cmd.headlights";
    /// Output: daytime running lights on/off.
    pub const CMD_DRL: &str = "cmd.drl";
}

/// Headlights switch on below this illuminance \[lx\].
pub const LUX_ON: f64 = 400.0;
/// Headlights switch off above this illuminance \[lx\] (hysteresis).
pub const LUX_OFF: f64 = 700.0;

/// Pure decision law: headlight state with hysteresis.
pub fn headlight_decision(filtered_lux: f64, currently_on: bool) -> bool {
    if currently_on {
        filtered_lux < LUX_OFF
    } else {
        filtered_lux < LUX_ON
    }
}

/// Builds the light-control application (50 ms period, priority 2 — the
/// least time-critical function on the node).
pub fn build<W: EcuWorld + 'static>(
    db: &mut SignalDb,
    registry: &mut RunnableRegistry,
) -> AppBundle<W> {
    let period = Duration::from_millis(50);

    let s_ambient = db.declare(signals::AMBIENT_LUX, 10_000.0);
    let s_speed = db.declare(signals::SPEED_FOR_LIGHTS, 0.0);
    let s_filtered = db.declare(signals::FILTERED_LUX, 10_000.0);
    let s_state = db.declare(signals::HEADLIGHT_STATE, 0.0);
    let s_cmd_head = db.declare(signals::CMD_HEADLIGHTS, 0.0);
    let s_cmd_drl = db.declare(signals::CMD_DRL, 0.0);

    let sense = registry.register("GetAmbientLight", Duration::from_micros(30));
    let decide = registry.register("LightCtl_process", Duration::from_micros(40));
    let actuate = registry.register("Light_actuate", Duration::from_micros(20));

    let runnables = vec![
        RunnableDef::new(sense, move |w: &mut W, ctx| {
            let now = ctx.now();
            // First-order low-pass (tunnel entries shouldn't flicker).
            let raw = w.signals().read(s_ambient);
            let filtered = 0.7 * w.signals().read(s_filtered) + 0.3 * raw;
            w.signals_mut().write(s_filtered, filtered, now);
        }),
        RunnableDef::new(decide, move |w: &mut W, ctx| {
            let now = ctx.now();
            let filtered = w.signals().read(s_filtered);
            let on = w.signals().read_bool(s_state);
            let next = headlight_decision(filtered, on);
            w.signals_mut().write_bool(s_state, next, now);
        }),
        RunnableDef::new(actuate, move |w: &mut W, ctx| {
            let now = ctx.now();
            let head = w.signals().read_bool(s_state);
            let moving = w.signals().read(s_speed) > 0.5;
            let sig = w.signals_mut();
            sig.write_bool(s_cmd_head, head, now);
            sig.write_bool(s_cmd_drl, moving && !head, now);
        }),
    ];

    AppBundle {
        app_name: "LightControl",
        task_name: "LightControlTask",
        period,
        signal_prefix: "lightctl.",
        priority: Priority(2),
        runnables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::task::TaskConfig;
    use easis_rte::assembly::SequencedTask;
    use easis_rte::world::BasicEcuWorld;
    use easis_sim::time::Instant;

    fn build_system() -> (Os<BasicEcuWorld>, BasicEcuWorld) {
        let mut world = BasicEcuWorld::new();
        let mut registry = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut world.signals, &mut registry);
        let mut os = Os::new();
        let body = SequencedTask::fixed(bundle.task_name, bundle.runnables);
        let task = os.add_task(TaskConfig::new(bundle.task_name, bundle.priority), body);
        let alarm = os.add_alarm("light_cycle", AlarmAction::ActivateTask(task));
        os.start(&mut world);
        os.set_rel_alarm(alarm, bundle.period, Some(bundle.period)).unwrap();
        (os, world)
    }

    #[test]
    fn hysteresis_prevents_flicker() {
        assert!(headlight_decision(300.0, false)); // dark → on
        assert!(headlight_decision(550.0, true)); // mid band, stays on
        assert!(!headlight_decision(550.0, false)); // mid band, stays off
        assert!(!headlight_decision(800.0, true)); // bright → off
    }

    #[test]
    fn tunnel_entry_turns_headlights_on() {
        let (mut os, mut world) = build_system();
        let ambient = world.signals.id_of(signals::AMBIENT_LUX).unwrap();
        os.run_until(Instant::from_millis(300), &mut world);
        let head = world.signals.id_of(signals::CMD_HEADLIGHTS).unwrap();
        assert!(!world.signals.read_bool(head), "daylight: lights off");
        // Tunnel: ambient collapses; the filter needs a few periods.
        world.signals.write(ambient, 20.0, os.now());
        os.run_until(Instant::from_millis(800), &mut world);
        assert!(world.signals.read_bool(head), "tunnel: lights on");
    }

    #[test]
    fn drl_active_when_moving_in_daylight() {
        let (mut os, mut world) = build_system();
        let speed = world.signals.id_of(signals::SPEED_FOR_LIGHTS).unwrap();
        world.signals.write(speed, 13.9, Instant::ZERO);
        os.run_until(Instant::from_millis(100), &mut world);
        let drl = world.signals.id_of(signals::CMD_DRL).unwrap();
        assert!(world.signals.read_bool(drl));
        // In the dark, low beams replace the DRLs.
        let ambient = world.signals.id_of(signals::AMBIENT_LUX).unwrap();
        world.signals.write(ambient, 10.0, os.now());
        os.run_until(Instant::from_millis(900), &mut world);
        assert!(!world.signals.read_bool(drl));
    }

    #[test]
    fn bundle_metadata() {
        let mut db = SignalDb::new();
        let mut reg = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut db, &mut reg);
        assert_eq!(bundle.app_name, "LightControl");
        assert_eq!(bundle.period, Duration::from_millis(50));
        assert_eq!(bundle.signal_prefix, "lightctl.");
        assert_eq!(bundle.runnables.len(), 3);
    }
}

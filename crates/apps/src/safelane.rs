//! SafeLane — lane departure warning.
//!
//! "SafeLane is a lane departure warning application" (paper §4.1). Three
//! runnables mirror the SafeSpeed decomposition: sample the camera's
//! lateral position, run the debounced departure detector, drive the
//! warning actuator (HMI).

use crate::bundle::AppBundle;
use crate::control::lane_departure_detect;
use easis_osek::task::Priority;
use easis_rte::runnable::{RunnableDef, RunnableRegistry};
use easis_rte::signal::SignalDb;
use easis_rte::world::EcuWorld;
use easis_sim::time::Duration;

/// Signal names used by SafeLane.
pub mod signals {
    /// Input: measured lateral offset from the lane centre \[m\].
    pub const LATERAL_MEASURED: &str = "lateral_measured";
    /// Input: lane half-width / departure threshold \[m\].
    pub const LANE_THRESHOLD: &str = "lane_threshold";
    /// Internal: sampled offset.
    pub const LATERAL_INTERNAL: &str = "safelane.lateral_internal";
    /// Internal: debounce counter.
    pub const DEBOUNCE: &str = "safelane.debounce";
    /// Internal: raw warning decision.
    pub const RAW_WARNING: &str = "safelane.raw_warning";
    /// Output: lane departure warning to the HMI.
    pub const CMD_WARNING: &str = "cmd.ldw_warning";
}

/// Consecutive out-of-lane samples required before warning.
pub const DEBOUNCE_LIMIT: f64 = 3.0;

/// Builds the SafeLane application (20 ms period, priority 4).
pub fn build<W: EcuWorld + 'static>(
    db: &mut SignalDb,
    registry: &mut RunnableRegistry,
) -> AppBundle<W> {
    let period = Duration::from_millis(20);

    let s_measured = db.declare(signals::LATERAL_MEASURED, 0.0);
    let s_threshold = db.declare(signals::LANE_THRESHOLD, 1.75);
    let s_internal = db.declare(signals::LATERAL_INTERNAL, 0.0);
    let s_debounce = db.declare(signals::DEBOUNCE, 0.0);
    let s_raw = db.declare(signals::RAW_WARNING, 0.0);
    let s_cmd = db.declare(signals::CMD_WARNING, 0.0);

    let get_lane = registry.register("GetLanePosition", Duration::from_micros(60));
    let ldw = registry.register_with_loop(
        "LDW_process",
        Duration::from_micros(70),
        Duration::from_micros(3),
        8,
    );
    let warn = registry.register("Warn_actuate", Duration::from_micros(25));

    let runnables = vec![
        RunnableDef::new(get_lane, move |w: &mut W, ctx| {
            let now = ctx.now();
            let v = w.signals().read(s_measured);
            w.signals_mut().write(s_internal, v, now);
        }),
        RunnableDef::new(ldw, move |w: &mut W, ctx| {
            let now = ctx.now();
            let offset = w.signals().read(s_internal);
            let threshold = w.signals().read(s_threshold);
            let debounce = w.signals().read(s_debounce);
            let out = lane_departure_detect(offset, threshold, debounce, DEBOUNCE_LIMIT);
            let sig = w.signals_mut();
            sig.write(s_debounce, out.debounce, now);
            sig.write_bool(s_raw, out.warning, now);
        }),
        RunnableDef::new(warn, move |w: &mut W, ctx| {
            let now = ctx.now();
            let warning = w.signals().read_bool(s_raw);
            w.signals_mut().write_bool(s_cmd, warning, now);
        }),
    ];

    AppBundle {
        app_name: "SafeLane",
        task_name: "SafeLaneTask",
        period,
        signal_prefix: "safelane.",
        priority: Priority(4),
        runnables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::task::TaskConfig;
    use easis_rte::assembly::SequencedTask;
    use easis_rte::world::BasicEcuWorld;
    use easis_sim::time::Instant;

    fn build_system() -> (Os<BasicEcuWorld>, BasicEcuWorld) {
        let mut world = BasicEcuWorld::new();
        let mut registry = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut world.signals, &mut registry);
        let mut os = Os::new();
        let body = SequencedTask::fixed(bundle.task_name, bundle.runnables);
        let task = os.add_task(TaskConfig::new(bundle.task_name, bundle.priority), body);
        let alarm = os.add_alarm("safelane_cycle", AlarmAction::ActivateTask(task));
        os.start(&mut world);
        os.set_rel_alarm(alarm, bundle.period, Some(bundle.period)).unwrap();
        (os, world)
    }

    #[test]
    fn centered_vehicle_never_warns() {
        let (mut os, mut world) = build_system();
        os.run_until(Instant::from_millis(200), &mut world);
        let cmd = world.signals.id_of(signals::CMD_WARNING).unwrap();
        assert!(!world.signals.read_bool(cmd));
    }

    #[test]
    fn sustained_departure_warns_after_debounce() {
        let (mut os, mut world) = build_system();
        let measured = world.signals.id_of(signals::LATERAL_MEASURED).unwrap();
        world.signals.write(measured, 2.2, Instant::ZERO);
        let cmd = world.signals.id_of(signals::CMD_WARNING).unwrap();
        // Two periods: below the debounce limit of 3.
        os.run_until(Instant::from_millis(45), &mut world);
        assert!(!world.signals.read_bool(cmd));
        // Third out-of-lane sample fires the warning.
        os.run_until(Instant::from_millis(65), &mut world);
        assert!(world.signals.read_bool(cmd));
    }

    #[test]
    fn warning_clears_on_recovery() {
        let (mut os, mut world) = build_system();
        let measured = world.signals.id_of(signals::LATERAL_MEASURED).unwrap();
        world.signals.write(measured, 2.2, Instant::ZERO);
        os.run_until(Instant::from_millis(100), &mut world);
        world.signals.write(measured, 0.1, os.now());
        os.run_until(Instant::from_millis(140), &mut world);
        let cmd = world.signals.id_of(signals::CMD_WARNING).unwrap();
        assert!(!world.signals.read_bool(cmd));
    }

    #[test]
    fn bundle_metadata_is_consistent() {
        let mut db = SignalDb::new();
        let mut reg = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut db, &mut reg);
        assert_eq!(bundle.task_name, "SafeLaneTask");
        assert_eq!(bundle.runnables.len(), 3);
        assert_eq!(bundle.period, Duration::from_millis(20));
    }
}

//! SafeSpeed — automatic speed limiting.
//!
//! "SafeSpeed is a system to automatically limit the vehicle speed to an
//! externally commanded maximum value" (paper §4.1), and its decomposition
//! is given explicitly in §4.3: "sensor value reading in `GetSensorValue`,
//! the control algorithm in `SAFE_CC_process` and setting of the actuator
//! in `Speed_process`", triggered in that sequence by the SafeSpeed chart.
//! The same three runnables are built here.

use crate::bundle::AppBundle;
use crate::control::speed_limit_control;
use easis_osek::task::Priority;
use easis_rte::runnable::{RunnableDef, RunnableRegistry};
use easis_rte::signal::SignalDb;
use easis_rte::world::EcuWorld;
use easis_sim::time::Duration;

/// Signal names used by SafeSpeed (inputs must be fed by the platform).
pub mod signals {
    /// Input: measured vehicle speed \[m/s\].
    pub const SPEED_MEASURED: &str = "speed_measured";
    /// Input: externally commanded maximum speed \[m/s\].
    pub const SPEED_LIMIT: &str = "speed_limit";
    /// Internal: sampled speed used by the control algorithm.
    pub const SPEED_INTERNAL: &str = "safespeed.speed_internal";
    /// Internal: PI integrator state.
    pub const INTEGRATOR: &str = "safespeed.integrator";
    /// Internal: raw controller outputs before actuation.
    pub const RAW_CEILING: &str = "safespeed.raw_ceiling";
    /// Internal: raw brake demand before actuation.
    pub const RAW_BRAKE: &str = "safespeed.raw_brake";
    /// Output: throttle ceiling command to the actuator node.
    pub const CMD_THROTTLE_CEILING: &str = "cmd.throttle_ceiling";
    /// Output: brake request command to the actuator node.
    pub const CMD_BRAKE_REQUEST: &str = "cmd.brake_request";
}

/// Builds the SafeSpeed application: declares its signals, registers its
/// three runnables and returns the bundle (10 ms period, priority 5).
pub fn build<W: EcuWorld + 'static>(
    db: &mut SignalDb,
    registry: &mut RunnableRegistry,
) -> AppBundle<W> {
    let period = Duration::from_millis(10);
    let dt_s = period.as_secs_f64();

    let s_measured = db.declare(signals::SPEED_MEASURED, 0.0);
    let s_limit = db.declare(signals::SPEED_LIMIT, 27.8);
    let s_internal = db.declare(signals::SPEED_INTERNAL, 0.0);
    let s_integrator = db.declare(signals::INTEGRATOR, 0.0);
    let s_raw_ceiling = db.declare(signals::RAW_CEILING, 1.0);
    let s_raw_brake = db.declare(signals::RAW_BRAKE, 0.0);
    let s_cmd_ceiling = db.declare(signals::CMD_THROTTLE_CEILING, 1.0);
    let s_cmd_brake = db.declare(signals::CMD_BRAKE_REQUEST, 0.0);

    let get_sensor = registry.register("GetSensorValue", Duration::from_micros(40));
    let cc_process = registry.register_with_loop(
        "SAFE_CC_process",
        Duration::from_micros(80),
        Duration::from_micros(4),
        10,
    );
    let speed_process = registry.register("Speed_process", Duration::from_micros(30));

    let runnables = vec![
        RunnableDef::new(get_sensor, move |w: &mut W, ctx| {
            let now = ctx.now();
            let v = w.signals().read(s_measured);
            w.signals_mut().write(s_internal, v, now);
        }),
        RunnableDef::new(cc_process, move |w: &mut W, ctx| {
            let now = ctx.now();
            let speed = w.signals().read(s_internal);
            let limit = w.signals().read(s_limit);
            let integ = w.signals().read(s_integrator);
            let out = speed_limit_control(speed, limit, integ, dt_s);
            let sig = w.signals_mut();
            sig.write(s_integrator, out.integrator, now);
            sig.write(s_raw_ceiling, out.throttle_ceiling, now);
            sig.write(s_raw_brake, out.brake_request, now);
        }),
        RunnableDef::new(speed_process, move |w: &mut W, ctx| {
            let now = ctx.now();
            let ceiling = w.signals().read(s_raw_ceiling).clamp(0.0, 1.0);
            let brake = w.signals().read(s_raw_brake).clamp(0.0, 1.0);
            let sig = w.signals_mut();
            sig.write(s_cmd_ceiling, ceiling, now);
            sig.write(s_cmd_brake, brake, now);
        }),
    ];

    AppBundle {
        app_name: "SafeSpeed",
        task_name: "SafeSpeedTask",
        period,
        signal_prefix: "safespeed.",
        priority: Priority(5),
        runnables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::task::TaskConfig;
    use easis_rte::assembly::SequencedTask;
    use easis_rte::world::BasicEcuWorld;
    use easis_sim::time::Instant;

    fn build_system() -> (Os<BasicEcuWorld>, BasicEcuWorld) {
        let mut world = BasicEcuWorld::new();
        let mut registry = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut world.signals, &mut registry);
        let mut os = Os::new();
        let body = SequencedTask::fixed(bundle.task_name, bundle.runnables);
        let task = os.add_task(TaskConfig::new(bundle.task_name, bundle.priority), body);
        let alarm = os.add_alarm("safespeed_cycle", AlarmAction::ActivateTask(task));
        os.start(&mut world);
        os.set_rel_alarm(alarm, bundle.period, Some(bundle.period)).unwrap();
        (os, world)
    }

    #[test]
    fn bundle_has_paper_runnable_names() {
        let mut db = SignalDb::new();
        let mut reg = RunnableRegistry::new();
        let bundle = build::<BasicEcuWorld>(&mut db, &mut reg);
        let names: Vec<&str> = bundle.runnables.iter().map(|r| r.spec().name()).collect();
        assert_eq!(names, vec!["GetSensorValue", "SAFE_CC_process", "Speed_process"]);
        assert_eq!(bundle.app_name, "SafeSpeed");
        assert_eq!(bundle.flow_pairs().len(), 3);
    }

    #[test]
    fn over_limit_produces_brake_command_through_the_task() {
        let (mut os, mut world) = build_system();
        let measured = world.signals.id_of(signals::SPEED_MEASURED).unwrap();
        let limit = world.signals.id_of(signals::SPEED_LIMIT).unwrap();
        world.signals.write(measured, 25.0, Instant::ZERO);
        world.signals.write(limit, 13.9, Instant::ZERO);
        os.run_until(Instant::from_millis(55), &mut world);
        let brake = world
            .signals
            .read(world.signals.id_of(signals::CMD_BRAKE_REQUEST).unwrap());
        let ceiling = world
            .signals
            .read(world.signals.id_of(signals::CMD_THROTTLE_CEILING).unwrap());
        assert!(brake > 0.0, "brake {brake}");
        assert_eq!(ceiling, 0.0);
        assert_eq!(world.heartbeats.len(), 15); // 5 periods × 3 runnables
    }

    #[test]
    fn under_limit_keeps_throttle_open() {
        let (mut os, mut world) = build_system();
        let measured = world.signals.id_of(signals::SPEED_MEASURED).unwrap();
        world.signals.write(measured, 10.0, Instant::ZERO);
        os.run_until(Instant::from_millis(25), &mut world);
        let brake = world
            .signals
            .read(world.signals.id_of(signals::CMD_BRAKE_REQUEST).unwrap());
        let ceiling = world
            .signals
            .read(world.signals.id_of(signals::CMD_THROTTLE_CEILING).unwrap());
        assert_eq!(brake, 0.0);
        assert!(ceiling > 0.9);
    }

    #[test]
    fn redeclaring_signals_is_idempotent() {
        let mut db = SignalDb::new();
        let mut reg1 = RunnableRegistry::new();
        let _ = build::<BasicEcuWorld>(&mut db, &mut reg1);
        let count = db.len();
        let mut reg2 = RunnableRegistry::new();
        let _ = build::<BasicEcuWorld>(&mut db, &mut reg2);
        assert_eq!(db.len(), count);
    }
}

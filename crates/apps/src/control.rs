//! Pure control laws.
//!
//! The algorithms inside the runnables, as testable pure functions: the
//! SafeSpeed limiter (a PI controller producing a throttle ceiling and a
//! brake request) and the SafeLane departure detector (threshold plus
//! debounce).

use serde::{Deserialize, Serialize};

/// Output of one SafeSpeed control step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedLimitOutput {
    /// Upper bound for the driver's throttle in `[0, 1]`.
    pub throttle_ceiling: f64,
    /// Brake demand in `[0, 1]`.
    pub brake_request: f64,
    /// Updated integrator state (persist between steps).
    pub integrator: f64,
}

/// SafeSpeed control law: limits the vehicle to `limit` m/s.
///
/// Proportional-integral on the overspeed; below the limit the driver is
/// unconstrained and the integrator bleeds off.
pub fn speed_limit_control(speed: f64, limit: f64, integrator: f64, dt_s: f64) -> SpeedLimitOutput {
    const KP: f64 = 0.4;
    const KI: f64 = 0.08;
    const INTEGRATOR_MAX: f64 = 5.0;
    let over = speed - limit;
    if over <= 0.0 {
        // Under the limit: release gradually.
        let integrator = (integrator - 2.0 * dt_s).max(0.0);
        // Re-open the throttle smoothly as the margin grows.
        let margin = -over;
        SpeedLimitOutput {
            throttle_ceiling: (margin * 0.5).clamp(0.0, 1.0),
            brake_request: 0.0,
            integrator,
        }
    } else {
        let integrator = (integrator + over * dt_s).min(INTEGRATOR_MAX);
        let demand = KP * over + KI * integrator;
        SpeedLimitOutput {
            throttle_ceiling: 0.0,
            brake_request: demand.clamp(0.0, 1.0),
            integrator,
        }
    }
}

/// Output of one SafeLane detection step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneWarningOutput {
    /// Lane-departure warning active.
    pub warning: bool,
    /// Updated debounce counter (persist between steps).
    pub debounce: f64,
}

/// SafeLane detection: warn when |offset| exceeds `threshold` for at least
/// `debounce_limit` consecutive evaluations (camera-noise rejection).
pub fn lane_departure_detect(
    lateral_offset: f64,
    threshold: f64,
    debounce: f64,
    debounce_limit: f64,
) -> LaneWarningOutput {
    if lateral_offset.abs() > threshold {
        let debounce = (debounce + 1.0).min(debounce_limit + 1.0);
        LaneWarningOutput {
            warning: debounce >= debounce_limit,
            debounce,
        }
    } else {
        LaneWarningOutput {
            warning: false,
            debounce: 0.0,
        }
    }
}

/// Steer-by-wire command shaping: rate-limits the handwheel angle into the
/// road-wheel command. Returns the new command.
pub fn steer_by_wire_shape(handwheel: f64, previous_cmd: f64, max_rate: f64, dt_s: f64) -> f64 {
    let target = (handwheel / 15.0).clamp(-0.6, 0.6); // 15:1 steering ratio
    let step = (target - previous_cmd).clamp(-max_rate * dt_s, max_rate * dt_s);
    previous_cmd + step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_limit_is_unconstrained_with_margin() {
        let out = speed_limit_control(20.0, 27.8, 0.0, 0.01);
        assert!(out.throttle_ceiling > 0.9);
        assert_eq!(out.brake_request, 0.0);
    }

    #[test]
    fn over_limit_cuts_throttle_and_brakes() {
        let out = speed_limit_control(20.0, 13.9, 0.0, 0.01);
        assert_eq!(out.throttle_ceiling, 0.0);
        assert!(out.brake_request > 0.0);
        assert!(out.integrator > 0.0);
    }

    #[test]
    fn integrator_accumulates_and_saturates() {
        let mut integ = 0.0;
        for _ in 0..100_000 {
            integ = speed_limit_control(30.0, 10.0, integ, 0.01).integrator;
        }
        assert_eq!(integ, 5.0);
    }

    #[test]
    fn integrator_bleeds_off_below_limit() {
        let mut integ = 5.0;
        for _ in 0..1000 {
            integ = speed_limit_control(5.0, 13.9, integ, 0.01).integrator;
        }
        assert_eq!(integ, 0.0);
    }

    #[test]
    fn closed_loop_settles_near_limit() {
        use easis_vehicle::plant::{Plant, SafetyOverlay};
        let mut plant = Plant::motorway(25.0, 25.0, 13.9, 9);
        let mut integ = 0.0;
        for _ in 0..12_000 {
            let out = speed_limit_control(plant.state().speed, plant.current_limit(), integ, 0.01);
            integ = out.integrator;
            plant.step(
                SafetyOverlay {
                    throttle_ceiling: out.throttle_ceiling,
                    brake_request: out.brake_request,
                },
                0.01,
            );
        }
        let speed = plant.state().speed;
        assert!(
            (speed - 13.9).abs() < 1.0,
            "settled at {speed}, limit 13.9"
        );
    }

    #[test]
    fn lane_warning_requires_debounce() {
        let mut state = 0.0;
        let mut warned = false;
        for _ in 0..2 {
            let out = lane_departure_detect(2.0, 1.75, state, 3.0);
            state = out.debounce;
            warned = out.warning;
        }
        assert!(!warned, "two samples are below the debounce limit");
        let out = lane_departure_detect(2.0, 1.75, state, 3.0);
        assert!(out.warning);
    }

    #[test]
    fn lane_warning_clears_when_back_in_lane() {
        let out = lane_departure_detect(0.3, 1.75, 10.0, 3.0);
        assert!(!out.warning);
        assert_eq!(out.debounce, 0.0);
    }

    #[test]
    fn steer_shaping_rate_limits() {
        let cmd = steer_by_wire_shape(3.0, 0.0, 0.5, 0.01);
        assert!((cmd - 0.005).abs() < 1e-12); // limited to 0.5 rad/s
        let mut c = 0.0;
        for _ in 0..100 {
            c = steer_by_wire_shape(3.0, c, 0.5, 0.01);
        }
        assert!((c - 0.2).abs() < 1e-9); // converged to 3.0/15
    }
}

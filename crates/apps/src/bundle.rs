//! Application bundles.
//!
//! An [`AppBundle`] is everything one ISS application contributes to an
//! ECU: its runnables (in execution order), the task hosting them, the
//! period, and the program-flow pairs the Software Watchdog should allow.
//! The validator consumes bundles to wire OS tasks, watchdog configuration
//! and deployment mapping consistently from a single source.

use easis_osek::task::Priority;
use easis_rte::runnable::{RunnableDef, RunnableId};
use easis_sim::time::Duration;

/// One application's contribution to an ECU.
pub struct AppBundle<W> {
    /// Application name (e.g. `"SafeSpeed"`).
    pub app_name: &'static str,
    /// Name of the hosting OS task.
    pub task_name: &'static str,
    /// Activation period of the task.
    pub period: Duration,
    /// Task priority.
    pub priority: Priority,
    /// Prefix of the application's internal signals (integrators, debounce
    /// counters). Fault treatment resets every signal under this prefix to
    /// its initial value when restarting the application.
    pub signal_prefix: &'static str,
    /// Runnables in nominal execution order.
    pub runnables: Vec<RunnableDef<W>>,
}

impl<W> AppBundle<W> {
    /// Ids of the bundle's runnables in execution order.
    pub fn runnable_ids(&self) -> Vec<RunnableId> {
        self.runnables.iter().map(|r| r.spec().id()).collect()
    }

    /// The watchdog flow pairs of the nominal sequence: each runnable may
    /// be followed by the next, and the last wraps around to the first
    /// (periodic execution).
    pub fn flow_pairs(&self) -> Vec<(RunnableId, RunnableId)> {
        let ids = self.runnable_ids();
        let mut pairs = Vec::new();
        for w in ids.windows(2) {
            pairs.push((w[0], w[1]));
        }
        if ids.len() > 1 {
            pairs.push((*ids.last().expect("non-empty"), ids[0]));
        }
        pairs
    }

    /// The sequence entry point (first runnable).
    ///
    /// # Panics
    ///
    /// Panics on an empty bundle.
    pub fn entry(&self) -> RunnableId {
        self.runnable_ids()
            .first()
            .copied()
            .expect("bundle has runnables")
    }
}

impl<W> std::fmt::Debug for AppBundle<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppBundle")
            .field("app_name", &self.app_name)
            .field("task_name", &self.task_name)
            .field("period", &self.period)
            .field("runnables", &self.runnables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_rte::runnable::RunnableSpec;

    fn bundle() -> AppBundle<u32> {
        let mk = |i: u32| {
            RunnableDef::no_op(RunnableSpec::new(
                RunnableId(i),
                format!("r{i}"),
                Duration::from_micros(10),
            ))
        };
        AppBundle {
            app_name: "Demo",
            task_name: "DemoTask",
            period: Duration::from_millis(10),
            priority: Priority(3),
            signal_prefix: "demo.",
            runnables: vec![mk(0), mk(1), mk(2)],
        }
    }

    #[test]
    fn flow_pairs_form_a_cycle() {
        let b = bundle();
        assert_eq!(
            b.flow_pairs(),
            vec![
                (RunnableId(0), RunnableId(1)),
                (RunnableId(1), RunnableId(2)),
                (RunnableId(2), RunnableId(0)),
            ]
        );
        assert_eq!(b.entry(), RunnableId(0));
    }

    #[test]
    fn single_runnable_has_no_pairs() {
        let mut b = bundle();
        b.runnables.truncate(1);
        assert!(b.flow_pairs().is_empty());
    }
}

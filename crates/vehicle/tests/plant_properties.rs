//! Property-based tests of the vehicle plant: physical sanity under
//! arbitrary inputs and parameterisations.

use easis_vehicle::driver::Driver;
use easis_vehicle::dynamics::{ControlInput, Vehicle, VehicleParams};
use easis_vehicle::environment::PositionProfile;
use easis_vehicle::plant::{Plant, SafetyOverlay};
use easis_vehicle::sensors::{Actuator, Sensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Speed is never negative and position is non-decreasing, whatever the
    /// (clamped) inputs.
    #[test]
    fn speed_nonnegative_position_monotone(
        initial in 0.0f64..60.0,
        inputs in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 1..300),
    ) {
        let mut v = Vehicle::with_speed(VehicleParams::default(), initial);
        let mut last_pos = v.state().position;
        for (throttle, brake, steer) in inputs {
            v.step(ControlInput { throttle, brake, steer }, 0.01);
            let s = v.state();
            prop_assert!(s.speed >= 0.0);
            prop_assert!(s.position >= last_pos);
            prop_assert!(s.speed.is_finite() && s.lateral_offset.is_finite());
            last_pos = s.position;
        }
    }

    /// Full braking always dissipates speed monotonically.
    #[test]
    fn braking_is_monotone(initial in 1.0f64..60.0) {
        let mut v = Vehicle::with_speed(VehicleParams::default(), initial);
        let mut last = initial;
        for _ in 0..500 {
            v.step(ControlInput { brake: 1.0, ..ControlInput::default() }, 0.01);
            prop_assert!(v.state().speed <= last + 1e-12);
            last = v.state().speed;
        }
    }

    /// The driver model always produces physically clamped commands.
    #[test]
    fn driver_commands_are_clamped(
        desired in 0.0f64..60.0,
        speed in 0.0f64..80.0,
        offset in -5.0f64..5.0,
    ) {
        let driver = Driver::new(desired);
        let input = driver.control(0.0, easis_vehicle::dynamics::VehicleState {
            speed,
            lateral_offset: offset,
            ..Default::default()
        });
        prop_assert!((0.0..=1.0).contains(&input.throttle));
        prop_assert!((0.0..=1.0).contains(&input.brake));
        prop_assert!((-0.6..=0.6).contains(&input.steer));
        // Never throttle and brake simultaneously.
        prop_assert!(input.throttle == 0.0 || input.brake == 0.0);
    }

    /// Position profiles return the value of the last breakpoint at or
    /// before the query position.
    #[test]
    fn profile_lookup_matches_reference(
        breaks in prop::collection::btree_map(0u32..10_000, 0.0f64..50.0, 0..10),
        query in 0u32..12_000,
    ) {
        let mut profile = PositionProfile::constant(99.0);
        for (&pos, &val) in &breaks {
            profile = profile.then_at(pos as f64, val);
        }
        let expected = breaks
            .range(..=query)
            .next_back()
            .map(|(_, &v)| v)
            .unwrap_or(99.0);
        prop_assert_eq!(profile.at(query as f64), expected);
    }

    /// Sensors without injected faults stay within noise + quantisation of
    /// the truth.
    #[test]
    fn sensor_error_is_bounded(truth in -100.0f64..100.0, seed in any::<u64>()) {
        let mut s = Sensor::new(0.05, 0.02, seed);
        let measured = s.measure(truth);
        prop_assert!((measured - truth).abs() <= 0.05 / 2.0 + 0.02 + 1e-9);
    }

    /// Actuators never exceed their slew rate or leave their range.
    #[test]
    fn actuator_respects_rate_and_range(
        targets in prop::collection::vec(-2.0f64..3.0, 1..100),
    ) {
        let mut a = Actuator::new(0.0, 1.0, 5.0);
        let mut last = a.position();
        for t in targets {
            let p = a.command(t, 0.01);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((p - last).abs() <= 5.0 * 0.01 + 1e-12);
            last = p;
        }
    }

    /// The closed loop with a trivial limiter never diverges.
    #[test]
    fn plant_closed_loop_is_stable(seed in any::<u64>(), desired in 10.0f64..40.0) {
        let mut plant = Plant::motorway(desired, desired, 13.9, seed);
        for _ in 0..2_000 {
            let over = plant.state().speed - plant.current_limit();
            let overlay = if over > 0.0 {
                SafetyOverlay { throttle_ceiling: 0.0, brake_request: (over * 0.3).min(1.0) }
            } else {
                SafetyOverlay::default()
            };
            plant.step(overlay, 0.01);
            prop_assert!(plant.state().speed.is_finite());
            prop_assert!(plant.state().speed < desired + 10.0);
        }
    }
}

//! Driver model.
//!
//! The human in the loop of the HIL validator: tries to hold a desired
//! speed (possibly above the commanded limit — that is what SafeSpeed must
//! override) and keeps the lane with a proportional steering law, with an
//! optional scripted drift episode that provokes SafeLane warnings.

use crate::dynamics::{ControlInput, VehicleState};
use serde::{Deserialize, Serialize};

/// A scripted lateral drift: from `from_s` to `to_s` the driver stops
/// steering back and holds a constant steer offset (distraction episode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftEpisode {
    /// Episode start \[s\].
    pub from_s: f64,
    /// Episode end \[s\].
    pub to_s: f64,
    /// Constant steer angle held during the episode \[rad\].
    pub steer: f64,
}

/// The driver model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Driver {
    /// Speed the driver tries to hold \[m/s\].
    pub desired_speed: f64,
    /// Proportional speed gain.
    speed_gain: f64,
    /// Lane-keeping gains (offset, heading).
    lane_gains: (f64, f64),
    drift: Option<DriftEpisode>,
}

impl Driver {
    /// Creates a driver aiming for `desired_speed` m/s.
    pub fn new(desired_speed: f64) -> Self {
        Driver {
            desired_speed,
            speed_gain: 0.5,
            lane_gains: (0.4, 1.6),
            drift: None,
        }
    }

    /// Scripts a distraction episode.
    pub fn with_drift(mut self, drift: DriftEpisode) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Computes the driver's control input at `time_s` for the current
    /// vehicle state. Throttle/brake request the desired speed; steering
    /// keeps the lane unless a drift episode is active.
    pub fn control(&self, time_s: f64, state: VehicleState) -> ControlInput {
        let err = self.desired_speed - state.speed;
        let (throttle, brake) = if err >= 0.0 {
            ((err * self.speed_gain).min(1.0), 0.0)
        } else {
            (0.0, (-err * self.speed_gain).min(1.0))
        };
        let steer = match self.drift {
            Some(d) if time_s >= d.from_s && time_s < d.to_s => d.steer,
            _ => -self.lane_gains.0 * state.lateral_offset - self.lane_gains.1 * state.heading,
        };
        ControlInput {
            throttle,
            brake,
            steer,
        }
        .clamped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{Vehicle, VehicleParams};

    #[test]
    fn driver_converges_to_desired_speed() {
        let driver = Driver::new(25.0);
        let mut v = Vehicle::new(VehicleParams::default());
        for i in 0..6000 {
            let input = driver.control(i as f64 * 0.01, v.state());
            v.step(input, 0.01);
        }
        let speed = v.state().speed;
        assert!((speed - 25.0).abs() < 1.5, "speed {speed}");
    }

    #[test]
    fn driver_brakes_when_too_fast() {
        let driver = Driver::new(10.0);
        let input = driver.control(
            0.0,
            VehicleState {
                speed: 30.0,
                ..VehicleState::default()
            },
        );
        assert_eq!(input.throttle, 0.0);
        assert!(input.brake > 0.0);
    }

    #[test]
    fn lane_keeping_steers_against_offset() {
        let driver = Driver::new(20.0);
        let input = driver.control(
            0.0,
            VehicleState {
                speed: 20.0,
                lateral_offset: 0.5,
                ..VehicleState::default()
            },
        );
        assert!(input.steer < 0.0);
    }

    #[test]
    fn drift_episode_overrides_lane_keeping() {
        let driver = Driver::new(20.0).with_drift(DriftEpisode {
            from_s: 5.0,
            to_s: 8.0,
            steer: 0.03,
        });
        let state = VehicleState {
            speed: 20.0,
            lateral_offset: 0.5,
            ..VehicleState::default()
        };
        assert!(driver.control(6.0, state).steer > 0.0); // drifting
        assert!(driver.control(9.0, state).steer < 0.0); // recovered
    }

    #[test]
    fn drifting_driver_departs_the_lane() {
        let driver = Driver::new(22.0).with_drift(DriftEpisode {
            from_s: 2.0,
            to_s: 6.0,
            steer: 0.02,
        });
        let mut v = Vehicle::with_speed(VehicleParams::default(), 22.0);
        let mut max_offset: f64 = 0.0;
        for i in 0..800 {
            let t = i as f64 * 0.01;
            let input = driver.control(t, v.state());
            v.step(input, 0.01);
            max_offset = max_offset.max(v.state().lateral_offset.abs());
        }
        assert!(max_offset > 1.75, "max offset {max_offset}");
    }
}

//! The assembled HIL plant.
//!
//! [`Plant`] combines vehicle, driver, environment, sensors and actuators
//! into the closed loop the validator's central node controls: each step,
//! the driver produces nominal inputs, the safety controller's commands
//! (throttle ceiling / brake request, as computed by SafeSpeed) are
//! overlaid, the servos slew, and the dynamics integrate.

use crate::driver::Driver;
use crate::dynamics::{ControlInput, Vehicle, VehicleParams, VehicleState};
use crate::environment::Environment;
use crate::sensors::{Actuator, Sensor};
use serde::{Deserialize, Serialize};

/// Safety-controller overlay applied on top of the driver's request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyOverlay {
    /// Upper bound imposed on the driver's throttle (1.0 = no limit).
    pub throttle_ceiling: f64,
    /// Additional brake demand (0.0 = none).
    pub brake_request: f64,
}

impl Default for SafetyOverlay {
    fn default() -> Self {
        SafetyOverlay {
            throttle_ceiling: 1.0,
            brake_request: 0.0,
        }
    }
}

/// The closed-loop plant.
#[derive(Debug, Clone)]
pub struct Plant {
    vehicle: Vehicle,
    driver: Driver,
    environment: Environment,
    speed_sensor: Sensor,
    lateral_sensor: Sensor,
    throttle_servo: Actuator,
    brake_servo: Actuator,
    time_s: f64,
}

impl Plant {
    /// Assembles a plant with default sensors/servos.
    pub fn new(vehicle: Vehicle, driver: Driver, environment: Environment, seed: u64) -> Self {
        Plant {
            vehicle,
            driver,
            environment,
            speed_sensor: Sensor::speed_sensor(seed),
            lateral_sensor: Sensor::lateral_sensor(seed.wrapping_add(1)),
            throttle_servo: Actuator::pedal_servo(),
            brake_servo: Actuator::pedal_servo(),
            time_s: 0.0,
        }
    }

    /// A ready-made motorway scenario: car at `speed` m/s, driver holding
    /// `desired` m/s, limit dropping from `desired + margin` to `limit_low`
    /// at 500 m.
    pub fn motorway(speed: f64, desired: f64, limit_low: f64, seed: u64) -> Self {
        Plant::new(
            Vehicle::with_speed(VehicleParams::default(), speed),
            Driver::new(desired),
            Environment::with_limit_drop(desired + 5.0, limit_low, 500.0),
            seed,
        )
    }

    /// Advances the loop by `dt_s` under the given safety overlay.
    pub fn step(&mut self, overlay: SafetyOverlay, dt_s: f64) {
        let nominal = self.driver.control(self.time_s, self.vehicle.state());
        let throttle_target = nominal.throttle.min(overlay.throttle_ceiling.clamp(0.0, 1.0));
        let brake_target = nominal.brake.max(overlay.brake_request.clamp(0.0, 1.0));
        let input = ControlInput {
            throttle: self.throttle_servo.command(throttle_target, dt_s),
            brake: self.brake_servo.command(brake_target, dt_s),
            steer: nominal.steer,
        };
        self.vehicle.step(input, dt_s);
        self.time_s += dt_s;
    }

    /// Measured vehicle speed (sensor model applied).
    pub fn measured_speed(&mut self) -> f64 {
        self.speed_sensor.measure(self.vehicle.state().speed)
    }

    /// Measured lateral offset.
    pub fn measured_lateral_offset(&mut self) -> f64 {
        self.lateral_sensor.measure(self.vehicle.state().lateral_offset)
    }

    /// Commanded speed limit at the current position.
    pub fn current_limit(&self) -> f64 {
        self.environment.limit_at(self.vehicle.state().position)
    }

    /// Ground-truth vehicle state.
    pub fn state(&self) -> VehicleState {
        self.vehicle.state()
    }

    /// Elapsed plant time \[s\].
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The environment (for thresholds).
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// Mutable sensor access (fault injection).
    pub fn speed_sensor_mut(&mut self) -> &mut Sensor {
        &mut self.speed_sensor
    }

    /// Mutable driver access (scenario scripting).
    pub fn driver_mut(&mut self) -> &mut Driver {
        &mut self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_overlay_driver_exceeds_the_dropped_limit() {
        let mut plant = Plant::motorway(25.0, 25.0, 13.9, 1);
        for _ in 0..6000 {
            plant.step(SafetyOverlay::default(), 0.01);
        }
        // Past the 500m limit drop, the unassisted driver still does ~25.
        assert!(plant.state().position > 500.0);
        assert_eq!(plant.current_limit(), 13.9);
        assert!(plant.state().speed > 20.0);
    }

    #[test]
    fn overlay_enforces_the_limit() {
        let mut plant = Plant::motorway(25.0, 25.0, 13.9, 1);
        for _ in 0..9000 {
            // A trivial always-on limiter (the real SafeSpeed runs on the
            // simulated ECU; this verifies the plant-side mechanism).
            let over = plant.state().speed - plant.current_limit();
            let overlay = if over > 0.0 {
                SafetyOverlay {
                    throttle_ceiling: 0.0,
                    brake_request: (over * 0.3).min(1.0),
                }
            } else {
                SafetyOverlay::default()
            };
            plant.step(overlay, 0.01);
        }
        let speed = plant.state().speed;
        assert!(speed <= 14.8, "limited speed {speed}");
    }

    #[test]
    fn measurements_track_truth() {
        let mut plant = Plant::motorway(20.0, 20.0, 13.9, 2);
        let measured = plant.measured_speed();
        assert!((measured - 20.0).abs() < 0.1);
        let lat = plant.measured_lateral_offset();
        assert!(lat.abs() < 0.05);
    }

    #[test]
    fn time_advances_with_steps() {
        let mut plant = Plant::motorway(10.0, 10.0, 5.0, 3);
        for _ in 0..100 {
            plant.step(SafetyOverlay::default(), 0.01);
        }
        assert!((plant.time_s() - 1.0).abs() < 1e-9);
    }
}

//! Longitudinal + lateral vehicle dynamics.
//!
//! The driving-dynamics node of the EASIS validator, reduced to what the
//! SafeSpeed (speed limiting) and SafeLane (lane departure) applications
//! need: a point-mass longitudinal model with engine/brake/drag forces and
//! a kinematic single-track lateral model tracked relative to the lane
//! centre line. Step sizes are the caller's (typically 1–10 ms), keeping
//! the plant integration on the same deterministic clock as the ECUs.

use serde::{Deserialize, Serialize};

/// Physical parameters of the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Vehicle mass \[kg\].
    pub mass: f64,
    /// Peak tractive force \[N\].
    pub max_engine_force: f64,
    /// Peak braking force \[N\].
    pub max_brake_force: f64,
    /// Aerodynamic drag factor \[N·s²/m²\] (`0.5·ρ·c_d·A`).
    pub drag: f64,
    /// Rolling-resistance coefficient \[-\].
    pub rolling_resistance: f64,
    /// Wheelbase \[m\].
    pub wheelbase: f64,
}

impl Default for VehicleParams {
    /// A mid-size passenger car.
    fn default() -> Self {
        VehicleParams {
            mass: 1500.0,
            max_engine_force: 6000.0,
            max_brake_force: 12000.0,
            drag: 0.38,
            rolling_resistance: 0.012,
            wheelbase: 2.7,
        }
    }
}

/// Instantaneous state of the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleState {
    /// Longitudinal speed \[m/s\], never negative.
    pub speed: f64,
    /// Distance travelled along the lane \[m\].
    pub position: f64,
    /// Lateral offset from the lane centre \[m\], positive = left.
    pub lateral_offset: f64,
    /// Heading relative to the lane direction \[rad\].
    pub heading: f64,
}

/// Driver/controller inputs for one integration step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlInput {
    /// Throttle command in `[0, 1]`.
    pub throttle: f64,
    /// Brake command in `[0, 1]`.
    pub brake: f64,
    /// Front-wheel steering angle \[rad\].
    pub steer: f64,
}

impl ControlInput {
    /// Clamps all components into their physical ranges.
    pub fn clamped(self) -> ControlInput {
        ControlInput {
            throttle: self.throttle.clamp(0.0, 1.0),
            brake: self.brake.clamp(0.0, 1.0),
            steer: self.steer.clamp(-0.6, 0.6),
        }
    }
}

/// The plant model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    params: VehicleParams,
    state: VehicleState,
}

const GRAVITY: f64 = 9.81;

impl Vehicle {
    /// Creates a vehicle at rest on the lane centre.
    pub fn new(params: VehicleParams) -> Self {
        Vehicle {
            params,
            state: VehicleState::default(),
        }
    }

    /// Creates a vehicle already rolling at `speed` m/s.
    pub fn with_speed(params: VehicleParams, speed: f64) -> Self {
        assert!(speed >= 0.0, "speed must be non-negative");
        Vehicle {
            params,
            state: VehicleState {
                speed,
                ..VehicleState::default()
            },
        }
    }

    /// Current state.
    pub fn state(&self) -> VehicleState {
        self.state
    }

    /// Parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Integrates one step of `dt_s` seconds under `input`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive and finite.
    pub fn step(&mut self, input: ControlInput, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s > 0.0, "dt must be positive");
        let input = input.clamped();
        let p = &self.params;
        let s = &mut self.state;
        // Longitudinal forces.
        let f_engine = input.throttle * p.max_engine_force;
        let f_brake = input.brake * p.max_brake_force;
        let f_drag = p.drag * s.speed * s.speed;
        let f_roll = if s.speed > 0.0 {
            p.rolling_resistance * p.mass * GRAVITY
        } else {
            0.0
        };
        let accel = (f_engine - f_brake - f_drag - f_roll) / p.mass;
        s.speed = (s.speed + accel * dt_s).max(0.0);
        s.position += s.speed * dt_s;
        // Kinematic single-track lateral motion relative to the lane.
        s.heading += s.speed / p.wheelbase * input.steer.tan() * dt_s;
        s.lateral_offset += s.speed * s.heading.sin() * dt_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coast(vehicle: &mut Vehicle, secs: f64) {
        let steps = (secs / 0.01) as usize;
        for _ in 0..steps {
            vehicle.step(ControlInput::default(), 0.01);
        }
    }

    #[test]
    fn full_throttle_accelerates_from_rest() {
        let mut v = Vehicle::new(VehicleParams::default());
        for _ in 0..500 {
            v.step(
                ControlInput {
                    throttle: 1.0,
                    ..ControlInput::default()
                },
                0.01,
            );
        }
        // 5s of full throttle: roughly 0–60 km/h territory.
        let speed = v.state().speed;
        assert!(speed > 10.0 && speed < 30.0, "speed {speed}");
        assert!(v.state().position > 0.0);
    }

    #[test]
    fn coasting_decays_speed() {
        let mut v = Vehicle::with_speed(VehicleParams::default(), 30.0);
        coast(&mut v, 10.0);
        let speed = v.state().speed;
        assert!(speed < 30.0 && speed > 0.0, "speed {speed}");
    }

    #[test]
    fn braking_stops_the_car_and_speed_never_goes_negative() {
        let mut v = Vehicle::with_speed(VehicleParams::default(), 20.0);
        for _ in 0..1000 {
            v.step(
                ControlInput {
                    brake: 1.0,
                    ..ControlInput::default()
                },
                0.01,
            );
        }
        assert_eq!(v.state().speed, 0.0);
    }

    #[test]
    fn terminal_speed_under_full_throttle_is_bounded() {
        let mut v = Vehicle::new(VehicleParams::default());
        for _ in 0..20_000 {
            v.step(
                ControlInput {
                    throttle: 1.0,
                    ..ControlInput::default()
                },
                0.01,
            );
        }
        let v1 = v.state().speed;
        v.step(
            ControlInput {
                throttle: 1.0,
                ..ControlInput::default()
            },
            0.01,
        );
        let v2 = v.state().speed;
        assert!((v2 - v1).abs() < 1e-3, "terminal speed reached");
        // F = drag·v² + rr·m·g at terminal: v ≈ sqrt((6000-176.6)/0.38) ≈ 124
        assert!(v1 > 100.0 && v1 < 130.0, "terminal {v1}");
    }

    #[test]
    fn steering_drifts_laterally() {
        let mut v = Vehicle::with_speed(VehicleParams::default(), 20.0);
        for _ in 0..100 {
            v.step(
                ControlInput {
                    steer: 0.02,
                    throttle: 0.3,
                    ..ControlInput::default()
                },
                0.01,
            );
        }
        assert!(v.state().lateral_offset > 0.0);
        assert!(v.state().heading > 0.0);
    }

    #[test]
    fn counter_steering_recovers_the_lane() {
        let mut v = Vehicle::with_speed(VehicleParams::default(), 20.0);
        for _ in 0..100 {
            v.step(ControlInput { steer: 0.02, ..ControlInput::default() }, 0.01);
        }
        let drift = v.state().lateral_offset;
        for _ in 0..250 {
            // Simple proportional lane-keeping on offset + heading.
            let s = v.state();
            let steer = -0.5 * s.lateral_offset - 2.0 * s.heading;
            v.step(ControlInput { steer, throttle: 0.3, ..ControlInput::default() }, 0.01);
        }
        assert!(v.state().lateral_offset.abs() < drift.abs() / 2.0);
    }

    #[test]
    fn inputs_are_clamped() {
        let c = ControlInput {
            throttle: 7.0,
            brake: -3.0,
            steer: 2.0,
        }
        .clamped();
        assert_eq!(c.throttle, 1.0);
        assert_eq!(c.brake, 0.0);
        assert_eq!(c.steer, 0.6);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let mut v = Vehicle::new(VehicleParams::default());
        v.step(ControlInput::default(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initial_speed_rejected() {
        let _ = Vehicle::with_speed(VehicleParams::default(), -1.0);
    }
}

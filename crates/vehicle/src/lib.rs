//! # easis-vehicle — HIL plant models
//!
//! The physical side of the EASIS architecture validator (paper §4.1):
//! driving dynamics, environment simulation and the fault-tolerant
//! sensor/actuator nodes, reduced to deterministic behavioural models that
//! close the loop around the simulated ECUs:
//!
//! * [`dynamics`] — longitudinal point-mass + kinematic single-track
//!   lateral vehicle model;
//! * [`driver`] — desired-speed + lane-keeping driver with scripted
//!   distraction episodes;
//! * [`environment`] — position-indexed speed limits (SafeSpeed's external
//!   command) and lane geometry (SafeLane's threshold);
//! * [`sensors`] — quantising/noisy sensors with injectable fault modes,
//!   rate-limited actuators;
//! * [`plant`] — the assembled closed loop with the safety-controller
//!   overlay interface.
//!
//! # Examples
//!
//! ```
//! use easis_vehicle::plant::{Plant, SafetyOverlay};
//!
//! let mut plant = Plant::motorway(25.0, 25.0, 13.9, 42);
//! for _ in 0..100 {
//!     plant.step(SafetyOverlay::default(), 0.01);
//! }
//! assert!(plant.state().position > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod dynamics;
pub mod environment;
pub mod plant;
pub mod sensors;

pub use driver::{DriftEpisode, Driver};
pub use dynamics::{ControlInput, Vehicle, VehicleParams, VehicleState};
pub use environment::{Environment, PositionProfile};
pub use plant::{Plant, SafetyOverlay};
pub use sensors::{Actuator, Sensor, SensorFault};

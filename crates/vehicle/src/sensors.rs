//! Sensor and actuator models.
//!
//! The fault-tolerant sensor/actuator nodes of the validator, reduced to
//! behavioural models: quantisation + optional deterministic noise on the
//! sensing side, rate limiting on the actuation side, plus the classic
//! sensor fault modes (stuck-at, offset) the fault-injection campaigns use.

use easis_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Sensor fault modes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SensorFault {
    /// Healthy.
    #[default]
    None,
    /// Output frozen at the given value.
    StuckAt(f64),
    /// Constant additive offset.
    Offset(f64),
}

/// A scalar sensor with quantisation, noise and injectable faults.
#[derive(Debug, Clone)]
pub struct Sensor {
    resolution: f64,
    noise_amplitude: f64,
    fault: SensorFault,
    rng: SimRng,
}

impl Sensor {
    /// Creates a sensor quantising to `resolution` with uniform noise of
    /// ±`noise_amplitude`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive or `noise_amplitude` is
    /// negative.
    pub fn new(resolution: f64, noise_amplitude: f64, seed: u64) -> Self {
        assert!(resolution > 0.0, "resolution must be positive");
        assert!(noise_amplitude >= 0.0, "noise amplitude must be non-negative");
        Sensor {
            resolution,
            noise_amplitude,
            fault: SensorFault::None,
            rng: SimRng::seed_from(seed),
        }
    }

    /// A wheel-speed sensor: 0.05 m/s resolution, 0.02 m/s noise.
    pub fn speed_sensor(seed: u64) -> Self {
        Sensor::new(0.05, 0.02, seed)
    }

    /// A camera-based lateral-position sensor: 2 cm resolution, 1 cm noise.
    pub fn lateral_sensor(seed: u64) -> Self {
        Sensor::new(0.02, 0.01, seed)
    }

    /// Injects (or clears) a fault mode.
    pub fn set_fault(&mut self, fault: SensorFault) {
        self.fault = fault;
    }

    /// Current fault mode.
    pub fn fault(&self) -> SensorFault {
        self.fault
    }

    /// Measures `truth`, applying fault, noise and quantisation.
    pub fn measure(&mut self, truth: f64) -> f64 {
        let raw = match self.fault {
            SensorFault::StuckAt(v) => return v,
            SensorFault::Offset(o) => truth + o,
            SensorFault::None => truth,
        };
        let noise = (self.rng.next_f64() * 2.0 - 1.0) * self.noise_amplitude;
        ((raw + noise) / self.resolution).round() * self.resolution
    }
}

/// A rate-limited scalar actuator (throttle/brake servo).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Actuator {
    position: f64,
    max_rate_per_s: f64,
    lo: f64,
    hi: f64,
}

impl Actuator {
    /// Creates an actuator limited to `[lo, hi]` with a maximum slew rate.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or the rate not positive.
    pub fn new(lo: f64, hi: f64, max_rate_per_s: f64) -> Self {
        assert!(lo < hi, "range must be non-empty");
        assert!(max_rate_per_s > 0.0, "rate must be positive");
        Actuator {
            position: lo,
            max_rate_per_s,
            lo,
            hi,
        }
    }

    /// A throttle/brake servo: full travel in 0.2 s.
    pub fn pedal_servo() -> Self {
        Actuator::new(0.0, 1.0, 5.0)
    }

    /// Current actuator position.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Commands a new target; the actuator slews toward it for `dt_s`
    /// seconds and returns the reached position.
    pub fn command(&mut self, target: f64, dt_s: f64) -> f64 {
        let target = target.clamp(self.lo, self.hi);
        let max_step = self.max_rate_per_s * dt_s;
        let delta = (target - self.position).clamp(-max_step, max_step);
        self.position += delta;
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_quantised_and_near_truth() {
        let mut s = Sensor::speed_sensor(1);
        let m = s.measure(13.9);
        assert!((m - 13.9).abs() <= 0.05 + 0.02, "measured {m}");
        let steps = m / 0.05;
        assert!((steps - steps.round()).abs() < 1e-9, "not quantised: {m}");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let mut a = Sensor::speed_sensor(7);
        let mut b = Sensor::speed_sensor(7);
        for i in 0..50 {
            assert_eq!(a.measure(i as f64), b.measure(i as f64));
        }
    }

    #[test]
    fn stuck_at_fault_freezes_output() {
        let mut s = Sensor::speed_sensor(1);
        s.set_fault(SensorFault::StuckAt(3.3));
        assert_eq!(s.measure(100.0), 3.3);
        assert_eq!(s.measure(0.0), 3.3);
        assert_eq!(s.fault(), SensorFault::StuckAt(3.3));
    }

    #[test]
    fn offset_fault_shifts_output() {
        let mut s = Sensor::new(0.01, 0.0, 1);
        s.set_fault(SensorFault::Offset(5.0));
        let m = s.measure(10.0);
        assert!((m - 15.0).abs() < 0.011, "measured {m}");
    }

    #[test]
    fn actuator_slews_at_bounded_rate() {
        let mut a = Actuator::pedal_servo();
        let p = a.command(1.0, 0.1); // max 0.5 travel in 0.1s
        assert!((p - 0.5).abs() < 1e-9);
        let p = a.command(1.0, 0.1);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn actuator_clamps_targets() {
        let mut a = Actuator::pedal_servo();
        a.command(5.0, 10.0);
        assert_eq!(a.position(), 1.0);
        a.command(-5.0, 10.0);
        assert_eq!(a.position(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_rejected() {
        let _ = Sensor::new(0.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_actuator_range_rejected() {
        let _ = Actuator::new(1.0, 1.0, 1.0);
    }
}

//! Road environment and external commands.
//!
//! The environment-simulation node of the EASIS validator: position-indexed
//! speed limits (the "externally commanded maximum value" SafeSpeed
//! enforces), lane geometry for SafeLane, and scripted driver disturbances.

use serde::{Deserialize, Serialize};

/// A piecewise-constant, position-indexed profile (speed limits, curvature).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionProfile {
    /// Breakpoints as `(from_position_m, value)`, sorted by position.
    points: Vec<(f64, f64)>,
    default: f64,
}

impl PositionProfile {
    /// Creates a profile that returns `default` everywhere.
    pub fn constant(default: f64) -> Self {
        PositionProfile {
            points: Vec::new(),
            default,
        }
    }

    /// Adds a breakpoint: from `position` on, the profile returns `value`.
    ///
    /// # Panics
    ///
    /// Panics if breakpoints are not added in increasing position order.
    pub fn then_at(mut self, position: f64, value: f64) -> Self {
        if let Some(&(last, _)) = self.points.last() {
            assert!(position > last, "breakpoints must increase");
        }
        self.points.push((position, value));
        self
    }

    /// Value of the profile at `position`.
    pub fn at(&self, position: f64) -> f64 {
        self.points
            .iter()
            .rev()
            .find(|&&(from, _)| position >= from)
            .map(|&(_, v)| v)
            .unwrap_or(self.default)
    }
}

/// The road/traffic environment around the vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Commanded maximum speed by position \[m/s\] (SafeSpeed input).
    pub speed_limit: PositionProfile,
    /// Lane half-width \[m\]: beyond this offset the vehicle departs the
    /// lane (SafeLane warning threshold).
    pub lane_half_width: f64,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            speed_limit: PositionProfile::constant(27.8), // 100 km/h
            lane_half_width: 1.75,
        }
    }
}

impl Environment {
    /// Creates the default motorway environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// A scenario with a speed-limit drop: `high` m/s until `at_position`,
    /// `low` m/s afterwards — the canonical SafeSpeed test.
    pub fn with_limit_drop(high: f64, low: f64, at_position: f64) -> Self {
        Environment {
            speed_limit: PositionProfile::constant(high).then_at(at_position, low),
            ..Environment::default()
        }
    }

    /// Commanded maximum speed at a position.
    pub fn limit_at(&self, position: f64) -> f64 {
        self.speed_limit.at(position)
    }

    /// `true` if a lateral offset counts as lane departure.
    pub fn is_lane_departure(&self, lateral_offset: f64) -> bool {
        lateral_offset.abs() > self.lane_half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_is_flat() {
        let p = PositionProfile::constant(5.0);
        assert_eq!(p.at(-100.0), 5.0);
        assert_eq!(p.at(1e9), 5.0);
    }

    #[test]
    fn breakpoints_apply_from_their_position() {
        let p = PositionProfile::constant(27.8)
            .then_at(500.0, 13.9)
            .then_at(1200.0, 22.2);
        assert_eq!(p.at(0.0), 27.8);
        assert_eq!(p.at(499.9), 27.8);
        assert_eq!(p.at(500.0), 13.9);
        assert_eq!(p.at(1199.0), 13.9);
        assert_eq!(p.at(5000.0), 22.2);
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn out_of_order_breakpoints_rejected() {
        let _ = PositionProfile::constant(1.0).then_at(10.0, 2.0).then_at(5.0, 3.0);
    }

    #[test]
    fn limit_drop_scenario() {
        let env = Environment::with_limit_drop(27.8, 13.9, 1000.0);
        assert_eq!(env.limit_at(900.0), 27.8);
        assert_eq!(env.limit_at(1100.0), 13.9);
    }

    #[test]
    fn lane_departure_threshold() {
        let env = Environment::default();
        assert!(!env.is_lane_departure(1.0));
        assert!(env.is_lane_departure(1.8));
        assert!(env.is_lane_departure(-1.8));
    }
}

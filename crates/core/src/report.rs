//! Detected faults, supervision reports and derived states.
//!
//! The Software Watchdog "generates individual supervision reports on
//! runnables. These reports can be used to derive error indication states
//! of the tasks, which in turn can be used for determining the status of
//! the applications" (paper §3.2). The types here are that reporting
//! vocabulary, shared with the Fault Management Framework.

use easis_osek::task::TaskId;
use easis_rte::mapping::ApplicationId;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three error classes the Software Watchdog detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Too few aliveness indications within a monitoring period — the
    /// runnable is blocked/preempted/starved.
    Aliveness,
    /// Too many aliveness indications within a monitoring period — the
    /// runnable is excessively dispatched.
    ArrivalRate,
    /// The observed successor is not in the predecessor's allowed set.
    ProgramFlow,
}

impl FaultKind {
    /// All kinds, for iteration in reports and campaigns.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::Aliveness,
        FaultKind::ArrivalRate,
        FaultKind::ProgramFlow,
    ];

    /// Stable machine-readable tag.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Aliveness => "aliveness",
            FaultKind::ArrivalRate => "arrival_rate",
            FaultKind::ProgramFlow => "program_flow",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl From<FaultKind> for easis_obs::FaultClass {
    fn from(kind: FaultKind) -> easis_obs::FaultClass {
        match kind {
            FaultKind::Aliveness => easis_obs::FaultClass::Aliveness,
            FaultKind::ArrivalRate => easis_obs::FaultClass::ArrivalRate,
            FaultKind::ProgramFlow => easis_obs::FaultClass::ProgramFlow,
        }
    }
}

/// One detected fault, as handed to the Fault Management Framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedFault {
    /// Detection time.
    pub at: Instant,
    /// The offending runnable.
    pub runnable: RunnableId,
    /// Error class.
    pub kind: FaultKind,
}

impl fmt::Display for DetectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error on {} at {}", self.kind, self.runnable, self.at)
    }
}

/// Health verdict of a task / application / the ECU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthState {
    /// No threshold crossed.
    #[default]
    Ok,
    /// An error indication threshold was crossed.
    Faulty,
}

impl HealthState {
    /// `true` for [`HealthState::Faulty`].
    pub fn is_faulty(self) -> bool {
        self == HealthState::Faulty
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthState::Ok => "ok",
            HealthState::Faulty => "faulty",
        })
    }
}

/// A state-change notice emitted by the task state indication unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateChange {
    /// A task crossed its error threshold.
    TaskFaulty {
        /// The faulty task.
        task: TaskId,
        /// When the threshold was crossed.
        at: Instant,
    },
    /// An application turned faulty (one of its tasks did).
    ApplicationFaulty {
        /// The faulty application.
        app: ApplicationId,
        /// When it turned faulty.
        at: Instant,
    },
    /// The global ECU state turned faulty.
    EcuFaulty {
        /// When it turned faulty.
        at: Instant,
    },
}

/// Live counter values of one monitored runnable — the quantities the
/// paper's ControlDesk plots show (Figure 5/6 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunnableCounters {
    /// Aliveness Counter: heartbeats seen in the current aliveness period.
    pub ac: u32,
    /// Arrival Rate Counter: heartbeats seen in the current rate period.
    pub arc: u32,
    /// Cycle Counter for Aliveness: elapsed watchdog cycles in the period.
    pub cca: u32,
    /// Cycle Counter for Arrival Rate.
    pub ccar: u32,
    /// Activation Status.
    pub activation: bool,
    /// Cumulative aliveness errors detected (the "AM Result" series).
    pub aliveness_errors: u32,
    /// Cumulative arrival-rate errors detected (the "ARM Result" series).
    pub arrival_rate_errors: u32,
    /// Cumulative program-flow errors attributed to this runnable (the
    /// "PFC Result" series).
    pub program_flow_errors: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_tags_are_stable() {
        assert_eq!(FaultKind::Aliveness.tag(), "aliveness");
        assert_eq!(FaultKind::ArrivalRate.to_string(), "arrival_rate");
        assert_eq!(FaultKind::ALL.len(), 3);
    }

    #[test]
    fn detected_fault_display_names_everything() {
        let f = DetectedFault {
            at: Instant::from_millis(30),
            runnable: RunnableId(2),
            kind: FaultKind::ProgramFlow,
        };
        let s = f.to_string();
        assert!(s.contains("program_flow") && s.contains("R2"), "{s}");
    }

    #[test]
    fn health_state_defaults_ok() {
        assert_eq!(HealthState::default(), HealthState::Ok);
        assert!(!HealthState::Ok.is_faulty());
        assert!(HealthState::Faulty.is_faulty());
        assert_eq!(HealthState::Faulty.to_string(), "faulty");
    }

    #[test]
    fn counters_default_to_zero() {
        let c = RunnableCounters::default();
        assert_eq!(c.ac, 0);
        assert_eq!(c.aliveness_errors, 0);
        assert!(!c.activation);
    }
}

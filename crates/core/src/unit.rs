//! The unified [`MonitoringUnit`] interface over the three monitoring
//! approaches.
//!
//! The heartbeat monitor, the program flow checker and the active-probe
//! monitor grew three hand-rolled call shapes (`record`, `observe`,
//! `respond` + three `end_of_cycle`s). De Florio's dependability-services
//! experience argues for one uniform service API across monitoring
//! components; this module provides it, so the validator and the ablation
//! benches can drive any unit — or a heterogeneous set of them — through
//! one interface:
//!
//! * [`MonitoringUnit::observe`] feeds one glue-side indication (a
//!   heartbeat or a challenge response) into the unit;
//! * [`MonitoringUnit::check`] runs the unit's periodic end-of-cycle check
//!   and returns the faults it detected.
//!
//! Each unit ignores event kinds it does not understand (a heartbeat
//! monitor is not interested in probe responses and vice versa), so a
//! driver can broadcast every event to every unit.

use crate::heartbeat::HeartbeatMonitor;
use crate::pfc::{FlowVerdict, ProgramFlowChecker, LOOKUP_COST_CYCLES};
use crate::probe::ActiveProbeMonitor;
use crate::report::{DetectedFault, FaultKind};
use easis_sim::cpu::CostMeter;
use easis_sim::time::Instant;

/// One glue-side indication, as fed to a [`MonitoringUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorEvent {
    /// An aliveness indication (passive heartbeat).
    Heartbeat {
        /// The indicating runnable.
        runnable: easis_rte::runnable::RunnableId,
        /// Indication time.
        at: Instant,
    },
    /// A challenge response (active probing).
    ProbeResponse {
        /// The responding runnable.
        runnable: easis_rte::runnable::RunnableId,
        /// The echoed (transformed) challenge value.
        response: u64,
        /// Response time.
        at: Instant,
    },
}

/// A monitoring unit of the Software Watchdog: consumes glue-side
/// indications and detects faults at its periodic check.
pub trait MonitoringUnit {
    /// Feeds one indication into the unit. Units ignore event kinds they
    /// do not understand; the cost of handled events is charged to
    /// `costs`.
    fn observe(&mut self, event: MonitorEvent, costs: &mut CostMeter);

    /// Runs the end-of-cycle check at `now` and returns the detected
    /// faults. Check costs are charged to `costs`.
    fn check(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault>;
}

impl MonitoringUnit for HeartbeatMonitor {
    fn observe(&mut self, event: MonitorEvent, costs: &mut CostMeter) {
        if let MonitorEvent::Heartbeat { runnable, at } = event {
            self.record(runnable, at, costs);
        }
    }

    fn check(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault> {
        self.end_of_cycle(now, costs)
    }
}

impl MonitoringUnit for ProgramFlowChecker {
    fn observe(&mut self, event: MonitorEvent, costs: &mut CostMeter) {
        if let MonitorEvent::Heartbeat { runnable, at } = event {
            costs.charge(LOOKUP_COST_CYCLES);
            if let FlowVerdict::Violation { .. } = self.observe_at(runnable, at) {
                self.push_pending(DetectedFault {
                    at,
                    runnable,
                    kind: FaultKind::ProgramFlow,
                });
            }
        }
    }

    fn check(&mut self, _now: Instant, _costs: &mut CostMeter) -> Vec<DetectedFault> {
        self.take_pending()
    }
}

impl MonitoringUnit for ActiveProbeMonitor {
    fn observe(&mut self, event: MonitorEvent, costs: &mut CostMeter) {
        if let MonitorEvent::ProbeResponse {
            runnable,
            response,
            at,
        } = event
        {
            self.respond(runnable, response, at, costs);
        }
    }

    fn check(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault> {
        self.end_of_cycle(now, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunnableHypothesis;
    use crate::pfc::FlowTable;
    use crate::probe::expected_response;
    use easis_rte::runnable::RunnableId;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }
    fn beat(n: u32, ms: u64) -> MonitorEvent {
        MonitorEvent::Heartbeat {
            runnable: r(n),
            at: t(ms),
        }
    }

    /// Drives a heterogeneous set of units through the one interface, the
    /// way the ablation benches do.
    fn drive(units: &mut [&mut dyn MonitoringUnit], events: &[MonitorEvent], now: Instant) -> usize {
        let mut costs = CostMeter::new();
        for unit in units.iter_mut() {
            for &event in events {
                unit.observe(event, &mut costs);
            }
        }
        units
            .iter_mut()
            .map(|u| u.check(now, &mut costs).len())
            .sum()
    }

    #[test]
    fn heartbeat_monitor_through_the_trait() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut costs = CostMeter::new();
        MonitoringUnit::observe(&mut m, beat(0, 5), &mut costs);
        assert!(MonitoringUnit::check(&mut m, t(10), &mut costs).is_empty());
        // Silent cycle → aliveness fault from the trait path too.
        let faults = MonitoringUnit::check(&mut m, t(20), &mut costs);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Aliveness);
    }

    #[test]
    fn heartbeat_monitor_ignores_probe_responses() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut costs = CostMeter::new();
        MonitoringUnit::observe(
            &mut m,
            MonitorEvent::ProbeResponse {
                runnable: r(0),
                response: 42,
                at: t(1),
            },
            &mut costs,
        );
        assert_eq!(m.counters(r(0)).unwrap().ac, 0);
        assert_eq!(costs.total_cycles(), 0, "ignored events are free");
    }

    #[test]
    fn flow_checker_buffers_violations_until_check() {
        let mut table = FlowTable::new();
        table.allow_entry(r(0));
        table.allow(r(0), r(1));
        let mut pfc = ProgramFlowChecker::new(table);
        let mut costs = CostMeter::new();
        MonitoringUnit::observe(&mut pfc, beat(0, 1), &mut costs);
        MonitoringUnit::observe(&mut pfc, beat(0, 2), &mut costs); // 0→0 violation
        let faults = MonitoringUnit::check(&mut pfc, t(10), &mut costs);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::ProgramFlow);
        assert_eq!(faults[0].at, t(2), "fault carries the observation time");
        // Drained: a second check is empty.
        assert!(MonitoringUnit::check(&mut pfc, t(20), &mut costs).is_empty());
        // The look-up cost was charged per observation.
        assert_eq!(costs.total_cycles(), 2 * LOOKUP_COST_CYCLES);
    }

    #[test]
    fn probe_monitor_through_the_trait() {
        let mut probe = ActiveProbeMonitor::new([r(0)], 7);
        let mut costs = CostMeter::new();
        let c = probe.challenge_for(r(0)).unwrap();
        MonitoringUnit::observe(
            &mut probe,
            MonitorEvent::ProbeResponse {
                runnable: r(0),
                response: expected_response(c),
                at: t(5),
            },
            &mut costs,
        );
        assert!(MonitoringUnit::check(&mut probe, t(10), &mut costs).is_empty());
        // Probe monitors ignore heartbeats: a heartbeat is not a response.
        MonitoringUnit::observe(&mut probe, beat(0, 15), &mut costs);
        let faults = MonitoringUnit::check(&mut probe, t(20), &mut costs);
        assert_eq!(faults.len(), 1);
    }

    #[test]
    fn heterogeneous_units_can_share_one_driver() {
        let mut hb = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut table = FlowTable::new();
        table.allow_entry(r(0));
        table.allow(r(0), r(1));
        let mut pfc = ProgramFlowChecker::new(table);
        // r0 beats twice (0→0 flow violation) — heartbeat unit satisfied,
        // PFC violated: exactly one fault across both units.
        let events = [beat(0, 1), beat(0, 2)];
        let total = drive(&mut [&mut hb, &mut pfc], &events, t(10));
        assert_eq!(total, 1);
    }
}

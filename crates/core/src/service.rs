//! The Software Watchdog service facade.
//!
//! [`SoftwareWatchdog`] wires the three units of the paper's functional
//! architecture (Figure 2) together:
//!
//! * heartbeats arrive through [`SoftwareWatchdog::heartbeat`] (the L1→L3
//!   aliveness-indication interface; also exposed as
//!   [`easis_rte::runnable::HeartbeatSink`]);
//! * the heartbeat monitoring unit counts them, the PFC unit checks their
//!   order immediately;
//! * the watchdog's periodic OS task calls [`SoftwareWatchdog::run_cycle`],
//!   which performs the end-of-period checks and feeds every detected
//!   fault into the task state indication unit;
//! * detected faults and state changes accumulate in an outbox for the
//!   Fault Management Framework (the second interface of §4.4).
//!
//! CPU cost of every monitoring action is charged to a [`CostMeter`] so the
//! overhead experiments can compare against signature-based control-flow
//! checking.

use crate::config::WatchdogConfig;
use crate::heartbeat::{HeartbeatMonitor, HeartbeatSnapshot};
use crate::pfc::{FlowVerdict, PfcSnapshot, ProgramFlowChecker, LOOKUP_COST_CYCLES};
use crate::report::{DetectedFault, FaultKind, HealthState, RunnableCounters, StateChange};
use crate::tsi::{TaskStateIndication, TsiSnapshot};
use easis_obs::{ObsEvent, ObsSink};
use easis_osek::task::TaskId;
use easis_rte::mapping::ApplicationId;
use easis_rte::runnable::{HeartbeatSink, RunnableId};
use easis_sim::cpu::{CostMeter, CpuModel};
use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::Instant;
use std::sync::Arc;

/// Report of one watchdog cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Faults detected in this cycle (heartbeat checks; PFC faults are
    /// detected between cycles and appear in the outbox immediately).
    pub faults: Vec<DetectedFault>,
    /// Task/application/ECU state changes caused by this cycle.
    pub state_changes: Vec<StateChange>,
}

/// The EASIS Software Watchdog dependability service.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_sim::time::{Duration, Instant};
/// use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
/// use easis_watchdog::SoftwareWatchdog;
///
/// let config = WatchdogConfig::builder(Duration::from_millis(10))
///     .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
///     .build();
/// let mut wd = SoftwareWatchdog::new(config);
/// // A silent runnable is detected at the first cycle check:
/// let report = wd.run_cycle(Instant::from_millis(10));
/// assert_eq!(report.faults.len(), 1);
/// ```
#[derive(Debug)]
pub struct SoftwareWatchdog {
    /// The compiled configuration, shared: a fault-injection campaign
    /// compiles the config (IdIndex interning, flow-table bitsets) once and
    /// every trial's service instance points at the same frozen artifact.
    config: Arc<WatchdogConfig>,
    heartbeat_unit: HeartbeatMonitor,
    /// One flow checker per hosting-task slot (runnables of different
    /// tasks interleave freely under preemption; only the sequence
    /// *within* a task's chart is constrained), plus one trailing checker
    /// shared by all runnables not mapped to any task. Indexed by the
    /// values of [`SoftwareWatchdog::slot_scope`].
    pfc_units: Vec<ProgramFlowChecker>,
    tsi_unit: TaskStateIndication,
    /// Runnable slot → index into [`SoftwareWatchdog::pfc_units`]
    /// (`task_index` slot of the hosting task, or `pfc_units.len() - 1`
    /// for unmapped runnables). Frozen at construction.
    slot_scope: Vec<u32>,
    /// Task slot → cached `tsi_unit.task_state(..).is_faulty()`, kept in
    /// sync by [`SoftwareWatchdog::apply_state_changes`] and
    /// [`SoftwareWatchdog::acknowledge_task_recovered`] so the per-
    /// heartbeat faulty-task gate is an array load instead of a map probe.
    task_faulty: Vec<bool>,
    /// PFC violations attributed per runnable slot.
    pfc_errors: Vec<u32>,
    outbox: Vec<DetectedFault>,
    state_outbox: Vec<StateChange>,
    /// Capacity-retained scratch for TSI state changes on the heartbeat
    /// (PFC violation) path.
    change_scratch: Vec<StateChange>,
    costs: CostMeter,
    cycles_run: u64,
    last_heartbeat_now: Instant,
    obs: ObsSink,
    /// Last-write epoch per PFC scope (delta-restore region stamps; the
    /// heartbeat unit stamps itself, see `easis_sim::snap`).
    pfc_stamps: Vec<u64>,
    tsi_stamp: u64,
    task_faulty_stamp: u64,
    pfc_errors_stamp: u64,
    /// One stamp covers both outboxes — they fill and drain together.
    outbox_stamp: u64,
    epoch: u64,
    derived_from: u64,
}

impl SoftwareWatchdog {
    /// Creates the service from its configuration.
    pub fn new(config: WatchdogConfig) -> Self {
        SoftwareWatchdog::from_shared(Arc::new(config))
    }

    /// Creates the service from an already-compiled shared configuration.
    /// Campaigns use this to build one node per worker without recompiling
    /// the config for every trial.
    pub fn from_shared(config: Arc<WatchdogConfig>) -> Self {
        let heartbeat_unit = HeartbeatMonitor::new(
            config
                .monitored()
                .filter_map(|r| config.hypothesis(r).copied()),
        );
        let tsi_unit = TaskStateIndication::new(
            config.mapping().clone(),
            config.error_threshold(),
            config.ecu_faulty_app_threshold(),
        );
        let task_count = config.task_index().len();
        let slot_scope: Vec<u32> = config
            .runnable_index()
            .iter()
            .map(|id| match config.mapping().task_of(RunnableId(id)) {
                Some(task) => config
                    .task_index()
                    .slot_of_task(task)
                    .expect("mapped tasks are interned at build time"),
                None => task_count as u32,
            })
            .collect();
        // One checker per task scope plus the shared unmapped scope; all
        // clones of one prototype so the table is compiled once.
        let prototype = ProgramFlowChecker::new(config.flow_table().clone());
        let pfc_units = vec![prototype; task_count + 1];
        let pfc_errors = vec![0; config.runnable_index().len()];
        SoftwareWatchdog {
            config,
            heartbeat_unit,
            pfc_stamps: vec![0; pfc_units.len()],
            pfc_units,
            tsi_unit,
            slot_scope,
            task_faulty: vec![false; task_count],
            pfc_errors,
            outbox: Vec::new(),
            state_outbox: Vec::new(),
            change_scratch: Vec::new(),
            costs: CostMeter::new(),
            cycles_run: 0,
            last_heartbeat_now: Instant::ZERO,
            obs: ObsSink::disabled(),
            tsi_stamp: 0,
            task_faulty_stamp: 0,
            pfc_errors_stamp: 0,
            outbox_stamp: 0,
            epoch: 0,
            derived_from: 0,
        }
    }

    /// Attaches an observability sink to the service and all three
    /// monitoring units. A disabled sink — the default — makes every
    /// recording call a no-op, and recording never charges the
    /// [`CostMeter`], so attaching a sink does not perturb the simulated
    /// cost model.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.heartbeat_unit.attach_obs(obs.clone());
        self.tsi_unit.attach_obs(obs.clone());
        for checker in &mut self.pfc_units {
            checker.attach_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// The attached observability sink (disabled unless
    /// [`SoftwareWatchdog::attach_obs`] was called).
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// The aliveness-indication service routine: called by the glue code of
    /// every monitored runnable. Feeds the heartbeat monitoring unit and
    /// the PFC unit; a flow violation is a fault immediately. The whole
    /// nominal path is slot-indexed array work — no map probes, no
    /// allocations.
    pub fn heartbeat(&mut self, runnable: RunnableId, now: Instant) {
        self.last_heartbeat_now = now;
        let runnable_slot = self.config.runnable_index().slot_of_runnable(runnable);
        // A runnable whose hosting task is already marked faulty is no
        // longer supervised (its AS is cleared and its flow is ignored)
        // until fault treatment acknowledges recovery — this is why the
        // paper's Figure 6 plots freeze once the task state flips.
        // Runnables outside the frozen index are never mapped to a task,
        // so they cannot be gated here.
        if self.config.deactivate_on_faulty_task() {
            if let Some(slot) = runnable_slot {
                let scope = self.slot_scope[slot as usize] as usize;
                if scope < self.task_faulty.len() && self.task_faulty[scope] {
                    self.costs.charge(crate::heartbeat::HEARTBEAT_COST_CYCLES);
                    return;
                }
            }
        }
        self.heartbeat_unit.record(runnable, now, &mut self.costs);
        self.costs.charge(LOOKUP_COST_CYCLES);
        let scope = match runnable_slot {
            Some(slot) => self.slot_scope[slot as usize] as usize,
            None => self.pfc_units.len() - 1,
        };
        let verdict = self.pfc_units[scope].observe_at(runnable, now);
        // One stamp covers every PFC write this observation performs (the
        // epoch cannot change mid-call).
        self.pfc_stamps[scope] = self.epoch;
        if let FlowVerdict::Violation { .. } = verdict {
            // Only flow-monitored runnables can violate, and the flow
            // table's ids are interned at build time.
            let slot = runnable_slot.expect("flow-monitored runnables are interned") as usize;
            self.pfc_errors[slot] += 1;
            self.pfc_errors_stamp = self.epoch;
            let fault = DetectedFault {
                at: now,
                runnable,
                kind: FaultKind::ProgramFlow,
            };
            self.outbox.push(fault);
            self.outbox_stamp = self.epoch;
            let mut changes = std::mem::take(&mut self.change_scratch);
            changes.clear();
            self.tsi_unit.record_into(fault, &mut changes);
            self.tsi_stamp = self.epoch;
            self.apply_state_changes(&changes);
            self.state_outbox.extend_from_slice(&changes);
            self.change_scratch = changes;
        }
    }

    /// The periodic watchdog task body: advances all cycle counters,
    /// performs the end-of-period checks, and updates the TSI unit.
    /// Convenience wrapper over [`SoftwareWatchdog::run_cycle_into`]
    /// returning an owned report; a clean cycle still performs zero heap
    /// allocations (empty vectors never allocate). Callers on the campaign
    /// hot path should hold a reusable [`CycleReport`] and call
    /// `run_cycle_into` so *faulty* cycles are allocation-free too.
    pub fn run_cycle(&mut self, now: Instant) -> CycleReport {
        let mut report = CycleReport::default();
        self.run_cycle_into(now, &mut report);
        report
    }

    /// [`SoftwareWatchdog::run_cycle`] writing into a caller-owned,
    /// capacity-retained report buffer (cleared first). With a reused
    /// buffer, a cycle allocates nothing once the buffer has grown to the
    /// fault-burst high-water mark — the faulty-trial half of the
    /// campaign's allocation-free contract.
    pub fn run_cycle_into(&mut self, now: Instant, report: &mut CycleReport) {
        report.faults.clear();
        report.state_changes.clear();
        self.cycles_run += 1;
        self.obs.record(
            now,
            ObsEvent::CycleCheckStart {
                cycle: self.cycles_run,
            },
        );
        let cycles_before = self.costs.total_cycles();
        self.heartbeat_unit
            .end_of_cycle_into(now, &mut self.costs, &mut report.faults);
        for i in 0..report.faults.len() {
            let fault = report.faults[i];
            let start = report.state_changes.len();
            self.tsi_unit.record_into(fault, &mut report.state_changes);
            self.tsi_stamp = self.epoch;
            self.apply_state_changes(&report.state_changes[start..]);
        }
        if self.obs.is_enabled() {
            let spent = self.costs.total_cycles() - cycles_before;
            self.obs.observe_latency(
                "watchdog.cycle_check",
                CpuModel::default().cycles_to_time(spent),
            );
        }
        self.obs.record(
            now,
            ObsEvent::CycleCheckEnd {
                cycle: self.cycles_run,
                faults: report.faults.len() as u32,
            },
        );
        if !report.faults.is_empty() || !report.state_changes.is_empty() {
            self.outbox.extend_from_slice(&report.faults);
            self.state_outbox.extend_from_slice(&report.state_changes);
            self.outbox_stamp = self.epoch;
        }
    }

    /// Honour `deactivate_on_faulty_task` (clear the AS of every runnable
    /// of a newly faulty task so errors are not re-reported while fault
    /// treatment is pending — this is what keeps the accumulated aliveness
    /// error count at one in the paper's Figure 6) and keep the
    /// `task_faulty` slot cache in sync with the TSI verdicts.
    fn apply_state_changes(&mut self, changes: &[StateChange]) {
        for change in changes {
            if let StateChange::TaskFaulty { task, .. } = change {
                self.on_task_faulty(*task);
            }
        }
    }

    fn on_task_faulty(&mut self, task: TaskId) {
        if let Some(slot) = self.config.task_index().slot_of_task(task) {
            self.task_faulty[slot as usize] = true;
            self.task_faulty_stamp = self.epoch;
        }
        if self.config.deactivate_on_faulty_task() {
            for runnable in self.config.mapping().runnables_of_task(task) {
                self.heartbeat_unit.set_active(runnable, false);
            }
        }
    }

    /// Sets a runnable's activation status (the AS data resource).
    /// Returns `false` for unmonitored runnables.
    pub fn set_activation(&mut self, runnable: RunnableId, active: bool) -> bool {
        self.heartbeat_unit.set_active(runnable, active)
    }

    /// Dynamically reconfigures the fault hypothesis of a runnable (the
    /// paper's outlook names "dynamic reconfiguration of applications" as
    /// the next step): after a mode change or degraded restart, an
    /// application may legitimately run at a different rate, and the
    /// hypothesis must follow. Counters restart under the new hypothesis.
    pub fn reconfigure(&mut self, hypothesis: crate::config::RunnableHypothesis) {
        self.heartbeat_unit.reconfigure(hypothesis);
    }

    /// Acknowledges fault treatment of a task: clears its error vector and
    /// verdict, re-activates its runnables and resets the PFC position.
    pub fn acknowledge_task_recovered(&mut self, task: TaskId) {
        self.tsi_unit.reset_task(task);
        self.tsi_stamp = self.epoch;
        for runnable in self.config.mapping().runnables_of_task(task) {
            self.heartbeat_unit.set_active(runnable, true);
        }
        if let Some(slot) = self.config.task_index().slot_of_task(task) {
            self.task_faulty[slot as usize] = false;
            self.task_faulty_stamp = self.epoch;
            self.pfc_units[slot as usize].reset_position();
            self.pfc_stamps[slot as usize] = self.epoch;
        }
    }

    /// Live counters of a runnable — the Figure 5/6 plot quantities.
    pub fn counters(&self, runnable: RunnableId) -> Option<RunnableCounters> {
        self.heartbeat_unit.counters(runnable).map(|mut c| {
            c.program_flow_errors = self
                .config
                .runnable_index()
                .slot_of_runnable(runnable)
                .map_or(0, |slot| self.pfc_errors[slot as usize]);
            c
        })
    }

    /// Total program-flow errors detected so far (the "PFC Result" series
    /// summed over runnables).
    pub fn pfc_errors_total(&self) -> u64 {
        self.pfc_units.iter().map(|u| u.errors_detected()).sum()
    }

    /// Current verdict of a task.
    pub fn task_state(&self, task: TaskId) -> HealthState {
        self.tsi_unit.task_state(task)
    }

    /// Current verdict of an application.
    pub fn app_state(&self, app: ApplicationId) -> HealthState {
        self.tsi_unit.app_state(app)
    }

    /// Current global ECU verdict.
    pub fn ecu_state(&self) -> HealthState {
        self.tsi_unit.ecu_state()
    }

    /// Drains the fault outbox (the interface to the Fault Management
    /// Framework).
    pub fn take_faults(&mut self) -> Vec<DetectedFault> {
        if !self.outbox.is_empty() {
            self.outbox_stamp = self.epoch;
        }
        std::mem::take(&mut self.outbox)
    }

    /// Drains the state-change outbox.
    pub fn take_state_changes(&mut self) -> Vec<StateChange> {
        if !self.state_outbox.is_empty() {
            self.outbox_stamp = self.epoch;
        }
        std::mem::take(&mut self.state_outbox)
    }

    /// Drains pending faults into `out` (appending), retaining the outbox
    /// allocation — the allocation-free alternative to
    /// [`SoftwareWatchdog::take_faults`] for the campaign hot path.
    pub fn drain_faults_into(&mut self, out: &mut Vec<DetectedFault>) {
        if !self.outbox.is_empty() {
            self.outbox_stamp = self.epoch;
        }
        out.extend_from_slice(&self.outbox);
        self.outbox.clear();
    }

    /// Drains pending state changes into `out` (appending), retaining the
    /// outbox allocation.
    pub fn drain_state_changes_into(&mut self, out: &mut Vec<StateChange>) {
        if !self.state_outbox.is_empty() {
            self.outbox_stamp = self.epoch;
        }
        out.extend_from_slice(&self.state_outbox);
        self.state_outbox.clear();
    }

    /// Number of pending (undrained) faults.
    pub fn pending_faults(&self) -> usize {
        self.outbox.len()
    }

    /// Accumulated monitoring cost.
    pub fn costs(&self) -> &CostMeter {
        &self.costs
    }

    /// Watchdog cycles executed.
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The configuration in use.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// The shared compiled configuration (cheap to clone; campaigns hand
    /// it to [`SoftwareWatchdog::from_shared`] for pooled rebuilds).
    pub fn shared_config(&self) -> Arc<WatchdogConfig> {
        Arc::clone(&self.config)
    }

    /// Resets every monitoring unit to its just-built state while keeping
    /// the compiled configuration and the attached observability sink.
    /// After `reset()` the service is indistinguishable from
    /// `SoftwareWatchdog::from_shared(self.shared_config())` — the world-
    /// pooling contract of the campaign engine.
    pub fn reset(&mut self) {
        self.heartbeat_unit.reset();
        for checker in &mut self.pfc_units {
            checker.reset();
        }
        self.tsi_unit.reset();
        self.task_faulty.fill(false);
        self.pfc_errors.fill(0);
        self.outbox.clear();
        self.state_outbox.clear();
        self.change_scratch.clear();
        self.costs = CostMeter::new();
        self.cycles_run = 0;
        self.last_heartbeat_now = Instant::ZERO;
        // Every region is dirty relative to any earlier snapshot, and the
        // lineage is severed so a later restore takes the full path.
        self.pfc_stamps.fill(self.epoch);
        self.tsi_stamp = self.epoch;
        self.task_faulty_stamp = self.epoch;
        self.pfc_errors_stamp = self.epoch;
        self.outbox_stamp = self.epoch;
        self.derived_from = 0;
    }

    /// Captures every piece of watchdog runtime state — monitor counters,
    /// PFC positions, TSI verdicts, outboxes, cost meter — into a
    /// deterministic snapshot. The compiled configuration, slot scope and
    /// observability sink are static and stay out of it. Convenience
    /// wrapper over [`SoftwareWatchdog::snapshot_into`].
    pub fn snapshot(&mut self) -> WatchdogSnapshot {
        let mut snap = WatchdogSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures runtime state into `snap`, retaining the snapshot's buffer
    /// capacity (allocation-free once warm). Follows the
    /// `easis_sim::snap` protocol: the capture records the lineage so a
    /// later [`SoftwareWatchdog::restore_from`] only copies the regions
    /// written since.
    pub fn snapshot_into(&mut self, snap: &mut WatchdogSnapshot) {
        self.heartbeat_unit.snapshot_into(&mut snap.heartbeat_unit);
        snap.pfc_units
            .resize_with(self.pfc_units.len(), PfcSnapshot::default);
        for (unit, image) in self.pfc_units.iter().zip(snap.pfc_units.iter_mut()) {
            unit.snapshot_into(image);
        }
        snap.pfc_stamps.clone_from(&self.pfc_stamps);
        self.tsi_unit.snapshot_into(&mut snap.tsi_unit);
        snap.tsi_stamp = self.tsi_stamp;
        snap.task_faulty.clone_from(&self.task_faulty);
        snap.task_faulty_stamp = self.task_faulty_stamp;
        snap.pfc_errors.clone_from(&self.pfc_errors);
        snap.pfc_errors_stamp = self.pfc_errors_stamp;
        snap.outbox.clear();
        snap.outbox.extend_from_slice(&self.outbox);
        snap.state_outbox.clear();
        snap.state_outbox.extend_from_slice(&self.state_outbox);
        snap.outbox_stamp = self.outbox_stamp;
        snap.costs = self.costs;
        snap.cycles_run = self.cycles_run;
        snap.last_heartbeat_now = self.last_heartbeat_now;
        snap.epoch = self.epoch;
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures runtime state into `snap` without participating in the
    /// delta-restore lineage: the service's epoch and `derived_from` are
    /// untouched and the image carries `id == 0`. The macro-stepping engine
    /// samples through this between a campaign checkpoint and its restore,
    /// so an interleaved capture must not degrade the restore to the
    /// full-copy path.
    pub fn image_into(&self, snap: &mut WatchdogSnapshot) {
        self.heartbeat_unit.image_into(&mut snap.heartbeat_unit);
        snap.pfc_units
            .resize_with(self.pfc_units.len(), PfcSnapshot::default);
        for (unit, image) in self.pfc_units.iter().zip(snap.pfc_units.iter_mut()) {
            unit.snapshot_into(image);
        }
        snap.pfc_stamps.clone_from(&self.pfc_stamps);
        self.tsi_unit.snapshot_into(&mut snap.tsi_unit);
        snap.tsi_stamp = self.tsi_stamp;
        snap.task_faulty.clone_from(&self.task_faulty);
        snap.task_faulty_stamp = self.task_faulty_stamp;
        snap.pfc_errors.clone_from(&self.pfc_errors);
        snap.pfc_errors_stamp = self.pfc_errors_stamp;
        snap.outbox.clear();
        snap.outbox.extend_from_slice(&self.outbox);
        snap.state_outbox.clear();
        snap.state_outbox.extend_from_slice(&self.state_outbox);
        snap.outbox_stamp = self.outbox_stamp;
        snap.costs = self.costs;
        snap.cycles_run = self.cycles_run;
        snap.last_heartbeat_now = self.last_heartbeat_now;
        snap.epoch = self.epoch;
        snap.id = 0;
    }

    /// Applies a certified per-hyperperiod delta `k` times in closed form.
    /// Only the accumulator header moves (cost meter, cycle counter, last
    /// heartbeat stamp) — everything else was proven content-equal across
    /// the hyperperiod by [`WatchdogSnapshot::derive_cycle_delta`]. All
    /// three fields live in the always-copied region of
    /// [`SoftwareWatchdog::restore_from`], so no dirty stamps are needed.
    pub fn apply_cycle_delta(&mut self, delta: &WatchdogCycleDelta, k: u64) {
        self.costs.accumulate(&delta.d_costs, k);
        self.cycles_run += delta.d_cycles * k;
        self.last_heartbeat_now += delta.d_last_heartbeat * k;
    }

    /// Restores runtime state captured by [`SoftwareWatchdog::snapshot`];
    /// afterwards the service replays exactly like the snapshotted one.
    /// Buffers restore in place so capacity is retained, and regions whose
    /// stamp shows no write since the capture are skipped entirely
    /// (O(dirty) when the lineage allows it).
    pub fn restore_from(&mut self, snap: &WatchdogSnapshot) -> RestoreStats {
        let mut stats = RestoreStats::default();
        let full = self.derived_from != snap.id || self.pfc_units.len() != snap.pfc_units.len();
        stats.absorb(self.heartbeat_unit.restore_from(&snap.heartbeat_unit));
        for i in 0..self.pfc_units.len() {
            let copy = full || self.pfc_stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                self.pfc_units[i].restore_from(&snap.pfc_units[i]);
                self.pfc_stamps[i] = snap.pfc_stamps[i];
            }
        }
        let copy = full || self.tsi_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.tsi_unit.restore_from(&snap.tsi_unit);
            self.tsi_stamp = snap.tsi_stamp;
        }
        let copy = full || self.task_faulty_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.task_faulty.copy_from_slice(&snap.task_faulty);
            self.task_faulty_stamp = snap.task_faulty_stamp;
        }
        let copy = full || self.pfc_errors_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.pfc_errors.copy_from_slice(&snap.pfc_errors);
            self.pfc_errors_stamp = snap.pfc_errors_stamp;
        }
        let copy = full || self.outbox_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.outbox.clear();
            self.outbox.extend_from_slice(&snap.outbox);
            self.state_outbox.clear();
            self.state_outbox.extend_from_slice(&snap.state_outbox);
            self.outbox_stamp = snap.outbox_stamp;
        }
        // Header region, always copied: the cost meter and cycle counter
        // advance on virtually every heartbeat/cycle, so dirty-tracking
        // them would only add bookkeeping.
        stats.region(true);
        self.change_scratch.clear();
        self.costs = snap.costs;
        self.cycles_run = snap.cycles_run;
        self.last_heartbeat_now = snap.last_heartbeat_now;
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }

    /// The TSI unit (read access for reports).
    pub fn tsi(&self) -> &TaskStateIndication {
        &self.tsi_unit
    }
}

/// A deterministic capture of watchdog runtime state — see
/// [`SoftwareWatchdog::snapshot`] / [`SoftwareWatchdog::restore_from`].
/// Plain data (unit images, no compiled tables or sinks), so node-level
/// snapshots embedding it can be shared across campaign workers.
#[derive(Debug, Clone, Default)]
pub struct WatchdogSnapshot {
    heartbeat_unit: HeartbeatSnapshot,
    pfc_units: Vec<PfcSnapshot>,
    pfc_stamps: Vec<u64>,
    tsi_unit: TsiSnapshot,
    tsi_stamp: u64,
    task_faulty: Vec<bool>,
    task_faulty_stamp: u64,
    pfc_errors: Vec<u32>,
    pfc_errors_stamp: u64,
    outbox: Vec<DetectedFault>,
    state_outbox: Vec<StateChange>,
    outbox_stamp: u64,
    costs: CostMeter,
    cycles_run: u64,
    last_heartbeat_now: Instant,
    epoch: u64,
    id: u64,
}

/// The closed-form per-hyperperiod advance of a quiescent watchdog: the
/// cost meter, cycle counter and last-heartbeat stamp move; every monitor
/// counter, verdict and outbox was proven to return to its starting value.
/// Derived by [`WatchdogSnapshot::derive_cycle_delta`], applied by
/// [`SoftwareWatchdog::apply_cycle_delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogCycleDelta {
    d_costs: CostMeter,
    d_cycles: u64,
    /// Shift of `last_heartbeat_now` per hyperperiod: `h` when monitored
    /// runnables are beating, zero when none are (all deactivated).
    d_last_heartbeat: easis_sim::time::Duration,
}

impl WatchdogSnapshot {
    /// Derives the per-hyperperiod delta between two images taken exactly
    /// `h` apart, writing it into `out` and returning `true` — or returns
    /// `false` when the watchdog is not steady over the span: any monitor
    /// counter, PFC position, TSI verdict or undrained outbox entry that
    /// differs means detection state is still evolving and the span must
    /// be simulated event-by-event. The hyperperiod includes every fault-
    /// hypothesis window span, so steady-state counters land back on the
    /// same phase and compare equal here.
    pub fn derive_cycle_delta(
        a: &WatchdogSnapshot,
        b: &WatchdogSnapshot,
        h: easis_sim::time::Duration,
        out: &mut WatchdogCycleDelta,
    ) -> bool {
        let d_last_heartbeat = if b.last_heartbeat_now == a.last_heartbeat_now + h {
            h
        } else if b.last_heartbeat_now == a.last_heartbeat_now {
            easis_sim::time::Duration::ZERO
        } else {
            return false;
        };
        if !a.heartbeat_unit.content_eq(&b.heartbeat_unit)
            || a.pfc_units != b.pfc_units
            || a.tsi_unit != b.tsi_unit
            || a.task_faulty != b.task_faulty
            || a.pfc_errors != b.pfc_errors
            || a.outbox != b.outbox
            || a.state_outbox != b.state_outbox
            || b.cycles_run < a.cycles_run
            || b.costs.total_cycles() < a.costs.total_cycles()
            || b.costs.operations() < a.costs.operations()
        {
            return false;
        }
        out.d_costs = b.costs.delta_since(&a.costs);
        out.d_cycles = b.cycles_run - a.cycles_run;
        out.d_last_heartbeat = d_last_heartbeat;
        true
    }
}

impl HeartbeatSink for SoftwareWatchdog {
    fn indicate(&mut self, runnable: RunnableId, now: Instant) {
        self.heartbeat(runnable, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunnableHypothesis;
    use easis_rte::mapping::SystemMapping;
    use easis_sim::time::Duration;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    /// SafeSpeed-like config: 3 runnables on T0 of app0, chain 0→1→2→0,
    /// aliveness ≥1/cycle, arrival ≤2/cycle, threshold 3.
    fn safespeed_watchdog() -> SoftwareWatchdog {
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("SafeSpeed");
        mapping.assign_task(TaskId(0), app);
        for i in 0..3 {
            mapping.assign_runnable(r(i), TaskId(0));
        }
        let mut builder = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .allow_entry(r(0))
            .allow_flow(r(0), r(1))
            .allow_flow(r(1), r(2))
            .allow_flow(r(2), r(0))
            .error_threshold(3);
        for i in 0..3 {
            builder = builder.monitor(
                RunnableHypothesis::new(r(i))
                    .alive_at_least(1, 1)
                    .arrive_at_most(2, 1),
            );
        }
        SoftwareWatchdog::new(builder.build())
    }

    fn beat_all(wd: &mut SoftwareWatchdog, ms: u64) {
        wd.heartbeat(r(0), t(ms));
        wd.heartbeat(r(1), t(ms));
        wd.heartbeat(r(2), t(ms));
    }

    #[test]
    fn nominal_operation_is_silent() {
        let mut wd = safespeed_watchdog();
        for cycle in 1..=20u64 {
            beat_all(&mut wd, cycle * 10);
            let report = wd.run_cycle(t(cycle * 10));
            assert!(report.faults.is_empty(), "cycle {cycle}: {report:?}");
        }
        assert!(wd.take_faults().is_empty());
        assert_eq!(wd.ecu_state(), HealthState::Ok);
        assert_eq!(wd.cycles_run(), 20);
    }

    #[test]
    fn silent_runnable_yields_aliveness_fault_and_eventually_faulty_task() {
        let mut wd = safespeed_watchdog();
        for cycle in 1..=3u64 {
            wd.heartbeat(r(0), t(cycle * 10));
            wd.heartbeat(r(1), t(cycle * 10));
            // r2 silent.
            let report = wd.run_cycle(t(cycle * 10));
            assert_eq!(report.faults.len(), 1);
            assert_eq!(report.faults[0].kind, FaultKind::Aliveness);
            assert_eq!(report.faults[0].runnable, r(2));
        }
        // Third aliveness error crosses the threshold.
        assert!(wd.task_state(TaskId(0)).is_faulty());
        assert!(wd.app_state(ApplicationId(0)).is_faulty());
    }

    #[test]
    fn faulty_task_deactivates_monitoring() {
        let mut wd = safespeed_watchdog();
        for cycle in 1..=6u64 {
            let _ = wd.run_cycle(t(cycle * 10)); // everything silent
        }
        // Threshold 3 → faulty after cycle 3; afterwards AS cleared, so the
        // error counters freeze at 3.
        let c = wd.counters(r(0)).unwrap();
        assert_eq!(c.aliveness_errors, 3);
        assert!(!c.activation);
    }

    #[test]
    fn pfc_violation_is_reported_immediately() {
        let mut wd = safespeed_watchdog();
        wd.heartbeat(r(0), t(1));
        wd.heartbeat(r(2), t(2)); // skipped r1
        let faults = wd.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::ProgramFlow);
        assert_eq!(faults[0].runnable, r(2));
        assert_eq!(wd.pfc_errors_total(), 1);
        assert_eq!(wd.counters(r(2)).unwrap().program_flow_errors, 1);
    }

    #[test]
    fn figure6_collaboration_pfc_reaches_threshold_before_aliveness() {
        // Reconfigure aliveness over 4 cycles so the heartbeat unit reports
        // at most once before the PFC crosses the threshold — the paper's
        // Figure 6 shape.
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("SafeSpeed");
        mapping.assign_task(TaskId(0), app);
        for i in 0..3 {
            mapping.assign_runnable(r(i), TaskId(0));
        }
        let mut builder = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .allow_entry(r(0))
            .allow_flow(r(0), r(1))
            .allow_flow(r(1), r(2))
            .allow_flow(r(2), r(0))
            .error_threshold(3);
        for i in 0..3 {
            builder = builder.monitor(RunnableHypothesis::new(r(i)).alive_at_least(4, 4));
        }
        let mut wd = SoftwareWatchdog::new(builder.build());
        // Each period the branch skips r1: 0→2 violation each time.
        for cycle in 1..=6u64 {
            wd.heartbeat(r(0), t(cycle * 10));
            wd.heartbeat(r(2), t(cycle * 10));
            wd.run_cycle(t(cycle * 10));
        }
        // 3 PFC errors on r2 crossed the threshold at cycle 3 → task faulty,
        // monitoring deactivated → at most one aliveness error total.
        assert!(wd.task_state(TaskId(0)).is_faulty());
        assert_eq!(wd.counters(r(2)).unwrap().program_flow_errors, 3);
        let aliveness_total: u32 = (0..3)
            .map(|i| wd.counters(r(i)).unwrap().aliveness_errors)
            .sum();
        assert!(aliveness_total <= 1, "got {aliveness_total}");
    }

    #[test]
    fn arrival_rate_fault_on_duplicate_dispatch() {
        // The whole chain executes three times in one cycle (excessive
        // dispatch): sequence stays valid, but ARC exceeds max 2.
        let mut wd = safespeed_watchdog();
        for _ in 0..3 {
            beat_all(&mut wd, 5);
        }
        let report = wd.run_cycle(t(10));
        assert_eq!(report.faults.len(), 3);
        assert!(report
            .faults
            .iter()
            .all(|f| f.kind == FaultKind::ArrivalRate));
        assert_eq!(wd.pfc_errors_total(), 0);
    }

    #[test]
    fn acknowledge_recovery_rearms_monitoring() {
        let mut wd = safespeed_watchdog();
        for cycle in 1..=3u64 {
            wd.run_cycle(t(cycle * 10));
        }
        assert!(wd.task_state(TaskId(0)).is_faulty());
        wd.acknowledge_task_recovered(TaskId(0));
        assert_eq!(wd.task_state(TaskId(0)), HealthState::Ok);
        assert!(wd.counters(r(0)).unwrap().activation);
        // Beats flow again from the entry point.
        beat_all(&mut wd, 100);
        let report = wd.run_cycle(t(100));
        assert!(report.faults.is_empty());
    }

    #[test]
    fn state_changes_are_drained_separately() {
        let mut wd = safespeed_watchdog();
        for cycle in 1..=3u64 {
            wd.run_cycle(t(cycle * 10));
        }
        let changes = wd.take_state_changes();
        assert!(changes
            .iter()
            .any(|c| matches!(c, StateChange::TaskFaulty { .. })));
        assert!(wd.take_state_changes().is_empty());
    }

    #[test]
    fn costs_accumulate_per_operation() {
        let mut wd = safespeed_watchdog();
        beat_all(&mut wd, 5);
        let after_beats = wd.costs().total_cycles();
        assert!(after_beats > 0);
        wd.run_cycle(t(10));
        assert!(wd.costs().total_cycles() > after_beats);
    }

    #[test]
    fn heartbeat_sink_trait_routes_to_service() {
        let mut wd = safespeed_watchdog();
        HeartbeatSink::indicate(&mut wd, r(0), t(1));
        assert_eq!(wd.counters(r(0)).unwrap().ac, 1);
    }

    #[test]
    fn snapshot_delta_restore_replays_identically() {
        // Run a faulty prefix, capture, run a divergent tail, delta-restore,
        // and check the tail replays exactly — while clean regions are
        // skipped by the stamps.
        let mut wd = safespeed_watchdog();
        wd.heartbeat(r(0), t(5));
        wd.heartbeat(r(2), t(6)); // skipped r1 → PFC violation in outbox
        wd.run_cycle(t(10));
        let mut snap = WatchdogSnapshot::default();
        wd.snapshot_into(&mut snap);

        let tail = |wd: &mut SoftwareWatchdog| {
            wd.heartbeat(r(0), t(15));
            wd.heartbeat(r(1), t(16));
            wd.heartbeat(r(2), t(17));
            let report = wd.run_cycle(t(20));
            (
                report,
                wd.take_faults(),
                wd.counters(r(2)).unwrap(),
                wd.costs().total_cycles(),
            )
        };
        let first = tail(&mut wd);

        let stats = wd.restore_from(&snap);
        assert!(
            stats.regions_copied < stats.regions_total,
            "clean regions (task_faulty, pfc_errors …) must be skipped: {stats:?}"
        );
        let second = tail(&mut wd);
        assert_eq!(first, second, "delta restore must replay identically");

        // reset() severs the lineage: the next restore takes the full path
        // and still reproduces the same tail.
        wd.reset();
        let stats = wd.restore_from(&snap);
        assert_eq!(stats.regions_copied, stats.regions_total, "{stats:?}");
        let third = tail(&mut wd);
        assert_eq!(first, third, "full restore must replay identically");
    }

    #[test]
    fn set_activation_controls_monitoring() {
        let mut wd = safespeed_watchdog();
        assert!(wd.set_activation(r(2), false));
        wd.heartbeat(r(0), t(1));
        wd.heartbeat(r(1), t(2));
        let report = wd.run_cycle(t(10)); // r2 silent but deactivated
        assert!(report.faults.is_empty());
        assert!(!wd.set_activation(r(99), false));
    }
}

/// A rendered supervision snapshot — see
/// [`SoftwareWatchdog::supervision_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionReport {
    /// One line per monitored runnable: counters + attributed errors.
    pub runnable_lines: Vec<String>,
    /// One line per mapped task: verdict + error-vector summary.
    pub task_lines: Vec<String>,
    /// Application and ECU state summary.
    pub state_line: String,
}

impl std::fmt::Display for SupervisionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "-- supervision report --")?;
        for line in &self.runnable_lines {
            writeln!(f, "{line}")?;
        }
        for line in &self.task_lines {
            writeln!(f, "{line}")?;
        }
        writeln!(f, "{}", self.state_line)
    }
}

impl SoftwareWatchdog {
    /// Generates the paper's "individual supervision reports on runnables"
    /// plus the derived task/application/ECU states, as a displayable
    /// snapshot (what ControlDesk showed the experimenter).
    pub fn supervision_report(&self) -> SupervisionReport {
        let mut runnable_lines = Vec::new();
        for runnable in self.config.monitored() {
            let c = self.counters(runnable).expect("monitored");
            runnable_lines.push(format!(
                "  {runnable}: AS={} AC={} CCA={} ARC={} CCAR={} errors(alive/rate/flow)={}/{}/{}",
                if c.activation { "on" } else { "off" },
                c.ac,
                c.cca,
                c.arc,
                c.ccar,
                c.aliveness_errors,
                c.arrival_rate_errors,
                c.program_flow_errors,
            ));
        }
        let mut task_lines = Vec::new();
        for task in self.config.mapping().tasks() {
            let vector = self.tsi_unit.error_vector(task);
            let total: u32 = vector.iter().map(|e| e.count).sum();
            task_lines.push(format!(
                "  {task}: state={} error-vector-elements={} total-errors={}",
                self.tsi_unit.task_state(task),
                vector.len(),
                total,
            ));
        }
        let faulty_apps = (0..self.config.mapping().application_count() as u32)
            .filter(|&a| {
                self.tsi_unit
                    .app_state(easis_rte::mapping::ApplicationId(a))
                    .is_faulty()
            })
            .count();
        let state_line = format!(
            "  applications faulty: {faulty_apps}/{}; global ECU state: {}",
            self.config.mapping().application_count(),
            self.tsi_unit.ecu_state(),
        );
        SupervisionReport {
            runnable_lines,
            task_lines,
            state_line,
        }
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use crate::config::RunnableHypothesis;
    use easis_rte::mapping::SystemMapping;
    use easis_sim::time::Duration;

    #[test]
    fn supervision_report_covers_everything() {
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("SafeSpeed");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_runnable(RunnableId(0), TaskId(0));
        mapping.assign_runnable(RunnableId(1), TaskId(0));
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
            .monitor(RunnableHypothesis::new(RunnableId(1)).alive_at_least(1, 1))
            .error_threshold(1)
            .build();
        let mut wd = SoftwareWatchdog::new(config);
        wd.heartbeat(RunnableId(0), Instant::from_millis(5));
        wd.run_cycle(Instant::from_millis(10)); // R1 silent → task faulty
        let report = wd.supervision_report();
        assert_eq!(report.runnable_lines.len(), 2);
        assert_eq!(report.task_lines.len(), 1);
        assert!(report.task_lines[0].contains("state=faulty"));
        assert!(report.state_line.contains("applications faulty: 1/1"));
        let text = report.to_string();
        assert!(text.contains("supervision report"));
        assert!(text.contains("R0") && text.contains("R1"));
    }

    #[test]
    fn healthy_report_shows_ok_everywhere() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(0, 1))
            .build();
        let wd = SoftwareWatchdog::new(config);
        let report = wd.supervision_report();
        assert_eq!(report.runnable_lines.len(), 1);
        assert!(report.runnable_lines[0].contains("errors(alive/rate/flow)=0/0/0"));
        assert!(report.state_line.contains("ECU state: ok"));
    }
}

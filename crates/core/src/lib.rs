//! # easis-watchdog — the Software Watchdog dependability service
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Application of Software Watchdog as a Dependability Software Service
//! for Automotive Safety Relevant Systems*, DSN 2007): a software-
//! implemented watchdog that monitors application **runnables** — a finer
//! granularity than the ECU hardware watchdog or task-level deadline
//! monitoring — via
//!
//! * **heartbeat monitoring** ([`heartbeat`]): passive Aliveness / Arrival
//!   Rate Counters per runnable, checked against a fault hypothesis at
//!   watchdog-cycle boundaries;
//! * **program flow checking** ([`pfc`]): a predecessor/successor look-up
//!   table over the monitored runnables, chosen over embedded signatures
//!   for its low overhead;
//! * **task state indication** ([`tsi`]): per-task error indication
//!   vectors with thresholds, rolled up to application and global ECU
//!   states to steer fault treatment.
//!
//! The [`SoftwareWatchdog`] facade in [`service`] glues the units together
//! and exposes the two platform interfaces: the aliveness-indication
//! routine for glue code, and the fault/state outbox for the Fault
//! Management Framework. All three monitoring approaches (plus the
//! active-probe alternative in [`probe`]) also implement the unified
//! [`MonitoringUnit`] interface in [`mod@unit`], and every unit can report
//! structured events to an `easis_obs::ObsSink` flight recorder via
//! `attach_obs` — disabled by default and free of cost-model side effects.
//!
//! # Examples
//!
//! ```
//! use easis_rte::runnable::RunnableId;
//! use easis_sim::time::{Duration, Instant};
//! use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
//! use easis_watchdog::report::FaultKind;
//! use easis_watchdog::SoftwareWatchdog;
//!
//! // Monitor one runnable: at least one heartbeat per 10 ms cycle,
//! // at most two.
//! let config = WatchdogConfig::builder(Duration::from_millis(10))
//!     .monitor(
//!         RunnableHypothesis::new(RunnableId(0))
//!             .alive_at_least(1, 1)
//!             .arrive_at_most(2, 1),
//!     )
//!     .build();
//! let mut watchdog = SoftwareWatchdog::new(config);
//!
//! // Nominal cycle: one heartbeat, no fault.
//! watchdog.heartbeat(RunnableId(0), Instant::from_millis(5));
//! assert!(watchdog.run_cycle(Instant::from_millis(10)).faults.is_empty());
//!
//! // Silent cycle: aliveness fault.
//! let report = watchdog.run_cycle(Instant::from_millis(20));
//! assert_eq!(report.faults[0].kind, FaultKind::Aliveness);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod heartbeat;
pub mod pfc;
pub mod probe;
pub mod report;
pub mod service;
pub mod tsi;
pub mod unit;
pub mod validate;

pub use config::{AlivenessSpec, ArrivalRateSpec, IdIndex, RunnableHypothesis, WatchdogConfig};
pub use heartbeat::HeartbeatMonitor;
pub use pfc::{CompiledFlowTable, FlowTable, FlowVerdict, ProgramFlowChecker};
pub use probe::ActiveProbeMonitor;
pub use report::{DetectedFault, FaultKind, HealthState, RunnableCounters, StateChange};
pub use service::{CycleReport, SoftwareWatchdog, WatchdogCycleDelta, WatchdogSnapshot};
pub use unit::{MonitorEvent, MonitoringUnit};
pub use validate::{validate, ConfigIssue};
pub use tsi::TaskStateIndication;

//! Task state indication (TSI) unit.
//!
//! "The error messages of runnables are recorded by the Task State
//! Indication Unit in an error indication vector. If one of the elements in
//! the error indication vector reaches the threshold, the whole task will
//! be considered faulty" (paper §3.5). Task verdicts roll up through the
//! deployment mapping to application states and the global ECU state, which
//! the Fault Management Framework translates into treatments.

use crate::report::{DetectedFault, FaultKind, HealthState, StateChange};
use easis_obs::{ObsEvent, ObsSink, StateScope};
use easis_osek::task::TaskId;
use easis_rte::mapping::{ApplicationId, SystemMapping};
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One element of a task's error indication vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorIndication {
    /// The runnable the errors were attributed to.
    pub runnable: RunnableId,
    /// The error class.
    pub kind: FaultKind,
    /// Accumulated error count.
    pub count: u32,
}

/// The TSI unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskStateIndication {
    mapping: SystemMapping,
    threshold: u32,
    ecu_app_threshold: u32,
    vectors: BTreeMap<TaskId, BTreeMap<(RunnableId, FaultKind), u32>>,
    task_states: BTreeMap<TaskId, HealthState>,
    app_states: BTreeMap<ApplicationId, HealthState>,
    ecu_state: HealthState,
    obs: ObsSink,
}

impl TaskStateIndication {
    /// Creates the unit over a deployment mapping.
    ///
    /// `threshold` is the per-element error threshold; `ecu_app_threshold`
    /// the number of faulty applications at which the ECU state turns
    /// faulty (`u32::MAX` = all declared applications).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(mapping: SystemMapping, threshold: u32, ecu_app_threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        TaskStateIndication {
            mapping,
            threshold,
            ecu_app_threshold,
            vectors: BTreeMap::new(),
            task_states: BTreeMap::new(),
            app_states: BTreeMap::new(),
            ecu_state: HealthState::Ok,
            obs: ObsSink::disabled(),
        }
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Resets every error vector and verdict to the just-built state,
    /// keeping the mapping and thresholds (world pooling support). Counts
    /// and states are zeroed **in place** — the map nodes stay allocated,
    /// so a pooled world's next faulty trial re-increments existing
    /// entries instead of rebuilding the trees (a zero count is
    /// observably identical to an absent entry).
    pub fn reset(&mut self) {
        for vector in self.vectors.values_mut() {
            for count in vector.values_mut() {
                *count = 0;
            }
        }
        for state in self.task_states.values_mut() {
            *state = HealthState::Ok;
        }
        for state in self.app_states.values_mut() {
            *state = HealthState::Ok;
        }
        self.ecu_state = HealthState::Ok;
    }

    /// Records a detected runnable fault, updating the error indication
    /// vector of the hosting task and rolling states up. Returns the state
    /// changes this fault caused (possibly empty). Faults on unmapped
    /// runnables are counted under no task and change nothing.
    pub fn record(&mut self, fault: DetectedFault) -> Vec<StateChange> {
        let mut changes = Vec::new();
        self.record_into(fault, &mut changes);
        changes
    }

    /// Like [`TaskStateIndication::record`], but appends the state changes
    /// to a caller-supplied buffer so a below-threshold fault performs no
    /// allocation.
    pub fn record_into(&mut self, fault: DetectedFault, changes: &mut Vec<StateChange>) {
        let Some(task) = self.mapping.task_of(fault.runnable) else {
            return;
        };
        let vector = self.vectors.entry(task).or_default();
        let count = vector.entry((fault.runnable, fault.kind)).or_insert(0);
        *count += 1;
        self.obs.record(
            fault.at,
            ObsEvent::ErrorVectorIncrement {
                task,
                runnable: fault.runnable,
                kind: fault.kind.into(),
                count: *count,
            },
        );
        if *count < self.threshold {
            return;
        }
        self.mark_task_faulty_into(task, fault.at, changes);
    }

    /// Marks a task faulty directly (e.g. commanded by the FMF) and returns
    /// the resulting state changes.
    pub fn mark_task_faulty(&mut self, task: TaskId, at: Instant) -> Vec<StateChange> {
        let mut changes = Vec::new();
        self.mark_task_faulty_into(task, at, &mut changes);
        changes
    }

    /// Like [`TaskStateIndication::mark_task_faulty`], but appends to a
    /// caller-supplied buffer.
    pub fn mark_task_faulty_into(
        &mut self,
        task: TaskId,
        at: Instant,
        changes: &mut Vec<StateChange>,
    ) {
        let state = self.task_states.entry(task).or_default();
        if state.is_faulty() {
            return;
        }
        *state = HealthState::Faulty;
        changes.push(StateChange::TaskFaulty { task, at });
        self.obs.record(
            at,
            ObsEvent::StateTransition {
                scope: StateScope::Task(task),
                faulty: true,
            },
        );
        if let Some(app) = self.mapping.app_of(task) {
            let app_state = self.app_states.entry(app).or_default();
            if !app_state.is_faulty() {
                *app_state = HealthState::Faulty;
                changes.push(StateChange::ApplicationFaulty { app, at });
                self.obs.record(
                    at,
                    ObsEvent::StateTransition {
                        scope: StateScope::Application(app),
                        faulty: true,
                    },
                );
            }
        }
        let faulty_apps = self
            .app_states
            .values()
            .filter(|s| s.is_faulty())
            .count() as u32;
        let needed = if self.ecu_app_threshold == u32::MAX {
            self.mapping.application_count().max(1) as u32
        } else {
            self.ecu_app_threshold
        };
        if !self.ecu_state.is_faulty() && faulty_apps >= needed {
            self.ecu_state = HealthState::Faulty;
            changes.push(StateChange::EcuFaulty { at });
            self.obs.record(
                at,
                ObsEvent::StateTransition {
                    scope: StateScope::Ecu,
                    faulty: true,
                },
            );
        }
    }

    /// Clears a task's error vector and verdict after fault treatment
    /// (restart), re-deriving application and ECU states.
    pub fn reset_task(&mut self, task: TaskId) {
        if let Some(vector) = self.vectors.get_mut(&task) {
            // Zero in place (see `reset`): restart treatments recur on a
            // pooled world, so keep the vector's nodes allocated.
            for count in vector.values_mut() {
                *count = 0;
            }
        }
        self.task_states.insert(task, HealthState::Ok);
        // Re-derive the application containing it.
        if let Some(app) = self.mapping.app_of(task) {
            let any_faulty = self
                .mapping
                .tasks_of_app(app)
                .into_iter()
                .any(|t| self.task_state(t).is_faulty());
            self.app_states.insert(
                app,
                if any_faulty {
                    HealthState::Faulty
                } else {
                    HealthState::Ok
                },
            );
        }
        // Re-derive the ECU state.
        let faulty_apps = self
            .app_states
            .values()
            .filter(|s| s.is_faulty())
            .count() as u32;
        let needed = if self.ecu_app_threshold == u32::MAX {
            self.mapping.application_count().max(1) as u32
        } else {
            self.ecu_app_threshold
        };
        self.ecu_state = if faulty_apps >= needed {
            HealthState::Faulty
        } else {
            HealthState::Ok
        };
    }

    /// Current verdict of a task (Ok if never reported).
    pub fn task_state(&self, task: TaskId) -> HealthState {
        self.task_states.get(&task).copied().unwrap_or_default()
    }

    /// Current verdict of an application.
    pub fn app_state(&self, app: ApplicationId) -> HealthState {
        self.app_states.get(&app).copied().unwrap_or_default()
    }

    /// Current global ECU verdict.
    pub fn ecu_state(&self) -> HealthState {
        self.ecu_state
    }

    /// The error indication vector of a task, as a flat snapshot.
    /// Zero-count elements (left behind by the in-place [`reset`]) are
    /// indistinguishable from never-reported ones and stay out.
    ///
    /// [`reset`]: TaskStateIndication::reset
    pub fn error_vector(&self, task: TaskId) -> Vec<ErrorIndication> {
        self.vectors
            .get(&task)
            .map(|v| {
                v.iter()
                    .filter(|(_, &count)| count > 0)
                    .map(|(&(runnable, kind), &count)| ErrorIndication {
                        runnable,
                        kind,
                        count,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total errors recorded against a task.
    pub fn total_errors(&self, task: TaskId) -> u32 {
        self.vectors
            .get(&task)
            .map(|v| v.values().sum())
            .unwrap_or(0)
    }

    /// The deployment mapping.
    pub fn mapping(&self) -> &SystemMapping {
        &self.mapping
    }

    /// Captures the error vectors and verdicts into `snap`, retaining its
    /// buffer capacity. The mapping and thresholds are construction-time
    /// configuration and are not captured; the owning service's stamp
    /// decides when a restore has to copy this image back.
    pub fn snapshot_into(&self, snap: &mut TsiSnapshot) {
        snap.vectors.truncate(self.vectors.len());
        let mut live = self.vectors.iter();
        for slot in snap.vectors.iter_mut() {
            let (&task, vector) = live.next().expect("truncated to live length");
            slot.0 = task;
            slot.1.clear();
            slot.1.extend(vector.iter().map(|(&key, &count)| (key, count)));
        }
        for (&task, vector) in live {
            snap.vectors
                .push((task, vector.iter().map(|(&key, &count)| (key, count)).collect()));
        }
        snap.task_states.clear();
        snap.task_states
            .extend(self.task_states.iter().map(|(&t, &s)| (t, s)));
        snap.app_states.clear();
        snap.app_states
            .extend(self.app_states.iter().map(|(&a, &s)| (a, s)));
        snap.ecu_state = self.ecu_state;
    }

    /// Restores the state captured by
    /// [`TaskStateIndication::snapshot_into`]: counts and verdicts are
    /// zeroed **in place** (keeping the map nodes allocated, like
    /// [`TaskStateIndication::reset`]) and the snapshot's entries are
    /// overlaid. A zero count / `Ok` verdict is observably identical to an
    /// absent entry, so the result is exact regardless of which trials ran
    /// in between; on a pooled world whose maps already contain the
    /// snapshot's nodes the overlay allocates nothing.
    pub fn restore_from(&mut self, snap: &TsiSnapshot) {
        for vector in self.vectors.values_mut() {
            for count in vector.values_mut() {
                *count = 0;
            }
        }
        for state in self.task_states.values_mut() {
            *state = HealthState::Ok;
        }
        for state in self.app_states.values_mut() {
            *state = HealthState::Ok;
        }
        for (task, vector) in &snap.vectors {
            let live = self.vectors.entry(*task).or_default();
            for &(key, count) in vector {
                live.insert(key, count);
            }
        }
        for &(task, state) in &snap.task_states {
            self.task_states.insert(task, state);
        }
        for &(app, state) in &snap.app_states {
            self.app_states.insert(app, state);
        }
        self.ecu_state = snap.ecu_state;
    }
}

/// One captured per-task error vector: the task id plus its non-zero
/// `((runnable, fault kind), count)` entries.
type TaskErrorVector = (TaskId, Vec<((RunnableId, FaultKind), u32)>);

/// Plain-data image of a [`TaskStateIndication`]'s error vectors and
/// verdicts, flat `Vec`s so node-level snapshots embedding it are cheap to
/// clone and can be shared across campaign workers. `PartialEq` compares
/// the full image — a quiescent hyperperiod records no faults, so the
/// macro-stepping engine requires two samples to compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TsiSnapshot {
    vectors: Vec<TaskErrorVector>,
    task_states: Vec<(TaskId, HealthState)>,
    app_states: Vec<(ApplicationId, HealthState)>,
    ecu_state: HealthState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn fault(runnable: u32, kind: FaultKind, ms: u64) -> DetectedFault {
        DetectedFault {
            at: Instant::from_millis(ms),
            runnable: r(runnable),
            kind,
        }
    }

    /// Two apps: SafeSpeed {T0: R0,R1}, SafeLane {T1: R2}.
    fn unit(threshold: u32, ecu_threshold: u32) -> TaskStateIndication {
        let mut m = SystemMapping::new();
        let speed = m.add_application("SafeSpeed");
        let lane = m.add_application("SafeLane");
        m.assign_task(TaskId(0), speed);
        m.assign_task(TaskId(1), lane);
        m.assign_runnable(r(0), TaskId(0));
        m.assign_runnable(r(1), TaskId(0));
        m.assign_runnable(r(2), TaskId(1));
        TaskStateIndication::new(m, threshold, ecu_threshold)
    }

    #[test]
    fn threshold_crossing_marks_task_and_app_faulty() {
        let mut tsi = unit(3, u32::MAX);
        assert!(tsi.record(fault(0, FaultKind::ProgramFlow, 10)).is_empty());
        assert!(tsi.record(fault(0, FaultKind::ProgramFlow, 20)).is_empty());
        let changes = tsi.record(fault(0, FaultKind::ProgramFlow, 30));
        assert_eq!(changes.len(), 2); // task + application
        assert!(matches!(changes[0], StateChange::TaskFaulty { task: TaskId(0), .. }));
        assert!(matches!(changes[1], StateChange::ApplicationFaulty { .. }));
        assert!(tsi.task_state(TaskId(0)).is_faulty());
        assert!(tsi.app_state(ApplicationId(0)).is_faulty());
        assert!(!tsi.ecu_state().is_faulty()); // SafeLane still fine
    }

    #[test]
    fn elements_accumulate_independently() {
        let mut tsi = unit(3, u32::MAX);
        // Two errors on R0, two on R1 (same task): no element reaches 3.
        tsi.record(fault(0, FaultKind::Aliveness, 1));
        tsi.record(fault(0, FaultKind::Aliveness, 2));
        tsi.record(fault(1, FaultKind::Aliveness, 3));
        tsi.record(fault(1, FaultKind::Aliveness, 4));
        assert_eq!(tsi.task_state(TaskId(0)), HealthState::Ok);
        assert_eq!(tsi.total_errors(TaskId(0)), 4);
        let vec = tsi.error_vector(TaskId(0));
        assert_eq!(vec.len(), 2);
        assert!(vec.iter().all(|e| e.count == 2));
    }

    #[test]
    fn kinds_count_as_separate_elements() {
        let mut tsi = unit(2, u32::MAX);
        tsi.record(fault(0, FaultKind::Aliveness, 1));
        tsi.record(fault(0, FaultKind::ProgramFlow, 2));
        assert_eq!(tsi.task_state(TaskId(0)), HealthState::Ok);
        tsi.record(fault(0, FaultKind::ProgramFlow, 3));
        assert!(tsi.task_state(TaskId(0)).is_faulty());
    }

    #[test]
    fn ecu_faulty_when_all_apps_faulty_by_default() {
        let mut tsi = unit(1, u32::MAX);
        let c1 = tsi.record(fault(0, FaultKind::Aliveness, 1));
        assert!(!c1.iter().any(|c| matches!(c, StateChange::EcuFaulty { .. })));
        let c2 = tsi.record(fault(2, FaultKind::Aliveness, 2));
        assert!(c2.iter().any(|c| matches!(c, StateChange::EcuFaulty { .. })));
        assert!(tsi.ecu_state().is_faulty());
    }

    #[test]
    fn ecu_threshold_of_one_escalates_immediately() {
        let mut tsi = unit(1, 1);
        let changes = tsi.record(fault(2, FaultKind::ArrivalRate, 5));
        assert_eq!(changes.len(), 3); // task, app, ecu
        assert!(tsi.ecu_state().is_faulty());
    }

    #[test]
    fn unmapped_runnable_changes_nothing() {
        let mut tsi = unit(1, 1);
        assert!(tsi.record(fault(99, FaultKind::Aliveness, 1)).is_empty());
        assert_eq!(tsi.ecu_state(), HealthState::Ok);
    }

    #[test]
    fn double_fault_on_faulty_task_changes_nothing_more() {
        let mut tsi = unit(1, u32::MAX);
        assert_eq!(tsi.record(fault(0, FaultKind::Aliveness, 1)).len(), 2);
        assert!(tsi.record(fault(0, FaultKind::Aliveness, 2)).is_empty());
    }

    #[test]
    fn reset_task_restores_health_and_rederives_rollups() {
        let mut tsi = unit(1, 2);
        tsi.record(fault(0, FaultKind::Aliveness, 1));
        tsi.record(fault(2, FaultKind::Aliveness, 2));
        assert!(tsi.ecu_state().is_faulty());
        tsi.reset_task(TaskId(0));
        assert_eq!(tsi.task_state(TaskId(0)), HealthState::Ok);
        assert_eq!(tsi.app_state(ApplicationId(0)), HealthState::Ok);
        assert!(!tsi.ecu_state().is_faulty()); // only 1 faulty app remains
        assert_eq!(tsi.total_errors(TaskId(0)), 0);
        // The other app stays faulty.
        assert!(tsi.app_state(ApplicationId(1)).is_faulty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = TaskStateIndication::new(SystemMapping::new(), 0, 1);
    }

    #[test]
    fn snapshot_restore_overlays_exactly_onto_dirtier_state() {
        let mut tsi = unit(2, u32::MAX);
        tsi.record(fault(0, FaultKind::Aliveness, 1));
        let mut snap = TsiSnapshot::default();
        tsi.snapshot_into(&mut snap);
        // Diverge well past the capture: threshold crossing + second app.
        tsi.record(fault(0, FaultKind::Aliveness, 2));
        tsi.record(fault(2, FaultKind::ProgramFlow, 3));
        assert!(tsi.task_state(TaskId(0)).is_faulty());
        tsi.restore_from(&snap);
        assert_eq!(tsi.task_state(TaskId(0)), HealthState::Ok);
        assert_eq!(tsi.total_errors(TaskId(0)), 1);
        // The entry recorded only after the capture is zeroed, which is
        // observably identical to never-reported.
        assert_eq!(tsi.total_errors(TaskId(1)), 0);
        assert!(tsi.error_vector(TaskId(1)).is_empty());
        assert_eq!(tsi.app_state(ApplicationId(1)), HealthState::Ok);
    }
}

//! Heartbeat monitoring unit.
//!
//! The passive monitoring approach of the paper (§3.3): every runnable
//! execution increments its Aliveness Counter (AC) and Arrival Rate Counter
//! (ARC); the watchdog's periodic task advances the Cycle Counters (CCA,
//! CCAR) and, "shortly before the next period begins", checks the heartbeat
//! counters against the fault hypothesis. All counters reset "if the
//! periods defined in the fault hypothesis expire or an error is detected
//! in the last cycle". An Activation Status (AS) per runnable gates the
//! whole mechanism.

use crate::config::{IdIndex, RunnableHypothesis};
use crate::report::{DetectedFault, FaultKind, RunnableCounters};
use easis_obs::{ObsEvent, ObsSink};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// Dirty-tracking regions of the monitor: one stamp per SoA column plus one
// for the configuration (interner + hypotheses). See `easis_sim::snap` for
// the epoch/lineage protocol.
const COL_CONFIG: usize = 0;
const COL_AC: usize = 1;
const COL_ARC: usize = 2;
const COL_CCA: usize = 3;
const COL_CCAR: usize = 4;
const COL_ACTIVE: usize = 5;
const COL_ALIVE_ERR: usize = 6;
const COL_RATE_ERR: usize = 7;
const COLS: usize = 8;

/// Abstract CPU cost (cycles) of one heartbeat indication: AS check plus
/// two counter increments.
pub const HEARTBEAT_COST_CYCLES: u64 = 9;

/// Abstract CPU cost (cycles) of the per-runnable end-of-cycle check.
pub const CHECK_COST_CYCLES: u64 = 23;

/// The heartbeat monitoring unit: one counter set per monitored runnable.
///
/// Runnables are interned into dense slots ([`IdIndex`], ascending id
/// order), and the AC/ARC/CCA/CCAR counters plus Activation Status live in
/// packed parallel arrays indexed by slot — one heartbeat indication is a
/// slot lookup and two array increments (branch-light O(1)), and the
/// end-of-cycle check is a linear sweep over contiguous slices. Sweeping
/// slots in ascending order reproduces the previous `BTreeMap` iteration
/// order exactly, so fault ordering, cost charges, and observability
/// events are unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    index: IdIndex,
    hypotheses: Vec<RunnableHypothesis>,
    ac: Vec<u32>,
    arc: Vec<u32>,
    cca: Vec<u32>,
    ccar: Vec<u32>,
    active: Vec<bool>,
    aliveness_errors: Vec<u32>,
    arrival_rate_errors: Vec<u32>,
    obs: ObsSink,
    /// Last-write epoch per region (see the `COL_*` constants).
    stamps: [u64; COLS],
    epoch: u64,
    derived_from: u64,
}

/// Plain-data image of a [`HeartbeatMonitor`] for delta restores. Excludes
/// the observability sink (scenarios re-attach their own), so node-level
/// snapshots embedding it can be shared across campaign workers.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatSnapshot {
    index: IdIndex,
    hypotheses: Vec<RunnableHypothesis>,
    ac: Vec<u32>,
    arc: Vec<u32>,
    cca: Vec<u32>,
    ccar: Vec<u32>,
    active: Vec<bool>,
    aliveness_errors: Vec<u32>,
    arrival_rate_errors: Vec<u32>,
    stamps: [u64; COLS],
    epoch: u64,
    id: u64,
}

impl HeartbeatSnapshot {
    /// Content equality, ignoring lineage bookkeeping (stamps, epoch, id).
    /// Used by the macro-stepping engine: a quiescent hyperperiod leaves
    /// every heartbeat column exactly where it started.
    pub fn content_eq(&self, other: &HeartbeatSnapshot) -> bool {
        self.index == other.index
            && self.hypotheses == other.hypotheses
            && self.ac == other.ac
            && self.arc == other.arc
            && self.cca == other.cca
            && self.ccar == other.ccar
            && self.active == other.active
            && self.aliveness_errors == other.aliveness_errors
            && self.arrival_rate_errors == other.arrival_rate_errors
    }
}

impl HeartbeatMonitor {
    /// Creates the unit from the per-runnable fault hypotheses. A later
    /// hypothesis for the same runnable replaces an earlier one.
    pub fn new(hypotheses: impl IntoIterator<Item = RunnableHypothesis>) -> Self {
        let by_id: BTreeMap<RunnableId, RunnableHypothesis> = hypotheses
            .into_iter()
            .map(|h| (h.runnable, h))
            .collect();
        let mut monitor = HeartbeatMonitor {
            index: IdIndex::from_ids(by_id.keys().map(|r| r.0)),
            hypotheses: Vec::with_capacity(by_id.len()),
            ac: vec![0; by_id.len()],
            arc: vec![0; by_id.len()],
            cca: vec![0; by_id.len()],
            ccar: vec![0; by_id.len()],
            active: Vec::with_capacity(by_id.len()),
            aliveness_errors: vec![0; by_id.len()],
            arrival_rate_errors: vec![0; by_id.len()],
            obs: ObsSink::disabled(),
            stamps: [0; COLS],
            epoch: 0,
            derived_from: 0,
        };
        for (_, h) in by_id {
            monitor.active.push(h.initially_active);
            monitor.hypotheses.push(h);
        }
        monitor
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Resets all counters and activation statuses to their just-built
    /// state under the current hypotheses (world pooling support).
    pub fn reset(&mut self) {
        self.ac.fill(0);
        self.arc.fill(0);
        self.cca.fill(0);
        self.ccar.fill(0);
        self.aliveness_errors.fill(0);
        self.arrival_rate_errors.fill(0);
        for slot in 0..self.hypotheses.len() {
            self.active[slot] = self.hypotheses[slot].initially_active;
        }
        // Every region is dirty relative to any earlier snapshot, and the
        // lineage is severed so a later restore takes the full path.
        self.stamps = [self.epoch; COLS];
        self.derived_from = 0;
    }

    /// Records one aliveness indication at `now`. Unmonitored runnables
    /// and runnables with a cleared activation status are ignored (the
    /// glue call is still charged to `costs`, as the AS test itself costs
    /// cycles).
    #[inline]
    pub fn record(&mut self, runnable: RunnableId, now: Instant, costs: &mut CostMeter) {
        costs.charge(HEARTBEAT_COST_CYCLES);
        if let Some(slot) = self.index.slot_of_runnable(runnable) {
            let slot = slot as usize;
            if self.active[slot] {
                self.ac[slot] = self.ac[slot].saturating_add(1);
                self.arc[slot] = self.arc[slot].saturating_add(1);
                self.stamps[COL_AC] = self.epoch;
                self.stamps[COL_ARC] = self.epoch;
                self.obs.record(now, ObsEvent::HeartbeatRecorded { runnable });
            }
        }
    }

    /// Advances all cycle counters by one watchdog cycle and performs the
    /// end-of-period checks. Returns the faults detected in this cycle.
    pub fn end_of_cycle(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault> {
        let mut faults = Vec::new();
        self.end_of_cycle_into(now, costs, &mut faults);
        faults
    }

    /// Like [`HeartbeatMonitor::end_of_cycle`], but appends the detected
    /// faults to a caller-supplied buffer so a steady state (no faults)
    /// performs no allocation.
    pub fn end_of_cycle_into(
        &mut self,
        now: Instant,
        costs: &mut CostMeter,
        faults: &mut Vec<DetectedFault>,
    ) {
        for slot in 0..self.index.len() {
            if !self.active[slot] {
                continue;
            }
            let runnable = RunnableId(self.index.id_at(slot as u32));
            costs.charge(CHECK_COST_CYCLES);
            if let Some(spec) = self.hypotheses[slot].aliveness {
                self.cca[slot] += 1;
                self.stamps[COL_CCA] = self.epoch;
                if self.cca[slot] >= spec.cycles {
                    if self.ac[slot] < spec.min_indications {
                        self.aliveness_errors[slot] += 1;
                        self.stamps[COL_ALIVE_ERR] = self.epoch;
                        self.obs.record(
                            now,
                            ObsEvent::FaultDetected {
                                runnable,
                                kind: easis_obs::FaultClass::Aliveness,
                            },
                        );
                        faults.push(DetectedFault {
                            at: now,
                            runnable,
                            kind: FaultKind::Aliveness,
                        });
                    }
                    self.ac[slot] = 0;
                    self.cca[slot] = 0;
                    self.stamps[COL_AC] = self.epoch;
                }
            }
            if let Some(spec) = self.hypotheses[slot].arrival_rate {
                self.ccar[slot] += 1;
                self.stamps[COL_CCAR] = self.epoch;
                if self.ccar[slot] >= spec.cycles {
                    if self.arc[slot] > spec.max_indications {
                        self.arrival_rate_errors[slot] += 1;
                        self.stamps[COL_RATE_ERR] = self.epoch;
                        self.obs.record(
                            now,
                            ObsEvent::FaultDetected {
                                runnable,
                                kind: easis_obs::FaultClass::ArrivalRate,
                            },
                        );
                        faults.push(DetectedFault {
                            at: now,
                            runnable,
                            kind: FaultKind::ArrivalRate,
                        });
                    }
                    self.arc[slot] = 0;
                    self.ccar[slot] = 0;
                    self.stamps[COL_ARC] = self.epoch;
                }
            }
        }
    }

    /// Replaces the fault hypothesis of a runnable at runtime (dynamic
    /// reconfiguration, the paper's outlook). Counters reset so the new
    /// hypothesis starts a fresh monitoring period; the activation status
    /// is preserved. Unknown runnables become newly monitored.
    pub fn reconfigure(&mut self, hypothesis: RunnableHypothesis) {
        let runnable = hypothesis.runnable;
        match self.index.slot_of_runnable(runnable) {
            Some(slot) => {
                let slot = slot as usize;
                self.hypotheses[slot] = hypothesis;
                self.ac[slot] = 0;
                self.arc[slot] = 0;
                self.cca[slot] = 0;
                self.ccar[slot] = 0;
                self.stamps[COL_CONFIG] = self.epoch;
                self.stamps[COL_AC] = self.epoch;
                self.stamps[COL_ARC] = self.epoch;
                self.stamps[COL_CCA] = self.epoch;
                self.stamps[COL_CCAR] = self.epoch;
            }
            None => {
                let slot = self.index.insert(runnable.0) as usize;
                self.active.insert(slot, hypothesis.initially_active);
                self.hypotheses.insert(slot, hypothesis);
                self.ac.insert(slot, 0);
                self.arc.insert(slot, 0);
                self.cca.insert(slot, 0);
                self.ccar.insert(slot, 0);
                self.aliveness_errors.insert(slot, 0);
                self.arrival_rate_errors.insert(slot, 0);
                // Inserting shifts every later slot: all columns move.
                self.stamps = [self.epoch; COLS];
            }
        }
    }

    /// Sets the activation status of a runnable; clearing it also resets
    /// the counters so monitoring restarts cleanly when re-armed.
    /// Returns `false` for unmonitored runnables.
    pub fn set_active(&mut self, runnable: RunnableId, active: bool) -> bool {
        match self.index.slot_of_runnable(runnable) {
            Some(slot) => {
                let slot = slot as usize;
                self.active[slot] = active;
                self.stamps[COL_ACTIVE] = self.epoch;
                if !active {
                    self.ac[slot] = 0;
                    self.arc[slot] = 0;
                    self.cca[slot] = 0;
                    self.ccar[slot] = 0;
                    self.stamps[COL_AC] = self.epoch;
                    self.stamps[COL_ARC] = self.epoch;
                    self.stamps[COL_CCA] = self.epoch;
                    self.stamps[COL_CCAR] = self.epoch;
                }
                true
            }
            None => false,
        }
    }

    /// `true` if the runnable is monitored and its AS is set.
    pub fn is_active(&self, runnable: RunnableId) -> bool {
        self.index
            .slot_of_runnable(runnable)
            .is_some_and(|slot| self.active[slot as usize])
    }

    /// Live counter values (aliveness/arrival parts; PFC attribution is
    /// merged in by the service facade).
    pub fn counters(&self, runnable: RunnableId) -> Option<RunnableCounters> {
        self.index.slot_of_runnable(runnable).map(|slot| {
            let slot = slot as usize;
            RunnableCounters {
                ac: self.ac[slot],
                arc: self.arc[slot],
                cca: self.cca[slot],
                ccar: self.ccar[slot],
                activation: self.active[slot],
                aliveness_errors: self.aliveness_errors[slot],
                arrival_rate_errors: self.arrival_rate_errors[slot],
                program_flow_errors: 0,
            }
        })
    }

    /// The runnable interner (slot per monitored runnable).
    pub fn index(&self) -> &IdIndex {
        &self.index
    }

    /// Monitored runnables, in ascending id order.
    pub fn monitored(&self) -> impl Iterator<Item = RunnableId> + '_ {
        self.index.iter().map(RunnableId)
    }

    /// Captures the monitor into `snap`, retaining the snapshot's existing
    /// buffer capacity (allocation-free once warm). Follows the
    /// `easis_sim::snap` protocol: the capture records the lineage so a
    /// later [`HeartbeatMonitor::restore_from`] can skip clean columns.
    pub fn snapshot_into(&mut self, snap: &mut HeartbeatSnapshot) {
        snap.index.clone_from(&self.index);
        snap.hypotheses.clone_from(&self.hypotheses);
        snap.ac.clone_from(&self.ac);
        snap.arc.clone_from(&self.arc);
        snap.cca.clone_from(&self.cca);
        snap.ccar.clone_from(&self.ccar);
        snap.active.clone_from(&self.active);
        snap.aliveness_errors.clone_from(&self.aliveness_errors);
        snap.arrival_rate_errors.clone_from(&self.arrival_rate_errors);
        snap.stamps = self.stamps;
        snap.epoch = self.epoch;
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures the monitor into `snap` without participating in the
    /// delta-restore lineage: the monitor's own epoch and `derived_from`
    /// are untouched and the image carries `id == 0`, so an interleaved
    /// capture (the macro-stepping engine samples between checkpoint and
    /// restore) cannot degrade a later restore to the full-copy path.
    pub fn image_into(&self, snap: &mut HeartbeatSnapshot) {
        snap.index.clone_from(&self.index);
        snap.hypotheses.clone_from(&self.hypotheses);
        snap.ac.clone_from(&self.ac);
        snap.arc.clone_from(&self.arc);
        snap.cca.clone_from(&self.cca);
        snap.ccar.clone_from(&self.ccar);
        snap.active.clone_from(&self.active);
        snap.aliveness_errors.clone_from(&self.aliveness_errors);
        snap.arrival_rate_errors.clone_from(&self.arrival_rate_errors);
        snap.stamps = self.stamps;
        snap.epoch = self.epoch;
        snap.id = 0;
    }

    /// Restores the monitor from `snap`, copying only the columns written
    /// since the capture when the lineage allows it (O(dirty)).
    pub fn restore_from(&mut self, snap: &HeartbeatSnapshot) -> RestoreStats {
        let full = self.derived_from != snap.id || self.index.len() != snap.index.len();
        let mut stats = RestoreStats::default();
        macro_rules! col {
            ($field:ident, $col:expr) => {{
                let copy = full || self.stamps[$col] > snap.epoch;
                stats.region(copy);
                if copy {
                    self.$field.clone_from(&snap.$field);
                    self.stamps[$col] = snap.stamps[$col];
                }
            }};
        }
        {
            let copy = full || self.stamps[COL_CONFIG] > snap.epoch;
            stats.region(copy);
            if copy {
                self.index.clone_from(&snap.index);
                self.hypotheses.clone_from(&snap.hypotheses);
                self.stamps[COL_CONFIG] = snap.stamps[COL_CONFIG];
            }
        }
        col!(ac, COL_AC);
        col!(arc, COL_ARC);
        col!(cca, COL_CCA);
        col!(ccar, COL_CCAR);
        col!(active, COL_ACTIVE);
        col!(aliveness_errors, COL_ALIVE_ERR);
        col!(arrival_rate_errors, COL_RATE_ERR);
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    fn monitor_one() -> HeartbeatMonitor {
        HeartbeatMonitor::new([RunnableHypothesis::new(r(0))
            .alive_at_least(1, 2)
            .arrive_at_most(3, 2)])
    }

    #[test]
    fn nominal_heartbeats_produce_no_faults() {
        let mut m = monitor_one();
        let mut costs = CostMeter::new();
        for cycle in 0..10u64 {
            m.record(r(0), t(cycle * 10), &mut costs);
            assert!(m.end_of_cycle(t(cycle * 10), &mut costs).is_empty());
        }
        let c = m.counters(r(0)).unwrap();
        assert_eq!(c.aliveness_errors, 0);
        assert_eq!(c.arrival_rate_errors, 0);
    }

    #[test]
    fn missing_heartbeats_raise_aliveness_fault_at_period_end() {
        let mut m = monitor_one();
        let mut costs = CostMeter::new();
        // No heartbeats at all; period = 2 cycles.
        assert!(m.end_of_cycle(t(10), &mut costs).is_empty()); // CCA=1
        let faults = m.end_of_cycle(t(20), &mut costs); // CCA=2 → check
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Aliveness);
        assert_eq!(faults[0].at, t(20));
        // Counters were reset after the error.
        let c = m.counters(r(0)).unwrap();
        assert_eq!((c.ac, c.cca), (0, 0));
        assert_eq!(c.aliveness_errors, 1);
    }

    #[test]
    fn excess_heartbeats_raise_arrival_rate_fault() {
        let mut m = monitor_one();
        let mut costs = CostMeter::new();
        for _ in 0..5 {
            m.record(r(0), t(0), &mut costs); // max 3 per 2 cycles
        }
        assert!(m.end_of_cycle(t(10), &mut costs).is_empty());
        let faults = m.end_of_cycle(t(20), &mut costs);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::ArrivalRate);
        assert_eq!(m.counters(r(0)).unwrap().arrival_rate_errors, 1);
    }

    #[test]
    fn both_faults_can_fire_for_different_runnables_in_one_cycle() {
        let mut m = HeartbeatMonitor::new([
            RunnableHypothesis::new(r(0)).alive_at_least(1, 1),
            RunnableHypothesis::new(r(1)).arrive_at_most(0, 1),
        ]);
        let mut costs = CostMeter::new();
        m.record(r(1), t(0), &mut costs); // r0 silent, r1 over limit
        let faults = m.end_of_cycle(t(10), &mut costs);
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn cleared_activation_status_suppresses_everything() {
        let mut m = monitor_one();
        let mut costs = CostMeter::new();
        assert!(m.set_active(r(0), false));
        for cycle in 0..6u64 {
            let faults = m.end_of_cycle(t(cycle * 10), &mut costs);
            assert!(faults.is_empty());
        }
        assert!(!m.is_active(r(0)));
        // Heartbeats while inactive are not counted.
        m.record(r(0), t(60), &mut costs);
        assert_eq!(m.counters(r(0)).unwrap().ac, 0);
        // Re-arming restarts cleanly.
        assert!(m.set_active(r(0), true));
        m.record(r(0), t(70), &mut costs);
        assert_eq!(m.counters(r(0)).unwrap().ac, 1);
    }

    #[test]
    fn unmonitored_runnable_is_ignored_but_charged() {
        let mut m = monitor_one();
        let mut costs = CostMeter::new();
        m.record(r(9), t(0), &mut costs);
        assert_eq!(costs.operations(), 1);
        assert!(m.counters(r(9)).is_none());
        assert!(!m.set_active(r(9), true));
        assert!(!m.is_active(r(9)));
    }

    #[test]
    fn aliveness_and_arrival_periods_are_independent() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0))
            .alive_at_least(1, 3)
            .arrive_at_most(1, 1)]);
        let mut costs = CostMeter::new();
        // 2 heartbeats in cycle 1 → arrival fault at the 1-cycle boundary,
        // while the 3-cycle aliveness window is still open.
        m.record(r(0), t(0), &mut costs);
        m.record(r(0), t(0), &mut costs);
        let f1 = m.end_of_cycle(t(10), &mut costs);
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].kind, FaultKind::ArrivalRate);
        // ARC reset but AC kept (separate windows).
        let c = m.counters(r(0)).unwrap();
        assert_eq!((c.ac, c.arc, c.cca, c.ccar), (2, 0, 1, 0));
    }

    #[test]
    fn check_cost_is_charged_per_active_runnable() {
        let mut m = HeartbeatMonitor::new([
            RunnableHypothesis::new(r(0)).alive_at_least(1, 1),
            RunnableHypothesis::new(r(1)).alive_at_least(1, 1).initially_inactive(),
        ]);
        let mut costs = CostMeter::new();
        let _ = m.end_of_cycle(t(10), &mut costs);
        assert_eq!(costs.total_cycles(), CHECK_COST_CYCLES); // only r0 active
    }

    #[test]
    fn monitored_lists_configured_runnables() {
        let m = monitor_one();
        assert_eq!(m.monitored().collect::<Vec<_>>(), vec![r(0)]);
    }
}

#[cfg(test)]
mod reconfig_tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn reconfigure_replaces_hypothesis_and_resets_counters() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut costs = CostMeter::new();
        m.record(r(0), t(0), &mut costs);
        assert_eq!(m.counters(r(0)).unwrap().ac, 1);
        // Degraded mode: the runnable now runs every 4 cycles.
        m.reconfigure(RunnableHypothesis::new(r(0)).alive_at_least(1, 4));
        let c = m.counters(r(0)).unwrap();
        assert_eq!((c.ac, c.cca), (0, 0));
        // Three silent cycles are now fine…
        for cycle in 1..=3 {
            assert!(m.end_of_cycle(t(cycle * 10), &mut costs).is_empty());
        }
        // …the fourth closes the window and reports.
        assert_eq!(m.end_of_cycle(t(40), &mut costs).len(), 1);
    }

    #[test]
    fn reconfigure_preserves_activation_status() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        m.set_active(r(0), false);
        m.reconfigure(RunnableHypothesis::new(r(0)).alive_at_least(2, 2));
        assert!(!m.is_active(r(0)), "AS must survive reconfiguration");
    }

    #[test]
    fn reconfigure_can_add_a_new_runnable() {
        let mut m = HeartbeatMonitor::new([]);
        let mut costs = CostMeter::new();
        m.reconfigure(RunnableHypothesis::new(r(5)).alive_at_least(1, 1));
        assert!(m.is_active(r(5)));
        let faults = m.end_of_cycle(t(10), &mut costs);
        assert_eq!(faults.len(), 1, "new hypothesis is enforced immediately");
    }

    #[test]
    fn reconfigure_keeps_error_history() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut costs = CostMeter::new();
        assert_eq!(m.end_of_cycle(t(10), &mut costs).len(), 1);
        m.reconfigure(RunnableHypothesis::new(r(0)).alive_at_least(1, 2));
        assert_eq!(m.counters(r(0)).unwrap().aliveness_errors, 1);
    }

    #[test]
    fn reconfigure_unknown_runnable_respects_initially_inactive() {
        let mut m = HeartbeatMonitor::new([]);
        let mut costs = CostMeter::new();
        m.reconfigure(
            RunnableHypothesis::new(r(7))
                .alive_at_least(1, 1)
                .initially_inactive(),
        );
        // Known to the unit now, but its AS starts cleared: no check runs.
        assert!(!m.is_active(r(7)));
        assert!(m.counters(r(7)).is_some());
        assert!(m.end_of_cycle(t(10), &mut costs).is_empty());
        // Arming it makes the hypothesis effective.
        assert!(m.set_active(r(7), true));
        assert_eq!(m.end_of_cycle(t(20), &mut costs).len(), 1);
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn deactivating_mid_period_resets_all_counters() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0))
            .alive_at_least(2, 4)
            .arrive_at_most(5, 4)]);
        let mut costs = CostMeter::new();
        // Two cycles into the 4-cycle period, with one heartbeat counted.
        m.record(r(0), t(5), &mut costs);
        assert!(m.end_of_cycle(t(10), &mut costs).is_empty());
        assert!(m.end_of_cycle(t(20), &mut costs).is_empty());
        let c = m.counters(r(0)).unwrap();
        assert_eq!((c.ac, c.arc, c.cca, c.ccar), (1, 1, 2, 2));
        // Clearing the AS mid-period wipes counters and cycle positions.
        assert!(m.set_active(r(0), false));
        let c = m.counters(r(0)).unwrap();
        assert_eq!((c.ac, c.arc, c.cca, c.ccar), (0, 0, 0, 0));
        assert!(!c.activation);
    }

    #[test]
    fn reactivation_does_not_report_faults_for_the_gap() {
        // Aliveness ≥1 per 2 cycles; the runnable goes unsupervised for a
        // long silent gap, then monitoring is re-armed. The paper's
        // Activation Status gating means the gap must not be charged: the
        // monitoring period restarts fresh at reactivation.
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 2)]);
        let mut costs = CostMeter::new();
        m.set_active(r(0), false);
        for cycle in 1..=10u64 {
            assert!(m.end_of_cycle(t(cycle * 10), &mut costs).is_empty());
        }
        m.set_active(r(0), true);
        // First full period after re-arming: heartbeats arrive → no fault,
        // and CCA starts from zero (not inherited from the gap).
        m.record(r(0), t(105), &mut costs);
        assert!(m.end_of_cycle(t(110), &mut costs).is_empty());
        assert_eq!(m.counters(r(0)).unwrap().cca, 1);
        assert!(m.end_of_cycle(t(120), &mut costs).is_empty());
        assert_eq!(m.counters(r(0)).unwrap().aliveness_errors, 0);
        // Only genuinely silent periods after reactivation report.
        assert!(m.end_of_cycle(t(130), &mut costs).is_empty());
        assert_eq!(m.end_of_cycle(t(140), &mut costs).len(), 1);
    }

    #[test]
    fn snapshot_delta_restore_skips_clean_columns() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 4)]);
        let mut costs = CostMeter::new();
        m.record(r(0), t(0), &mut costs);
        let mut snap = HeartbeatSnapshot::default();
        m.snapshot_into(&mut snap);
        // Only the heartbeat counters are written after the capture.
        m.record(r(0), t(1), &mut costs);
        assert_eq!(m.counters(r(0)).unwrap().ac, 2);
        let stats = m.restore_from(&snap);
        assert!(
            stats.regions_copied < stats.regions_total,
            "clean columns (config, cca, errors …) must be skipped: {stats:?}"
        );
        assert_eq!(m.counters(r(0)).unwrap().ac, 1, "restored to capture state");
    }

    #[test]
    fn snapshot_restore_after_reset_takes_full_path() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 4)]);
        let mut costs = CostMeter::new();
        m.record(r(0), t(0), &mut costs);
        m.set_active(r(0), false);
        let mut snap = HeartbeatSnapshot::default();
        m.snapshot_into(&mut snap);
        m.reset();
        assert!(m.is_active(r(0)), "reset re-arms from the hypothesis");
        let stats = m.restore_from(&snap);
        assert_eq!(
            stats.regions_copied, stats.regions_total,
            "severed lineage must force a full copy"
        );
        assert!(!m.is_active(r(0)), "restored to the captured AS");
    }

    #[test]
    fn deactivation_stops_heartbeat_obs_events_too() {
        let mut m = HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let sink = easis_obs::ObsSink::enabled(16);
        m.attach_obs(sink.clone());
        let mut costs = CostMeter::new();
        m.record(r(0), t(1), &mut costs);
        m.set_active(r(0), false);
        m.record(r(0), t(2), &mut costs);
        assert_eq!(sink.counter("heartbeat_recorded"), 1, "inactive beats unrecorded");
    }
}

//! Active probing — the design alternative the paper rejected.
//!
//! §3.3: "In EASIS, we chose a *passive* approach to record and monitor the
//! runnable updates". The alternative is *active* probing: the watchdog
//! issues a fresh challenge every cycle and each monitored runnable must
//! echo the current challenge when it runs. This module implements that
//! alternative so the design choice can be benchmarked
//! (`ablation_passive_vs_active`):
//!
//! * **extra capability** — a *stuck replayer* (glue that keeps firing
//!   heartbeats while the runnable logic is dead, e.g. a looping interrupt
//!   or duplicated message) fools passive counters but cannot echo a
//!   challenge it never read;
//! * **extra cost** — one challenge write per runnable per cycle plus a
//!   wider glue path, the overhead the paper avoided.

use crate::report::{DetectedFault, FaultKind};
use easis_obs::{FaultClass, ObsEvent, ObsSink};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::rng::SimRng;
use easis_sim::time::Instant;
use std::collections::BTreeMap;

/// Cost of issuing one challenge (watchdog side, per runnable per cycle).
pub const CHALLENGE_COST_CYCLES: u64 = 11;
/// Cost of one response (glue side: read challenge, transform, write).
pub const RESPONSE_COST_CYCLES: u64 = 14;
/// Cost of validating one response at the cycle check.
pub const VALIDATE_COST_CYCLES: u64 = 16;

#[derive(Debug, Clone)]
struct ProbeState {
    current_challenge: u64,
    response: Option<u64>,
    errors: u32,
}

/// The active-probe monitoring unit.
#[derive(Debug, Clone)]
pub struct ActiveProbeMonitor {
    states: BTreeMap<RunnableId, ProbeState>,
    rng: SimRng,
    obs: ObsSink,
}

/// The transform a healthy runnable applies to the challenge (stands in
/// for "computed from fresh state"; any non-identity function works).
pub fn expected_response(challenge: u64) -> u64 {
    challenge.rotate_left(17) ^ 0xA5A5_5A5A_0F0F_F0F0
}

impl ActiveProbeMonitor {
    /// Creates the unit for the given runnables with a deterministic
    /// challenge stream.
    pub fn new(monitored: impl IntoIterator<Item = RunnableId>, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let states = monitored
            .into_iter()
            .map(|r| {
                (
                    r,
                    ProbeState {
                        current_challenge: rng.next_u64(),
                        response: None,
                        errors: 0,
                    },
                )
            })
            .collect();
        ActiveProbeMonitor {
            states,
            rng,
            obs: ObsSink::disabled(),
        }
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The challenge a runnable's glue must read this cycle.
    pub fn challenge_for(&self, runnable: RunnableId) -> Option<u64> {
        self.states.get(&runnable).map(|s| s.current_challenge)
    }

    /// Glue-side call at `now`: the runnable echoes (a transform of) the
    /// challenge it read. Stuck replayers echo an old value.
    pub fn respond(&mut self, runnable: RunnableId, response: u64, now: Instant, costs: &mut CostMeter) {
        costs.charge(RESPONSE_COST_CYCLES);
        if let Some(state) = self.states.get_mut(&runnable) {
            state.response = Some(response);
            self.obs.record(now, ObsEvent::ProbeResponse { runnable });
        }
    }

    /// Cycle check: every runnable must have echoed the *current*
    /// challenge; then fresh challenges are issued. Returns the faults.
    pub fn end_of_cycle(&mut self, now: Instant, costs: &mut CostMeter) -> Vec<DetectedFault> {
        let mut faults = Vec::new();
        for (&runnable, state) in &mut self.states {
            costs.charge(VALIDATE_COST_CYCLES + CHALLENGE_COST_CYCLES);
            let ok = state.response == Some(expected_response(state.current_challenge));
            if !ok {
                state.errors += 1;
                self.obs.record(
                    now,
                    ObsEvent::FaultDetected {
                        runnable,
                        kind: FaultClass::Aliveness,
                    },
                );
                faults.push(DetectedFault {
                    at: now,
                    runnable,
                    kind: FaultKind::Aliveness,
                });
            }
            state.response = None;
            state.current_challenge = self.rng.next_u64();
        }
        faults
    }

    /// Cumulative errors of a runnable.
    pub fn errors_of(&self, runnable: RunnableId) -> u32 {
        self.states.get(&runnable).map_or(0, |s| s.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn healthy_echo_passes_every_cycle() {
        let mut probe = ActiveProbeMonitor::new([r(0)], 1);
        let mut costs = CostMeter::new();
        for cycle in 1..=10u64 {
            let c = probe.challenge_for(r(0)).unwrap();
            probe.respond(r(0), expected_response(c), t(cycle * 10), &mut costs);
            assert!(probe.end_of_cycle(t(cycle * 10), &mut costs).is_empty());
        }
        assert_eq!(probe.errors_of(r(0)), 0);
    }

    #[test]
    fn silence_is_detected_like_passive_monitoring() {
        let mut probe = ActiveProbeMonitor::new([r(0)], 2);
        let mut costs = CostMeter::new();
        let faults = probe.end_of_cycle(t(10), &mut costs);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Aliveness);
    }

    #[test]
    fn stuck_replayer_is_detected_by_active_but_not_passive() {
        // Passive reference: a replayed heartbeat counts as alive.
        use crate::config::RunnableHypothesis;
        use crate::heartbeat::HeartbeatMonitor;
        let mut passive =
            HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        let mut costs = CostMeter::new();

        // Active: the replayer echoes the response captured in cycle 1.
        let mut probe = ActiveProbeMonitor::new([r(0)], 3);
        let stale = expected_response(probe.challenge_for(r(0)).unwrap());
        probe.respond(r(0), stale, t(5), &mut costs);
        assert!(probe.end_of_cycle(t(10), &mut costs).is_empty()); // cycle 1: fresh

        let mut active_detected = 0;
        let mut passive_detected = 0;
        for cycle in 2..=6u64 {
            // The runnable is now dead; the replayer repeats old traffic.
            probe.respond(r(0), stale, t(cycle * 10), &mut costs);
            passive.record(r(0), t(cycle * 10), &mut costs);
            active_detected += probe.end_of_cycle(t(cycle * 10), &mut costs).len();
            passive_detected += passive.end_of_cycle(t(cycle * 10), &mut costs).len();
        }
        assert_eq!(active_detected, 5, "active must flag every replayed cycle");
        assert_eq!(passive_detected, 0, "passive counters accept the replay");
    }

    #[test]
    fn challenges_never_repeat_consecutively() {
        let mut probe = ActiveProbeMonitor::new([r(0)], 4);
        let mut costs = CostMeter::new();
        let mut last = probe.challenge_for(r(0)).unwrap();
        for cycle in 1..=50u64 {
            probe.end_of_cycle(t(cycle), &mut costs);
            let next = probe.challenge_for(r(0)).unwrap();
            assert_ne!(next, last);
            last = next;
        }
    }

    #[test]
    fn active_costs_more_than_passive_per_cycle() {
        use crate::config::RunnableHypothesis;
        use crate::heartbeat::HeartbeatMonitor;
        let mut active_costs = CostMeter::new();
        let mut passive_costs = CostMeter::new();
        let mut probe = ActiveProbeMonitor::new([r(0)], 5);
        let mut passive =
            HeartbeatMonitor::new([RunnableHypothesis::new(r(0)).alive_at_least(1, 1)]);
        for cycle in 1..=100u64 {
            let c = probe.challenge_for(r(0)).unwrap();
            probe.respond(r(0), expected_response(c), t(cycle * 10), &mut active_costs);
            probe.end_of_cycle(t(cycle * 10), &mut active_costs);
            passive.record(r(0), t(cycle * 10), &mut passive_costs);
            passive.end_of_cycle(t(cycle * 10), &mut passive_costs);
        }
        assert!(
            active_costs.total_cycles() > passive_costs.total_cycles(),
            "active {} vs passive {}",
            active_costs.total_cycles(),
            passive_costs.total_cycles()
        );
    }

    #[test]
    fn unmonitored_runnables_are_ignored() {
        let mut probe = ActiveProbeMonitor::new([r(0)], 6);
        let mut costs = CostMeter::new();
        assert_eq!(probe.challenge_for(r(9)), None);
        probe.respond(r(9), 123, t(0), &mut costs); // no panic, no state
        assert_eq!(probe.errors_of(r(9)), 0);
    }
}

//! Watchdog configuration: the fault hypothesis.
//!
//! The paper's heartbeat counters are "assigned to each runnable to record
//! its heartbeats during the defined monitoring period *according to the
//! fault hypothesis*". [`RunnableHypothesis`] is that per-runnable
//! hypothesis: how many watchdog cycles form a monitoring period and how
//! many aliveness indications are expected at least (aliveness) and at most
//! (arrival rate) within it. [`WatchdogConfig`] aggregates the hypotheses
//! with the program-flow look-up table, the task state indication
//! thresholds and the deployment mapping.

use crate::pfc::FlowTable;
use easis_osek::task::TaskId;
use easis_rte::mapping::SystemMapping;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A frozen interner from sparse `u32` identifiers (runnable or task
/// numbers) to dense slot indices `0..len`.
///
/// The watchdog's hot path — one look-up per heartbeat indication and per
/// program-flow check — must not pay a pointer-chasing map probe. The
/// interner is built once (at [`WatchdogConfig`] build time) from every
/// identifier the watchdog will ever see, after which each monitoring unit
/// stores its state in flat arrays indexed by slot. Slots are assigned in
/// ascending identifier order, so a linear sweep over the slots visits
/// identifiers in exactly the order the previous `BTreeMap`-based
/// implementation iterated them — the rewrite is observation-equivalent.
///
/// Look-ups are O(1) through a direct-mapped table whenever the largest
/// interned identifier is small (the common case: runnable ids are dense
/// by construction); pathological sparse id spaces fall back to a binary
/// search over the sorted slot table.
///
/// # Examples
///
/// ```
/// use easis_watchdog::config::IdIndex;
///
/// let index = IdIndex::from_ids([7, 3, 3, 11]);
/// assert_eq!(index.len(), 3);
/// assert_eq!(index.slot_of(3), Some(0));
/// assert_eq!(index.slot_of(7), Some(1));
/// assert_eq!(index.slot_of(11), Some(2));
/// assert_eq!(index.slot_of(5), None);
/// assert_eq!(index.id_at(2), 11);
/// ```
#[derive(Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdIndex {
    /// Slot → identifier, ascending (the slot table).
    ids: Vec<u32>,
    /// Identifier → slot, [`IdIndex::NO_SLOT`] where absent. Present only
    /// while the largest identifier stays below
    /// [`IdIndex::DIRECT_MAP_LIMIT`]; empty otherwise (binary-search
    /// fallback).
    direct: Vec<u32>,
}

impl Clone for IdIndex {
    fn clone(&self) -> Self {
        IdIndex {
            ids: self.ids.clone(),
            direct: self.direct.clone(),
        }
    }

    // Capacity-retained for the watchdog snapshot path.
    fn clone_from(&mut self, source: &Self) {
        self.ids.clone_from(&source.ids);
        self.direct.clone_from(&source.direct);
    }
}

impl IdIndex {
    /// Sentinel slot value meaning "identifier not interned".
    pub const NO_SLOT: u32 = u32::MAX;

    /// Largest identifier for which the O(1) direct-mapped look-up table
    /// is maintained (64 Ki ids ⇒ at most 256 KiB of table).
    pub const DIRECT_MAP_LIMIT: u32 = 1 << 16;

    /// Builds the interner from an iterator of identifiers (duplicates
    /// collapse; slots are assigned in ascending identifier order).
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let unique: BTreeSet<u32> = ids.into_iter().collect();
        let mut index = IdIndex {
            ids: unique.into_iter().collect(),
            direct: Vec::new(),
        };
        index.rebuild_direct();
        index
    }

    fn rebuild_direct(&mut self) {
        self.direct.clear();
        match self.ids.last() {
            Some(&max) if max < Self::DIRECT_MAP_LIMIT => {
                self.direct.resize(max as usize + 1, Self::NO_SLOT);
                for (slot, &id) in self.ids.iter().enumerate() {
                    self.direct[id as usize] = slot as u32;
                }
            }
            _ => {}
        }
    }

    /// Dense slot of `id`, or `None` if the identifier is not interned.
    #[inline]
    pub fn slot_of(&self, id: u32) -> Option<u32> {
        if !self.direct.is_empty() {
            return match self.direct.get(id as usize) {
                Some(&slot) if slot != Self::NO_SLOT => Some(slot),
                _ => None,
            };
        }
        self.ids.binary_search(&id).ok().map(|slot| slot as u32)
    }

    /// Slot of a runnable identifier.
    #[inline]
    pub fn slot_of_runnable(&self, runnable: RunnableId) -> Option<u32> {
        self.slot_of(runnable.0)
    }

    /// Slot of a task identifier.
    #[inline]
    pub fn slot_of_task(&self, task: TaskId) -> Option<u32> {
        self.slot_of(task.0)
    }

    /// The identifier interned at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    #[inline]
    pub fn id_at(&self, slot: u32) -> u32 {
        self.ids[slot as usize]
    }

    /// Interns `id`, returning its slot. Inserting a new identifier keeps
    /// slots in ascending-id order, which shifts every slot after the
    /// insertion point — callers holding parallel per-slot arrays must
    /// insert at the same position. Cold path (dynamic reconfiguration).
    pub fn insert(&mut self, id: u32) -> u32 {
        match self.ids.binary_search(&id) {
            Ok(slot) => slot as u32,
            Err(position) => {
                self.ids.insert(position, id);
                self.rebuild_direct();
                position as u32
            }
        }
    }

    /// `true` if `id` is interned.
    pub fn contains(&self, id: u32) -> bool {
        self.slot_of(id).is_some()
    }

    /// Number of interned identifiers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates the interned identifiers in slot (= ascending id) order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }
}

/// Aliveness-monitoring part of a fault hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlivenessSpec {
    /// Minimum heartbeats expected per monitoring period.
    pub min_indications: u32,
    /// Monitoring period length in watchdog cycles (CCA counts up to this).
    pub cycles: u32,
}

/// Arrival-rate-monitoring part of a fault hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalRateSpec {
    /// Maximum heartbeats tolerated per monitoring period.
    pub max_indications: u32,
    /// Monitoring period length in watchdog cycles (CCAR counts up to this).
    pub cycles: u32,
}

/// The complete fault hypothesis of one monitored runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableHypothesis {
    /// The monitored runnable.
    pub runnable: RunnableId,
    /// Aliveness monitoring, if enabled for this runnable.
    pub aliveness: Option<AlivenessSpec>,
    /// Arrival-rate monitoring, if enabled for this runnable.
    pub arrival_rate: Option<ArrivalRateSpec>,
    /// Initial activation status (AS); monitoring only happens while set.
    pub initially_active: bool,
}

impl RunnableHypothesis {
    /// Creates a hypothesis with both monitors disabled but AS set.
    pub fn new(runnable: RunnableId) -> Self {
        RunnableHypothesis {
            runnable,
            aliveness: None,
            arrival_rate: None,
            initially_active: true,
        }
    }

    /// Enables aliveness monitoring: at least `min` heartbeats every
    /// `cycles` watchdog cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn alive_at_least(mut self, min: u32, cycles: u32) -> Self {
        assert!(cycles > 0, "monitoring period must span at least one cycle");
        self.aliveness = Some(AlivenessSpec {
            min_indications: min,
            cycles,
        });
        self
    }

    /// Enables arrival-rate monitoring: at most `max` heartbeats every
    /// `cycles` watchdog cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn arrive_at_most(mut self, max: u32, cycles: u32) -> Self {
        assert!(cycles > 0, "monitoring period must span at least one cycle");
        self.arrival_rate = Some(ArrivalRateSpec {
            max_indications: max,
            cycles,
        });
        self
    }

    /// Starts with the activation status cleared (monitoring armed later
    /// via the service interface).
    pub fn initially_inactive(mut self) -> Self {
        self.initially_active = false;
        self
    }
}

/// Complete Software Watchdog configuration.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_sim::time::Duration;
/// use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
///
/// let config = WatchdogConfig::builder(Duration::from_millis(10))
///     .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
///     .allow_flow(RunnableId(0), RunnableId(1))
///     .error_threshold(3)
///     .build();
/// assert_eq!(config.check_period(), Duration::from_millis(10));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchdogConfig {
    check_period: Duration,
    hypotheses: BTreeMap<RunnableId, RunnableHypothesis>,
    flow_table: FlowTable,
    error_threshold: u32,
    deactivate_on_faulty_task: bool,
    ecu_faulty_app_threshold: u32,
    mapping: SystemMapping,
    /// Frozen interner over every runnable the watchdog can encounter:
    /// heartbeat-monitored, in the flow table, or deployed in the mapping.
    /// Built by [`WatchdogConfigBuilder::build`].
    runnable_index: IdIndex,
    /// Frozen interner over every task referenced by the mapping (hosting
    /// runnables or assigned to applications).
    task_index: IdIndex,
}

impl WatchdogConfig {
    /// Starts building a configuration with the given watchdog check period
    /// (the period of the watchdog's own OS task).
    pub fn builder(check_period: Duration) -> WatchdogConfigBuilder {
        WatchdogConfigBuilder {
            config: WatchdogConfig {
                check_period,
                hypotheses: BTreeMap::new(),
                flow_table: FlowTable::new(),
                error_threshold: 3,
                deactivate_on_faulty_task: true,
                ecu_faulty_app_threshold: u32::MAX,
                mapping: SystemMapping::new(),
                runnable_index: IdIndex::default(),
                task_index: IdIndex::default(),
            },
        }
    }

    /// The watchdog check period.
    pub fn check_period(&self) -> Duration {
        self.check_period
    }

    /// Hypothesis for a runnable, if monitored.
    pub fn hypothesis(&self, runnable: RunnableId) -> Option<&RunnableHypothesis> {
        self.hypotheses.get(&runnable)
    }

    /// All monitored runnables.
    pub fn monitored(&self) -> impl Iterator<Item = RunnableId> + '_ {
        self.hypotheses.keys().copied()
    }

    /// The program-flow look-up table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// TSI error threshold: a task is faulty once any element of its error
    /// indication vector reaches this count.
    pub fn error_threshold(&self) -> u32 {
        self.error_threshold
    }

    /// Whether the watchdog clears the activation status of a faulty task's
    /// runnables (stops double-reporting while fault treatment runs).
    pub fn deactivate_on_faulty_task(&self) -> bool {
        self.deactivate_on_faulty_task
    }

    /// Number of simultaneously faulty applications at which the global ECU
    /// state turns faulty. `u32::MAX` (default) means "all of them".
    pub fn ecu_faulty_app_threshold(&self) -> u32 {
        self.ecu_faulty_app_threshold
    }

    /// The application/task/runnable deployment map.
    pub fn mapping(&self) -> &SystemMapping {
        &self.mapping
    }

    /// The frozen runnable interner: every heartbeat-monitored, flow-table
    /// or mapped runnable has a dense slot here. The monitoring units'
    /// flat per-slot state is indexed through it.
    pub fn runnable_index(&self) -> &IdIndex {
        &self.runnable_index
    }

    /// The frozen task interner covering every task the mapping references.
    pub fn task_index(&self) -> &IdIndex {
        &self.task_index
    }
}

/// Builder for [`WatchdogConfig`].
#[derive(Debug, Clone)]
pub struct WatchdogConfigBuilder {
    config: WatchdogConfig,
}

impl WatchdogConfigBuilder {
    /// Adds (or replaces) the fault hypothesis of one runnable.
    pub fn monitor(mut self, hypothesis: RunnableHypothesis) -> Self {
        self.config
            .hypotheses
            .insert(hypothesis.runnable, hypothesis);
        self
    }

    /// Allows `successor` to directly follow `predecessor` in the program
    /// flow of monitored runnables.
    pub fn allow_flow(mut self, predecessor: RunnableId, successor: RunnableId) -> Self {
        self.config.flow_table.allow(predecessor, successor);
        self
    }

    /// Marks a runnable as a valid start of a monitored sequence.
    pub fn allow_entry(mut self, entry: RunnableId) -> Self {
        self.config.flow_table.allow_entry(entry);
        self
    }

    /// Sets the TSI error threshold (default 3, as in the paper's Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn error_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        self.config.error_threshold = threshold;
        self
    }

    /// Sets whether the watchdog clears the activation status of a faulty
    /// task's runnables (default `true`, matching the paper's Figure 6;
    /// `false` is the ablation switch that keeps monitoring them). Named
    /// after the [`WatchdogConfig::deactivate_on_faulty_task`] accessor.
    pub fn deactivate_on_faulty_task(mut self, deactivate: bool) -> Self {
        self.config.deactivate_on_faulty_task = deactivate;
        self
    }

    /// Declares the ECU faulty once `n` applications are faulty.
    pub fn ecu_faulty_after_apps(mut self, n: u32) -> Self {
        self.config.ecu_faulty_app_threshold = n;
        self
    }

    /// Attaches the deployment mapping used for task/application rollup.
    pub fn mapping(mut self, mapping: SystemMapping) -> Self {
        self.config.mapping = mapping;
        self
    }

    /// Finalises the configuration, freezing the dense id interners over
    /// every runnable and task the watchdog can encounter.
    pub fn build(self) -> WatchdogConfig {
        let mut config = self.config;
        config.runnable_index = IdIndex::from_ids(
            config
                .hypotheses
                .keys()
                .map(|r| r.0)
                .chain(config.flow_table.monitored_ids().map(|r| r.0))
                .chain(config.mapping.runnables().map(|r| r.0)),
        );
        config.task_index = IdIndex::from_ids(
            config
                .mapping
                .tasks()
                .map(|t| t.0)
                .chain(config.mapping.runnables().filter_map(|r| {
                    config.mapping.task_of(r).map(|t| t.0)
                })),
        );
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_complete_config() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(
                RunnableHypothesis::new(RunnableId(0))
                    .alive_at_least(1, 2)
                    .arrive_at_most(3, 2),
            )
            .monitor(RunnableHypothesis::new(RunnableId(1)).alive_at_least(2, 4))
            .allow_entry(RunnableId(0))
            .allow_flow(RunnableId(0), RunnableId(1))
            .error_threshold(5)
            .ecu_faulty_after_apps(2)
            .build();
        assert_eq!(cfg.check_period(), Duration::from_millis(10));
        assert_eq!(cfg.monitored().count(), 2);
        let h = cfg.hypothesis(RunnableId(0)).unwrap();
        assert_eq!(h.aliveness.unwrap().min_indications, 1);
        assert_eq!(h.arrival_rate.unwrap().max_indications, 3);
        assert_eq!(cfg.error_threshold(), 5);
        assert_eq!(cfg.ecu_faulty_app_threshold(), 2);
        assert!(cfg.flow_table().is_allowed(RunnableId(0), RunnableId(1)));
    }

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10)).build();
        assert_eq!(cfg.error_threshold(), 3);
        assert!(cfg.deactivate_on_faulty_task());
        assert_eq!(cfg.ecu_faulty_app_threshold(), u32::MAX);
        assert!(cfg.hypothesis(RunnableId(0)).is_none());
    }

    #[test]
    fn monitor_replaces_existing_hypothesis() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(9, 9))
            .build();
        assert_eq!(
            cfg.hypothesis(RunnableId(0)).unwrap().aliveness.unwrap().min_indications,
            9
        );
        assert_eq!(cfg.monitored().count(), 1);
    }

    #[test]
    fn deactivate_on_faulty_task_builder_sets_the_flag() {
        let on = WatchdogConfig::builder(Duration::from_millis(10))
            .deactivate_on_faulty_task(true)
            .build();
        assert!(on.deactivate_on_faulty_task());
        let off = WatchdogConfig::builder(Duration::from_millis(10))
            .deactivate_on_faulty_task(false)
            .build();
        assert!(!off.deactivate_on_faulty_task());
    }

    #[test]
    fn initially_inactive_is_recorded() {
        let h = RunnableHypothesis::new(RunnableId(3)).initially_inactive();
        assert!(!h.initially_active);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_hypothesis_rejected() {
        let _ = RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = WatchdogConfig::builder(Duration::from_millis(10)).error_threshold(0);
    }

    #[test]
    fn build_freezes_runnable_and_task_indices() {
        use easis_osek::task::TaskId;

        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(3), app);
        mapping.assign_runnable(RunnableId(9), TaskId(3));
        // Runnable 9 only in the mapping, 0 monitored, 5 only a flow
        // successor: all three must be interned.
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
            .allow_flow(RunnableId(0), RunnableId(5))
            .build();
        let idx = cfg.runnable_index();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.slot_of_runnable(RunnableId(0)), Some(0));
        assert_eq!(idx.slot_of_runnable(RunnableId(5)), Some(1));
        assert_eq!(idx.slot_of_runnable(RunnableId(9)), Some(2));
        assert_eq!(idx.slot_of_runnable(RunnableId(1)), None);
        assert_eq!(cfg.task_index().slot_of_task(TaskId(3)), Some(0));
        assert_eq!(cfg.task_index().slot_of_task(TaskId(0)), None);
    }
}

#[cfg(test)]
mod id_index_tests {
    use super::*;

    #[test]
    fn slots_follow_ascending_id_order() {
        let index = IdIndex::from_ids([30, 10, 20, 10]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.iter().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(index.slot_of(10), Some(0));
        assert_eq!(index.slot_of(20), Some(1));
        assert_eq!(index.slot_of(30), Some(2));
        assert_eq!(index.id_at(1), 20);
        assert!(index.contains(30));
        assert!(!index.contains(25));
    }

    #[test]
    fn empty_index_resolves_nothing() {
        let index = IdIndex::default();
        assert!(index.is_empty());
        assert_eq!(index.slot_of(0), None);
        assert_eq!(index.slot_of(u32::MAX), None);
    }

    #[test]
    fn sparse_ids_fall_back_to_binary_search() {
        // Max id ≥ DIRECT_MAP_LIMIT: direct table disabled, look-ups must
        // still resolve (and misses must still miss).
        let big = IdIndex::DIRECT_MAP_LIMIT + 17;
        let index = IdIndex::from_ids([2, big, 40]);
        assert_eq!(index.slot_of(2), Some(0));
        assert_eq!(index.slot_of(40), Some(1));
        assert_eq!(index.slot_of(big), Some(2));
        assert_eq!(index.slot_of(3), None);
        assert_eq!(index.slot_of(big + 1), None);
    }

    #[test]
    fn insert_keeps_ascending_order_and_shifts_slots() {
        let mut index = IdIndex::from_ids([10, 30]);
        assert_eq!(index.insert(20), 1);
        assert_eq!(index.slot_of(10), Some(0));
        assert_eq!(index.slot_of(20), Some(1));
        assert_eq!(index.slot_of(30), Some(2), "slot shifted by the insert");
        // Re-inserting is a no-op returning the existing slot.
        assert_eq!(index.insert(20), 1);
        assert_eq!(index.len(), 3);
    }
}

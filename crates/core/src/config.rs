//! Watchdog configuration: the fault hypothesis.
//!
//! The paper's heartbeat counters are "assigned to each runnable to record
//! its heartbeats during the defined monitoring period *according to the
//! fault hypothesis*". [`RunnableHypothesis`] is that per-runnable
//! hypothesis: how many watchdog cycles form a monitoring period and how
//! many aliveness indications are expected at least (aliveness) and at most
//! (arrival rate) within it. [`WatchdogConfig`] aggregates the hypotheses
//! with the program-flow look-up table, the task state indication
//! thresholds and the deployment mapping.

use crate::pfc::FlowTable;
use easis_rte::mapping::SystemMapping;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aliveness-monitoring part of a fault hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlivenessSpec {
    /// Minimum heartbeats expected per monitoring period.
    pub min_indications: u32,
    /// Monitoring period length in watchdog cycles (CCA counts up to this).
    pub cycles: u32,
}

/// Arrival-rate-monitoring part of a fault hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalRateSpec {
    /// Maximum heartbeats tolerated per monitoring period.
    pub max_indications: u32,
    /// Monitoring period length in watchdog cycles (CCAR counts up to this).
    pub cycles: u32,
}

/// The complete fault hypothesis of one monitored runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableHypothesis {
    /// The monitored runnable.
    pub runnable: RunnableId,
    /// Aliveness monitoring, if enabled for this runnable.
    pub aliveness: Option<AlivenessSpec>,
    /// Arrival-rate monitoring, if enabled for this runnable.
    pub arrival_rate: Option<ArrivalRateSpec>,
    /// Initial activation status (AS); monitoring only happens while set.
    pub initially_active: bool,
}

impl RunnableHypothesis {
    /// Creates a hypothesis with both monitors disabled but AS set.
    pub fn new(runnable: RunnableId) -> Self {
        RunnableHypothesis {
            runnable,
            aliveness: None,
            arrival_rate: None,
            initially_active: true,
        }
    }

    /// Enables aliveness monitoring: at least `min` heartbeats every
    /// `cycles` watchdog cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn alive_at_least(mut self, min: u32, cycles: u32) -> Self {
        assert!(cycles > 0, "monitoring period must span at least one cycle");
        self.aliveness = Some(AlivenessSpec {
            min_indications: min,
            cycles,
        });
        self
    }

    /// Enables arrival-rate monitoring: at most `max` heartbeats every
    /// `cycles` watchdog cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn arrive_at_most(mut self, max: u32, cycles: u32) -> Self {
        assert!(cycles > 0, "monitoring period must span at least one cycle");
        self.arrival_rate = Some(ArrivalRateSpec {
            max_indications: max,
            cycles,
        });
        self
    }

    /// Starts with the activation status cleared (monitoring armed later
    /// via the service interface).
    pub fn initially_inactive(mut self) -> Self {
        self.initially_active = false;
        self
    }
}

/// Complete Software Watchdog configuration.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_sim::time::Duration;
/// use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
///
/// let config = WatchdogConfig::builder(Duration::from_millis(10))
///     .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
///     .allow_flow(RunnableId(0), RunnableId(1))
///     .error_threshold(3)
///     .build();
/// assert_eq!(config.check_period(), Duration::from_millis(10));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchdogConfig {
    check_period: Duration,
    hypotheses: BTreeMap<RunnableId, RunnableHypothesis>,
    flow_table: FlowTable,
    error_threshold: u32,
    deactivate_on_faulty_task: bool,
    ecu_faulty_app_threshold: u32,
    mapping: SystemMapping,
}

impl WatchdogConfig {
    /// Starts building a configuration with the given watchdog check period
    /// (the period of the watchdog's own OS task).
    pub fn builder(check_period: Duration) -> WatchdogConfigBuilder {
        WatchdogConfigBuilder {
            config: WatchdogConfig {
                check_period,
                hypotheses: BTreeMap::new(),
                flow_table: FlowTable::new(),
                error_threshold: 3,
                deactivate_on_faulty_task: true,
                ecu_faulty_app_threshold: u32::MAX,
                mapping: SystemMapping::new(),
            },
        }
    }

    /// The watchdog check period.
    pub fn check_period(&self) -> Duration {
        self.check_period
    }

    /// Hypothesis for a runnable, if monitored.
    pub fn hypothesis(&self, runnable: RunnableId) -> Option<&RunnableHypothesis> {
        self.hypotheses.get(&runnable)
    }

    /// All monitored runnables.
    pub fn monitored(&self) -> impl Iterator<Item = RunnableId> + '_ {
        self.hypotheses.keys().copied()
    }

    /// The program-flow look-up table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// TSI error threshold: a task is faulty once any element of its error
    /// indication vector reaches this count.
    pub fn error_threshold(&self) -> u32 {
        self.error_threshold
    }

    /// Whether the watchdog clears the activation status of a faulty task's
    /// runnables (stops double-reporting while fault treatment runs).
    pub fn deactivate_on_faulty_task(&self) -> bool {
        self.deactivate_on_faulty_task
    }

    /// Number of simultaneously faulty applications at which the global ECU
    /// state turns faulty. `u32::MAX` (default) means "all of them".
    pub fn ecu_faulty_app_threshold(&self) -> u32 {
        self.ecu_faulty_app_threshold
    }

    /// The application/task/runnable deployment map.
    pub fn mapping(&self) -> &SystemMapping {
        &self.mapping
    }
}

/// Builder for [`WatchdogConfig`].
#[derive(Debug, Clone)]
pub struct WatchdogConfigBuilder {
    config: WatchdogConfig,
}

impl WatchdogConfigBuilder {
    /// Adds (or replaces) the fault hypothesis of one runnable.
    pub fn monitor(mut self, hypothesis: RunnableHypothesis) -> Self {
        self.config
            .hypotheses
            .insert(hypothesis.runnable, hypothesis);
        self
    }

    /// Allows `successor` to directly follow `predecessor` in the program
    /// flow of monitored runnables.
    pub fn allow_flow(mut self, predecessor: RunnableId, successor: RunnableId) -> Self {
        self.config.flow_table.allow(predecessor, successor);
        self
    }

    /// Marks a runnable as a valid start of a monitored sequence.
    pub fn allow_entry(mut self, entry: RunnableId) -> Self {
        self.config.flow_table.allow_entry(entry);
        self
    }

    /// Sets the TSI error threshold (default 3, as in the paper's Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn error_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        self.config.error_threshold = threshold;
        self
    }

    /// Sets whether the watchdog clears the activation status of a faulty
    /// task's runnables (default `true`, matching the paper's Figure 6;
    /// `false` is the ablation switch that keeps monitoring them). Named
    /// after the [`WatchdogConfig::deactivate_on_faulty_task`] accessor.
    pub fn deactivate_on_faulty_task(mut self, deactivate: bool) -> Self {
        self.config.deactivate_on_faulty_task = deactivate;
        self
    }

    /// Keeps monitoring runnables of tasks already marked faulty.
    #[deprecated(
        since = "0.1.0",
        note = "use `deactivate_on_faulty_task(false)` instead"
    )]
    pub fn keep_monitoring_faulty_tasks(self) -> Self {
        self.deactivate_on_faulty_task(false)
    }

    /// Declares the ECU faulty once `n` applications are faulty.
    pub fn ecu_faulty_after_apps(mut self, n: u32) -> Self {
        self.config.ecu_faulty_app_threshold = n;
        self
    }

    /// Attaches the deployment mapping used for task/application rollup.
    pub fn mapping(mut self, mapping: SystemMapping) -> Self {
        self.config.mapping = mapping;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> WatchdogConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_complete_config() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(
                RunnableHypothesis::new(RunnableId(0))
                    .alive_at_least(1, 2)
                    .arrive_at_most(3, 2),
            )
            .monitor(RunnableHypothesis::new(RunnableId(1)).alive_at_least(2, 4))
            .allow_entry(RunnableId(0))
            .allow_flow(RunnableId(0), RunnableId(1))
            .error_threshold(5)
            .ecu_faulty_after_apps(2)
            .build();
        assert_eq!(cfg.check_period(), Duration::from_millis(10));
        assert_eq!(cfg.monitored().count(), 2);
        let h = cfg.hypothesis(RunnableId(0)).unwrap();
        assert_eq!(h.aliveness.unwrap().min_indications, 1);
        assert_eq!(h.arrival_rate.unwrap().max_indications, 3);
        assert_eq!(cfg.error_threshold(), 5);
        assert_eq!(cfg.ecu_faulty_app_threshold(), 2);
        assert!(cfg.flow_table().is_allowed(RunnableId(0), RunnableId(1)));
    }

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10)).build();
        assert_eq!(cfg.error_threshold(), 3);
        assert!(cfg.deactivate_on_faulty_task());
        assert_eq!(cfg.ecu_faulty_app_threshold(), u32::MAX);
        assert!(cfg.hypothesis(RunnableId(0)).is_none());
    }

    #[test]
    fn monitor_replaces_existing_hypothesis() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(9, 9))
            .build();
        assert_eq!(
            cfg.hypothesis(RunnableId(0)).unwrap().aliveness.unwrap().min_indications,
            9
        );
        assert_eq!(cfg.monitored().count(), 1);
    }

    #[test]
    fn deactivate_on_faulty_task_builder_sets_the_flag() {
        let on = WatchdogConfig::builder(Duration::from_millis(10))
            .deactivate_on_faulty_task(true)
            .build();
        assert!(on.deactivate_on_faulty_task());
        let off = WatchdogConfig::builder(Duration::from_millis(10))
            .deactivate_on_faulty_task(false)
            .build();
        assert!(!off.deactivate_on_faulty_task());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_keep_monitoring_alias_still_works() {
        let cfg = WatchdogConfig::builder(Duration::from_millis(10))
            .keep_monitoring_faulty_tasks()
            .build();
        assert!(!cfg.deactivate_on_faulty_task());
    }

    #[test]
    fn initially_inactive_is_recorded() {
        let h = RunnableHypothesis::new(RunnableId(3)).initially_inactive();
        assert!(!h.initially_active);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_hypothesis_rejected() {
        let _ = RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = WatchdogConfig::builder(Duration::from_millis(10)).error_threshold(0);
    }
}

//! Program flow checking (PFC) unit.
//!
//! "A simple approach with a look-up table was applied to minimize
//! performance penalty and extensive modification requirements of
//! applications" (paper §3.4): the table stores every allowed
//! predecessor/successor pair of the monitored runnables; the unit compares
//! the observed heartbeat sequence against it. Unmonitored runnables are
//! transparent — only the sequence of *monitored* runnables is checked, as
//! the paper restricts checking to safety-critical runnables to bound
//! overhead.

use easis_obs::{FaultClass, ObsEvent, ObsSink};
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract per-observation CPU cost of a look-up (cycles), charged to the
/// watchdog's cost meter for the overhead experiments.
pub const LOOKUP_COST_CYCLES: u64 = 18;

/// The allowed-successor look-up table.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_watchdog::pfc::FlowTable;
///
/// let mut table = FlowTable::new();
/// table.allow_entry(RunnableId(0));
/// table.allow(RunnableId(0), RunnableId(1));
/// assert!(table.is_allowed(RunnableId(0), RunnableId(1)));
/// assert!(!table.is_allowed(RunnableId(1), RunnableId(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTable {
    successors: BTreeMap<RunnableId, BTreeSet<RunnableId>>,
    entries: BTreeSet<RunnableId>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Allows `successor` to follow `predecessor`.
    pub fn allow(&mut self, predecessor: RunnableId, successor: RunnableId) {
        self.successors
            .entry(predecessor)
            .or_default()
            .insert(successor);
    }

    /// Marks `entry` as a valid first runnable of a monitored sequence.
    pub fn allow_entry(&mut self, entry: RunnableId) {
        self.entries.insert(entry);
    }

    /// `true` if the pair is in the table.
    pub fn is_allowed(&self, predecessor: RunnableId, successor: RunnableId) -> bool {
        self.successors
            .get(&predecessor)
            .is_some_and(|s| s.contains(&successor))
    }

    /// `true` if `runnable` may start a sequence. An empty entry set means
    /// any monitored runnable may start (unconstrained entry).
    pub fn is_entry(&self, runnable: RunnableId) -> bool {
        self.entries.is_empty() || self.entries.contains(&runnable)
    }

    /// `true` if `runnable` appears in the table (as predecessor, successor
    /// or entry) — i.e. its flow is monitored.
    pub fn is_monitored(&self, runnable: RunnableId) -> bool {
        self.entries.contains(&runnable)
            || self.successors.contains_key(&runnable)
            || self.successors.values().any(|s| s.contains(&runnable))
    }

    /// Number of allowed pairs.
    pub fn pair_count(&self) -> usize {
        self.successors.values().map(BTreeSet::len).sum()
    }

    /// Iterates over all allowed pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (RunnableId, RunnableId)> + '_ {
        self.successors
            .iter()
            .flat_map(|(&p, set)| set.iter().map(move |&s| (p, s)))
    }
}

/// The PFC unit: table + last-observed monitored runnable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramFlowChecker {
    table: FlowTable,
    last: Option<RunnableId>,
    errors_detected: u64,
    obs: ObsSink,
    /// Violations observed through the [`crate::unit::MonitoringUnit`]
    /// interface, buffered until the next `check` drains them. The inherent
    /// `observe`/`observe_at` methods never touch this buffer (the service
    /// facade reports violations immediately instead).
    pending: Vec<crate::report::DetectedFault>,
}

/// Outcome of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowVerdict {
    /// Transition allowed (or runnable unmonitored / first observation).
    Ok,
    /// Transition violates the table.
    Violation {
        /// What ran before (`None` = sequence start violated the entry set).
        predecessor: Option<RunnableId>,
    },
}

impl ProgramFlowChecker {
    /// Creates a checker over a table.
    pub fn new(table: FlowTable) -> Self {
        ProgramFlowChecker {
            table,
            last: None,
            errors_detected: 0,
            obs: ObsSink::disabled(),
            pending: Vec::new(),
        }
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Observes one heartbeat in program order and returns the verdict.
    /// Unmonitored runnables are ignored entirely (always `Ok`, do not
    /// update the predecessor).
    pub fn observe(&mut self, runnable: RunnableId) -> FlowVerdict {
        if !self.table.is_monitored(runnable) {
            return FlowVerdict::Ok;
        }
        let verdict = match self.last {
            None => {
                if self.table.is_entry(runnable) {
                    FlowVerdict::Ok
                } else {
                    FlowVerdict::Violation { predecessor: None }
                }
            }
            Some(prev) => {
                if self.table.is_allowed(prev, runnable) {
                    FlowVerdict::Ok
                } else {
                    FlowVerdict::Violation {
                        predecessor: Some(prev),
                    }
                }
            }
        };
        if let FlowVerdict::Violation { .. } = verdict {
            self.errors_detected += 1;
        }
        self.last = Some(runnable);
        verdict
    }

    /// Observes one heartbeat like [`ProgramFlowChecker::observe`], and
    /// additionally records a [`FaultClass::ProgramFlow`] observability
    /// event stamped `now` when the transition violates the table.
    pub fn observe_at(&mut self, runnable: RunnableId, now: Instant) -> FlowVerdict {
        let verdict = self.observe(runnable);
        if let FlowVerdict::Violation { .. } = verdict {
            self.obs.record(
                now,
                ObsEvent::FaultDetected {
                    runnable,
                    kind: FaultClass::ProgramFlow,
                },
            );
        }
        verdict
    }

    /// Buffers a violation detected through the `MonitoringUnit` path.
    pub(crate) fn push_pending(&mut self, fault: crate::report::DetectedFault) {
        self.pending.push(fault);
    }

    /// Drains the violations buffered since the last drain.
    pub(crate) fn take_pending(&mut self) -> Vec<crate::report::DetectedFault> {
        std::mem::take(&mut self.pending)
    }

    /// Resets the sequence position (e.g. after fault treatment), keeping
    /// the cumulative error count.
    pub fn reset_position(&mut self) {
        self.last = None;
    }

    /// Cumulative violations detected.
    pub fn errors_detected(&self) -> u64 {
        self.errors_detected
    }

    /// The table in use.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Last observed monitored runnable.
    pub fn last_observed(&self) -> Option<RunnableId> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }

    /// SafeSpeed-like chain 0 → 1 → 2 → 0.
    fn chain_table() -> FlowTable {
        let mut t = FlowTable::new();
        t.allow_entry(r(0));
        t.allow(r(0), r(1));
        t.allow(r(1), r(2));
        t.allow(r(2), r(0));
        t
    }

    #[test]
    fn nominal_cycle_is_clean() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        for id in [0, 1, 2, 0, 1, 2, 0] {
            assert_eq!(pfc.observe(r(id)), FlowVerdict::Ok);
        }
        assert_eq!(pfc.errors_detected(), 0);
    }

    #[test]
    fn skipped_runnable_is_a_violation() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        let v = pfc.observe(r(2)); // skipped 1
        assert_eq!(v, FlowVerdict::Violation { predecessor: Some(r(0)) });
        assert_eq!(pfc.errors_detected(), 1);
        // Recovery: 2 → 0 is allowed again.
        assert_eq!(pfc.observe(r(0)), FlowVerdict::Ok);
    }

    #[test]
    fn wrong_entry_is_a_violation() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Violation { predecessor: None });
    }

    #[test]
    fn empty_entry_set_allows_any_start() {
        let mut t = FlowTable::new();
        t.allow(r(0), r(1));
        let mut pfc = ProgramFlowChecker::new(t);
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Ok);
    }

    #[test]
    fn unmonitored_runnables_are_transparent() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        // 99 is not in the table: ignored, does not clobber the predecessor.
        assert_eq!(pfc.observe(r(99)), FlowVerdict::Ok);
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Ok);
        assert_eq!(pfc.errors_detected(), 0);
    }

    #[test]
    fn reset_position_forgets_predecessor_only() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        pfc.observe(r(2)); // violation
        pfc.reset_position();
        assert_eq!(pfc.last_observed(), None);
        assert_eq!(pfc.observe(r(0)), FlowVerdict::Ok); // entry again
        assert_eq!(pfc.errors_detected(), 1);
    }

    #[test]
    fn table_introspection() {
        let t = chain_table();
        assert_eq!(t.pair_count(), 3);
        assert_eq!(t.pairs().count(), 3);
        assert!(t.is_monitored(r(0)));
        assert!(t.is_monitored(r(2)));
        assert!(!t.is_monitored(r(9)));
        assert!(t.is_entry(r(0)));
        assert!(!t.is_entry(r(1)));
    }

    #[test]
    fn observe_at_records_violations_to_the_sink() {
        use easis_sim::time::Instant;

        let mut pfc = ProgramFlowChecker::new(chain_table());
        let sink = ObsSink::enabled(16);
        pfc.attach_obs(sink.clone());
        assert_eq!(pfc.observe_at(r(0), Instant::from_millis(1)), FlowVerdict::Ok);
        let v = pfc.observe_at(r(2), Instant::from_millis(2)); // skipped 1
        assert!(matches!(v, FlowVerdict::Violation { .. }));
        assert_eq!(sink.counter("fault_detected"), 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, Instant::from_millis(2));
        assert_eq!(
            events[0].event,
            ObsEvent::FaultDetected { runnable: r(2), kind: FaultClass::ProgramFlow }
        );
    }

    #[test]
    fn repeated_same_runnable_needs_self_loop() {
        let mut t = chain_table();
        let mut pfc = ProgramFlowChecker::new(t.clone());
        pfc.observe(r(0));
        assert!(matches!(pfc.observe(r(0)), FlowVerdict::Violation { .. }));
        // With an explicit self-loop it is fine.
        t.allow(r(0), r(0));
        let mut pfc2 = ProgramFlowChecker::new(t);
        pfc2.observe(r(0));
        assert_eq!(pfc2.observe(r(0)), FlowVerdict::Ok);
    }
}

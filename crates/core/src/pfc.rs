//! Program flow checking (PFC) unit.
//!
//! "A simple approach with a look-up table was applied to minimize
//! performance penalty and extensive modification requirements of
//! applications" (paper §3.4): the table stores every allowed
//! predecessor/successor pair of the monitored runnables; the unit compares
//! the observed heartbeat sequence against it. Unmonitored runnables are
//! transparent — only the sequence of *monitored* runnables is checked, as
//! the paper restricts checking to safety-critical runnables to bound
//! overhead.

use crate::config::IdIndex;
use easis_obs::{FaultClass, ObsEvent, ObsSink};
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract per-observation CPU cost of a look-up (cycles), charged to the
/// watchdog's cost meter for the overhead experiments.
pub const LOOKUP_COST_CYCLES: u64 = 18;

/// The allowed-successor look-up table.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_watchdog::pfc::FlowTable;
///
/// let mut table = FlowTable::new();
/// table.allow_entry(RunnableId(0));
/// table.allow(RunnableId(0), RunnableId(1));
/// assert!(table.is_allowed(RunnableId(0), RunnableId(1)));
/// assert!(!table.is_allowed(RunnableId(1), RunnableId(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTable {
    successors: BTreeMap<RunnableId, BTreeSet<RunnableId>>,
    entries: BTreeSet<RunnableId>,
    /// Every runnable the table mentions (entry, predecessor or
    /// successor), maintained incrementally so [`FlowTable::is_monitored`]
    /// never has to scan the successor sets.
    observed: BTreeSet<RunnableId>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Allows `successor` to follow `predecessor`.
    pub fn allow(&mut self, predecessor: RunnableId, successor: RunnableId) {
        self.successors
            .entry(predecessor)
            .or_default()
            .insert(successor);
        self.observed.insert(predecessor);
        self.observed.insert(successor);
    }

    /// Marks `entry` as a valid first runnable of a monitored sequence.
    pub fn allow_entry(&mut self, entry: RunnableId) {
        self.entries.insert(entry);
        self.observed.insert(entry);
    }

    /// `true` if the pair is in the table.
    pub fn is_allowed(&self, predecessor: RunnableId, successor: RunnableId) -> bool {
        self.successors
            .get(&predecessor)
            .is_some_and(|s| s.contains(&successor))
    }

    /// `true` if `runnable` may start a sequence. An empty entry set means
    /// any monitored runnable may start (unconstrained entry).
    pub fn is_entry(&self, runnable: RunnableId) -> bool {
        self.entries.is_empty() || self.entries.contains(&runnable)
    }

    /// `true` if `runnable` appears in the table (as predecessor, successor
    /// or entry) — i.e. its flow is monitored. Answered from the
    /// incrementally maintained observed set, so runnables appearing only
    /// as successors are found without scanning every successor set.
    pub fn is_monitored(&self, runnable: RunnableId) -> bool {
        self.observed.contains(&runnable)
    }

    /// Iterates every runnable the table mentions, in ascending id order.
    pub fn monitored_ids(&self) -> impl Iterator<Item = RunnableId> + '_ {
        self.observed.iter().copied()
    }

    /// Number of allowed pairs.
    pub fn pair_count(&self) -> usize {
        self.successors.values().map(BTreeSet::len).sum()
    }

    /// Iterates over all allowed pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (RunnableId, RunnableId)> + '_ {
        self.successors
            .iter()
            .flat_map(|(&p, set)| set.iter().map(move |&s| (p, s)))
    }

    /// Compiles the table into its dense bitset form (see
    /// [`CompiledFlowTable`]).
    pub fn compile(&self) -> CompiledFlowTable {
        CompiledFlowTable::compile(self)
    }
}

/// The look-up table compiled to a flat row-major bitset adjacency matrix.
///
/// Monitored runnables are interned into dense slots ([`IdIndex`]); row
/// `p` of the matrix holds one bit per possible successor slot, packed
/// into `u64` words, plus one packed row for the entry set. Both
/// [`CompiledFlowTable::allows`] and [`CompiledFlowTable::is_entry`] are a
/// single word index + bit test — O(1) regardless of table size, versus
/// the builder [`FlowTable`]'s two-level map probe.
///
/// # Examples
///
/// ```
/// use easis_rte::runnable::RunnableId;
/// use easis_watchdog::pfc::FlowTable;
///
/// let mut table = FlowTable::new();
/// table.allow_entry(RunnableId(0));
/// table.allow(RunnableId(0), RunnableId(2));
/// let compiled = table.compile();
/// let s0 = compiled.slot_of(RunnableId(0)).unwrap();
/// let s2 = compiled.slot_of(RunnableId(2)).unwrap();
/// assert!(compiled.allows(s0, s2));
/// assert!(!compiled.allows(s2, s0));
/// assert!(compiled.is_entry(s0) && !compiled.is_entry(s2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledFlowTable {
    index: IdIndex,
    /// `u64` words per adjacency row (= per entry row).
    words_per_row: u32,
    /// Row-major adjacency bits: `adjacency[p * words_per_row + s / 64]`
    /// bit `s % 64` set ⇔ slot `s` may follow slot `p`.
    adjacency: Vec<u64>,
    /// Packed entry set (one row).
    entry_bits: Vec<u64>,
    /// `true` when the builder's entry set was empty: any monitored
    /// runnable may start a sequence.
    any_entry: bool,
}

impl CompiledFlowTable {
    /// Compiles a builder table.
    pub fn compile(table: &FlowTable) -> Self {
        let index = IdIndex::from_ids(table.monitored_ids().map(|r| r.0));
        let n = index.len();
        let words_per_row = n.div_ceil(64);
        let mut compiled = CompiledFlowTable {
            index,
            words_per_row: words_per_row as u32,
            adjacency: vec![0; n * words_per_row],
            entry_bits: vec![0; words_per_row],
            any_entry: table.entries.is_empty(),
        };
        for (pred, succ) in table.pairs() {
            let p = compiled.index.slot_of(pred.0).expect("pred interned") as usize;
            let s = compiled.index.slot_of(succ.0).expect("succ interned") as usize;
            compiled.adjacency[p * words_per_row + s / 64] |= 1u64 << (s % 64);
        }
        for &entry in &table.entries {
            let s = compiled.index.slot_of(entry.0).expect("entry interned") as usize;
            compiled.entry_bits[s / 64] |= 1u64 << (s % 64);
        }
        compiled
    }

    /// The monitored-runnable interner (slot per runnable in the table).
    pub fn index(&self) -> &IdIndex {
        &self.index
    }

    /// Slot of a runnable, or `None` if its flow is unmonitored.
    #[inline]
    pub fn slot_of(&self, runnable: RunnableId) -> Option<u32> {
        self.index.slot_of(runnable.0)
    }

    /// The runnable interned at `slot`.
    #[inline]
    pub fn runnable_at(&self, slot: u32) -> RunnableId {
        RunnableId(self.index.id_at(slot))
    }

    /// `true` if slot `successor` may follow slot `predecessor` — one word
    /// load and bit test.
    #[inline]
    pub fn allows(&self, predecessor: u32, successor: u32) -> bool {
        let row = predecessor as usize * self.words_per_row as usize;
        let word = self.adjacency[row + successor as usize / 64];
        word >> (successor % 64) & 1 != 0
    }

    /// `true` if slot `runnable` may start a sequence.
    #[inline]
    pub fn is_entry(&self, runnable: u32) -> bool {
        self.any_entry || self.entry_bits[runnable as usize / 64] >> (runnable % 64) & 1 != 0
    }

    /// Number of monitored runnables (= adjacency matrix dimension).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the table monitors nothing.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// The PFC unit: compiled table + last-observed monitored runnable slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramFlowChecker {
    table: FlowTable,
    compiled: CompiledFlowTable,
    /// Slot of the last observed monitored runnable;
    /// [`IdIndex::NO_SLOT`] at a sequence start.
    last_slot: u32,
    errors_detected: u64,
    obs: ObsSink,
    /// Violations observed through the [`crate::unit::MonitoringUnit`]
    /// interface, buffered until the next `check` drains them. The inherent
    /// `observe`/`observe_at` methods never touch this buffer (the service
    /// facade reports violations immediately instead).
    pending: Vec<crate::report::DetectedFault>,
}

/// Outcome of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowVerdict {
    /// Transition allowed (or runnable unmonitored / first observation).
    Ok,
    /// Transition violates the table.
    Violation {
        /// What ran before (`None` = sequence start violated the entry set).
        predecessor: Option<RunnableId>,
    },
}

impl ProgramFlowChecker {
    /// Creates a checker over a table, compiling it to the bitset form.
    pub fn new(table: FlowTable) -> Self {
        let compiled = table.compile();
        ProgramFlowChecker {
            table,
            compiled,
            last_slot: IdIndex::NO_SLOT,
            errors_detected: 0,
            obs: ObsSink::disabled(),
            pending: Vec::new(),
        }
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Observes one heartbeat in program order and returns the verdict.
    /// Unmonitored runnables are ignored entirely (always `Ok`, do not
    /// update the predecessor).
    #[inline]
    pub fn observe(&mut self, runnable: RunnableId) -> FlowVerdict {
        let Some(slot) = self.compiled.slot_of(runnable) else {
            return FlowVerdict::Ok;
        };
        let verdict = if self.last_slot == IdIndex::NO_SLOT {
            if self.compiled.is_entry(slot) {
                FlowVerdict::Ok
            } else {
                FlowVerdict::Violation { predecessor: None }
            }
        } else if self.compiled.allows(self.last_slot, slot) {
            FlowVerdict::Ok
        } else {
            FlowVerdict::Violation {
                predecessor: Some(self.compiled.runnable_at(self.last_slot)),
            }
        };
        if let FlowVerdict::Violation { .. } = verdict {
            self.errors_detected += 1;
        }
        self.last_slot = slot;
        verdict
    }

    /// Observes one heartbeat like [`ProgramFlowChecker::observe`], and
    /// additionally records a [`FaultClass::ProgramFlow`] observability
    /// event stamped `now` when the transition violates the table.
    pub fn observe_at(&mut self, runnable: RunnableId, now: Instant) -> FlowVerdict {
        let verdict = self.observe(runnable);
        if let FlowVerdict::Violation { .. } = verdict {
            self.obs.record(
                now,
                ObsEvent::FaultDetected {
                    runnable,
                    kind: FaultClass::ProgramFlow,
                },
            );
        }
        verdict
    }

    /// Buffers a violation detected through the `MonitoringUnit` path.
    pub(crate) fn push_pending(&mut self, fault: crate::report::DetectedFault) {
        self.pending.push(fault);
    }

    /// Drains the violations buffered since the last drain.
    pub(crate) fn take_pending(&mut self) -> Vec<crate::report::DetectedFault> {
        std::mem::take(&mut self.pending)
    }

    /// Resets the checker to its just-built state — position, error count
    /// and pending buffer — keeping the compiled table (world pooling
    /// support; contrast [`ProgramFlowChecker::reset_position`], which
    /// keeps the error count).
    pub fn reset(&mut self) {
        self.last_slot = IdIndex::NO_SLOT;
        self.errors_detected = 0;
        self.pending.clear();
    }

    /// Resets the sequence position (e.g. after fault treatment), keeping
    /// the cumulative error count.
    pub fn reset_position(&mut self) {
        self.last_slot = IdIndex::NO_SLOT;
    }

    /// Cumulative violations detected.
    pub fn errors_detected(&self) -> u64 {
        self.errors_detected
    }

    /// The table in use (builder form; the checker runs on its compiled
    /// bitset, see [`ProgramFlowChecker::compiled`]).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The compiled bitset table the checker runs on.
    pub fn compiled(&self) -> &CompiledFlowTable {
        &self.compiled
    }

    /// Last observed monitored runnable.
    pub fn last_observed(&self) -> Option<RunnableId> {
        (self.last_slot != IdIndex::NO_SLOT).then(|| self.compiled.runnable_at(self.last_slot))
    }

    /// Captures the mutable state into `snap`, retaining its buffer
    /// capacity. The tables are static after construction and are *not*
    /// captured — the owning service's per-unit stamps decide when a
    /// restore copies this image back.
    pub fn snapshot_into(&self, snap: &mut PfcSnapshot) {
        snap.last_slot = self.last_slot;
        snap.errors_detected = self.errors_detected;
        snap.pending.clear();
        snap.pending.extend_from_slice(&self.pending);
    }

    /// Restores the mutable state captured by
    /// [`ProgramFlowChecker::snapshot_into`].
    pub fn restore_from(&mut self, snap: &PfcSnapshot) {
        self.last_slot = snap.last_slot;
        self.errors_detected = snap.errors_detected;
        self.pending.clear();
        self.pending.extend_from_slice(&snap.pending);
    }
}

/// Plain-data image of a [`ProgramFlowChecker`]'s mutable state (position,
/// error count, pending buffer). The flow table itself is construction-time
/// configuration and lives outside the snapshot. `PartialEq` compares the
/// full mutable state — the macro-stepping engine requires it unchanged
/// across a quiescent hyperperiod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfcSnapshot {
    last_slot: u32,
    errors_detected: u64,
    pending: Vec<crate::report::DetectedFault>,
}

impl Default for PfcSnapshot {
    fn default() -> Self {
        PfcSnapshot {
            last_slot: IdIndex::NO_SLOT,
            errors_detected: 0,
            pending: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }

    /// SafeSpeed-like chain 0 → 1 → 2 → 0.
    fn chain_table() -> FlowTable {
        let mut t = FlowTable::new();
        t.allow_entry(r(0));
        t.allow(r(0), r(1));
        t.allow(r(1), r(2));
        t.allow(r(2), r(0));
        t
    }

    #[test]
    fn nominal_cycle_is_clean() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        for id in [0, 1, 2, 0, 1, 2, 0] {
            assert_eq!(pfc.observe(r(id)), FlowVerdict::Ok);
        }
        assert_eq!(pfc.errors_detected(), 0);
    }

    #[test]
    fn skipped_runnable_is_a_violation() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        let v = pfc.observe(r(2)); // skipped 1
        assert_eq!(v, FlowVerdict::Violation { predecessor: Some(r(0)) });
        assert_eq!(pfc.errors_detected(), 1);
        // Recovery: 2 → 0 is allowed again.
        assert_eq!(pfc.observe(r(0)), FlowVerdict::Ok);
    }

    #[test]
    fn wrong_entry_is_a_violation() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Violation { predecessor: None });
    }

    #[test]
    fn empty_entry_set_allows_any_start() {
        let mut t = FlowTable::new();
        t.allow(r(0), r(1));
        let mut pfc = ProgramFlowChecker::new(t);
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Ok);
    }

    #[test]
    fn unmonitored_runnables_are_transparent() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        // 99 is not in the table: ignored, does not clobber the predecessor.
        assert_eq!(pfc.observe(r(99)), FlowVerdict::Ok);
        assert_eq!(pfc.observe(r(1)), FlowVerdict::Ok);
        assert_eq!(pfc.errors_detected(), 0);
    }

    #[test]
    fn reset_position_forgets_predecessor_only() {
        let mut pfc = ProgramFlowChecker::new(chain_table());
        pfc.observe(r(0));
        pfc.observe(r(2)); // violation
        pfc.reset_position();
        assert_eq!(pfc.last_observed(), None);
        assert_eq!(pfc.observe(r(0)), FlowVerdict::Ok); // entry again
        assert_eq!(pfc.errors_detected(), 1);
    }

    #[test]
    fn table_introspection() {
        let t = chain_table();
        assert_eq!(t.pair_count(), 3);
        assert_eq!(t.pairs().count(), 3);
        assert!(t.is_monitored(r(0)));
        assert!(t.is_monitored(r(2)));
        assert!(!t.is_monitored(r(9)));
        assert!(t.is_entry(r(0)));
        assert!(!t.is_entry(r(1)));
    }

    #[test]
    fn observe_at_records_violations_to_the_sink() {
        use easis_sim::time::Instant;

        let mut pfc = ProgramFlowChecker::new(chain_table());
        let sink = ObsSink::enabled(16);
        pfc.attach_obs(sink.clone());
        assert_eq!(pfc.observe_at(r(0), Instant::from_millis(1)), FlowVerdict::Ok);
        let v = pfc.observe_at(r(2), Instant::from_millis(2)); // skipped 1
        assert!(matches!(v, FlowVerdict::Violation { .. }));
        assert_eq!(sink.counter("fault_detected"), 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, Instant::from_millis(2));
        assert_eq!(
            events[0].event,
            ObsEvent::FaultDetected { runnable: r(2), kind: FaultClass::ProgramFlow }
        );
    }

    #[test]
    fn successor_only_runnables_are_monitored() {
        // Pins the semantics the old quadratic `values().any(...)` fallback
        // implemented: a runnable appearing *only* as a successor (never as
        // predecessor or entry) is still monitored.
        let mut t = FlowTable::new();
        t.allow_entry(r(0));
        t.allow(r(0), r(7)); // 7 appears only on the successor side
        assert!(t.is_monitored(r(7)));
        assert!(t.is_monitored(r(0)));
        assert!(!t.is_monitored(r(3)));
        // And the compiled bitset agrees.
        let c = t.compile();
        assert!(c.slot_of(r(7)).is_some());
        assert!(c.slot_of(r(3)).is_none());
        // Observing the successor-only runnable out of order is a violation,
        // not transparency.
        let mut pfc = ProgramFlowChecker::new(t);
        assert_eq!(pfc.observe(r(7)), FlowVerdict::Violation { predecessor: None });
    }

    #[test]
    fn compiled_table_matches_builder_semantics() {
        let t = chain_table();
        let c = t.compile();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        for pred in [0u32, 1, 2] {
            for succ in [0u32, 1, 2] {
                let (p, s) = (c.slot_of(r(pred)).unwrap(), c.slot_of(r(succ)).unwrap());
                assert_eq!(c.allows(p, s), t.is_allowed(r(pred), r(succ)), "{pred}->{succ}");
            }
        }
        let entry_slot = c.slot_of(r(0)).unwrap();
        assert!(c.is_entry(entry_slot));
        assert!(!c.is_entry(c.slot_of(r(1)).unwrap()));
        assert_eq!(c.runnable_at(entry_slot), r(0));
        // Empty entry set ⇒ any monitored runnable may start.
        let mut open = FlowTable::new();
        open.allow(r(4), r(5));
        let oc = open.compile();
        assert!(oc.is_entry(oc.slot_of(r(5)).unwrap()));
    }

    #[test]
    fn compiled_table_spans_word_boundaries() {
        // >64 monitored runnables forces multi-word rows.
        let mut t = FlowTable::new();
        for i in 0..100u32 {
            t.allow(r(i), r((i + 1) % 100));
        }
        let c = t.compile();
        assert_eq!(c.len(), 100);
        let mut pfc = ProgramFlowChecker::new(t);
        for i in 0..200u32 {
            assert_eq!(pfc.observe(r(i % 100)), FlowVerdict::Ok, "step {i}");
        }
        assert!(matches!(pfc.observe(r(50)), FlowVerdict::Violation { .. }));
    }

    #[test]
    fn repeated_same_runnable_needs_self_loop() {
        let mut t = chain_table();
        let mut pfc = ProgramFlowChecker::new(t.clone());
        pfc.observe(r(0));
        assert!(matches!(pfc.observe(r(0)), FlowVerdict::Violation { .. }));
        // With an explicit self-loop it is fine.
        t.allow(r(0), r(0));
        let mut pfc2 = ProgramFlowChecker::new(t);
        pfc2.observe(r(0));
        assert_eq!(pfc2.observe(r(0)), FlowVerdict::Ok);
    }
}

//! Static configuration validation.
//!
//! A wrong fault hypothesis silently degrades supervision (a too-lax
//! minimum never fires; an unmapped runnable never rolls up to a task
//! verdict). [`validate`] audits a [`WatchdogConfig`] before deployment and
//! returns every finding — the moral equivalent of an AUTOSAR
//! configuration validator for this service.

use crate::config::WatchdogConfig;
use easis_rte::runnable::RunnableId;
use std::fmt;

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigIssue {
    /// A monitored runnable is not mapped to any task: its faults can never
    /// reach the TSI unit.
    MonitoredButUnmapped(RunnableId),
    /// A runnable appears in the flow table but has no fault hypothesis:
    /// its heartbeats feed PFC but aliveness loss goes unnoticed.
    InFlowTableButUnmonitored(RunnableId),
    /// A hypothesis enables neither aliveness nor arrival-rate monitoring.
    HypothesisMonitorsNothing(RunnableId),
    /// Aliveness asks for fewer indications than arrival-rate allows at
    /// most over the same window shape — fine — but the inverse
    /// (min > max over identical windows) can never be satisfied: every
    /// cycle raises at least one of the two errors.
    ContradictoryBounds(RunnableId),
    /// A flow-table entry point that no pair ever returns to (likely a
    /// stale table after refactoring).
    UnreachableEntry(RunnableId),
    /// A mapped task hosts no monitored runnable (supervision gap).
    TaskWithoutMonitoredRunnables(easis_osek::task::TaskId),
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigIssue::MonitoredButUnmapped(r) => {
                write!(f, "{r} is monitored but mapped to no task")
            }
            ConfigIssue::InFlowTableButUnmonitored(r) => {
                write!(f, "{r} is in the flow table but has no fault hypothesis")
            }
            ConfigIssue::HypothesisMonitorsNothing(r) => {
                write!(f, "{r}'s hypothesis enables no monitoring at all")
            }
            ConfigIssue::ContradictoryBounds(r) => {
                write!(f, "{r}'s aliveness minimum exceeds its arrival maximum")
            }
            ConfigIssue::UnreachableEntry(r) => {
                write!(f, "flow entry {r} is never a successor of any pair")
            }
            ConfigIssue::TaskWithoutMonitoredRunnables(t) => {
                write!(f, "task {t} hosts no monitored runnable")
            }
        }
    }
}

/// Audits a configuration; an empty result means it is deployable.
pub fn validate(config: &WatchdogConfig) -> Vec<ConfigIssue> {
    let mut issues = Vec::new();
    let mapping = config.mapping();
    let has_mapping = mapping.tasks().next().is_some();

    for runnable in config.monitored() {
        let hyp = config.hypothesis(runnable).expect("listed");
        if has_mapping && mapping.task_of(runnable).is_none() {
            issues.push(ConfigIssue::MonitoredButUnmapped(runnable));
        }
        if hyp.aliveness.is_none() && hyp.arrival_rate.is_none() {
            issues.push(ConfigIssue::HypothesisMonitorsNothing(runnable));
        }
        if let (Some(alive), Some(rate)) = (hyp.aliveness, hyp.arrival_rate) {
            // Compare normalised per-cycle bounds over a common window.
            let min_per_cycle = alive.min_indications as f64 / alive.cycles as f64;
            let max_per_cycle = rate.max_indications as f64 / rate.cycles as f64;
            if min_per_cycle > max_per_cycle {
                issues.push(ConfigIssue::ContradictoryBounds(runnable));
            }
        }
    }

    let table = config.flow_table();
    let monitored: Vec<RunnableId> = config.monitored().collect();
    for (pred, succ) in table.pairs() {
        for r in [pred, succ] {
            if !monitored.contains(&r)
                && !issues.contains(&ConfigIssue::InFlowTableButUnmonitored(r))
            {
                issues.push(ConfigIssue::InFlowTableButUnmonitored(r));
            }
        }
    }
    // Entry points should be reachable as successors (cyclic charts) unless
    // they are the only node.
    for entry in monitored.iter().copied().filter(|&r| table.is_entry(r)) {
        let has_pairs = table.pair_count() > 0;
        let is_successor = table.pairs().any(|(_, s)| s == entry);
        if has_pairs && table.is_monitored(entry) && !is_successor {
            issues.push(ConfigIssue::UnreachableEntry(entry));
        }
    }

    for task in mapping.tasks() {
        let hosts_monitored = mapping
            .runnables_of_task(task)
            .iter()
            .any(|r| monitored.contains(r));
        if !hosts_monitored {
            issues.push(ConfigIssue::TaskWithoutMonitoredRunnables(task));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunnableHypothesis;
    use easis_osek::task::TaskId;
    use easis_rte::mapping::SystemMapping;
    use easis_sim::time::Duration;

    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }

    fn good_config() -> WatchdogConfig {
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_runnable(r(0), TaskId(0));
        mapping.assign_runnable(r(1), TaskId(0));
        WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(RunnableHypothesis::new(r(0)).alive_at_least(1, 1).arrive_at_most(2, 1))
            .monitor(RunnableHypothesis::new(r(1)).alive_at_least(1, 1).arrive_at_most(2, 1))
            .allow_entry(r(0))
            .allow_flow(r(0), r(1))
            .allow_flow(r(1), r(0))
            .build()
    }

    #[test]
    fn a_sound_config_has_no_findings() {
        assert!(validate(&good_config()).is_empty());
    }

    #[test]
    fn unmapped_monitored_runnable_is_flagged() {
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_runnable(r(0), TaskId(0));
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(RunnableHypothesis::new(r(0)).alive_at_least(1, 1))
            .monitor(RunnableHypothesis::new(r(9)).alive_at_least(1, 1)) // unmapped
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::MonitoredButUnmapped(r(9))));
    }

    #[test]
    fn empty_hypothesis_is_flagged() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(r(0)))
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::HypothesisMonitorsNothing(r(0))));
    }

    #[test]
    fn contradictory_bounds_are_flagged() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(
                RunnableHypothesis::new(r(0))
                    .alive_at_least(3, 1) // needs ≥3/cycle
                    .arrive_at_most(2, 1), // allows ≤2/cycle
            )
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::ContradictoryBounds(r(0))));
    }

    #[test]
    fn bounds_over_different_windows_are_normalised() {
        // min 2 per 4 cycles (0.5/cycle) vs max 1 per 1 cycle: consistent.
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(
                RunnableHypothesis::new(r(0))
                    .alive_at_least(2, 4)
                    .arrive_at_most(1, 1),
            )
            .build();
        assert!(validate(&config).is_empty());
    }

    #[test]
    fn flow_table_members_without_hypotheses_are_flagged() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(r(0)).alive_at_least(1, 1))
            .allow_flow(r(0), r(1)) // r1 unmonitored
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::InFlowTableButUnmonitored(r(1))));
    }

    #[test]
    fn unreachable_entry_is_flagged() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(r(0)).alive_at_least(1, 1))
            .monitor(RunnableHypothesis::new(r(1)).alive_at_least(1, 1))
            .allow_entry(r(0))
            .allow_flow(r(0), r(1)) // nothing flows back to r0
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::UnreachableEntry(r(0))));
    }

    #[test]
    fn unsupervised_task_is_flagged() {
        let mut mapping = SystemMapping::new();
        let app = mapping.add_application("A");
        mapping.assign_task(TaskId(0), app);
        mapping.assign_task(TaskId(1), app); // hosts nothing monitored
        mapping.assign_runnable(r(0), TaskId(0));
        mapping.assign_runnable(r(5), TaskId(1));
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(RunnableHypothesis::new(r(0)).alive_at_least(1, 1))
            .build();
        let issues = validate(&config);
        assert!(issues.contains(&ConfigIssue::TaskWithoutMonitoredRunnables(TaskId(1))));
    }

    #[test]
    fn findings_render_readably() {
        for issue in [
            ConfigIssue::MonitoredButUnmapped(r(1)),
            ConfigIssue::InFlowTableButUnmonitored(r(2)),
            ConfigIssue::HypothesisMonitorsNothing(r(3)),
            ConfigIssue::ContradictoryBounds(r(4)),
            ConfigIssue::UnreachableEntry(r(5)),
            ConfigIssue::TaskWithoutMonitoredRunnables(TaskId(6)),
        ] {
            assert!(!issue.to_string().is_empty());
        }
    }

    #[test]
    fn the_validators_own_node_config_is_sound() {
        // The config the central node derives must audit clean; guard it.
        let cfg = good_config();
        assert_eq!(validate(&cfg), Vec::new());
    }
}

//! Property-based tests of the Software Watchdog service as a whole:
//! phase-independence of the hypotheses, cost accounting, recovery
//! semantics and state-machine monotonicity.

use easis_osek::task::TaskId;
use easis_rte::mapping::SystemMapping;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis_watchdog::report::HealthState;
use easis_watchdog::SoftwareWatchdog;
use proptest::prelude::*;

fn r(n: u32) -> RunnableId {
    RunnableId(n)
}

fn single_runnable_watchdog(min: u32, max: u32, cycles: u32, threshold: u32) -> SoftwareWatchdog {
    let mut mapping = SystemMapping::new();
    let app = mapping.add_application("A");
    mapping.assign_task(TaskId(0), app);
    mapping.assign_runnable(r(0), TaskId(0));
    SoftwareWatchdog::new(
        WatchdogConfig::builder(Duration::from_millis(10))
            .mapping(mapping)
            .monitor(
                RunnableHypothesis::new(r(0))
                    .alive_at_least(min, cycles)
                    .arrive_at_most(max, cycles),
            )
            .error_threshold(threshold)
            .build(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A runnable executing exactly `rate` times per cycle with
    /// `min ≤ rate·cycles` and `max ≥ rate·cycles` per window never
    /// triggers, regardless of where inside the cycle the beats land.
    #[test]
    fn exact_rate_streams_never_alarm(
        rate in 1u32..4,
        cycles in 1u32..4,
        phases in prop::collection::vec(0u64..9_999, 1..8),
    ) {
        let per_window = rate * cycles;
        let mut wd = single_runnable_watchdog(per_window, per_window, cycles, 3);
        let mut now = Instant::ZERO;
        for (c, &phase) in (0..cycles as u64 * 8).zip(phases.iter().cycle()) {
            for k in 0..rate {
                let at = now + Duration::from_micros(phase / (k as u64 + 1));
                wd.heartbeat(r(0), at);
            }
            now += Duration::from_millis(10);
            let report = wd.run_cycle(now);
            prop_assert!(report.faults.is_empty(), "cycle {c}: {report:?}");
        }
        prop_assert_eq!(wd.task_state(TaskId(0)), HealthState::Ok);
    }

    /// The task verdict is monotone until recovery: once faulty it stays
    /// faulty no matter how many healthy cycles follow.
    #[test]
    fn faulty_verdict_is_sticky_until_acknowledged(
        threshold in 1u32..5,
        healthy_after in 1u64..20,
    ) {
        let mut wd = single_runnable_watchdog(1, 10, 1, threshold);
        let mut now = Instant::ZERO;
        // Starve until faulty.
        for _ in 0..threshold {
            now += Duration::from_millis(10);
            wd.run_cycle(now);
        }
        prop_assert!(wd.task_state(TaskId(0)).is_faulty());
        // Healthy beats change nothing (monitoring deactivated).
        for _ in 0..healthy_after {
            wd.heartbeat(r(0), now);
            now += Duration::from_millis(10);
            wd.run_cycle(now);
            prop_assert!(wd.task_state(TaskId(0)).is_faulty());
        }
        // Acknowledge → Ok again, and healthy operation stays clean.
        wd.acknowledge_task_recovered(TaskId(0));
        prop_assert_eq!(wd.task_state(TaskId(0)), HealthState::Ok);
        for _ in 0..5 {
            wd.heartbeat(r(0), now);
            now += Duration::from_millis(10);
            let report = wd.run_cycle(now);
            prop_assert!(report.faults.is_empty());
        }
    }

    /// Monitoring cost grows linearly: cycles charged are proportional to
    /// heartbeats + checks, independent of fault content.
    #[test]
    fn cost_accounting_is_linear(beats in 0u64..200, cycles in 1u64..50) {
        let mut wd = single_runnable_watchdog(0, 1_000, 1, 1_000);
        for _ in 0..beats {
            wd.heartbeat(r(0), Instant::ZERO);
        }
        for c in 1..=cycles {
            wd.run_cycle(Instant::from_millis(10 * c));
        }
        let expected = beats
            * (easis_watchdog::heartbeat::HEARTBEAT_COST_CYCLES
                + easis_watchdog::pfc::LOOKUP_COST_CYCLES)
            + cycles * easis_watchdog::heartbeat::CHECK_COST_CYCLES;
        prop_assert_eq!(wd.costs().total_cycles(), expected);
    }

    /// Faults on unmapped runnables never flip any task state.
    #[test]
    fn unmapped_runnables_cannot_poison_states(extra in 1u32..20) {
        let mut wd = single_runnable_watchdog(1, 1, 1, 1);
        // Heartbeats from an unmonitored, unmapped runnable id.
        for i in 0..extra {
            wd.heartbeat(r(100 + i), Instant::from_millis(i as u64));
        }
        // Keep the real runnable healthy.
        wd.heartbeat(r(0), Instant::from_millis(1));
        let report = wd.run_cycle(Instant::from_millis(10));
        prop_assert!(report.faults.is_empty());
        prop_assert_eq!(wd.task_state(TaskId(0)), HealthState::Ok);
    }

    /// Reconfiguration to the observed rate silences a mismatch alarm
    /// stream; reconfiguration away from it raises one.
    #[test]
    fn reconfiguration_tracks_the_true_rate(rate in 1u32..4) {
        // Hypothesis expects `rate`, runnable delivers `rate` → quiet.
        let mut wd = single_runnable_watchdog(rate, rate, 1, 1_000);
        let mut now = Instant::ZERO;
        for _ in 0..5 {
            for _ in 0..rate {
                wd.heartbeat(r(0), now);
            }
            now += Duration::from_millis(10);
            prop_assert!(wd.run_cycle(now).faults.is_empty());
        }
        // Mode change: actual rate doubles. Without reconfig → arrival
        // faults; with reconfig → quiet again.
        wd.reconfigure(
            RunnableHypothesis::new(r(0))
                .alive_at_least(rate * 2, 1)
                .arrive_at_most(rate * 2, 1),
        );
        for _ in 0..5 {
            for _ in 0..rate * 2 {
                wd.heartbeat(r(0), now);
            }
            now += Duration::from_millis(10);
            let report = wd.run_cycle(now);
            prop_assert!(report.faults.is_empty(), "{report:?}");
        }
    }
}

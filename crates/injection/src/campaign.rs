//! Fault-injection campaigns.
//!
//! The paper's outlook asks for "further analysis of fault detection
//! coverage"; a campaign is the instrument: a seeded plan of injection
//! trials across error classes and target runnables, executed by a
//! scenario runner (provided by the validator crate) and aggregated into
//! [`CampaignStats`].
//!
//! [`CampaignStats`]: crate::stats::CampaignStats

use crate::injector::{ErrorClass, Injection};
use crate::stats::{CampaignStats, TrialOutcome};
use easis_rte::runnable::RunnableId;
use easis_sim::rng::SimRng;
use easis_sim::time::{Duration, Instant};

/// One planned trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// Seed for any randomness inside the scenario.
    pub seed: u64,
    /// The injection to perform.
    pub injection: Injection,
}

/// A reproducible plan of trials.
#[derive(Debug, Clone, Default)]
pub struct CampaignPlan {
    trials: Vec<TrialSpec>,
}

impl CampaignPlan {
    /// Creates a plan directly from a trial list (for filtered sub-plans
    /// and synthetic plans in tests; seeded plans come from
    /// [`CampaignBuilder`]).
    pub fn from_trials(trials: impl Into<Vec<TrialSpec>>) -> CampaignPlan {
        CampaignPlan {
            trials: trials.into(),
        }
    }

    /// The planned trials.
    pub fn trials(&self) -> &[TrialSpec] {
        &self.trials
    }

    /// Number of planned trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// `true` if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Executes the plan: `runner` performs one trial and reports the
    /// outcome; results aggregate into [`CampaignStats`].
    pub fn run(&self, mut runner: impl FnMut(&TrialSpec) -> TrialOutcome) -> CampaignStats {
        let mut stats = CampaignStats::new();
        for trial in &self.trials {
            stats.push(runner(trial));
        }
        stats
    }
}

/// Builds seeded campaign plans over a set of target runnables.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    rng: SimRng,
    targets: Vec<RunnableId>,
    loop_targets: Vec<RunnableId>,
    trials_per_class: usize,
    inject_from: Instant,
    inject_len: Duration,
    horizon: Instant,
}

impl CampaignBuilder {
    /// Creates a builder over the monitored runnables of the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(seed: u64, targets: Vec<RunnableId>) -> Self {
        assert!(!targets.is_empty(), "need at least one target runnable");
        CampaignBuilder {
            rng: SimRng::seed_from(seed),
            loop_targets: targets.clone(),
            targets,
            trials_per_class: 10,
            inject_from: Instant::from_millis(200),
            inject_len: Duration::from_millis(300),
            horizon: Instant::from_millis(1_000),
        }
    }

    /// Sets the number of trials per error class (default 10).
    pub fn trials_per_class(mut self, n: usize) -> Self {
        self.trials_per_class = n;
        self
    }

    /// Restricts loop-overrun trials to runnables that actually have a
    /// loop term in their cost model (manipulating the loop counter of a
    /// loop-free runnable is a no-op and would dilute coverage numbers).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn loop_targets(mut self, targets: Vec<RunnableId>) -> Self {
        assert!(!targets.is_empty(), "need at least one loop target");
        self.loop_targets = targets;
        self
    }

    /// Sets the injection window start and length.
    pub fn window(mut self, from: Instant, len: Duration) -> Self {
        self.inject_from = from;
        self.inject_len = len;
        self
    }

    /// The simulation horizon trials should run to (past the window, so
    /// end-of-period checks can fire).
    pub fn horizon(&self) -> Instant {
        self.horizon
    }

    /// Sets the simulation horizon.
    pub fn with_horizon(mut self, horizon: Instant) -> Self {
        self.horizon = horizon;
        self
    }

    fn pick_target(&mut self) -> RunnableId {
        *self.rng.pick(&self.targets.clone())
    }

    fn make_class(&mut self, kind: usize) -> ErrorClass {
        let runnable = self.pick_target();
        match kind {
            0 => ErrorClass::ExecutionSlowdown {
                runnable,
                // 5×–400× nominal: from budget-only overruns up to
                // period-crossing starvation and CPU saturation.
                scale_ppm: self.rng.next_in(5, 400) * 1_000_000,
            },
            1 => ErrorClass::HeartbeatLoss { runnable },
            2 => ErrorClass::SkipRunnable { runnable },
            3 => ErrorClass::DuplicateDispatch {
                runnable,
                extra: self.rng.next_in(2, 6) as u32,
            },
            _ => ErrorClass::LoopOverrun {
                runnable: *self.rng.pick(&self.loop_targets.clone()),
                iterations: self.rng.next_in(2_000, 30_000) as u32,
            },
        }
    }

    /// Builds a plan covering the five runnable-level error classes.
    pub fn build(mut self) -> CampaignPlan {
        let mut trials = Vec::new();
        for kind in 0..5 {
            for _ in 0..self.trials_per_class {
                let class = self.make_class(kind);
                // Jitter the window start to decorrelate from task phases.
                let jitter = Duration::from_micros(self.rng.next_below(10_000));
                let from = self.inject_from + jitter;
                let to = from + self.inject_len;
                trials.push(TrialSpec {
                    seed: self.rng.next_u64(),
                    injection: Injection::new(class, from, to),
                });
            }
        }
        CampaignPlan { trials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DetectorId;

    fn targets() -> Vec<RunnableId> {
        (0..3).map(RunnableId).collect()
    }

    #[test]
    fn plan_covers_all_classes_with_requested_trials() {
        let plan = CampaignBuilder::new(1, targets()).trials_per_class(4).build();
        assert_eq!(plan.len(), 20);
        let tags: std::collections::BTreeSet<&str> = plan
            .trials()
            .iter()
            .map(|t| t.injection.class.tag())
            .collect();
        assert_eq!(tags.len(), 5);
    }

    #[test]
    fn plans_are_reproducible_per_seed() {
        let a = CampaignBuilder::new(42, targets()).build();
        let b = CampaignBuilder::new(42, targets()).build();
        assert_eq!(a.trials(), b.trials());
        let c = CampaignBuilder::new(43, targets()).build();
        assert_ne!(a.trials(), c.trials());
    }

    #[test]
    fn windows_land_in_the_configured_range() {
        let plan = CampaignBuilder::new(7, targets())
            .window(Instant::from_millis(100), Duration::from_millis(50))
            .build();
        for t in plan.trials() {
            assert!(t.injection.from >= Instant::from_millis(100));
            assert!(t.injection.from < Instant::from_millis(110));
            assert_eq!(t.injection.to - t.injection.from, Duration::from_millis(50));
        }
    }

    #[test]
    fn run_aggregates_outcomes() {
        let plan = CampaignBuilder::new(3, targets()).trials_per_class(2).build();
        let stats = plan.run(|trial| {
            let mut o = TrialOutcome::new(trial.injection.class.tag());
            o.record(DetectorId::SwAliveness, Duration::from_millis(10));
            o
        });
        assert_eq!(stats.len(), 10);
        for class in stats.classes() {
            assert_eq!(stats.coverage(&class, DetectorId::SwAliveness), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = CampaignBuilder::new(1, vec![]);
    }
}

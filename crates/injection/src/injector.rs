//! Error injectors.
//!
//! "Stateflow is used to manipulate the execution frequency and sequence of
//! runnables by changing the timing parameter of runnables, manipulation of
//! loop counters and building invalid execution branches" (paper §4.5), with
//! ControlDesk triggering the injection at runtime. [`ErrorClass`] is the
//! taxonomy of those manipulations; an [`Injector`] arms/disarms them inside
//! a time window by writing the runnable layer's control store — the same
//! surface ControlDesk wrote on the real rig.

use easis_obs::{ObsEvent, ObsSink};
use easis_osek::alarm::AlarmId;
use easis_osek::kernel::Os;
use easis_rte::control::RunnableControls;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The classes of injected errors.
///
/// `Hash`/`Ord` make the class usable as (part of) a lookup key: the
/// campaign runner collapses trials whose class and effective arming
/// ticks coincide, because such trials are behaviorally identical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// Stretch a runnable's execution time (the "time scalar" slider);
    /// `scale_ppm` = parts-per-million of nominal, e.g. `4_000_000` = 4×.
    ExecutionSlowdown {
        /// Target runnable.
        runnable: RunnableId,
        /// Execution-time scale in ppm of nominal.
        scale_ppm: u64,
    },
    /// Suppress the aliveness-indication glue while the logic still runs
    /// (lost heartbeat).
    HeartbeatLoss {
        /// Target runnable.
        runnable: RunnableId,
    },
    /// Remove the runnable from its task's execution sequence (an invalid
    /// branch bypassing it).
    SkipRunnable {
        /// Target runnable.
        runnable: RunnableId,
    },
    /// Emit extra heartbeats per execution (excessive dispatch).
    DuplicateDispatch {
        /// Target runnable.
        runnable: RunnableId,
        /// Additional heartbeats per execution.
        extra: u32,
    },
    /// Override the loop iteration count of the runnable's cost model.
    LoopOverrun {
        /// Target runnable.
        runnable: RunnableId,
        /// Forced iteration count.
        iterations: u32,
    },
    /// Force a task's branching chart onto a specific (possibly invalid)
    /// branch.
    BranchOverride {
        /// Target task (control-block key).
        task_name: String,
        /// Forced branch index.
        branch: usize,
    },
    /// Rescale a cyclic alarm's period (task-level frequency error).
    AlarmScale {
        /// Target alarm.
        alarm: AlarmId,
        /// Cycle scale in ppm of nominal.
        scale_ppm: u64,
    },
}

impl ErrorClass {
    /// Stable tag for reports and coverage tables.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorClass::ExecutionSlowdown { .. } => "execution_slowdown",
            ErrorClass::HeartbeatLoss { .. } => "heartbeat_loss",
            ErrorClass::SkipRunnable { .. } => "skip_runnable",
            ErrorClass::DuplicateDispatch { .. } => "duplicate_dispatch",
            ErrorClass::LoopOverrun { .. } => "loop_overrun",
            ErrorClass::BranchOverride { .. } => "branch_override",
            ErrorClass::AlarmScale { .. } => "alarm_scale",
        }
    }

    /// Like [`ErrorClass::tag`], but returns a process-interned `Arc<str>`
    /// handle to the same rendered tag: cloning it only bumps a reference
    /// count, so stamping a `TrialOutcome` per campaign trial allocates
    /// nothing.
    pub fn interned_tag(&self) -> Arc<str> {
        static TAGS: OnceLock<[Arc<str>; 7]> = OnceLock::new();
        let table = TAGS.get_or_init(|| {
            [
                Arc::from("execution_slowdown"),
                Arc::from("heartbeat_loss"),
                Arc::from("skip_runnable"),
                Arc::from("duplicate_dispatch"),
                Arc::from("loop_overrun"),
                Arc::from("branch_override"),
                Arc::from("alarm_scale"),
            ]
        });
        let idx = match self {
            ErrorClass::ExecutionSlowdown { .. } => 0,
            ErrorClass::HeartbeatLoss { .. } => 1,
            ErrorClass::SkipRunnable { .. } => 2,
            ErrorClass::DuplicateDispatch { .. } => 3,
            ErrorClass::LoopOverrun { .. } => 4,
            ErrorClass::BranchOverride { .. } => 5,
            ErrorClass::AlarmScale { .. } => 6,
        };
        Arc::clone(&table[idx])
    }

    /// The runnable this class targets, if any.
    pub fn target_runnable(&self) -> Option<RunnableId> {
        match *self {
            ErrorClass::ExecutionSlowdown { runnable, .. }
            | ErrorClass::HeartbeatLoss { runnable }
            | ErrorClass::SkipRunnable { runnable }
            | ErrorClass::DuplicateDispatch { runnable, .. }
            | ErrorClass::LoopOverrun { runnable, .. } => Some(runnable),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// An error class armed inside a time window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Injection {
    /// What to inject.
    pub class: ErrorClass,
    /// Arm at this instant.
    pub from: Instant,
    /// Disarm at this instant (exclusive).
    pub to: Instant,
}

impl Injection {
    /// Creates an injection.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(class: ErrorClass, from: Instant, to: Instant) -> Self {
        assert!(from < to, "injection window must be non-empty");
        Injection { class, from, to }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Armed,
    Done,
}

/// Applies a set of injections to the control store / OS as simulated time
/// advances. Call [`Injector::tick`] between OS run slices (e.g. every
/// watchdog cycle).
#[derive(Debug)]
pub struct Injector {
    injections: Vec<(Injection, Phase)>,
    obs: ObsSink,
}

impl Injector {
    /// Creates an injector over the given injections.
    pub fn new(injections: impl IntoIterator<Item = Injection>) -> Self {
        Injector {
            injections: injections.into_iter().map(|i| (i, Phase::Pending)).collect(),
            obs: ObsSink::disabled(),
        }
    }

    /// Attaches an observability sink; arming and disarming then leave
    /// [`ObsEvent::InjectionActivated`] / [`ObsEvent::InjectionDeactivated`]
    /// markers on the trace.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// An injector with nothing armed (golden runs).
    pub fn none() -> Self {
        Injector::new([])
    }

    /// Re-arms the injector over a new injection set, retaining the
    /// backing buffer's capacity. The pooled campaign path keeps one
    /// injector per worker and reloads it per trial instead of
    /// constructing a fresh one — dropping the injector-setup heap block
    /// from every trial. Reloading is exactly equivalent to
    /// [`Injector::new`] with the same injections (the attached
    /// observability sink is kept).
    pub fn reload(&mut self, injections: impl IntoIterator<Item = Injection>) {
        self.injections.clear();
        self.injections
            .extend(injections.into_iter().map(|i| (i, Phase::Pending)));
    }

    /// Arms/disarms injections according to `now`.
    pub fn tick<W>(&mut self, now: Instant, controls: &mut RunnableControls, os: &mut Os<W>) {
        for (inj, phase) in &mut self.injections {
            match *phase {
                Phase::Pending if now >= inj.from => {
                    Self::apply(&inj.class, controls, os, true);
                    self.obs.record(
                        now,
                        ObsEvent::InjectionActivated {
                            class: inj.class.tag(),
                        },
                    );
                    *phase = Phase::Armed;
                    // Fall through check: a zero-length residual window is
                    // prevented by the constructor.
                }
                Phase::Armed if now >= inj.to => {
                    Self::apply(&inj.class, controls, os, false);
                    self.obs.record(
                        now,
                        ObsEvent::InjectionDeactivated {
                            class: inj.class.tag(),
                        },
                    );
                    *phase = Phase::Done;
                }
                _ => {}
            }
        }
    }

    fn apply<W>(class: &ErrorClass, controls: &mut RunnableControls, os: &mut Os<W>, arm: bool) {
        match class {
            ErrorClass::ExecutionSlowdown { runnable, scale_ppm } => {
                controls.runnable_mut(*runnable).exec_scale_ppm =
                    if arm { *scale_ppm } else { 1_000_000 };
            }
            ErrorClass::HeartbeatLoss { runnable } => {
                controls.runnable_mut(*runnable).suppress_heartbeat = arm;
            }
            ErrorClass::SkipRunnable { runnable } => {
                controls.runnable_mut(*runnable).skip = arm;
            }
            ErrorClass::DuplicateDispatch { runnable, extra } => {
                controls.runnable_mut(*runnable).extra_heartbeats =
                    if arm { *extra } else { 0 };
            }
            ErrorClass::LoopOverrun { runnable, iterations } => {
                controls.runnable_mut(*runnable).iterations_override =
                    arm.then_some(*iterations);
            }
            ErrorClass::BranchOverride { task_name, branch } => {
                controls.task_mut(task_name).branch_override = arm.then_some(*branch);
            }
            ErrorClass::AlarmScale { alarm, scale_ppm } => {
                if let Ok(a) = os.alarm_mut(*alarm) {
                    a.set_cycle_scale_ppm(if arm { *scale_ppm } else { 1_000_000 });
                }
            }
        }
    }

    /// `true` once every injection has been armed and reverted.
    pub fn is_finished(&self) -> bool {
        self.injections.iter().all(|(_, p)| *p == Phase::Done)
    }

    /// Number of currently armed injections.
    pub fn armed_count(&self) -> usize {
        self.injections
            .iter()
            .filter(|(_, p)| *p == Phase::Armed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_rte::world::BasicEcuWorld;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }
    fn r(n: u32) -> RunnableId {
        RunnableId(n)
    }

    #[test]
    fn window_arms_and_reverts_controls() {
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: r(1) },
            t(100),
            t(200),
        )]);
        let mut controls = RunnableControls::new();
        let mut os: Os<BasicEcuWorld> = Os::new();
        injector.tick(t(50), &mut controls, &mut os);
        assert!(!controls.runnable(r(1)).suppress_heartbeat);
        injector.tick(t(100), &mut controls, &mut os);
        assert!(controls.runnable(r(1)).suppress_heartbeat);
        assert_eq!(injector.armed_count(), 1);
        injector.tick(t(200), &mut controls, &mut os);
        assert!(!controls.runnable(r(1)).suppress_heartbeat);
        assert!(injector.is_finished());
    }

    #[test]
    fn every_class_round_trips_to_nominal() {
        let classes = vec![
            ErrorClass::ExecutionSlowdown { runnable: r(0), scale_ppm: 5_000_000 },
            ErrorClass::HeartbeatLoss { runnable: r(0) },
            ErrorClass::SkipRunnable { runnable: r(0) },
            ErrorClass::DuplicateDispatch { runnable: r(0), extra: 3 },
            ErrorClass::LoopOverrun { runnable: r(0), iterations: 500 },
            ErrorClass::BranchOverride { task_name: "T".into(), branch: 1 },
        ];
        for class in classes {
            let mut injector =
                Injector::new([Injection::new(class.clone(), t(10), t(20))]);
            let mut controls = RunnableControls::new();
            let mut os: Os<BasicEcuWorld> = Os::new();
            injector.tick(t(10), &mut controls, &mut os);
            assert!(!controls.is_nominal(), "{class} did not arm");
            injector.tick(t(20), &mut controls, &mut os);
            assert!(controls.is_nominal(), "{class} did not revert");
        }
    }

    #[test]
    fn alarm_scale_reaches_the_os() {
        use easis_osek::alarm::AlarmAction;
        use easis_osek::task::TaskId;
        let mut os: Os<BasicEcuWorld> = Os::new();
        let a = os.add_alarm("cyc", AlarmAction::ActivateTask(TaskId(0)));
        let mut injector = Injector::new([Injection::new(
            ErrorClass::AlarmScale { alarm: a, scale_ppm: 3_000_000 },
            t(10),
            t(20),
        )]);
        let mut controls = RunnableControls::new();
        injector.tick(t(10), &mut controls, &mut os);
        assert_eq!(os.alarm(a).unwrap().cycle_scale_ppm(), 3_000_000);
        injector.tick(t(25), &mut controls, &mut os);
        assert_eq!(os.alarm(a).unwrap().cycle_scale_ppm(), 1_000_000);
    }

    #[test]
    fn tags_and_targets() {
        let c = ErrorClass::SkipRunnable { runnable: r(7) };
        assert_eq!(c.tag(), "skip_runnable");
        assert_eq!(c.target_runnable(), Some(r(7)));
        let b = ErrorClass::BranchOverride { task_name: "x".into(), branch: 0 };
        assert_eq!(b.target_runnable(), None);
    }

    #[test]
    fn arming_and_disarming_leave_trace_markers() {
        let mut injector = Injector::new([Injection::new(
            ErrorClass::SkipRunnable { runnable: r(3) },
            t(100),
            t(200),
        )]);
        let sink = ObsSink::enabled(8);
        injector.attach_obs(sink.clone());
        let mut controls = RunnableControls::new();
        let mut os: Os<BasicEcuWorld> = Os::new();
        injector.tick(t(50), &mut controls, &mut os);
        assert!(sink.events().is_empty());
        injector.tick(t(100), &mut controls, &mut os);
        injector.tick(t(150), &mut controls, &mut os);
        injector.tick(t(200), &mut controls, &mut os);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].event,
            ObsEvent::InjectionActivated { class: "skip_runnable" }
        );
        assert_eq!(events[0].at, t(100));
        assert_eq!(
            events[1].event,
            ObsEvent::InjectionDeactivated { class: "skip_runnable" }
        );
        assert_eq!(events[1].at, t(200));
    }

    #[test]
    fn none_injector_is_immediately_finished() {
        assert!(Injector::none().is_finished());
    }

    #[test]
    fn interned_tag_matches_tag_and_is_shared() {
        let classes = [
            ErrorClass::ExecutionSlowdown { runnable: r(0), scale_ppm: 1 },
            ErrorClass::HeartbeatLoss { runnable: r(0) },
            ErrorClass::SkipRunnable { runnable: r(0) },
            ErrorClass::DuplicateDispatch { runnable: r(0), extra: 1 },
            ErrorClass::LoopOverrun { runnable: r(0), iterations: 1 },
            ErrorClass::BranchOverride { task_name: "x".into(), branch: 0 },
            ErrorClass::AlarmScale { alarm: AlarmId(0), scale_ppm: 1 },
        ];
        for class in &classes {
            let a = class.interned_tag();
            let b = class.interned_tag();
            assert_eq!(&*a, class.tag());
            // Interned: repeated calls hand out the same allocation.
            assert!(std::sync::Arc::ptr_eq(&a, &b));
        }
    }

    #[test]
    fn reload_is_equivalent_to_new() {
        let injection =
            Injection::new(ErrorClass::SkipRunnable { runnable: r(3) }, t(100), t(200));
        let mut reloaded = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: r(9) },
            t(1),
            t(2),
        )]);
        // Burn through the first load so phases are in a non-trivial state.
        let mut controls = RunnableControls::new();
        let mut os: Os<BasicEcuWorld> = Os::new();
        reloaded.tick(t(5), &mut controls, &mut os);
        reloaded.tick(t(6), &mut controls, &mut os);
        assert!(reloaded.is_finished());

        reloaded.reload([injection.clone()]);
        let mut fresh = Injector::new([injection]);
        assert!(!reloaded.is_finished());
        for at in [50, 100, 150, 200] {
            let mut c1 = RunnableControls::new();
            let mut c2 = RunnableControls::new();
            let mut o1: Os<BasicEcuWorld> = Os::new();
            let mut o2: Os<BasicEcuWorld> = Os::new();
            reloaded.tick(t(at), &mut c1, &mut o1);
            fresh.tick(t(at), &mut c2, &mut o2);
            assert_eq!(reloaded.armed_count(), fresh.armed_count(), "at {at}");
            assert_eq!(reloaded.is_finished(), fresh.is_finished(), "at {at}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = Injection::new(ErrorClass::HeartbeatLoss { runnable: r(0) }, t(5), t(5));
    }
}

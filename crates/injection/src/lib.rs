//! # easis-injection — error injection and fault campaigns
//!
//! "Since different faults can result in the same error, error injection is
//! applied for the evaluation of the design and prototyping of the Software
//! Watchdog" (paper §4.5). This crate reproduces that methodology,
//! replacing the manual ControlDesk sliders with scripted, reproducible
//! injections:
//!
//! * [`injector`] — the error classes (execution-time scaling, heartbeat
//!   loss, skipped runnables / invalid branches, duplicate dispatch, loop
//!   counter overruns, alarm rescaling) armed and reverted inside time
//!   windows;
//! * [`campaign`] — seeded plans of injection trials over target
//!   runnables;
//! * [`executor`] — parallel, deterministic execution of campaign plans
//!   across worker threads;
//! * [`stats`] — detection coverage and latency aggregation across the
//!   Software Watchdog units and the baseline monitors;
//! * [`report`] — serialisable campaign reports with Wilson-score
//!   coverage confidence intervals and latency percentiles.
//!
//! # Examples
//!
//! ```
//! use easis_injection::campaign::CampaignBuilder;
//! use easis_rte::runnable::RunnableId;
//!
//! let plan = CampaignBuilder::new(42, vec![RunnableId(0), RunnableId(1)])
//!     .trials_per_class(5)
//!     .build();
//! assert_eq!(plan.len(), 25); // 5 classes × 5 trials
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod executor;
pub mod injector;
pub mod report;
pub mod stats;

pub use campaign::{CampaignBuilder, CampaignPlan, TrialSpec};
pub use executor::CampaignExecutor;
pub use injector::{ErrorClass, Injection, Injector};
pub use report::{CampaignReport, ClassReport, DetectorReport, LatencySummary, WilsonInterval};
pub use stats::{CampaignStats, DetectorId, TrialOutcome};

//! Parallel, deterministic campaign execution.
//!
//! The serial [`CampaignPlan::run`] walks trials one by one; a realistic
//! coverage analysis (the paper's outlook asks for "further analysis of
//! fault detection coverage") needs thousands of trials, each simulating a
//! full central node to its horizon. Trials are hermetic — every one
//! builds its own node world from its [`TrialSpec`] — so they
//! parallelise embarrassingly. [`CampaignExecutor`] fans a plan across a
//! pool of worker threads over a shared work queue and merges the
//! outcomes **by trial index**, so the resulting [`CampaignStats`] is
//! bit-identical to a serial run regardless of worker count, chunk size
//! or thread scheduling.
//!
//! Work distribution is **statically striped**: the plan's chunks are
//! assigned round-robin to workers up front, so a worker owns its whole
//! stripe from the moment it spawns — no shared work queue, no channel
//! receive per chunk. Each worker sends its results exactly once, when its
//! stripe is done, so channel traffic is one message per worker regardless
//! of plan size. (The earlier shared-queue design paid one channel
//! round-trip per chunk, which on a single-core host was enough
//! synchronization to make two workers *slower* than one.) Campaign trials
//! are near-uniform in cost, so dynamic rebalancing buys nothing here.
//!
//! [`CampaignExecutor::run_chunked`] exposes the chunk boundary to the
//! runner: the whole contiguous chunk of specs is handed over in one call,
//! so a runner can amortize per-chunk work — the validator's forked
//! campaign runner sorts each chunk by injection time and forks trials
//! from golden-prefix snapshots instead of re-simulating the prefix.
//!
//! ```
//! use easis_injection::campaign::CampaignBuilder;
//! use easis_injection::executor::CampaignExecutor;
//! use easis_injection::stats::TrialOutcome;
//! use easis_rte::runnable::RunnableId;
//!
//! let plan = CampaignBuilder::new(7, vec![RunnableId(0)]).trials_per_class(2).build();
//! let runner = |spec: &easis_injection::campaign::TrialSpec| {
//!     TrialOutcome::new(spec.injection.class.tag())
//! };
//! let serial = CampaignExecutor::serial().run(&plan, runner);
//! let parallel = CampaignExecutor::new(4).with_chunk_size(3).run(&plan, runner);
//! assert_eq!(serial, parallel);
//! ```

use crate::campaign::{CampaignPlan, TrialSpec};
use crate::stats::{CampaignStats, TrialOutcome};
use crossbeam::channel;
use std::ops::Range;

/// Executes campaign plans across a fixed pool of worker threads with
/// deterministic (order-independent) result aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignExecutor {
    workers: usize,
    /// Trials per work-queue chunk; 0 = auto-size from the plan.
    chunk: usize,
}

impl CampaignExecutor {
    /// A single-threaded executor; behaves exactly like
    /// [`CampaignPlan::run`].
    pub fn serial() -> Self {
        CampaignExecutor { workers: 1, chunk: 0 }
    }

    /// An executor with `workers` threads (clamped to at least 1) and
    /// automatic chunk sizing.
    pub fn new(workers: usize) -> Self {
        CampaignExecutor {
            workers: workers.max(1),
            chunk: 0,
        }
    }

    /// Sets the number of trial specs per work-queue chunk. `0` restores
    /// automatic sizing (≈ 4 chunks per worker, clamped to 1..=64). The
    /// merged stats are bit-identical for every chunk size; the knob only
    /// trades channel traffic against load-balancing granularity.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// An executor sized by the `EASIS_WORKERS` environment variable
    /// (worker count), falling back to the machine's available
    /// parallelism, and chunked by `EASIS_CHUNK` (trials per work-queue
    /// batch, 0/unset = auto). A set-but-invalid value (unparsable, or a
    /// worker count of 0) is rejected with a warning on stderr rather
    /// than silently ignored, then the fallback applies.
    pub fn from_env() -> Self {
        let workers = match std::env::var("EASIS_WORKERS") {
            Ok(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                Ok(_) => {
                    eprintln!(
                        "warning: EASIS_WORKERS=0 is invalid (need a positive worker count); \
                         falling back to available parallelism"
                    );
                    None
                }
                Err(_) => {
                    eprintln!(
                        "warning: EASIS_WORKERS={raw:?} is not a number; \
                         falling back to available parallelism"
                    );
                    None
                }
            },
            Err(_) => None,
        };
        let workers = workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let chunk = match std::env::var("EASIS_CHUNK") {
            Ok(raw) => match raw.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("warning: EASIS_CHUNK={raw:?} is not a number; using auto chunking");
                    0
                }
            },
            Err(_) => 0,
        };
        CampaignExecutor::new(workers).with_chunk_size(chunk)
    }

    /// Number of worker threads this executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured trials per work-queue chunk (0 = auto).
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// The chunk size actually used for a plan of `trials` trials.
    fn effective_chunk(&self, trials: usize) -> usize {
        if self.chunk > 0 {
            return self.chunk;
        }
        // Auto: aim for ~4 chunks per worker so stragglers rebalance,
        // bounded so tiny plans still parallelise and huge plans don't
        // drown the channel.
        (trials / (self.workers * 4)).clamp(1, 64)
    }

    /// Runs every trial of `plan` through `runner` and aggregates the
    /// outcomes into [`CampaignStats`].
    ///
    /// Determinism guarantee: outcomes are merged in **trial index
    /// order**, never completion order, so for any pure `runner` (one
    /// whose outcome depends only on the [`TrialSpec`]) the returned
    /// stats — and any report or JSON derived from them — are
    /// bit-identical across worker counts, chunk sizes and runs.
    ///
    /// # Panics
    ///
    /// Propagates panics from `runner` (a poisoned trial aborts the
    /// campaign rather than silently skewing coverage numbers).
    pub fn run<F>(&self, plan: &CampaignPlan, runner: F) -> CampaignStats
    where
        F: Fn(&TrialSpec) -> TrialOutcome + Sync,
    {
        self.run_chunked(plan, |specs, _base| specs.iter().map(&runner).collect())
    }

    /// Like [`CampaignExecutor::run`], but hands the runner a whole
    /// contiguous **chunk** of trial specs at once together with the index
    /// of its first trial, and expects one outcome per spec, in spec
    /// order. A chunk runner may reorder the trials *internally* (e.g. by
    /// injection time, to share golden-prefix snapshots) as long as the
    /// returned vector lines up with the input slice.
    ///
    /// Chunks are striped round-robin across the worker pool before any
    /// thread spawns; each worker walks its own stripe without touching a
    /// shared queue and sends all its results in a single channel message
    /// at the end. Outcomes are merged by trial index, so the stats are
    /// bit-identical across worker counts and chunk sizes for any pure
    /// runner.
    ///
    /// # Panics
    ///
    /// Panics if the runner returns the wrong number of outcomes for a
    /// chunk, and propagates runner panics.
    pub fn run_chunked<F>(&self, plan: &CampaignPlan, chunk_runner: F) -> CampaignStats
    where
        F: Fn(&[TrialSpec], usize) -> Vec<TrialOutcome> + Sync,
    {
        let trials = plan.trials();
        if self.workers == 1 || trials.len() <= 1 {
            let outcomes = chunk_runner(trials, 0);
            assert_eq!(
                outcomes.len(),
                trials.len(),
                "chunk runner must return one outcome per spec"
            );
            let mut stats = CampaignStats::new();
            for outcome in outcomes {
                stats.push(outcome);
            }
            return stats;
        }

        let chunk = self.effective_chunk(trials.len());
        let workers = self.workers.min(trials.len());
        let (done_tx, done_rx) = channel::unbounded::<Vec<(usize, Vec<TrialOutcome>)>>();
        let chunk_runner = &chunk_runner;
        crossbeam::thread::scope(|scope| {
            for worker in 0..workers {
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    // This worker's stripe: chunks worker, worker+W, … —
                    // known entirely up front, no shared queue.
                    let mut produced: Vec<(usize, Vec<TrialOutcome>)> = Vec::new();
                    let mut start = worker * chunk;
                    while start < trials.len() {
                        let range: Range<usize> = start..(start + chunk).min(trials.len());
                        let outcomes = chunk_runner(&trials[range.clone()], range.start);
                        assert_eq!(
                            outcomes.len(),
                            range.len(),
                            "chunk runner must return one outcome per spec"
                        );
                        produced.push((range.start, outcomes));
                        start += chunk * workers;
                    }
                    done_tx.send(produced).expect("results open");
                });
            }
        })
        .expect("campaign worker panicked");
        drop(done_tx);

        // Merge by trial index: completion order is scheduling noise.
        let mut slots: Vec<Option<TrialOutcome>> = vec![None; trials.len()];
        for produced in done_rx.iter() {
            for (start, outcomes) in produced {
                for (offset, outcome) in outcomes.into_iter().enumerate() {
                    debug_assert!(
                        slots[start + offset].is_none(),
                        "trial {} ran twice",
                        start + offset
                    );
                    slots[start + offset] = Some(outcome);
                }
            }
        }
        let mut stats = CampaignStats::new();
        for (index, slot) in slots.into_iter().enumerate() {
            stats.push(slot.unwrap_or_else(|| panic!("trial {index} produced no outcome")));
        }
        stats
    }
}

impl Default for CampaignExecutor {
    fn default() -> Self {
        CampaignExecutor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::stats::DetectorId;
    use easis_rte::runnable::RunnableId;
    use easis_sim::rng::SimRng;
    use easis_sim::time::Duration;

    /// A cheap runner whose outcome is a pure function of the spec.
    fn synthetic(spec: &TrialSpec) -> TrialOutcome {
        let mut rng = SimRng::seed_from(spec.seed);
        let mut outcome = TrialOutcome::new(spec.injection.class.tag());
        for detector in DetectorId::ALL {
            if rng.next_below(100) < 60 {
                outcome.record(detector, Duration::from_micros(rng.next_in(100, 50_000)));
            }
        }
        outcome
    }

    fn plan() -> CampaignPlan {
        CampaignBuilder::new(0xFEED, (0..4).map(RunnableId).collect())
            .trials_per_class(6)
            .build()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let plan = plan();
        let serial = CampaignExecutor::serial().run(&plan, synthetic);
        for workers in [2, 3, 4, 8] {
            let parallel = CampaignExecutor::new(workers).run(&plan, synthetic);
            assert_eq!(serial, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn every_chunk_size_matches_serial_exactly() {
        let plan = plan();
        let serial = CampaignExecutor::serial().run(&plan, synthetic);
        for chunk in [1, 2, 3, 5, 7, 24, 100] {
            let chunked = CampaignExecutor::new(4).with_chunk_size(chunk).run(&plan, synthetic);
            assert_eq!(serial, chunked, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn outcomes_are_in_trial_index_order() {
        let plan = plan();
        let stats = CampaignExecutor::new(4).run(&plan, synthetic);
        assert_eq!(stats.len(), plan.len());
        for (trial, outcome) in plan.trials().iter().zip(stats.trials()) {
            assert_eq!(trial.injection.class.tag(), &*outcome.class);
        }
    }

    #[test]
    fn run_chunked_matches_run_for_any_worker_count() {
        let plan = plan();
        let serial = CampaignExecutor::serial().run(&plan, synthetic);
        for workers in [1, 2, 4, 8] {
            let chunked = CampaignExecutor::new(workers).run_chunked(&plan, |specs, base| {
                // Process the chunk back-to-front internally; return in
                // spec order — the contract run_chunked requires.
                let mut out: Vec<Option<TrialOutcome>> = specs.iter().map(|_| None).collect();
                for (i, spec) in specs.iter().enumerate().rev() {
                    assert!(base + i < plan.len(), "base index out of range");
                    out[i] = Some(synthetic(spec));
                }
                out.into_iter().map(Option::unwrap).collect()
            });
            assert_eq!(serial, chunked, "{workers} workers diverged");
        }
    }

    #[test]
    #[should_panic(expected = "one outcome per spec")]
    fn run_chunked_rejects_short_outcome_vectors() {
        let plan = plan();
        let _ = CampaignExecutor::serial()
            .run_chunked(&plan, |specs, _| specs.iter().skip(1).map(synthetic).collect());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(CampaignExecutor::new(0).workers(), 1);
    }

    #[test]
    fn auto_chunk_is_bounded() {
        let exec = CampaignExecutor::new(4);
        assert_eq!(exec.chunk_size(), 0);
        assert_eq!(exec.effective_chunk(0), 1);
        assert_eq!(exec.effective_chunk(8), 1);
        assert_eq!(exec.effective_chunk(1000), 62);
        assert_eq!(exec.effective_chunk(1_000_000), 64);
        assert_eq!(CampaignExecutor::new(4).with_chunk_size(7).effective_chunk(1000), 7);
    }

    #[test]
    fn empty_plan_yields_empty_stats() {
        let stats = CampaignExecutor::new(4).run(&CampaignPlan::default(), synthetic);
        assert!(stats.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let plan = CampaignBuilder::new(9, vec![RunnableId(0)])
            .trials_per_class(1)
            .build();
        let stats = CampaignExecutor::new(64).run(&plan, synthetic);
        assert_eq!(stats.len(), plan.len());
    }
}

//! Parallel, deterministic campaign execution.
//!
//! The serial [`CampaignPlan::run`] walks trials one by one; a realistic
//! coverage analysis (the paper's outlook asks for "further analysis of
//! fault detection coverage") needs thousands of trials, each simulating a
//! full central node to its horizon. Trials are hermetic — every one
//! builds its own node world from its [`TrialSpec`] — so they
//! parallelise embarrassingly. [`CampaignExecutor`] fans a plan across a
//! pool of worker threads over a shared work queue and merges the
//! outcomes **by trial index**, so the resulting [`CampaignStats`] is
//! bit-identical to a serial run regardless of worker count or thread
//! scheduling.
//!
//! ```
//! use easis_injection::campaign::CampaignBuilder;
//! use easis_injection::executor::CampaignExecutor;
//! use easis_injection::stats::TrialOutcome;
//! use easis_rte::runnable::RunnableId;
//!
//! let plan = CampaignBuilder::new(7, vec![RunnableId(0)]).trials_per_class(2).build();
//! let runner = |spec: &easis_injection::campaign::TrialSpec| {
//!     TrialOutcome::new(spec.injection.class.tag())
//! };
//! let serial = CampaignExecutor::serial().run(&plan, runner);
//! let parallel = CampaignExecutor::new(4).run(&plan, runner);
//! assert_eq!(serial, parallel);
//! ```

use crate::campaign::{CampaignPlan, TrialSpec};
use crate::stats::{CampaignStats, TrialOutcome};
use crossbeam::channel;

/// Executes campaign plans across a fixed pool of worker threads with
/// deterministic (order-independent) result aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignExecutor {
    workers: usize,
}

impl CampaignExecutor {
    /// A single-threaded executor; behaves exactly like
    /// [`CampaignPlan::run`].
    pub fn serial() -> Self {
        CampaignExecutor { workers: 1 }
    }

    /// An executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        CampaignExecutor {
            workers: workers.max(1),
        }
    }

    /// An executor sized by the `EASIS_WORKERS` environment variable,
    /// falling back to the machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("EASIS_WORKERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        CampaignExecutor::new(workers)
    }

    /// Number of worker threads this executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every trial of `plan` through `runner` and aggregates the
    /// outcomes into [`CampaignStats`].
    ///
    /// Determinism guarantee: outcomes are merged in **trial index
    /// order**, never completion order, so for any pure `runner` (one
    /// whose outcome depends only on the [`TrialSpec`]) the returned
    /// stats — and any report or JSON derived from them — are
    /// bit-identical across worker counts and runs.
    ///
    /// # Panics
    ///
    /// Propagates panics from `runner` (a poisoned trial aborts the
    /// campaign rather than silently skewing coverage numbers).
    pub fn run<F>(&self, plan: &CampaignPlan, runner: F) -> CampaignStats
    where
        F: Fn(&TrialSpec) -> TrialOutcome + Sync,
    {
        let trials = plan.trials();
        if self.workers == 1 || trials.len() <= 1 {
            let mut stats = CampaignStats::new();
            for trial in trials {
                stats.push(runner(trial));
            }
            return stats;
        }

        // Work queue of trial indices; workers pull as they free up, so an
        // expensive trial (a CPU-saturating slowdown) does not stall the
        // neighbours a static chunking would pin behind it.
        let (work_tx, work_rx) = channel::unbounded::<usize>();
        for index in 0..trials.len() {
            work_tx.send(index).expect("work queue open");
        }
        drop(work_tx);

        let (done_tx, done_rx) = channel::unbounded::<(usize, TrialOutcome)>();
        let runner = &runner;
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.workers.min(trials.len()) {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    for index in work_rx.iter() {
                        let outcome = runner(&trials[index]);
                        done_tx.send((index, outcome)).expect("results open");
                    }
                });
            }
        })
        .expect("campaign worker panicked");
        drop(done_tx);

        // Merge by trial index: completion order is scheduling noise.
        let mut slots: Vec<Option<TrialOutcome>> = vec![None; trials.len()];
        for (index, outcome) in done_rx.iter() {
            debug_assert!(slots[index].is_none(), "trial {index} ran twice");
            slots[index] = Some(outcome);
        }
        let mut stats = CampaignStats::new();
        for (index, slot) in slots.into_iter().enumerate() {
            stats.push(slot.unwrap_or_else(|| panic!("trial {index} produced no outcome")));
        }
        stats
    }
}

impl Default for CampaignExecutor {
    fn default() -> Self {
        CampaignExecutor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::stats::DetectorId;
    use easis_rte::runnable::RunnableId;
    use easis_sim::rng::SimRng;
    use easis_sim::time::Duration;

    /// A cheap runner whose outcome is a pure function of the spec.
    fn synthetic(spec: &TrialSpec) -> TrialOutcome {
        let mut rng = SimRng::seed_from(spec.seed);
        let mut outcome = TrialOutcome::new(spec.injection.class.tag());
        for detector in DetectorId::ALL {
            if rng.next_below(100) < 60 {
                outcome.record(detector, Duration::from_micros(rng.next_in(100, 50_000)));
            }
        }
        outcome
    }

    fn plan() -> CampaignPlan {
        CampaignBuilder::new(0xFEED, (0..4).map(RunnableId).collect())
            .trials_per_class(6)
            .build()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let plan = plan();
        let serial = CampaignExecutor::serial().run(&plan, synthetic);
        for workers in [2, 3, 4, 8] {
            let parallel = CampaignExecutor::new(workers).run(&plan, synthetic);
            assert_eq!(serial, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn outcomes_are_in_trial_index_order() {
        let plan = plan();
        let stats = CampaignExecutor::new(4).run(&plan, synthetic);
        assert_eq!(stats.len(), plan.len());
        for (trial, outcome) in plan.trials().iter().zip(stats.trials()) {
            assert_eq!(trial.injection.class.tag(), outcome.class);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(CampaignExecutor::new(0).workers(), 1);
    }

    #[test]
    fn empty_plan_yields_empty_stats() {
        let stats = CampaignExecutor::new(4).run(&CampaignPlan::default(), synthetic);
        assert!(stats.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let plan = CampaignBuilder::new(9, vec![RunnableId(0)])
            .trials_per_class(1)
            .build();
        let stats = CampaignExecutor::new(64).run(&plan, synthetic);
        assert_eq!(stats.len(), plan.len());
    }
}

//! Campaign statistics: detection coverage and latency aggregation.

use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// The detectors compared by the coverage/latency experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetectorId {
    /// Software Watchdog — aliveness monitoring unit.
    SwAliveness,
    /// Software Watchdog — arrival-rate monitoring unit.
    SwArrivalRate,
    /// Software Watchdog — program flow checking unit.
    SwProgramFlow,
    /// ECU hardware watchdog.
    HwWatchdog,
    /// OSEKTime-style task deadline monitoring.
    DeadlineMonitor,
    /// AUTOSAR-OS-style execution-time monitoring.
    ExecTimeMonitor,
}

impl DetectorId {
    /// All detectors, in report column order.
    pub const ALL: [DetectorId; 6] = [
        DetectorId::SwAliveness,
        DetectorId::SwArrivalRate,
        DetectorId::SwProgramFlow,
        DetectorId::HwWatchdog,
        DetectorId::DeadlineMonitor,
        DetectorId::ExecTimeMonitor,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            DetectorId::SwAliveness => "SW-AM",
            DetectorId::SwArrivalRate => "SW-ARM",
            DetectorId::SwProgramFlow => "SW-PFC",
            DetectorId::HwWatchdog => "HW-WD",
            DetectorId::DeadlineMonitor => "DLMON",
            DetectorId::ExecTimeMonitor => "ETMON",
        }
    }

    /// `true` for the three Software Watchdog units.
    pub fn is_software_watchdog(self) -> bool {
        matches!(
            self,
            DetectorId::SwAliveness | DetectorId::SwArrivalRate | DetectorId::SwProgramFlow
        )
    }
}

/// Result of one fault-injection trial.
///
/// The class tag is an `Arc<str>`: campaign trials stamp outcomes with
/// [`ErrorClass::interned_tag`](crate::injector::ErrorClass::interned_tag)
/// handles so no per-trial string is allocated. It serializes as a plain
/// string, so on-disk stats records are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Error class tag of the injected fault.
    pub class: Arc<str>,
    /// Detection latency per detector (injection start → first detection);
    /// absent = not detected.
    pub detections: BTreeMap<DetectorId, Duration>,
}

impl TrialOutcome {
    /// Creates an outcome for a class tag.
    pub fn new(class: impl Into<Arc<str>>) -> Self {
        TrialOutcome {
            class: class.into(),
            detections: BTreeMap::new(),
        }
    }

    /// Records a detection (keeps the earliest per detector).
    pub fn record(&mut self, detector: DetectorId, latency: Duration) {
        self.detections
            .entry(detector)
            .and_modify(|l| {
                if latency < *l {
                    *l = latency;
                }
            })
            .or_insert(latency);
    }

    /// `true` if the detector caught the fault.
    pub fn detected_by(&self, detector: DetectorId) -> bool {
        self.detections.contains_key(&detector)
    }

    /// `true` if any Software Watchdog unit caught the fault.
    pub fn detected_by_sw_watchdog(&self) -> bool {
        self.detections.keys().any(|d| d.is_software_watchdog())
    }
}

/// Aggregated campaign results: coverage and latency per (class, detector).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    trials: Vec<TrialOutcome>,
}

impl CampaignStats {
    /// Creates an empty aggregation.
    pub fn new() -> Self {
        CampaignStats::default()
    }

    /// Adds one trial.
    pub fn push(&mut self, outcome: TrialOutcome) {
        self.trials.push(outcome);
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// `true` if no trials were recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// All trials.
    pub fn trials(&self) -> &[TrialOutcome] {
        &self.trials
    }

    /// Distinct class tags, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut c: Vec<String> = self.trials.iter().map(|t| t.class.to_string()).collect();
        c.sort();
        c.dedup();
        c
    }

    /// Coverage of `detector` on `class`: detected / injected.
    pub fn coverage(&self, class: &str, detector: DetectorId) -> f64 {
        let of_class: Vec<&TrialOutcome> =
            self.trials.iter().filter(|t| &*t.class == class).collect();
        if of_class.is_empty() {
            return 0.0;
        }
        let hit = of_class.iter().filter(|t| t.detected_by(detector)).count();
        hit as f64 / of_class.len() as f64
    }

    /// Combined Software Watchdog coverage on `class` (any unit).
    pub fn sw_coverage(&self, class: &str) -> f64 {
        let of_class: Vec<&TrialOutcome> =
            self.trials.iter().filter(|t| &*t.class == class).collect();
        if of_class.is_empty() {
            return 0.0;
        }
        let hit = of_class
            .iter()
            .filter(|t| t.detected_by_sw_watchdog())
            .count();
        hit as f64 / of_class.len() as f64
    }

    /// Detection latencies of `detector` on `class`, sorted ascending.
    pub fn latencies(&self, class: &str, detector: DetectorId) -> Vec<Duration> {
        let mut l: Vec<Duration> = self
            .trials
            .iter()
            .filter(|t| &*t.class == class)
            .filter_map(|t| t.detections.get(&detector).copied())
            .collect();
        l.sort_unstable();
        l
    }

    /// Percentile (0.0–1.0) of a sorted latency list. Thin wrapper over
    /// [`easis_obs::metrics::percentile`], the shared implementation.
    pub fn percentile(sorted: &[Duration], p: f64) -> Option<Duration> {
        easis_obs::metrics::percentile(sorted, p)
    }

    /// Renders the coverage table (rows: classes, columns: detectors).
    pub fn render_coverage_table(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<22}", "error class \\ detector");
        for d in DetectorId::ALL {
            let _ = write!(out, " {:>7}", d.label());
        }
        let _ = writeln!(out, " {:>7}", "SW-any");
        for class in self.classes() {
            let _ = write!(out, "{:<22}", class);
            for d in DetectorId::ALL {
                let _ = write!(out, " {:>6.0}%", 100.0 * self.coverage(&class, d));
            }
            let _ = writeln!(out, " {:>6.0}%", 100.0 * self.sw_coverage(&class));
        }
        out
    }

    /// Renders the latency table (min / median / p95 per class×detector
    /// with at least one detection).
    pub fn render_latency_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>10} {:>10} {:>10}",
            "error class", "detector", "min[ms]", "med[ms]", "p95[ms]"
        );
        for class in self.classes() {
            for d in DetectorId::ALL {
                let lat = self.latencies(&class, d);
                if lat.is_empty() {
                    continue;
                }
                let min = lat[0];
                let med = Self::percentile(&lat, 0.5).expect("non-empty");
                let p95 = Self::percentile(&lat, 0.95).expect("non-empty");
                let _ = writeln!(
                    out,
                    "{:<22} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                    class,
                    d.label(),
                    min.as_micros() as f64 / 1000.0,
                    med.as_micros() as f64 / 1000.0,
                    p95.as_micros() as f64 / 1000.0,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn outcome_keeps_earliest_detection() {
        let mut t = TrialOutcome::new("skip_runnable");
        t.record(DetectorId::SwProgramFlow, ms(30));
        t.record(DetectorId::SwProgramFlow, ms(10));
        t.record(DetectorId::SwProgramFlow, ms(50));
        assert_eq!(t.detections[&DetectorId::SwProgramFlow], ms(10));
        assert!(t.detected_by(DetectorId::SwProgramFlow));
        assert!(t.detected_by_sw_watchdog());
        assert!(!t.detected_by(DetectorId::HwWatchdog));
    }

    #[test]
    fn coverage_counts_hits_per_class() {
        let mut stats = CampaignStats::new();
        for i in 0..4 {
            let mut t = TrialOutcome::new("heartbeat_loss");
            if i < 3 {
                t.record(DetectorId::SwAliveness, ms(20));
            }
            stats.push(t);
        }
        assert_eq!(stats.coverage("heartbeat_loss", DetectorId::SwAliveness), 0.75);
        assert_eq!(stats.coverage("heartbeat_loss", DetectorId::HwWatchdog), 0.0);
        assert_eq!(stats.coverage("unknown", DetectorId::SwAliveness), 0.0);
        assert_eq!(stats.sw_coverage("heartbeat_loss"), 0.75);
        assert_eq!(stats.len(), 4);
    }

    #[test]
    fn latency_percentiles() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(CampaignStats::percentile(&sorted, 0.0), Some(ms(1)));
        assert_eq!(CampaignStats::percentile(&sorted, 0.5), Some(ms(51)));
        assert_eq!(CampaignStats::percentile(&sorted, 1.0), Some(ms(100)));
        assert_eq!(CampaignStats::percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_of_empty_list_is_none_for_every_p() {
        for p in [0.0, 0.5, 1.0, -1.0, 2.0] {
            assert_eq!(CampaignStats::percentile(&[], p), None);
        }
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let one = [ms(42)];
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(CampaignStats::percentile(&one, p), Some(ms(42)));
        }
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let sorted: Vec<Duration> = (1..=10).map(ms).collect();
        // p below 0 clamps to the minimum, above 1 to the maximum.
        assert_eq!(CampaignStats::percentile(&sorted, -0.5), Some(ms(1)));
        assert_eq!(CampaignStats::percentile(&sorted, 7.0), Some(ms(10)));
    }

    #[test]
    fn tables_render_all_classes() {
        let mut stats = CampaignStats::new();
        let mut a = TrialOutcome::new("skip_runnable");
        a.record(DetectorId::SwProgramFlow, ms(12));
        stats.push(a);
        let mut b = TrialOutcome::new("heartbeat_loss");
        b.record(DetectorId::SwAliveness, ms(25));
        stats.push(b);
        let cov = stats.render_coverage_table();
        assert!(cov.contains("skip_runnable") && cov.contains("heartbeat_loss"));
        assert!(cov.contains("SW-PFC"));
        let lat = stats.render_latency_table();
        assert!(lat.contains("12.0"));
        assert!(lat.contains("25.0"));
    }

    #[test]
    fn classes_are_deduplicated_and_sorted() {
        let mut stats = CampaignStats::new();
        stats.push(TrialOutcome::new("b"));
        stats.push(TrialOutcome::new("a"));
        stats.push(TrialOutcome::new("b"));
        assert_eq!(stats.classes(), vec!["a".to_string(), "b".to_string()]);
    }
}

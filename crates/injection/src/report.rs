//! Machine-readable campaign reports.
//!
//! [`CampaignStats`] holds the raw trial outcomes; [`CampaignReport`]
//! condenses them into the numbers the paper's tables need — per
//! (class, detector) coverage with a Wilson-score 95% confidence
//! interval and detection-latency percentiles — in a serde-serialisable
//! shape that the experiment binaries emit as JSON and the regression
//! harness pins as goldens.
//!
//! Everything here is a pure function of the trial outcomes, so a report
//! built from a deterministic campaign serialises to byte-identical JSON
//! across runs and worker counts.

use crate::stats::{CampaignStats, DetectorId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Wilson-score confidence interval for a binomial proportion.
///
/// Unlike the normal-approximation ("Wald") interval, Wilson behaves at
/// the extremes the coverage tables live at: at 0/n the lower bound is
/// exactly 0, at n/n the upper bound is exactly 1, and small campaigns
/// get honestly wide intervals instead of `±0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilsonInterval {
    /// Lower bound of the proportion, in `[0, 1]`.
    pub lo: f64,
    /// Upper bound of the proportion, in `[0, 1]`.
    pub hi: f64,
}

impl WilsonInterval {
    /// The 95% interval (z = 1.96) for `hits` successes out of `n`.
    pub fn for_proportion(hits: usize, n: usize) -> WilsonInterval {
        WilsonInterval::with_z(hits, n, 1.96)
    }

    /// The interval for `hits` out of `n` at critical value `z`.
    ///
    /// With `n == 0` there is no evidence either way: returns `[0, 1]`.
    pub fn with_z(hits: usize, n: usize, z: f64) -> WilsonInterval {
        if n == 0 {
            return WilsonInterval { lo: 0.0, hi: 1.0 };
        }
        debug_assert!(hits <= n, "more hits than trials");
        let nf = n as f64;
        let p = hits as f64 / nf;
        let z2 = z * z;
        let denom = 1.0 + z2 / nf;
        let center = p + z2 / (2.0 * nf);
        let margin = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
        WilsonInterval {
            lo: ((center - margin) / denom).clamp(0.0, 1.0),
            hi: ((center + margin) / denom).clamp(0.0, 1.0),
        }
    }

    /// `true` if `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Detection-latency distribution summary, in microseconds.
///
/// The type (and its percentile machinery) lives in `easis-obs` so the
/// live metrics registry and the campaign reports share one
/// implementation; it is re-exported here unchanged, keeping the JSON
/// report shape byte-identical.
pub use easis_obs::metrics::LatencySummary;

/// One detector's performance on one error class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorReport {
    /// The detector.
    pub detector: DetectorId,
    /// Trials of the class this detector caught.
    pub detected: usize,
    /// Trials of the class injected.
    pub injected: usize,
    /// Point coverage `detected / injected`.
    pub coverage: f64,
    /// Wilson-score 95% interval around [`DetectorReport::coverage`].
    pub ci95: WilsonInterval,
    /// Latency summary over the caught trials; `None` when none caught.
    pub latency: Option<LatencySummary>,
}

/// Per-error-class campaign results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Error class tag.
    pub class: String,
    /// Trials injected for this class.
    pub injected: usize,
    /// Trials caught by *any* Software Watchdog unit.
    pub sw_detected: usize,
    /// Combined Software Watchdog coverage.
    pub sw_coverage: f64,
    /// Wilson-score 95% interval around [`ClassReport::sw_coverage`].
    pub sw_ci95: WilsonInterval,
    /// Per-detector breakdown, in [`DetectorId::ALL`] column order.
    pub detectors: Vec<DetectorReport>,
}

/// The full campaign report: what the experiment binaries emit as JSON
/// and the regression harness pins as a golden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Total trials across all classes.
    pub trials: usize,
    /// Per-class results, sorted by class tag.
    pub classes: Vec<ClassReport>,
}

impl CampaignReport {
    /// Builds the report from aggregated campaign statistics.
    pub fn from_stats(stats: &CampaignStats) -> CampaignReport {
        let classes = stats
            .classes()
            .into_iter()
            .map(|class| {
                let of_class: Vec<_> = stats
                    .trials()
                    .iter()
                    .filter(|t| *t.class == class)
                    .collect();
                let injected = of_class.len();
                let sw_detected = of_class
                    .iter()
                    .filter(|t| t.detected_by_sw_watchdog())
                    .count();
                let detectors = DetectorId::ALL
                    .into_iter()
                    .map(|detector| {
                        let detected = of_class
                            .iter()
                            .filter(|t| t.detected_by(detector))
                            .count();
                        let sorted = stats.latencies(&class, detector);
                        DetectorReport {
                            detector,
                            detected,
                            injected,
                            coverage: ratio(detected, injected),
                            ci95: WilsonInterval::for_proportion(detected, injected),
                            latency: LatencySummary::from_sorted(&sorted),
                        }
                    })
                    .collect();
                ClassReport {
                    class,
                    injected,
                    sw_detected,
                    sw_coverage: ratio(sw_detected, injected),
                    sw_ci95: WilsonInterval::for_proportion(sw_detected, injected),
                    detectors,
                }
            })
            .collect();
        CampaignReport {
            trials: stats.len(),
            classes,
        }
    }

    /// Looks up a class report by tag.
    pub fn class(&self, tag: &str) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.class == tag)
    }

    /// Renders the report as a human-readable table: combined Software
    /// Watchdog coverage with its confidence interval per class, then the
    /// per-detector coverage and latency percentiles.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>17}",
            "error class", "injected", "SW-any", "95% CI"
        );
        for class in &self.classes {
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>7.0}% [{:>5.1}%, {:>5.1}%]",
                class.class,
                class.injected,
                100.0 * class.sw_coverage,
                100.0 * class.sw_ci95.lo,
                100.0 * class.sw_ci95.hi,
            );
        }
        let _ = writeln!(
            out,
            "\n{:<22} {:>8} {:>8} {:>17} {:>9} {:>9} {:>9}",
            "error class", "detector", "cover", "95% CI", "p50[ms]", "p95[ms]", "p99[ms]"
        );
        for class in &self.classes {
            for det in &class.detectors {
                if det.detected == 0 {
                    continue;
                }
                let lat = det.latency.expect("detected > 0 implies latencies");
                let _ = writeln!(
                    out,
                    "{:<22} {:>8} {:>7.0}% [{:>5.1}%, {:>5.1}%] {:>9.1} {:>9.1} {:>9.1}",
                    class.class,
                    det.detector.label(),
                    100.0 * det.coverage,
                    100.0 * det.ci95.lo,
                    100.0 * det.ci95.hi,
                    lat.p50_us as f64 / 1000.0,
                    lat.p95_us as f64 / 1000.0,
                    lat.p99_us as f64 / 1000.0,
                );
            }
        }
        out
    }
}

fn ratio(hits: usize, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrialOutcome;
    use easis_sim::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn wilson_bounds_are_exact_at_the_extremes() {
        let zero = WilsonInterval::for_proportion(0, 50);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.15, "hi = {}", zero.hi);
        let full = WilsonInterval::for_proportion(50, 50);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo < 1.0 && full.lo > 0.85, "lo = {}", full.lo);
    }

    #[test]
    fn wilson_interval_is_centred_and_shrinks_with_n() {
        let small = WilsonInterval::for_proportion(5, 10);
        let large = WilsonInterval::for_proportion(500, 1000);
        assert!(small.contains(0.5));
        assert!(large.contains(0.5));
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson_with_no_trials_is_vacuous() {
        assert_eq!(
            WilsonInterval::for_proportion(0, 0),
            WilsonInterval { lo: 0.0, hi: 1.0 }
        );
    }

    #[test]
    fn latency_summary_percentiles() {
        let sorted: Vec<Duration> = (1..=200).map(ms).collect();
        let s = LatencySummary::from_sorted(&sorted).unwrap();
        assert_eq!(s.samples, 200);
        assert_eq!(s.min_us, ms(1).as_micros());
        assert_eq!(s.p50_us, ms(101).as_micros());
        assert_eq!(s.p95_us, ms(190).as_micros());
        assert_eq!(s.p99_us, ms(198).as_micros());
        assert_eq!(s.max_us, ms(200).as_micros());
        assert_eq!(LatencySummary::from_sorted(&[]), None);
    }

    fn sample_stats() -> CampaignStats {
        let mut stats = CampaignStats::new();
        for i in 0..4 {
            let mut t = TrialOutcome::new("heartbeat_loss");
            if i < 3 {
                t.record(DetectorId::SwAliveness, ms(10 + i));
            }
            stats.push(t);
        }
        let mut t = TrialOutcome::new("skip_runnable");
        t.record(DetectorId::SwProgramFlow, ms(2));
        stats.push(t);
        stats
    }

    #[test]
    fn report_aggregates_per_class_and_detector() {
        let report = CampaignReport::from_stats(&sample_stats());
        assert_eq!(report.trials, 5);
        let hb = report.class("heartbeat_loss").unwrap();
        assert_eq!(hb.injected, 4);
        assert_eq!(hb.sw_detected, 3);
        assert_eq!(hb.sw_coverage, 0.75);
        assert!(hb.sw_ci95.contains(0.75));
        let am = hb
            .detectors
            .iter()
            .find(|d| d.detector == DetectorId::SwAliveness)
            .unwrap();
        assert_eq!(am.detected, 3);
        assert_eq!(am.latency.unwrap().min_us, ms(10).as_micros());
        let hw = hb
            .detectors
            .iter()
            .find(|d| d.detector == DetectorId::HwWatchdog)
            .unwrap();
        assert_eq!(hw.detected, 0);
        assert_eq!(hw.latency, None);
        assert_eq!(hw.ci95.lo, 0.0);
        let skip = report.class("skip_runnable").unwrap();
        assert_eq!(skip.sw_coverage, 1.0);
        assert_eq!(skip.sw_ci95.hi, 1.0);
    }

    #[test]
    fn report_json_round_trips() {
        let report = CampaignReport::from_stats(&sample_stats());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn render_lists_each_firing_detector_once() {
        let report = CampaignReport::from_stats(&sample_stats());
        let text = report.render();
        assert!(text.contains("heartbeat_loss"));
        assert!(text.contains("SW-AM"));
        assert!(text.contains("SW-PFC"));
        assert!(!text.contains("HW-WD"), "silent detectors omitted:\n{text}");
    }
}

//! Property-based tests of the campaign statistics.

use easis_injection::stats::{CampaignStats, DetectorId, TrialOutcome};
use easis_sim::time::Duration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coverage is always in [0, 1] and equals hits/injected exactly.
    #[test]
    fn coverage_is_a_proper_ratio(
        detections in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut stats = CampaignStats::new();
        for &hit in &detections {
            let mut o = TrialOutcome::new("class");
            if hit {
                o.record(DetectorId::SwAliveness, Duration::from_millis(5));
            }
            stats.push(o);
        }
        let cov = stats.coverage("class", DetectorId::SwAliveness);
        let expected = detections.iter().filter(|&&h| h).count() as f64
            / detections.len() as f64;
        prop_assert!((cov - expected).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&cov));
        prop_assert_eq!(stats.sw_coverage("class"), cov);
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(
        mut latencies in prop::collection::vec(0u64..100_000, 1..200),
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        latencies.sort_unstable();
        let sorted: Vec<Duration> = latencies.iter().map(|&l| Duration::from_micros(l)).collect();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let v_lo = CampaignStats::percentile(&sorted, lo).unwrap();
        let v_hi = CampaignStats::percentile(&sorted, hi).unwrap();
        prop_assert!(v_lo <= v_hi);
        prop_assert!(v_lo >= sorted[0]);
        prop_assert!(v_hi <= *sorted.last().unwrap());
    }

    /// The earliest detection wins regardless of recording order.
    #[test]
    fn outcome_keeps_global_minimum(mut latencies in prop::collection::vec(1u64..100_000, 1..50)) {
        let mut o = TrialOutcome::new("x");
        for &l in &latencies {
            o.record(DetectorId::SwProgramFlow, Duration::from_micros(l));
        }
        latencies.sort_unstable();
        prop_assert_eq!(
            o.detections[&DetectorId::SwProgramFlow],
            Duration::from_micros(latencies[0])
        );
    }

    /// Rendered tables contain every class and never panic.
    #[test]
    fn tables_render_for_arbitrary_class_mixes(
        classes in prop::collection::vec("[a-z]{1,8}", 1..20),
    ) {
        let mut stats = CampaignStats::new();
        for (i, class) in classes.iter().enumerate() {
            let mut o = TrialOutcome::new(class.clone());
            if i % 2 == 0 {
                o.record(DetectorId::HwWatchdog, Duration::from_millis(i as u64 + 1));
            }
            stats.push(o);
        }
        let cov = stats.render_coverage_table();
        let lat = stats.render_latency_table();
        for class in &classes {
            prop_assert!(cov.contains(class.as_str()));
        }
        prop_assert!(!lat.is_empty());
    }
}

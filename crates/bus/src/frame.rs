//! Frames and signal packing.
//!
//! The EASIS validator's nodes exchange sensor/actuator values over CAN and
//! FlexRay. [`Frame`] is the common protocol data unit; [`FixedPointCodec`]
//! packs physical `f64` signals into the 16-bit fixed-point representation
//! typical of automotive network databases (CAN DBC style).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// CAN identifier (11-bit standard) or FlexRay frame id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameId(pub u16);

impl FrameId {
    /// Largest valid 11-bit CAN identifier.
    pub const MAX_CAN: FrameId = FrameId(0x7FF);
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:03X}", self.0)
    }
}

/// A protocol data unit on either bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame identifier (doubles as CAN arbitration priority: lower wins).
    pub id: FrameId,
    /// Payload bytes (≤ 8 for CAN).
    pub payload: Bytes,
}

impl Frame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 64 bytes (FlexRay static-slot limit
    /// used by this model).
    pub fn new(id: FrameId, payload: impl Into<Bytes>) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= 64, "payload exceeds 64 bytes");
        Frame { id, payload }
    }

    /// Payload length in bytes.
    pub fn dlc(&self) -> usize {
        self.payload.len()
    }

    /// `true` if this frame fits classic CAN (id ≤ 0x7FF, dlc ≤ 8).
    pub fn is_can_compatible(&self) -> bool {
        self.id <= FrameId::MAX_CAN && self.dlc() <= 8
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}B]", self.id, self.dlc())
    }
}

/// Linear 16-bit fixed-point codec: `raw = (value - offset) / scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPointCodec {
    scale: f64,
    offset: f64,
}

impl FixedPointCodec {
    /// Creates a codec.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero, negative or not finite.
    pub fn new(scale: f64, offset: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite"
        );
        FixedPointCodec { scale, offset }
    }

    /// Standard automotive speed codec: 0.01 m/s resolution, 0 offset.
    pub fn speed() -> Self {
        FixedPointCodec::new(0.01, 0.0)
    }

    /// Encodes a physical value, saturating at the u16 range.
    pub fn encode(&self, value: f64) -> [u8; 2] {
        let raw = ((value - self.offset) / self.scale).round();
        let raw = raw.clamp(0.0, u16::MAX as f64) as u16;
        raw.to_be_bytes()
    }

    /// Decodes two bytes back into a physical value.
    pub fn decode(&self, bytes: [u8; 2]) -> f64 {
        u16::from_be_bytes(bytes) as f64 * self.scale + self.offset
    }

    /// Decodes from a payload at a byte offset; `None` if out of range.
    pub fn decode_at(&self, payload: &[u8], at: usize) -> Option<f64> {
        let hi = *payload.get(at)?;
        let lo = *payload.get(at + 1)?;
        Some(self.decode([hi, lo]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_basics() {
        let f = Frame::new(FrameId(0x123), vec![1, 2, 3]);
        assert_eq!(f.dlc(), 3);
        assert!(f.is_can_compatible());
        assert_eq!(f.to_string(), "0x123 [3B]");
    }

    #[test]
    fn oversize_id_or_payload_is_not_can_compatible() {
        let f = Frame::new(FrameId(0x800), vec![0; 4]);
        assert!(!f.is_can_compatible());
        let g = Frame::new(FrameId(0x100), vec![0; 9]);
        assert!(!g.is_can_compatible());
    }

    #[test]
    #[should_panic(expected = "64 bytes")]
    fn payload_limit_enforced() {
        let _ = Frame::new(FrameId(1), vec![0; 65]);
    }

    #[test]
    fn codec_round_trips_within_resolution() {
        let c = FixedPointCodec::speed();
        for v in [0.0, 13.89, 36.11, 55.55] {
            let decoded = c.decode(c.encode(v));
            assert!((decoded - v).abs() <= 0.005, "{v} → {decoded}");
        }
    }

    #[test]
    fn codec_saturates_out_of_range() {
        let c = FixedPointCodec::new(0.01, 0.0);
        assert_eq!(c.decode(c.encode(-5.0)), 0.0);
        assert_eq!(c.decode(c.encode(1e9)), u16::MAX as f64 * 0.01);
    }

    #[test]
    fn codec_with_offset() {
        let temp = FixedPointCodec::new(0.1, -40.0);
        let decoded = temp.decode(temp.encode(23.5));
        assert!((decoded - 23.5).abs() < 0.05);
    }

    #[test]
    fn decode_at_handles_bounds() {
        let c = FixedPointCodec::speed();
        let payload = c.encode(10.0);
        assert!(c.decode_at(&payload, 0).is_some());
        assert!(c.decode_at(&payload, 1).is_none());
        assert!(c.decode_at(&[], 0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_scale_rejected() {
        let _ = FixedPointCodec::new(0.0, 0.0);
    }
}

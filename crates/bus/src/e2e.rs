//! End-to-end communication protection.
//!
//! The watchdog supervises *execution*; signal paths across the network
//! need their own guard. This module implements AUTOSAR-E2E-profile-style
//! protection: each protected payload carries an alive counter and a
//! checksum over counter + data, letting the receiver classify every
//! reception as OK / repeated (stale) / wrong sequence (lost frames) /
//! corrupted. The EASIS gateway services motivate exactly this for
//! inter-domain traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Verdict of one protected reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E2eVerdict {
    /// Counter advanced by one, checksum valid.
    Ok,
    /// Same counter as the previous reception (stale repeat).
    Repeated,
    /// Counter advanced by more than the tolerance (frames lost).
    WrongSequence {
        /// Frames missing between the previous and this reception.
        lost: u8,
    },
    /// Checksum mismatch (payload corrupted in transit).
    Corrupted,
    /// First reception — no history to judge against.
    Initial,
}

impl E2eVerdict {
    /// `true` for verdicts a receiver treats as a communication fault.
    pub fn is_fault(self) -> bool {
        !matches!(self, E2eVerdict::Ok | E2eVerdict::Initial)
    }
}

impl fmt::Display for E2eVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            E2eVerdict::Ok => write!(f, "ok"),
            E2eVerdict::Repeated => write!(f, "repeated"),
            E2eVerdict::WrongSequence { lost } => write!(f, "wrong sequence ({lost} lost)"),
            E2eVerdict::Corrupted => write!(f, "corrupted"),
            E2eVerdict::Initial => write!(f, "initial"),
        }
    }
}

/// Simple 8-bit checksum over counter and data (stand-in for the CRC-8 of
/// E2E profile 1; collision behaviour is irrelevant to the experiments).
fn checksum(counter: u8, data: &[u8]) -> u8 {
    let mut c: u8 = counter ^ 0x5A;
    for &b in data {
        c = c.rotate_left(3) ^ b;
    }
    c
}

/// Sender-side protection state: wraps payloads with counter + checksum.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct E2eSender {
    counter: u8,
}

impl E2eSender {
    /// Creates a sender starting at counter zero.
    pub fn new() -> Self {
        E2eSender::default()
    }

    /// Wraps `data` into a protected payload: `[counter, checksum, data…]`.
    pub fn protect(&mut self, data: &[u8]) -> Vec<u8> {
        let counter = self.counter;
        self.counter = self.counter.wrapping_add(1);
        let mut out = Vec::with_capacity(data.len() + 2);
        out.push(counter);
        out.push(checksum(counter, data));
        out.extend_from_slice(data);
        out
    }
}

/// Receiver-side protection state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct E2eReceiver {
    last_counter: Option<u8>,
    faults: u64,
    receptions: u64,
    /// Consecutive repeats tolerated before `Repeated` counts as a fault.
    /// State-message buses (FlexRay static slots) legitimately retransmit
    /// the buffered payload until the sender updates it.
    repeat_tolerance: u8,
    consecutive_repeats: u8,
}

impl E2eReceiver {
    /// Creates a receiver with no history and zero repeat tolerance
    /// (event-message semantics: every repeat is a fault).
    pub fn new() -> Self {
        E2eReceiver::default()
    }

    /// Tolerates up to `n` consecutive repeats per fresh value
    /// (state-message semantics; set `n` = bus-cycle ratio − 1).
    pub fn with_repeat_tolerance(mut self, n: u8) -> Self {
        self.repeat_tolerance = n;
        self
    }

    /// Checks a protected payload; returns the verdict and, when the data
    /// is trustworthy (`Ok`/`Initial`), the unwrapped payload.
    pub fn check<'a>(&mut self, payload: &'a [u8]) -> (E2eVerdict, Option<&'a [u8]>) {
        self.receptions += 1;
        if payload.len() < 2 {
            self.faults += 1;
            return (E2eVerdict::Corrupted, None);
        }
        let counter = payload[0];
        let received_sum = payload[1];
        let data = &payload[2..];
        if checksum(counter, data) != received_sum {
            self.faults += 1;
            return (E2eVerdict::Corrupted, None);
        }
        let mut tolerated_repeat = false;
        let verdict = match self.last_counter {
            None => E2eVerdict::Initial,
            Some(last) => {
                let delta = counter.wrapping_sub(last);
                match delta {
                    0 => {
                        self.consecutive_repeats = self.consecutive_repeats.saturating_add(1);
                        tolerated_repeat = self.consecutive_repeats <= self.repeat_tolerance;
                        E2eVerdict::Repeated
                    }
                    1 => {
                        self.consecutive_repeats = 0;
                        E2eVerdict::Ok
                    }
                    d => {
                        self.consecutive_repeats = 0;
                        E2eVerdict::WrongSequence { lost: d - 1 }
                    }
                }
            }
        };
        self.last_counter = Some(counter);
        if verdict.is_fault() && !tolerated_repeat {
            self.faults += 1;
            (verdict, None)
        } else if verdict.is_fault() {
            // Tolerated repeat: stale, so no data, but no fault either.
            (verdict, None)
        } else {
            (verdict, Some(data))
        }
    }

    /// Communication faults seen so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total receptions checked.
    pub fn receptions(&self) -> u64 {
        self.receptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_stream_is_ok_after_initial() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        let first = tx.protect(&[1, 2]);
        assert_eq!(rx.check(&first).0, E2eVerdict::Initial);
        for i in 0..300u16 {
            let p = tx.protect(&[i as u8]);
            let (verdict, data) = rx.check(&p);
            assert_eq!(verdict, E2eVerdict::Ok, "at {i}");
            assert_eq!(data, Some(&[i as u8][..]));
        }
        assert_eq!(rx.faults(), 0);
    }

    #[test]
    fn repeated_frame_is_flagged_and_data_withheld() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        let p = tx.protect(&[7]);
        rx.check(&p);
        let (verdict, data) = rx.check(&p);
        assert_eq!(verdict, E2eVerdict::Repeated);
        assert_eq!(data, None);
        assert_eq!(rx.faults(), 1);
    }

    #[test]
    fn lost_frames_are_counted() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        rx.check(&tx.protect(&[0]));
        let _lost1 = tx.protect(&[1]);
        let _lost2 = tx.protect(&[2]);
        let (verdict, _) = rx.check(&tx.protect(&[3]));
        assert_eq!(verdict, E2eVerdict::WrongSequence { lost: 2 });
    }

    #[test]
    fn corruption_is_detected() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        let mut p = tx.protect(&[1, 2, 3]);
        p[3] ^= 0x40; // flip a data bit
        let (verdict, data) = rx.check(&p);
        assert_eq!(verdict, E2eVerdict::Corrupted);
        assert_eq!(data, None);
    }

    #[test]
    fn counter_corruption_is_detected_too() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        rx.check(&tx.protect(&[1]));
        let mut p = tx.protect(&[1]);
        p[0] = p[0].wrapping_add(5); // tampered counter, checksum now wrong
        assert_eq!(rx.check(&p).0, E2eVerdict::Corrupted);
    }

    #[test]
    fn counter_wraps_transparently() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new();
        for i in 0..600u32 {
            let (v, _) = rx.check(&tx.protect(&[i as u8]));
            if i > 0 {
                assert_eq!(v, E2eVerdict::Ok, "at {i}");
            }
        }
        assert_eq!(rx.faults(), 0);
    }

    #[test]
    fn short_payload_is_corrupted() {
        let mut rx = E2eReceiver::new();
        assert_eq!(rx.check(&[1]).0, E2eVerdict::Corrupted);
        assert_eq!(rx.check(&[]).0, E2eVerdict::Corrupted);
        assert_eq!(rx.receptions(), 2);
    }

    #[test]
    fn verdict_fault_classification() {
        assert!(!E2eVerdict::Ok.is_fault());
        assert!(!E2eVerdict::Initial.is_fault());
        assert!(E2eVerdict::Repeated.is_fault());
        assert!(E2eVerdict::Corrupted.is_fault());
        assert!(E2eVerdict::WrongSequence { lost: 1 }.is_fault());
        assert!(E2eVerdict::WrongSequence { lost: 3 }.to_string().contains("3 lost"));
    }
}

#[cfg(test)]
mod tolerance_tests {
    use super::*;

    #[test]
    fn state_message_repeats_within_tolerance_are_not_faults() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new().with_repeat_tolerance(1);
        // Sender updates every 2nd bus cycle: each payload seen twice.
        for i in 0..50u8 {
            let p = tx.protect(&[i]);
            rx.check(&p);
            let (verdict, data) = rx.check(&p); // retransmission
            assert_eq!(verdict, E2eVerdict::Repeated);
            assert_eq!(data, None, "stale data must still be withheld");
        }
        assert_eq!(rx.faults(), 0);
    }

    #[test]
    fn repeats_beyond_tolerance_are_faults() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new().with_repeat_tolerance(1);
        let p = tx.protect(&[7]);
        rx.check(&p); // initial
        rx.check(&p); // tolerated repeat
        rx.check(&p); // sender is dead: repeat #2 exceeds tolerance
        rx.check(&p);
        assert_eq!(rx.faults(), 2);
    }

    #[test]
    fn fresh_value_resets_the_repeat_budget() {
        let mut tx = E2eSender::new();
        let mut rx = E2eReceiver::new().with_repeat_tolerance(1);
        for _ in 0..10 {
            let p = tx.protect(&[1]);
            rx.check(&p);
            rx.check(&p);
        }
        assert_eq!(rx.faults(), 0);
    }
}

//! Domain gateway.
//!
//! The EASIS architecture validator includes "a gateway node, which
//! connects different vehicle domains of TCP/IP, CAN and FlexRay" (paper
//! §4.1). The gateway here is protocol-neutral store-and-forward routing at
//! frame granularity: a routing table maps ingress frame ids to egress
//! ports (optionally rewriting the id), with a fixed processing latency per
//! hop. The validator wires its ports to the CAN and FlexRay models.

use crate::frame::{Frame, FrameId};
use easis_sim::time::{Duration, Instant};
use std::collections::{BTreeMap, VecDeque};

/// A gateway egress port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

/// A frame scheduled for egress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedFrame {
    /// When the gateway finishes processing (ready for egress submission).
    pub ready_at: Instant,
    /// The egress port.
    pub port: PortId,
    /// The (possibly id-rewritten) frame.
    pub frame: Frame,
}

#[derive(Debug, Clone, Copy)]
struct Route {
    port: PortId,
    rewrite: Option<FrameId>,
}

/// The gateway node.
///
/// # Examples
///
/// ```
/// use easis_bus::frame::{Frame, FrameId};
/// use easis_bus::gateway::{Gateway, PortId};
/// use easis_sim::time::{Duration, Instant};
///
/// let mut gw = Gateway::new(Duration::from_micros(200));
/// gw.add_route(FrameId(0x100), PortId(1), None);
/// gw.ingress(Frame::new(FrameId(0x100), vec![1]), Instant::ZERO);
/// let out = gw.take_ready(Instant::from_millis(1));
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].port, PortId(1));
/// ```
#[derive(Debug, Clone)]
pub struct Gateway {
    latency: Duration,
    routes: BTreeMap<FrameId, Vec<Route>>,
    queue: VecDeque<RoutedFrame>,
    routed: u64,
    dropped: u64,
}

impl Gateway {
    /// Creates a gateway with the given per-hop processing latency.
    pub fn new(latency: Duration) -> Self {
        Gateway {
            latency,
            routes: BTreeMap::new(),
            queue: VecDeque::new(),
            routed: 0,
            dropped: 0,
        }
    }

    /// Adds a route: frames with `ingress_id` egress on `port`, optionally
    /// rewritten to `rewrite`. Multiple routes per id fan the frame out.
    pub fn add_route(&mut self, ingress_id: FrameId, port: PortId, rewrite: Option<FrameId>) {
        self.routes
            .entry(ingress_id)
            .or_default()
            .push(Route { port, rewrite });
    }

    /// Offers a received frame to the gateway at `now`. Unrouted frames are
    /// dropped (and counted).
    pub fn ingress(&mut self, frame: Frame, now: Instant) {
        match self.routes.get(&frame.id) {
            None => self.dropped += 1,
            Some(routes) => {
                for route in routes {
                    let mut out = frame.clone();
                    if let Some(id) = route.rewrite {
                        out = Frame::new(id, out.payload);
                    }
                    self.routed += 1;
                    self.queue.push_back(RoutedFrame {
                        ready_at: now + self.latency,
                        port: route.port,
                        frame: out,
                    });
                }
            }
        }
    }

    /// Drains the frames whose processing completed by `now`.
    pub fn take_ready(&mut self, now: Instant) -> Vec<RoutedFrame> {
        let mut out = Vec::new();
        while let Some(f) = self.queue.front() {
            if f.ready_at <= now {
                out.push(self.queue.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }

    /// Frames routed (counting fan-out copies).
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Frames dropped for lack of a route.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames queued but not yet ready.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn routes_with_latency() {
        let mut gw = Gateway::new(Duration::from_micros(200));
        gw.add_route(FrameId(0x10), PortId(0), None);
        gw.ingress(Frame::new(FrameId(0x10), vec![1]), t(100));
        assert!(gw.take_ready(t(250)).is_empty()); // still processing
        let out = gw.take_ready(t(300));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ready_at, t(300));
    }

    #[test]
    fn rewrite_changes_id_and_keeps_payload() {
        let mut gw = Gateway::new(Duration::ZERO);
        gw.add_route(FrameId(0x10), PortId(1), Some(FrameId(0x20)));
        gw.ingress(Frame::new(FrameId(0x10), vec![7, 8]), t(0));
        let out = gw.take_ready(t(0));
        assert_eq!(out[0].frame.id, FrameId(0x20));
        assert_eq!(out[0].frame.payload.as_ref(), &[7, 8]);
    }

    #[test]
    fn fan_out_to_multiple_ports() {
        let mut gw = Gateway::new(Duration::ZERO);
        gw.add_route(FrameId(0x10), PortId(0), None);
        gw.add_route(FrameId(0x10), PortId(1), Some(FrameId(0x99)));
        gw.ingress(Frame::new(FrameId(0x10), vec![1]), t(0));
        let out = gw.take_ready(t(0));
        assert_eq!(out.len(), 2);
        assert_eq!(gw.routed(), 2);
    }

    #[test]
    fn unrouted_frames_are_dropped_and_counted() {
        let mut gw = Gateway::new(Duration::ZERO);
        gw.ingress(Frame::new(FrameId(0x55), vec![]), t(0));
        assert!(gw.take_ready(t(100)).is_empty());
        assert_eq!(gw.dropped(), 1);
        assert_eq!(gw.routed(), 0);
    }

    #[test]
    fn backlog_reflects_pending_frames() {
        let mut gw = Gateway::new(Duration::from_micros(500));
        gw.add_route(FrameId(0x10), PortId(0), None);
        gw.ingress(Frame::new(FrameId(0x10), vec![]), t(0));
        gw.ingress(Frame::new(FrameId(0x10), vec![]), t(100));
        assert_eq!(gw.backlog(), 2);
        let _ = gw.take_ready(t(500));
        assert_eq!(gw.backlog(), 1);
    }
}

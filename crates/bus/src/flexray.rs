//! FlexRay static-segment simulation.
//!
//! The validator's time-triggered domain: a communication cycle of fixed
//! length divided into static slots, each statically assigned to one
//! sender/frame. A sender updates its slot buffer at any time; the bus
//! transmits the buffered value at every occurrence of the slot,
//! delivering with deterministic latency — the property that makes FlexRay
//! attractive for x-by-wire. Empty slots are simply skipped (null frames).

use crate::frame::{Frame, FrameId};
use easis_sim::time::{Duration, Instant};

/// Index of a static slot within the communication cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u16);

/// A frame received from the static segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDelivery {
    /// End of the slot in which the frame was transmitted.
    pub at: Instant,
    /// The slot.
    pub slot: SlotId,
    /// The transmitted frame.
    pub frame: Frame,
}

#[derive(Debug, Clone)]
struct Slot {
    assigned: FrameId,
    buffer: Option<Frame>,
}

/// The FlexRay static-segment model.
///
/// # Examples
///
/// ```
/// use easis_bus::flexray::{FlexRayBus, SlotId};
/// use easis_bus::frame::{Frame, FrameId};
/// use easis_sim::time::{Duration, Instant};
///
/// let mut bus = FlexRayBus::new(Duration::from_millis(5), Duration::from_micros(50), 4);
/// bus.assign_slot(SlotId(0), FrameId(0x10)).unwrap();
/// bus.submit(SlotId(0), Frame::new(FrameId(0x10), vec![7])).unwrap();
/// let out = bus.advance(Instant::from_millis(6));
/// assert_eq!(out.len(), 2); // slot 0 occurs in cycle 0 and cycle 1
/// ```
#[derive(Debug, Clone)]
pub struct FlexRayBus {
    cycle: Duration,
    slot_len: Duration,
    slots: Vec<Slot>,
    /// Next cycle index to process.
    next_cycle: u64,
    frames_sent: u64,
}

/// Errors of the FlexRay configuration/submission API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlexRayError {
    /// Slot index out of range.
    UnknownSlot,
    /// Slot not assigned to any frame id.
    UnassignedSlot,
    /// Frame id does not match the slot assignment.
    WrongFrame,
}

impl std::fmt::Display for FlexRayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlexRayError::UnknownSlot => "slot index out of range",
            FlexRayError::UnassignedSlot => "slot has no frame assignment",
            FlexRayError::WrongFrame => "frame id does not match slot assignment",
        })
    }
}

impl std::error::Error for FlexRayError {}

impl FlexRayBus {
    /// Creates a bus with `slots` static slots of `slot_len` each in a
    /// cycle of `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the slots do not fit into the cycle, or either length is
    /// zero.
    pub fn new(cycle: Duration, slot_len: Duration, slots: u16) -> Self {
        assert!(!cycle.is_zero() && !slot_len.is_zero(), "lengths must be positive");
        assert!(
            slot_len * slots as u64 <= cycle,
            "static segment exceeds the communication cycle"
        );
        FlexRayBus {
            cycle,
            slot_len,
            slots: (0..slots)
                .map(|_| Slot {
                    assigned: FrameId(0),
                    buffer: None,
                })
                .collect(),
            next_cycle: 0,
            frames_sent: 0,
        }
    }

    /// Assigns a frame id to a slot (the static schedule, configured at
    /// design time à la DECOMSYS).
    ///
    /// # Errors
    ///
    /// [`FlexRayError::UnknownSlot`] for out-of-range slots.
    pub fn assign_slot(&mut self, slot: SlotId, frame: FrameId) -> Result<(), FlexRayError> {
        let s = self
            .slots
            .get_mut(slot.0 as usize)
            .ok_or(FlexRayError::UnknownSlot)?;
        s.assigned = frame;
        s.buffer = None;
        Ok(())
    }

    /// Updates the transmit buffer of a slot.
    ///
    /// # Errors
    ///
    /// [`FlexRayError::UnknownSlot`] / [`FlexRayError::WrongFrame`] on
    /// schedule mismatches.
    pub fn submit(&mut self, slot: SlotId, frame: Frame) -> Result<(), FlexRayError> {
        let s = self
            .slots
            .get_mut(slot.0 as usize)
            .ok_or(FlexRayError::UnknownSlot)?;
        if s.assigned != frame.id {
            return Err(FlexRayError::WrongFrame);
        }
        s.buffer = Some(frame);
        Ok(())
    }

    /// End time of `slot` within cycle `cycle_idx`.
    fn slot_end(&self, cycle_idx: u64, slot: usize) -> Instant {
        Instant::ZERO + self.cycle * cycle_idx + self.slot_len * (slot as u64 + 1)
    }

    /// Advances the bus to `now`, emitting the deliveries of every complete
    /// slot since the last call. Buffers persist (a value transmits every
    /// cycle until overwritten), matching FlexRay state messages.
    pub fn advance(&mut self, now: Instant) -> Vec<SlotDelivery> {
        let mut out = Vec::new();
        loop {
            let cycle_idx = self.next_cycle;
            // Cycles are emitted whole, once their last static slot has
            // completed; a partially elapsed cycle is emitted on a later
            // advance call.
            let last_end = self.slot_end(cycle_idx, self.slots.len().saturating_sub(1));
            if self.slots.is_empty() || last_end > now {
                break;
            }
            for (i, slot) in self.slots.iter().enumerate() {
                if let Some(frame) = &slot.buffer {
                    out.push(SlotDelivery {
                        at: self.slot_end(cycle_idx, i),
                        slot: SlotId(i as u16),
                        frame: frame.clone(),
                    });
                    self.frames_sent += 1;
                }
            }
            self.next_cycle += 1;
        }
        out
    }

    /// Communication cycle length.
    pub fn cycle(&self) -> Duration {
        self.cycle
    }

    /// Number of static slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Frames transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Worst-case delivery latency of a freshly submitted value: one full
    /// cycle plus the slot position.
    pub fn worst_case_latency(&self, slot: SlotId) -> Duration {
        self.cycle + self.slot_len * (slot.0 as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> FlexRayBus {
        let mut b = FlexRayBus::new(Duration::from_millis(5), Duration::from_micros(100), 4);
        b.assign_slot(SlotId(0), FrameId(0x10)).unwrap();
        b.assign_slot(SlotId(1), FrameId(0x11)).unwrap();
        b
    }

    #[test]
    fn buffered_frame_transmits_every_cycle() {
        let mut b = bus();
        b.submit(SlotId(0), Frame::new(FrameId(0x10), vec![1])).unwrap();
        // Cycles 0..=3 complete by 16 ms (static segments end at 0.4, 5.4,
        // 10.4 and 15.4 ms).
        let out = b.advance(Instant::from_millis(16));
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].at, Instant::from_micros(100));
        assert_eq!(out[1].at, Instant::from_micros(5_100));
        assert_eq!(out[2].at, Instant::from_micros(10_100));
        assert_eq!(out[3].at, Instant::from_micros(15_100));
    }

    #[test]
    fn empty_slots_transmit_nothing() {
        let mut b = bus();
        assert!(b.advance(Instant::from_millis(20)).is_empty());
        assert_eq!(b.frames_sent(), 0);
    }

    #[test]
    fn slots_deliver_in_schedule_order() {
        let mut b = bus();
        b.submit(SlotId(1), Frame::new(FrameId(0x11), vec![2])).unwrap();
        b.submit(SlotId(0), Frame::new(FrameId(0x10), vec![1])).unwrap();
        let out = b.advance(Instant::from_millis(5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].slot, SlotId(0));
        assert_eq!(out[1].slot, SlotId(1));
        assert!(out[0].at < out[1].at);
    }

    #[test]
    fn submission_overwrites_buffer() {
        let mut b = bus();
        b.submit(SlotId(0), Frame::new(FrameId(0x10), vec![1])).unwrap();
        b.submit(SlotId(0), Frame::new(FrameId(0x10), vec![9])).unwrap();
        let out = b.advance(Instant::from_millis(5));
        assert_eq!(out[0].frame.payload.as_ref(), &[9]);
    }

    #[test]
    fn schedule_mismatches_are_rejected() {
        let mut b = bus();
        assert_eq!(
            b.submit(SlotId(9), Frame::new(FrameId(0x10), vec![])),
            Err(FlexRayError::UnknownSlot)
        );
        assert_eq!(
            b.submit(SlotId(0), Frame::new(FrameId(0x99), vec![])),
            Err(FlexRayError::WrongFrame)
        );
        assert_eq!(
            b.assign_slot(SlotId(9), FrameId(1)),
            Err(FlexRayError::UnknownSlot)
        );
    }

    #[test]
    fn worst_case_latency_is_cycle_plus_slot() {
        let b = bus();
        assert_eq!(
            b.worst_case_latency(SlotId(1)),
            Duration::from_millis(5) + Duration::from_micros(200)
        );
    }

    #[test]
    fn advance_is_incremental_across_calls() {
        let mut b = bus();
        b.submit(SlotId(0), Frame::new(FrameId(0x10), vec![1])).unwrap();
        assert_eq!(b.advance(Instant::from_millis(5)).len(), 1);
        assert_eq!(b.advance(Instant::from_millis(5)).len(), 0); // no re-emit
        assert_eq!(b.advance(Instant::from_millis(10)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the communication cycle")]
    fn oversubscribed_static_segment_rejected() {
        let _ = FlexRayBus::new(Duration::from_micros(100), Duration::from_micros(60), 2);
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(FlexRayError::WrongFrame.to_string().contains("frame id"));
    }
}

//! CAN bus simulation.
//!
//! Classic CAN at frame granularity: pending frames arbitrate by identifier
//! (lower wins, non-destructive), the bus is busy for the frame's wire time
//! (worst-case bit-stuffed length at the configured bit rate), and every
//! delivery is broadcast. This reproduces the latency/jitter environment
//! the EASIS validator's CAN domain exposes to the applications.

use crate::frame::Frame;
use easis_sim::time::{Duration, Instant};
use std::collections::VecDeque;

/// Identifies the submitting node (for tx accounting; CAN itself is
/// broadcast and unaddressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A frame delivered on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Delivery (end-of-frame) time.
    pub at: Instant,
    /// Submitting node.
    pub from: NodeId,
    /// The frame.
    pub frame: Frame,
}

#[derive(Debug, Clone)]
struct PendingTx {
    from: NodeId,
    frame: Frame,
    submitted: Instant,
}

/// The CAN bus model.
///
/// # Examples
///
/// ```
/// use easis_bus::can::{CanBus, NodeId};
/// use easis_bus::frame::{Frame, FrameId};
/// use easis_sim::time::Instant;
///
/// let mut bus = CanBus::new(500_000); // 500 kbit/s
/// bus.submit(NodeId(0), Frame::new(FrameId(0x100), vec![1, 2]), Instant::ZERO);
/// let deliveries = bus.poll(Instant::from_millis(1));
/// assert_eq!(deliveries.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CanBus {
    bitrate: u64,
    pending: Vec<PendingTx>,
    busy_until: Instant,
    delivered: VecDeque<Delivery>,
    frames_sent: u64,
    bits_sent: u64,
}

impl CanBus {
    /// Creates a bus with the given bit rate (bits per second).
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn new(bitrate: u64) -> Self {
        assert!(bitrate > 0, "bit rate must be positive");
        CanBus {
            bitrate,
            pending: Vec::new(),
            busy_until: Instant::ZERO,
            delivered: VecDeque::new(),
            frames_sent: 0,
            bits_sent: 0,
        }
    }

    /// Worst-case wire time of a frame: standard-format overhead (47 bits)
    /// plus data, with maximal bit stuffing on the stuffable region.
    pub fn frame_time(&self, frame: &Frame) -> Duration {
        let data_bits = 8 * frame.dlc() as u64;
        let stuffable = 34 + data_bits; // SOF..CRC field
        let stuffed = stuffable / 4; // worst case: one stuff bit per 4
        let total_bits = 47 + data_bits + stuffed;
        Duration::from_micros((total_bits * 1_000_000).div_ceil(self.bitrate))
    }

    /// Queues a frame for transmission at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not classic-CAN compatible.
    pub fn submit(&mut self, from: NodeId, frame: Frame, now: Instant) {
        assert!(frame.is_can_compatible(), "frame not CAN compatible");
        self.pending.push(PendingTx {
            from,
            frame,
            submitted: now,
        });
    }

    /// Advances the bus to `now`, arbitrating and transmitting pending
    /// frames. Returns the frames whose transmission completed by `now`.
    pub fn poll(&mut self, now: Instant) -> Vec<Delivery> {
        loop {
            if self.pending.is_empty() {
                break;
            }
            // The bus starts the next arbitration when it goes idle; only
            // frames already submitted by then participate.
            let start = self.busy_until;
            let contenders: Vec<usize> = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.submitted <= start)
                .map(|(i, _)| i)
                .collect();
            let winner_idx = if contenders.is_empty() {
                // Bus idle before anyone submitted: start at the earliest
                // submission instead.
                let earliest = self
                    .pending
                    .iter()
                    .map(|p| p.submitted)
                    .min()
                    .expect("pending non-empty");
                if earliest >= now {
                    break;
                }
                self.busy_until = earliest;
                continue;
            } else {
                contenders
                    .into_iter()
                    .min_by_key(|&i| (self.pending[i].frame.id, self.pending[i].submitted))
                    .expect("contenders non-empty")
            };
            let tx_time = self.frame_time(&self.pending[winner_idx].frame);
            let done_at = start + tx_time;
            if done_at > now {
                break; // transmission still in progress at `now`
            }
            let tx = self.pending.remove(winner_idx);
            self.busy_until = done_at;
            self.frames_sent += 1;
            self.bits_sent += tx_time.as_micros() * self.bitrate / 1_000_000;
            self.delivered.push_back(Delivery {
                at: done_at,
                from: tx.from,
                frame: tx.frame,
            });
        }
        let mut out = Vec::new();
        while let Some(d) = self.delivered.front() {
            if d.at <= now {
                out.push(self.delivered.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }

    /// Frames fully transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Approximate bus load over `elapsed`.
    pub fn load(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        let capacity = self.bitrate as f64 * elapsed.as_secs_f64();
        (self.bits_sent as f64 / capacity).min(1.0)
    }

    /// Number of frames waiting for the bus.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameId;

    fn t(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn single_frame_is_delivered_after_wire_time() {
        let mut bus = CanBus::new(500_000);
        let frame = Frame::new(FrameId(0x100), vec![0; 8]);
        let wire = bus.frame_time(&frame);
        assert!(wire >= Duration::from_micros(200), "got {wire}"); // ~111+ bits
        bus.submit(NodeId(0), frame, t(0));
        assert!(bus.poll(t(10)).is_empty()); // still transmitting
        let out = bus.poll(t(1_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, Instant::ZERO + wire);
    }

    #[test]
    fn arbitration_prefers_lower_identifier() {
        let mut bus = CanBus::new(500_000);
        bus.submit(NodeId(0), Frame::new(FrameId(0x300), vec![0; 2]), t(0));
        bus.submit(NodeId(1), Frame::new(FrameId(0x100), vec![0; 2]), t(0));
        bus.submit(NodeId(2), Frame::new(FrameId(0x200), vec![0; 2]), t(0));
        let out = bus.poll(t(10_000));
        let order: Vec<u16> = out.iter().map(|d| d.frame.id.0).collect();
        assert_eq!(order, vec![0x100, 0x200, 0x300]);
        // Deliveries are back-to-back, strictly increasing in time.
        assert!(out.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn late_high_priority_frame_waits_for_bus_idle() {
        let mut bus = CanBus::new(500_000);
        let low = Frame::new(FrameId(0x400), vec![0; 8]);
        let low_time = bus.frame_time(&low);
        bus.submit(NodeId(0), low, t(0));
        // High-priority frame arrives mid-transmission: CAN is
        // non-preemptive, so it transmits second.
        bus.submit(NodeId(1), Frame::new(FrameId(0x001), vec![0; 1]), t(50));
        let out = bus.poll(t(10_000));
        assert_eq!(out[0].frame.id, FrameId(0x400));
        assert_eq!(out[1].frame.id, FrameId(0x001));
        assert_eq!(out[0].at, Instant::ZERO + low_time);
    }

    #[test]
    fn poll_is_incremental() {
        let mut bus = CanBus::new(500_000);
        bus.submit(NodeId(0), Frame::new(FrameId(0x100), vec![0; 1]), t(0));
        bus.submit(NodeId(0), Frame::new(FrameId(0x101), vec![0; 1]), t(0));
        let first = bus.poll(t(150));
        assert_eq!(first.len(), 1);
        let second = bus.poll(t(400));
        assert_eq!(second.len(), 1);
        assert!(bus.poll(t(500)).is_empty());
        assert_eq!(bus.frames_sent(), 2);
    }

    #[test]
    fn load_reflects_traffic() {
        let mut bus = CanBus::new(500_000);
        for i in 0..10 {
            bus.submit(NodeId(0), Frame::new(FrameId(0x100), vec![0; 8]), t(i * 300));
        }
        let _ = bus.poll(t(10_000));
        let load = bus.load(Duration::from_millis(10));
        assert!(load > 0.1 && load < 0.5, "load {load}");
    }

    #[test]
    fn idle_bus_starts_at_submission_time() {
        let mut bus = CanBus::new(500_000);
        let frame = Frame::new(FrameId(0x100), vec![0; 1]);
        let wire = bus.frame_time(&frame);
        bus.submit(NodeId(0), frame, t(5_000));
        let out = bus.poll(t(20_000));
        assert_eq!(out[0].at, t(5_000) + wire);
    }

    #[test]
    #[should_panic(expected = "CAN compatible")]
    fn incompatible_frame_rejected() {
        let mut bus = CanBus::new(500_000);
        bus.submit(NodeId(0), Frame::new(FrameId(0x900), vec![0; 1]), t(0));
    }
}

//! # easis-bus — in-vehicle network simulation
//!
//! The EASIS architecture validator (paper §4.1) interconnects its nodes
//! over "TCP/IP, CAN and FlexRay" through a gateway node. This crate models
//! that communication substrate at frame granularity:
//!
//! * [`frame`] — frames and fixed-point signal packing;
//! * [`can`] — classic CAN with identifier arbitration and worst-case
//!   bit-stuffed wire times;
//! * [`flexray`] — the FlexRay static segment (TDMA slots, deterministic
//!   latency);
//! * [`gateway`] — store-and-forward routing between domains with id
//!   rewriting and fan-out;
//! * [`e2e`] — AUTOSAR-E2E-style end-to-end protection (alive counter +
//!   checksum) classifying receptions as ok/repeated/lost/corrupted.
//!
//! # Examples
//!
//! ```
//! use easis_bus::can::{CanBus, NodeId};
//! use easis_bus::frame::{FixedPointCodec, Frame, FrameId};
//! use easis_sim::time::Instant;
//!
//! // A sensor node broadcasts the vehicle speed on CAN.
//! let codec = FixedPointCodec::speed();
//! let mut bus = CanBus::new(500_000);
//! let payload = codec.encode(13.9).to_vec();
//! bus.submit(NodeId(0), Frame::new(FrameId(0x100), payload), Instant::ZERO);
//! let rx = bus.poll(Instant::from_millis(1));
//! let speed = codec.decode_at(&rx[0].frame.payload, 0).unwrap();
//! assert!((speed - 13.9).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod can;
pub mod e2e;
pub mod flexray;
pub mod frame;
pub mod gateway;

pub use can::{CanBus, Delivery, NodeId};
pub use e2e::{E2eReceiver, E2eSender, E2eVerdict};
pub use flexray::{FlexRayBus, FlexRayError, SlotDelivery, SlotId};
pub use frame::{FixedPointCodec, Frame, FrameId};
pub use gateway::{Gateway, PortId, RoutedFrame};

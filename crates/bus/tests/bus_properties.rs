//! Property-based tests of the network models: delivery completeness,
//! ordering, arbitration fairness bounds and codec round-trips.

use easis_bus::can::{CanBus, NodeId};
use easis_bus::flexray::{FlexRayBus, SlotId};
use easis_bus::frame::{FixedPointCodec, Frame, FrameId};
use easis_sim::time::{Duration, Instant};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted CAN frame is eventually delivered exactly once, and
    /// deliveries are non-decreasing in time.
    #[test]
    fn can_delivers_everything_exactly_once(
        frames in prop::collection::vec((1u16..0x7FF, 0usize..8, 0u64..5_000), 1..40),
    ) {
        let mut bus = CanBus::new(500_000);
        for &(id, dlc, at) in &frames {
            bus.submit(NodeId(0), Frame::new(FrameId(id), vec![0u8; dlc]), Instant::from_micros(at));
        }
        let out = bus.poll(Instant::from_millis(1_000)); // ample horizon
        prop_assert_eq!(out.len(), frames.len());
        for w in out.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        prop_assert_eq!(bus.pending_count(), 0);
    }

    /// When all frames are submitted simultaneously, CAN delivers them in
    /// strict identifier order (non-destructive arbitration).
    #[test]
    fn can_simultaneous_submissions_deliver_in_id_order(
        mut ids in prop::collection::btree_set(1u16..0x7FF, 2..20),
    ) {
        let mut bus = CanBus::new(500_000);
        for &id in &ids {
            bus.submit(NodeId(0), Frame::new(FrameId(id), vec![0u8; 4]), Instant::ZERO);
        }
        let out = bus.poll(Instant::from_millis(1_000));
        let delivered: Vec<u16> = out.iter().map(|d| d.frame.id.0).collect();
        let sorted: Vec<u16> = std::mem::take(&mut ids).into_iter().collect();
        prop_assert_eq!(delivered, sorted);
    }

    /// The wire time model is monotone in payload size.
    #[test]
    fn can_frame_time_monotone_in_dlc(dlc in 0usize..8) {
        let bus = CanBus::new(500_000);
        let shorter = bus.frame_time(&Frame::new(FrameId(1), vec![0u8; dlc]));
        let longer = bus.frame_time(&Frame::new(FrameId(1), vec![0u8; dlc + 1]));
        prop_assert!(longer > shorter);
    }

    /// FlexRay delivery latency of a buffered value never exceeds the
    /// worst-case bound (one cycle + slot position).
    #[test]
    fn flexray_latency_is_bounded(
        slot in 0u16..8,
        submit_ms in 0u64..50,
    ) {
        let mut bus = FlexRayBus::new(Duration::from_millis(5), Duration::from_micros(100), 8);
        bus.assign_slot(SlotId(slot), FrameId(0x10)).unwrap();
        // Advance to the submission time first, then buffer the frame.
        let submit_at = Instant::from_millis(submit_ms);
        let _ = bus.advance(submit_at);
        bus.submit(SlotId(slot), Frame::new(FrameId(0x10), vec![1])).unwrap();
        let out = bus.advance(Instant::from_millis(submit_ms + 20));
        prop_assert!(!out.is_empty(), "value never transmitted");
        let first = out[0].at;
        let bound = bus.worst_case_latency(SlotId(slot));
        prop_assert!(
            first.saturating_duration_since(submit_at) <= bound,
            "latency {} exceeds bound {}",
            first.saturating_duration_since(submit_at),
            bound
        );
    }

    /// Fixed-point codecs round-trip within one quantisation step over
    /// their encodable range.
    #[test]
    fn codec_round_trip_error_is_bounded(
        scale_thousandths in 1u32..1_000,
        offset in -100.0f64..100.0,
        value in 0.0f64..50.0,
    ) {
        let scale = scale_thousandths as f64 / 1000.0;
        let codec = FixedPointCodec::new(scale, offset);
        let v = value + offset; // keep inside the encodable window
        prop_assume!((v - offset) / scale <= u16::MAX as f64);
        let decoded = codec.decode(codec.encode(v));
        prop_assert!((decoded - v).abs() <= scale / 2.0 + 1e-9, "{v} → {decoded}");
    }
}

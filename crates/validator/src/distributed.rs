//! Distributed two-ECU validator.
//!
//! The paper's conclusions position the Software Watchdog for "distributed
//! in-vehicle embedded systems"; the architecture validator spreads the
//! ISS applications over several nodes and domains (§4.1). This assembly
//! does the same: a **speed node** (SafeSpeed + steer-by-wire, FlexRay
//! domain) and a **lane node** (SafeLane, CAN domain), each a full EASIS
//! stack with its own OSEK OS, Software Watchdog and Fault Management
//! Framework. Frame reception is interrupt-driven: the bus integration
//! fills each node's RX mailbox and raises a category-2 ISR that drains it
//! into the node's signal database.

use crate::node::{CentralNode, NodeConfig};
use crate::world::CentralWorld;
use easis_apps::{safelane, safespeed};
use easis_bus::can::{CanBus, NodeId};
use easis_bus::e2e::{E2eReceiver, E2eSender};
use easis_bus::flexray::{FlexRayBus, SlotId};
use easis_bus::frame::{FixedPointCodec, Frame, FrameId};
use easis_bus::gateway::{Gateway, PortId};
use easis_injection::injector::Injector;
use easis_osek::isr::IsrId;
use easis_sim::time::{Duration, Instant};
use easis_vehicle::plant::{Plant, SafetyOverlay};

const CAN_SPEED: FrameId = FrameId(0x100);
const CAN_LATERAL: FrameId = FrameId(0x110);
const CAN_LIMIT: FrameId = FrameId(0x120);
const CAN_CEILING: FrameId = FrameId(0x200);
const CAN_BRAKE: FrameId = FrameId(0x201);
const CAN_WARNING: FrameId = FrameId(0x210);
const FR_SPEED: FrameId = FrameId(0x10);
const FR_LIMIT: FrameId = FrameId(0x12);
const FR_CEILING: FrameId = FrameId(0x20);
const FR_BRAKE: FrameId = FrameId(0x21);
const PORT_CAN: PortId = PortId(0);
const PORT_FLEXRAY: PortId = PortId(1);

/// Summary of a distributed run.
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Final vehicle speed \[m/s\].
    pub final_speed: f64,
    /// Lane warning observed on the CAN domain.
    pub ldw_warned_on_bus: bool,
    /// Faults detected by the speed node's watchdog.
    pub speed_node_faults: usize,
    /// Faults detected by the lane node's watchdog.
    pub lane_node_faults: usize,
    /// RX interrupts taken by the speed node.
    pub speed_node_rx_irqs: u64,
    /// RX interrupts taken by the lane node.
    pub lane_node_rx_irqs: u64,
    /// End-to-end protection faults on the speed-signal path (lost,
    /// repeated or corrupted frames).
    pub e2e_faults: u64,
}

/// The two-ECU assembly.
pub struct DistributedValidator {
    /// SafeSpeed + steer-by-wire node (FlexRay domain).
    pub speed_node: CentralNode,
    /// SafeLane node (CAN domain).
    pub lane_node: CentralNode,
    speed_rx_isr: IsrId,
    lane_rx_isr: IsrId,
    plant: Plant,
    can: CanBus,
    flexray: FlexRayBus,
    gateway: Gateway,
    speed_codec: FixedPointCodec,
    lateral_codec: FixedPointCodec,
    pedal_codec: FixedPointCodec,
    /// E2E protection of the speed-signal path: the sensor node protects,
    /// the speed node's COM stack checks before the RX interrupt fires.
    e2e_tx: E2eSender,
    e2e_rx: E2eReceiver,
    /// Fault injection: number of upcoming speed frames to drop on the
    /// wire (models transient bus loss; E2E detects the gap).
    drop_speed_frames: u32,
    overlay: SafetyOverlay,
    ldw_on_bus: bool,
    speed_rx_irqs: u64,
    lane_rx_irqs: u64,
    now: Instant,
}

impl std::fmt::Debug for DistributedValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedValidator")
            .field("now", &self.now)
            .finish()
    }
}

/// Registers the RX ISR on a node: drains the world's mailbox into the
/// named signals using the given codecs.
fn add_rx_isr(
    node: &mut CentralNode,
    routes: Vec<(u16, &'static str, FixedPointCodec)>,
) -> IsrId {
    node.os.add_isr(
        "ComRxIsr",
        Duration::from_micros(15),
        move |w: &mut CentralWorld, ctx| {
            let now = ctx.now();
            let mailbox = std::mem::take(&mut w.rx_mailbox);
            for (raw_id, payload) in mailbox {
                for (id, signal, codec) in &routes {
                    if raw_id == *id {
                        if let Some(v) = codec.decode_at(&payload, 0) {
                            if let Some(sid) = w.signals.id_of(signal) {
                                w.signals.write(sid, v, now);
                            }
                        }
                    }
                }
            }
        },
    )
}

impl DistributedValidator {
    /// Builds the two-node motorway scenario.
    pub fn motorway(desired: f64, limit_low: f64, seed: u64) -> Self {
        let speed_codec = FixedPointCodec::speed();
        let lateral_codec = FixedPointCodec::new(0.001, -10.0);
        let pedal_codec = FixedPointCodec::new(0.0001, 0.0);

        let mut speed_node = CentralNode::build(NodeConfig {
            safelane: false,
            ..NodeConfig::default()
        });
        let speed_rx_isr = add_rx_isr(
            &mut speed_node,
            vec![
                (FR_SPEED.0, safespeed::signals::SPEED_MEASURED, speed_codec),
                (FR_LIMIT.0, safespeed::signals::SPEED_LIMIT, speed_codec),
            ],
        );
        speed_node.start();

        let mut lane_node = CentralNode::build(NodeConfig {
            safespeed: false,
            steer: false,
            light: true, // the body-domain light-control node shares the CAN ECU
            ..NodeConfig::default()
        });
        let lane_rx_isr = add_rx_isr(
            &mut lane_node,
            vec![(
                CAN_LATERAL.0,
                safelane::signals::LATERAL_MEASURED,
                lateral_codec,
            )],
        );
        lane_node.start();

        let mut flexray =
            FlexRayBus::new(Duration::from_millis(5), Duration::from_micros(100), 8);
        for (slot, frame) in [(0, FR_SPEED), (2, FR_LIMIT), (3, FR_CEILING), (4, FR_BRAKE)] {
            flexray.assign_slot(SlotId(slot), frame).expect("schedule fits");
        }
        let mut gateway = Gateway::new(Duration::from_micros(200));
        gateway.add_route(CAN_SPEED, PORT_FLEXRAY, Some(FR_SPEED));
        gateway.add_route(CAN_LIMIT, PORT_FLEXRAY, Some(FR_LIMIT));
        gateway.add_route(FR_CEILING, PORT_CAN, Some(CAN_CEILING));
        gateway.add_route(FR_BRAKE, PORT_CAN, Some(CAN_BRAKE));

        DistributedValidator {
            speed_node,
            lane_node,
            speed_rx_isr,
            lane_rx_isr,
            plant: Plant::motorway(desired, desired, limit_low, seed),
            can: CanBus::new(500_000),
            flexray,
            gateway,
            speed_codec,
            lateral_codec,
            pedal_codec,
            e2e_tx: E2eSender::new(),
            // FlexRay retransmits the 10 ms sensor value in two 5 ms cycles.
            e2e_rx: E2eReceiver::new().with_repeat_tolerance(1),
            drop_speed_frames: 0,
            overlay: SafetyOverlay::default(),
            ldw_on_bus: false,
            speed_rx_irqs: 0,
            lane_rx_irqs: 0,
            now: Instant::ZERO,
        }
    }

    fn step_1ms(&mut self, speed_injector: &mut Injector, lane_injector: &mut Injector) {
        let t = self.now + Duration::from_millis(1);
        self.plant.step(self.overlay, 0.001);

        // Sensor & environment nodes publish on CAN.
        let t_ms = t.as_millis();
        if t_ms.is_multiple_of(10) {
            let v = self.plant.measured_speed();
            let protected = self.e2e_tx.protect(&self.speed_codec.encode(v));
            if self.drop_speed_frames > 0 {
                // Injected bus loss: the frame never reaches the wire, but
                // the sender's alive counter has advanced — exactly what a
                // receiver-side E2E check is built to notice.
                self.drop_speed_frames -= 1;
            } else {
                self.can.submit(NodeId(1), Frame::new(CAN_SPEED, protected), t);
            }
        }
        if t_ms.is_multiple_of(20) {
            let v = self.plant.measured_lateral_offset();
            self.can.submit(
                NodeId(1),
                Frame::new(CAN_LATERAL, self.lateral_codec.encode(v).to_vec()),
                t,
            );
        }
        if t_ms.is_multiple_of(50) {
            let v = self.plant.current_limit();
            self.can
                .submit(NodeId(2), Frame::new(CAN_LIMIT, self.speed_codec.encode(v).to_vec()), t);
        }

        // CAN domain: the lane node and the actuator node listen here.
        for delivery in self.can.poll(t) {
            match delivery.frame.id {
                CAN_LATERAL => {
                    self.lane_node
                        .world
                        .rx_mailbox
                        .push((delivery.frame.id.0, delivery.frame.payload.to_vec()));
                    if self
                        .lane_node
                        .os
                        .trigger_isr(self.lane_rx_isr, &mut self.lane_node.world)
                        .is_ok()
                    {
                        self.lane_rx_irqs += 1;
                    }
                }
                CAN_CEILING => {
                    if let Some(v) = self.pedal_codec.decode_at(&delivery.frame.payload, 0) {
                        self.overlay.throttle_ceiling = v;
                    }
                }
                CAN_BRAKE => {
                    if let Some(v) = self.pedal_codec.decode_at(&delivery.frame.payload, 0) {
                        self.overlay.brake_request = v;
                    }
                }
                CAN_WARNING => {
                    if delivery.frame.payload.first() == Some(&1) {
                        self.ldw_on_bus = true;
                    }
                }
                _ => self.gateway.ingress(delivery.frame, delivery.at),
            }
        }

        // Gateway egress to both domains.
        for routed in self.gateway.take_ready(t) {
            match routed.port {
                PORT_FLEXRAY => {
                    let slot = if routed.frame.id == FR_SPEED { SlotId(0) } else { SlotId(2) };
                    let _ = self.flexray.submit(slot, routed.frame);
                }
                _ => self.can.submit(NodeId(9), routed.frame, routed.ready_at),
            }
        }

        // FlexRay domain: the speed node listens; command slots loop back
        // through the gateway.
        for delivery in self.flexray.advance(t) {
            match delivery.frame.id {
                FR_SPEED | FR_LIMIT => {
                    // The speed path is E2E-protected end to end; unwrap
                    // (and classify) before handing it to the ISR.
                    let payload = if delivery.frame.id == FR_SPEED {
                        let (_, data) = self.e2e_rx.check(&delivery.frame.payload);
                        match data {
                            Some(d) => d.to_vec(),
                            None => continue, // untrustworthy: keep last good value
                        }
                    } else {
                        delivery.frame.payload.to_vec()
                    };
                    self.speed_node
                        .world
                        .rx_mailbox
                        .push((delivery.frame.id.0, payload));
                    if self
                        .speed_node
                        .os
                        .trigger_isr(self.speed_rx_isr, &mut self.speed_node.world)
                        .is_ok()
                    {
                        self.speed_rx_irqs += 1;
                    }
                }
                FR_CEILING | FR_BRAKE => self.gateway.ingress(delivery.frame, delivery.at),
                _ => {}
            }
        }

        // Both ECUs compute.
        self.speed_node.run_until(t, speed_injector);
        self.lane_node.run_until(t, lane_injector);

        // Speed node transmit buffers (FlexRay command slots).
        let ceiling = read(&self.speed_node, safespeed::signals::CMD_THROTTLE_CEILING);
        let brake = read(&self.speed_node, safespeed::signals::CMD_BRAKE_REQUEST);
        let _ = self.flexray.submit(
            SlotId(3),
            Frame::new(FR_CEILING, self.pedal_codec.encode(ceiling).to_vec()),
        );
        let _ = self.flexray.submit(
            SlotId(4),
            Frame::new(FR_BRAKE, self.pedal_codec.encode(brake).to_vec()),
        );
        // Lane node transmits its warning on CAN every 20 ms.
        if t_ms % 20 == 5 {
            let warning = read(&self.lane_node, safelane::signals::CMD_WARNING) != 0.0;
            self.can.submit(
                NodeId(3),
                Frame::new(CAN_WARNING, vec![u8::from(warning)]),
                t,
            );
        }
        self.now = t;
    }

    /// Runs for `duration` with per-node injectors.
    pub fn run(
        &mut self,
        duration: Duration,
        speed_injector: &mut Injector,
        lane_injector: &mut Injector,
    ) -> DistributedReport {
        for _ in 0..duration.as_millis() {
            self.step_1ms(speed_injector, lane_injector);
        }
        DistributedReport {
            final_speed: self.plant.state().speed,
            ldw_warned_on_bus: self.ldw_on_bus,
            speed_node_faults: self.speed_node.world.fault_log.len(),
            lane_node_faults: self.lane_node.world.fault_log.len(),
            speed_node_rx_irqs: self.speed_rx_irqs,
            lane_node_rx_irqs: self.lane_rx_irqs,
            e2e_faults: self.e2e_rx.faults(),
        }
    }

    /// Injects bus loss: the next `n` speed frames are dropped on the wire.
    pub fn drop_next_speed_frames(&mut self, n: u32) {
        self.drop_speed_frames = n;
    }

    /// Mutable access to the plant (scenario scripting).
    pub fn plant_mut(&mut self) -> &mut Plant {
        &mut self.plant
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }
}

fn read(node: &CentralNode, name: &str) -> f64 {
    node.world
        .signals
        .id_of(name)
        .map(|id| node.world.signals.read(id))
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_injection::injector::{ErrorClass, Injection};
    use easis_vehicle::driver::{DriftEpisode, Driver};

    #[test]
    fn distributed_loop_limits_speed_and_routes_the_warning() {
        let mut rig = DistributedValidator::motorway(25.0, 13.9, 21);
        *rig.plant_mut().driver_mut() = Driver::new(25.0).with_drift(DriftEpisode {
            from_s: 10.0,
            to_s: 14.0,
            steer: 0.02,
        });
        let mut none_a = Injector::none();
        let mut none_b = Injector::none();
        let report = rig.run(Duration::from_secs(60), &mut none_a, &mut none_b);
        assert!(
            (report.final_speed - 13.9).abs() < 2.0,
            "final speed {}",
            report.final_speed
        );
        assert!(report.ldw_warned_on_bus, "warning must cross the CAN domain");
        assert_eq!(report.speed_node_faults, 0);
        assert_eq!(report.lane_node_faults, 0);
        assert!(report.speed_node_rx_irqs > 1_000);
        assert!(report.lane_node_rx_irqs > 1_000);
    }

    #[test]
    fn fault_on_lane_node_is_contained_to_that_ecu() {
        let mut rig = DistributedValidator::motorway(20.0, 27.8, 22);
        let target = rig.lane_node.runnable("LDW_process");
        let mut lane_injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: target },
            Instant::from_millis(2_000),
            Instant::from_millis(2_500),
        )]);
        let mut speed_injector = Injector::none();
        let report = rig.run(Duration::from_secs(5), &mut speed_injector, &mut lane_injector);
        assert!(report.lane_node_faults > 0, "lane node must detect");
        assert_eq!(report.speed_node_faults, 0, "speed node must stay clean");
        // The speed node's control loop kept working throughout.
        assert!((report.final_speed - 20.0).abs() < 2.0);
    }
}

#[cfg(test)]
mod e2e_tests {
    use super::*;

    #[test]
    fn healthy_speed_path_has_no_e2e_faults() {
        let mut rig = DistributedValidator::motorway(20.0, 27.8, 31);
        let mut a = Injector::none();
        let mut b = Injector::none();
        let report = rig.run(Duration::from_secs(3), &mut a, &mut b);
        assert_eq!(report.e2e_faults, 0);
        assert_eq!(report.speed_node_faults, 0);
    }

    #[test]
    fn dropped_frames_are_flagged_by_e2e_not_by_the_watchdog() {
        let mut rig = DistributedValidator::motorway(20.0, 27.8, 32);
        let mut a = Injector::none();
        let mut b = Injector::none();
        rig.run(Duration::from_secs(1), &mut a, &mut b);
        rig.drop_next_speed_frames(5);
        let report = rig.run(Duration::from_secs(2), &mut a, &mut b);
        // The gap shows up as a wrong-sequence E2E fault…
        assert!(report.e2e_faults >= 1, "e2e faults {}", report.e2e_faults);
        // …while execution supervision (rightly) stays quiet: the
        // runnables kept running on the last good value.
        assert_eq!(report.speed_node_faults, 0);
    }
}

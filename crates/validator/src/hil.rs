//! The full hardware-in-the-loop assembly.
//!
//! Reproduces the paper's architecture-validator topology (§4.1): a sensor
//! node and an environment node publish on **CAN**; the **gateway node**
//! routes the frames into the **FlexRay** static segment feeding the
//! **central node** (AutoBox), which runs the ISS applications plus the
//! dependability services; the central node's commands travel back through
//! the gateway to the **actuator node**, which drives the vehicle plant.
//! Everything advances on one deterministic clock in 1 ms macro steps.

use crate::node::{CentralNode, NodeConfig};
use easis_apps::{safelane, safespeed};
use easis_bus::can::{CanBus, NodeId};
use easis_bus::flexray::{FlexRayBus, SlotId};
use easis_bus::frame::{FixedPointCodec, Frame};
use easis_bus::gateway::{Gateway, PortId};
use easis_injection::injector::Injector;
use easis_sim::series::SeriesSet;
use easis_sim::time::{Duration, Instant};
use easis_vehicle::driver::DriftEpisode;
use easis_vehicle::plant::{Plant, SafetyOverlay};

/// CAN identifiers of the sensor/environment/actuator traffic.
mod ids {
    use easis_bus::frame::FrameId;
    /// Sensor node → vehicle speed.
    pub const CAN_SPEED: FrameId = FrameId(0x100);
    /// Sensor node → lateral offset.
    pub const CAN_LATERAL: FrameId = FrameId(0x110);
    /// Environment node → commanded speed limit.
    pub const CAN_LIMIT: FrameId = FrameId(0x120);
    /// Central node → throttle ceiling (via gateway back to CAN).
    pub const CAN_CEILING: FrameId = FrameId(0x200);
    /// Central node → brake request.
    pub const CAN_BRAKE: FrameId = FrameId(0x201);
    /// FlexRay frame ids of the forwarded sensor values.
    pub const FR_SPEED: FrameId = FrameId(0x10);
    /// FlexRay lateral frame.
    pub const FR_LATERAL: FrameId = FrameId(0x11);
    /// FlexRay limit frame.
    pub const FR_LIMIT: FrameId = FrameId(0x12);
    /// FlexRay command frames (central node transmit slots).
    pub const FR_CEILING: FrameId = FrameId(0x20);
    /// FlexRay brake command frame.
    pub const FR_BRAKE: FrameId = FrameId(0x21);
}

const PORT_CAN: PortId = PortId(0);
const PORT_FLEXRAY: PortId = PortId(1);

/// Summary of a HIL run.
#[derive(Debug, Clone, Default)]
pub struct HilReport {
    /// Final vehicle speed \[m/s\].
    pub final_speed: f64,
    /// Commanded limit at the final position \[m/s\].
    pub final_limit: f64,
    /// Peak overspeed beyond the commanded limit \[m/s\].
    pub peak_overspeed: f64,
    /// Overspeed exposure: ∫ max(0, speed − limit) dt \[m/s·s\] — the
    /// sustained-violation metric (a brief crossing transient contributes
    /// little, sailing through the zone a lot).
    pub overspeed_exposure: f64,
    /// Whether the lane-departure warning fired at least once.
    pub ldw_warned: bool,
    /// Watchdog faults detected during the run.
    pub faults_detected: usize,
    /// CAN frames transmitted.
    pub can_frames: u64,
    /// FlexRay frames transmitted.
    pub flexray_frames: u64,
}

/// The assembled validator: plant + buses + gateway + central node.
pub struct HilValidator {
    /// The central node (AutoBox).
    pub central: CentralNode,
    /// The vehicle plant (driving-dynamics + environment nodes).
    pub plant: Plant,
    can: CanBus,
    flexray: FlexRayBus,
    gateway: Gateway,
    speed_codec: FixedPointCodec,
    lateral_codec: FixedPointCodec,
    pedal_codec: FixedPointCodec,
    overlay: SafetyOverlay,
    /// Fail-safe reaction: when the SafeSpeed application is marked faulty
    /// the actuator node applies a limp-home overlay instead of the (stale)
    /// commands — the containment half of the paper's fault treatment.
    failsafe: bool,
    failsafe_engaged: bool,
    ldw_warned: bool,
    peak_overspeed: f64,
    overspeed_exposure: f64,
    now: Instant,
}

impl std::fmt::Debug for HilValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HilValidator")
            .field("now", &self.now)
            .finish()
    }
}

impl HilValidator {
    /// Builds the motorway scenario: the driver wants `desired` m/s, the
    /// commanded limit drops to `limit_low` at 500 m, and (optionally) a
    /// distraction episode drifts the car out of its lane.
    pub fn motorway(desired: f64, limit_low: f64, drift: Option<DriftEpisode>, seed: u64) -> Self {
        let mut central = CentralNode::build(NodeConfig::default());
        central.start();
        let mut plant = Plant::motorway(desired, desired, limit_low, seed);
        if let Some(d) = drift {
            *plant.driver_mut() = easis_vehicle::driver::Driver::new(desired).with_drift(d);
        }

        let can = CanBus::new(500_000);
        let mut flexray =
            FlexRayBus::new(Duration::from_millis(5), Duration::from_micros(100), 8);
        for (slot, frame) in [
            (0, ids::FR_SPEED),
            (1, ids::FR_LATERAL),
            (2, ids::FR_LIMIT),
            (3, ids::FR_CEILING),
            (4, ids::FR_BRAKE),
        ] {
            flexray.assign_slot(SlotId(slot), frame).expect("schedule fits");
        }
        let mut gateway = Gateway::new(Duration::from_micros(200));
        gateway.add_route(ids::CAN_SPEED, PORT_FLEXRAY, Some(ids::FR_SPEED));
        gateway.add_route(ids::CAN_LATERAL, PORT_FLEXRAY, Some(ids::FR_LATERAL));
        gateway.add_route(ids::CAN_LIMIT, PORT_FLEXRAY, Some(ids::FR_LIMIT));
        gateway.add_route(ids::FR_CEILING, PORT_CAN, Some(ids::CAN_CEILING));
        gateway.add_route(ids::FR_BRAKE, PORT_CAN, Some(ids::CAN_BRAKE));

        HilValidator {
            central,
            plant,
            can,
            flexray,
            gateway,
            speed_codec: FixedPointCodec::speed(),
            lateral_codec: FixedPointCodec::new(0.001, -10.0),
            pedal_codec: FixedPointCodec::new(0.0001, 0.0),
            overlay: SafetyOverlay::default(),
            failsafe: false,
            failsafe_engaged: false,
            ldw_warned: false,
            peak_overspeed: 0.0,
            overspeed_exposure: 0.0,
            now: Instant::ZERO,
        }
    }

    /// Enables the fail-safe actuator reaction: a faulty SafeSpeed verdict
    /// makes the actuator node ignore the (stale) commands and apply a
    /// limp-home overlay (closed throttle, gentle braking).
    pub fn with_failsafe(mut self) -> Self {
        self.failsafe = true;
        self
    }

    /// `true` once the fail-safe reaction has engaged at least once.
    pub fn failsafe_engaged(&self) -> bool {
        self.failsafe_engaged
    }

    /// Current peak overspeed beyond the commanded limit \[m/s\].
    pub fn peak_overspeed(&self) -> f64 {
        self.peak_overspeed
    }

    /// Advances the whole rig by one millisecond.
    fn step_1ms(&mut self, injector: &mut Injector) {
        let t = self.now + Duration::from_millis(1);
        // 1. Plant integrates under the current actuator overlay.
        self.plant.step(self.overlay, 0.001);

        // 2. Sensor & environment nodes publish on CAN at their periods.
        let t_ms = t.as_millis();
        if t_ms.is_multiple_of(10) {
            let speed = self.plant.measured_speed();
            let payload = self.speed_codec.encode(speed).to_vec();
            self.can.submit(NodeId(1), Frame::new(ids::CAN_SPEED, payload), t);
        }
        if t_ms.is_multiple_of(20) {
            let lat = self.plant.measured_lateral_offset();
            let payload = self.lateral_codec.encode(lat).to_vec();
            self.can.submit(NodeId(1), Frame::new(ids::CAN_LATERAL, payload), t);
        }
        if t_ms.is_multiple_of(50) {
            let limit = self.plant.current_limit();
            let payload = self.speed_codec.encode(limit).to_vec();
            self.can.submit(NodeId(2), Frame::new(ids::CAN_LIMIT, payload), t);
        }

        // 3. CAN deliveries: actuator node consumes commands, the gateway
        //    ingests domain-crossing frames.
        for delivery in self.can.poll(t) {
            match delivery.frame.id {
                ids::CAN_CEILING => {
                    if let Some(v) = self.pedal_codec.decode_at(&delivery.frame.payload, 0) {
                        self.overlay.throttle_ceiling = v;
                    }
                }
                ids::CAN_BRAKE => {
                    if let Some(v) = self.pedal_codec.decode_at(&delivery.frame.payload, 0) {
                        self.overlay.brake_request = v;
                    }
                }
                _ => self.gateway.ingress(delivery.frame, delivery.at),
            }
        }

        // 4. Gateway egress.
        for routed in self.gateway.take_ready(t) {
            match routed.port {
                PORT_FLEXRAY => {
                    let slot = match routed.frame.id {
                        ids::FR_SPEED => SlotId(0),
                        ids::FR_LATERAL => SlotId(1),
                        _ => SlotId(2),
                    };
                    let _ = self.flexray.submit(slot, routed.frame);
                }
                _ => self.can.submit(NodeId(9), routed.frame, routed.ready_at),
            }
        }

        // 5. FlexRay static slots: central node receives sensor values,
        //    the gateway picks up the command slots.
        for delivery in self.flexray.advance(t) {
            match delivery.frame.id {
                ids::FR_SPEED => self.write_central(safespeed::signals::SPEED_MEASURED, {
                    self.speed_codec.decode_at(&delivery.frame.payload, 0)
                }),
                ids::FR_LIMIT => self.write_central(safespeed::signals::SPEED_LIMIT, {
                    self.speed_codec.decode_at(&delivery.frame.payload, 0)
                }),
                ids::FR_LATERAL => self.write_central(safelane::signals::LATERAL_MEASURED, {
                    self.lateral_codec.decode_at(&delivery.frame.payload, 0)
                }),
                ids::FR_CEILING | ids::FR_BRAKE => {
                    self.gateway.ingress(delivery.frame, delivery.at)
                }
                _ => {}
            }
        }

        // 6. The central node computes (OS slice + injector tick).
        self.central.run_until(t, injector);

        // 7. Central transmit buffers: publish the command signals into the
        //    FlexRay command slots (state messages, re-sent every cycle).
        let ceiling = self.read_central(safespeed::signals::CMD_THROTTLE_CEILING);
        let brake = self.read_central(safespeed::signals::CMD_BRAKE_REQUEST);
        let _ = self.flexray.submit(
            SlotId(3),
            Frame::new(ids::FR_CEILING, self.pedal_codec.encode(ceiling).to_vec()),
        );
        let _ = self.flexray.submit(
            SlotId(4),
            Frame::new(ids::FR_BRAKE, self.pedal_codec.encode(brake).to_vec()),
        );

        // 8. Fail-safe reaction of the actuator node.
        if self.failsafe {
            let app = self.central.apps["SafeSpeed"];
            if self.central.world.watchdog.app_state(app).is_faulty() {
                self.failsafe_engaged = true;
                self.overlay = SafetyOverlay {
                    throttle_ceiling: 0.0,
                    brake_request: 0.25,
                };
            }
        }

        // 9. Run metrics.
        let over = self.plant.state().speed - self.plant.current_limit();
        if over > self.peak_overspeed {
            self.peak_overspeed = over;
        }
        self.overspeed_exposure += over.max(0.0) * 0.001;
        if self.read_central(safelane::signals::CMD_WARNING) != 0.0 {
            self.ldw_warned = true;
        }
        self.now = t;
    }

    fn write_central(&mut self, name: &str, value: Option<f64>) {
        if let Some(v) = value {
            let now = self.now;
            if let Some(id) = self.central.world.signals.id_of(name) {
                self.central.world.signals.write(id, v, now);
            }
        }
    }

    fn read_central(&self, name: &str) -> f64 {
        self.central
            .world
            .signals
            .id_of(name)
            .map(|id| self.central.world.signals.read(id))
            .unwrap_or(0.0)
    }

    /// Runs the rig for `duration`, optionally sampling a time series
    /// every 10 ms.
    pub fn run(
        &mut self,
        duration: Duration,
        injector: &mut Injector,
        mut series: Option<&mut SeriesSet>,
    ) -> HilReport {
        let steps = duration.as_millis();
        for i in 0..steps {
            self.step_1ms(injector);
            if i % 10 == 0 {
                if let Some(s) = series.as_deref_mut() {
                    s.push(self.now, "vehicle speed [m/s]", self.plant.state().speed);
                    s.push(self.now, "speed limit [m/s]", self.plant.current_limit());
                    s.push(
                        self.now,
                        "brake request",
                        self.read_central(safespeed::signals::CMD_BRAKE_REQUEST),
                    );
                    s.push(
                        self.now,
                        "lateral offset [m]",
                        self.plant.state().lateral_offset,
                    );
                }
            }
        }
        HilReport {
            final_speed: self.plant.state().speed,
            final_limit: self.plant.current_limit(),
            peak_overspeed: self.peak_overspeed,
            overspeed_exposure: self.overspeed_exposure,
            ldw_warned: self.ldw_warned,
            faults_detected: self.central.world.fault_log.len(),
            can_frames: self.can.frames_sent(),
            flexray_frames: self.flexray.frames_sent(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safespeed_limits_the_vehicle_over_the_buses() {
        let mut hil = HilValidator::motorway(25.0, 13.9, None, 7);
        let mut injector = Injector::none();
        let report = hil.run(Duration::from_secs(90), &mut injector, None);
        // The car passed the 500 m limit drop and was pulled down to it.
        assert!(hil.plant.state().position > 500.0);
        assert_eq!(report.final_limit, 13.9);
        assert!(
            (report.final_speed - 13.9).abs() < 1.5,
            "final speed {}",
            report.final_speed
        );
        // No spurious watchdog faults in the healthy closed loop.
        assert_eq!(report.faults_detected, 0);
        assert!(report.can_frames > 1000);
        assert!(report.flexray_frames > 1000);
    }

    #[test]
    fn drifting_driver_triggers_the_lane_warning() {
        let drift = DriftEpisode {
            from_s: 5.0,
            to_s: 9.0,
            steer: 0.02,
        };
        let mut hil = HilValidator::motorway(22.0, 27.8, Some(drift), 11);
        let mut injector = Injector::none();
        let report = hil.run(Duration::from_secs(12), &mut injector, None);
        assert!(report.ldw_warned, "lane departure warning expected");
    }

    #[test]
    fn injected_fault_is_detected_while_driving() {
        use easis_injection::injector::{ErrorClass, Injection};
        let mut hil = HilValidator::motorway(25.0, 13.9, None, 3);
        let target = hil.central.runnable("SAFE_CC_process");
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: target },
            Instant::from_millis(2_000),
            Instant::from_millis(4_000),
        )]);
        let report = hil.run(Duration::from_secs(6), &mut injector, None);
        assert!(report.faults_detected > 0);
    }
}

//! Process-wide switches and metrics of the hyperperiod macro-stepping
//! engine (tail fast-forward, see [`crate::node::CentralNode::run_span`]).
//!
//! The engine itself lives on each [`crate::node::CentralNode`]; this
//! module holds the two pieces that are process-global by nature:
//!
//! * the `EASIS_FASTFORWARD` opt-out knob, read once (`=0` disables
//!   macro-stepping for every node that has no explicit
//!   [`crate::node::CentralNode::set_fastforward`] override);
//! * the aggregate metrics the campaign bench reads. Campaign workers are
//!   short-lived threads with thread-local node pools, so per-node
//!   counters die with their worker — every `run_span` folds its counters
//!   into these relaxed atomics instead, and the bench brackets a
//!   measured run with [`reset_metrics`]/[`metrics`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();

/// Whether macro-stepping is enabled by default for this process:
/// `EASIS_FASTFORWARD=0` opts out, anything else — including unset —
/// leaves it on. Read once on first use; a per-node
/// [`crate::node::CentralNode::set_fastforward`] override wins either way.
pub fn env_default() -> bool {
    *ENV_DEFAULT
        .get_or_init(|| std::env::var("EASIS_FASTFORWARD").map_or(true, |value| value != "0"))
}

static FFWD_US: AtomicU64 = AtomicU64::new(0);
static SPAN_US: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CERTIFICATIONS: AtomicU64 = AtomicU64::new(0);

/// Aggregate macro-stepping counters since the last [`reset_metrics`],
/// summed over every node and worker thread of the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FfwdMetrics {
    /// Simulated microseconds skipped by certified hyperperiod jumps.
    pub fastforwarded_us: u64,
    /// Simulated microseconds `run_span` was asked to cover in total
    /// (fast-forwarded or not — the fraction's denominator).
    pub span_us: u64,
    /// Certification attempts rejected plus rotation-boundary crossings
    /// simulated event-by-event.
    pub fallbacks: u64,
    /// Successful certifications (the guard hyperperiod reproduced the
    /// derived delta exactly).
    pub certifications: u64,
}

impl FfwdMetrics {
    /// Fraction of the spanned simulated time that was fast-forwarded,
    /// in `[0, 1]`; zero when nothing was spanned.
    pub fn span_fraction(&self) -> f64 {
        if self.span_us == 0 {
            0.0
        } else {
            self.fastforwarded_us as f64 / self.span_us as f64
        }
    }
}

/// Reads the aggregate counters.
pub fn metrics() -> FfwdMetrics {
    FfwdMetrics {
        fastforwarded_us: FFWD_US.load(Ordering::Relaxed),
        span_us: SPAN_US.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        certifications: CERTIFICATIONS.load(Ordering::Relaxed),
    }
}

/// Zeroes the aggregate counters (bench bracketing).
pub fn reset_metrics() {
    FFWD_US.store(0, Ordering::Relaxed);
    SPAN_US.store(0, Ordering::Relaxed);
    FALLBACKS.store(0, Ordering::Relaxed);
    CERTIFICATIONS.store(0, Ordering::Relaxed);
}

/// Folds one `run_span`'s counters into the process aggregate.
pub(crate) fn record(fastforwarded_us: u64, span_us: u64, fallbacks: u64, certifications: u64) {
    FFWD_US.fetch_add(fastforwarded_us, Ordering::Relaxed);
    SPAN_US.fetch_add(span_us, Ordering::Relaxed);
    FALLBACKS.fetch_add(fallbacks, Ordering::Relaxed);
    CERTIFICATIONS.fetch_add(certifications, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate_and_reset() {
        reset_metrics();
        record(10, 40, 1, 2);
        record(30, 60, 0, 1);
        let m = metrics();
        assert_eq!(m.fastforwarded_us, 40);
        assert_eq!(m.span_us, 100);
        assert_eq!(m.fallbacks, 1);
        assert_eq!(m.certifications, 3);
        assert!((m.span_fraction() - 0.4).abs() < 1e-12);
        reset_metrics();
        assert_eq!(metrics(), FfwdMetrics::default());
        assert_eq!(FfwdMetrics::default().span_fraction(), 0.0);
    }
}

//! Central-node assembly.
//!
//! [`CentralNode`] builds the validator's central node (the paper's
//! AutoBox) from application bundles: OSEK tasks and alarms per
//! application, the Software Watchdog as the highest-priority periodic
//! task, a lowest-priority hardware-watchdog kick task, the deployment
//! mapping, the derived fault hypotheses, and the baseline task-granularity
//! monitors. The watchdog task's effect also plays the integration role of
//! §4.4: it drains the watchdog outboxes into the Fault Management
//! Framework and executes the decided treatments.

use crate::world::CentralWorld;
use easis_apps::bundle::AppBundle;
use easis_apps::{lightctl, safelane, safespeed, steer};
use easis_baselines::task_monitors::{DeadlineMonitor, ExecutionTimeMonitor};
use easis_fmf::dtc::FreezeFrame;
use easis_fmf::framework::{FaultManagementFramework, FmfCycleDelta, FmfSnapshot};
use easis_fmf::policy::{Treatment, TreatmentAction, TreatmentPolicy};
use easis_fmf::record::SeverityMap;
use easis_injection::injector::Injector;
use easis_osek::alarm::{AlarmAction, AlarmId};
use easis_osek::kernel::{CycleProgram, CycleScratch, Os};
use easis_osek::plan::{EffectCtx, Plan, TaskBody};
use easis_osek::task::{Priority, TaskConfig, TaskId};
use easis_rte::assembly::SequencedTask;
use easis_rte::mapping::{ApplicationId, SystemMapping};
use easis_rte::runnable::{RunnableId, RunnableRegistry};
use easis_rte::signal::{SignalDb, SignalDbSnapshot, SignalId};
use easis_sim::snap::RestoreStats;
use easis_sim::time::{Duration, Instant};
use easis_baselines::task_monitors::TaskMonitorStats;
use easis_osek::kernel::OsSnapshot;
use easis_rte::control::RunnableControls;
use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis_watchdog::report::{DetectedFault, RunnableCounters, StateChange};
use easis_watchdog::{CycleReport, SoftwareWatchdog, WatchdogCycleDelta, WatchdogSnapshot};
use easis_baselines::hw_watchdog::HardwareWatchdog;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a central node build.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Host the SafeSpeed application.
    pub safespeed: bool,
    /// Host the SafeLane application.
    pub safelane: bool,
    /// Host the steer-by-wire path.
    pub steer: bool,
    /// Host the light-control function (50 ms body-domain task). Off by
    /// default to keep the paper's evaluation workload; the distributed
    /// rig enables it on its CAN-domain node.
    pub light: bool,
    /// Watchdog cycle (check period).
    pub wd_period: Duration,
    /// TSI error threshold.
    pub error_threshold: u32,
    /// Multiplies every monitoring window (1 = one task period per
    /// window; 4 reproduces the Figure 6 configuration where aliveness
    /// reporting is slower than PFC).
    pub window_factor: u32,
    /// Keep monitoring runnables of faulty tasks (ablation switch).
    pub keep_monitoring_faulty: bool,
    /// Hardware-watchdog timeout.
    pub hw_timeout: Duration,
    /// Execution budget per task = nominal cost × this factor.
    pub budget_factor: u64,
    /// Fault-treatment policy.
    pub policy: TreatmentPolicy,
    /// Global CPU-speed scale in ppm: every compute cost is multiplied by
    /// this (1_000_000 = the AutoBox reference; ~9_600_000 models the
    /// outlook's 50 MHz S12XF running the same code).
    pub cpu_scale_ppm: u64,
    /// Flight-recorder capacity of the node's observability sink.
    /// `None` (the default) leaves the sink disabled: every recording
    /// call is a no-op and the node's behaviour — including the campaign
    /// goldens — is bit-identical to a build without observability.
    pub obs_capacity: Option<usize>,
    /// Record the kernel's execution trace (dispatches, alarms,
    /// activations …). On by default — figures and tests read it. Campaign
    /// trials switch it off: they extract outcomes from the fault log and
    /// monitor stats only, and every trace record costs three small heap
    /// allocations on the dispatch path, which dominates trial wall-clock
    /// at campaign scale.
    pub kernel_trace: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            safespeed: true,
            safelane: true,
            steer: true,
            light: false,
            wd_period: Duration::from_millis(10),
            error_threshold: 3,
            window_factor: 1,
            keep_monitoring_faulty: false,
            hw_timeout: Duration::from_millis(50),
            budget_factor: 8,
            policy: TreatmentPolicy::default(),
            cpu_scale_ppm: 1_000_000,
            obs_capacity: None,
            kernel_trace: true,
        }
    }
}

impl NodeConfig {
    /// A node hosting only SafeSpeed (the paper's evaluation setup).
    pub fn safespeed_only() -> Self {
        NodeConfig {
            safelane: false,
            steer: false,
            ..NodeConfig::default()
        }
    }
}

/// Hyperperiods above this bound disable macro-stepping structurally: a
/// jump engine that rarely fits a whole hyperperiod into a span cannot pay
/// for its certification overhead, and the closed-form deltas would live on
/// transients that never settle within one certification window.
const FFWD_MAX_HYPERPERIOD: Duration = Duration::from_millis(1_000);

/// The kernel timer wheel's bottom-level rotation span is `2^24` µs
/// (~16.8 s). A macro-jump must never cross such a boundary: the wheel's
/// overflow cascade redistributes entries there, a physical transition the
/// closed-form delta does not model. The engine caps every jump just short
/// of the next boundary and simulates the crossing hyperperiod
/// event-by-event instead.
const WHEEL_ROTATION_BITS: u32 = 24;

/// A campaign-shared node recipe: the node configuration plus the
/// watchdog configuration compiled from it exactly once (IdIndex
/// interning, flow-table bitsets, hypothesis derivation), frozen behind an
/// `Arc`. A campaign compiles one blueprint and every worker builds (and
/// then pools) its node from it, so no trial recompiles what the plan
/// already determines.
#[derive(Debug, Clone)]
pub struct NodeBlueprint {
    config: NodeConfig,
    watchdog_config: Arc<easis_watchdog::config::WatchdogConfig>,
    /// Process-unique stamp identifying this compilation, used as the
    /// pool key so a pooled world is never revived for a *different*
    /// blueprint that happens to reuse a freed allocation address.
    stamp: u64,
}

static BLUEPRINT_STAMP: AtomicU64 = AtomicU64::new(0);

impl NodeBlueprint {
    /// Compiles the blueprint for a node configuration by running one
    /// full assembly and freezing its compiled watchdog configuration.
    pub fn compile(config: NodeConfig) -> Self {
        let node = CentralNode::build(config.clone());
        NodeBlueprint {
            config,
            watchdog_config: node.world.watchdog.shared_config(),
            stamp: BLUEPRINT_STAMP.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The node configuration the blueprint was compiled from.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The shared compiled watchdog configuration.
    pub fn watchdog_config(&self) -> &Arc<easis_watchdog::config::WatchdogConfig> {
        &self.watchdog_config
    }

    /// The process-unique compilation stamp (pool cache key).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }
}

/// The assembled central node.
pub struct CentralNode {
    /// The OSEK OS instance.
    pub os: Os<CentralWorld>,
    /// The shared world (signals, services, controls).
    pub world: CentralWorld,
    /// Runnable registry (naming authority).
    pub registry: RunnableRegistry,
    /// Task id per task name.
    pub tasks: BTreeMap<String, TaskId>,
    /// Activation alarm per task name.
    pub alarms: BTreeMap<String, AlarmId>,
    /// Application id per app name.
    pub apps: BTreeMap<String, ApplicationId>,
    /// OSEKTime-style deadline monitor (baseline).
    pub deadline_monitor: DeadlineMonitor,
    /// AUTOSAR-style execution-time monitor (baseline).
    pub exec_monitor: ExecutionTimeMonitor,
    /// Activation period per app task name.
    pub periods: BTreeMap<String, Duration>,
    config: NodeConfig,
    started: bool,
    /// Monotone fork counter: bumped every time the node is restored from
    /// a checkpoint. Component-level delta bookkeeping lives inside each
    /// component (see `easis_sim::snap`); this counter identifies the
    /// node's fork generation for probes and diagnostics.
    epoch: u64,
    /// The hyperperiod macro-stepping engine (see [`CentralNode::run_span`]).
    ffwd: FfwdState,
}

impl std::fmt::Debug for CentralNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralNode")
            .field("tasks", &self.tasks)
            .field("apps", &self.apps)
            .finish()
    }
}

impl CentralNode {
    /// Builds the node from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if no application is enabled, or if an enabled application's
    /// period is not compatible with the watchdog period (one must divide
    /// the other).
    pub fn build(config: NodeConfig) -> Self {
        Self::build_inner(config, None)
    }

    /// Builds the node from a campaign blueprint, reusing its compiled
    /// watchdog configuration instead of recompiling it.
    pub fn build_from_blueprint(blueprint: &NodeBlueprint) -> Self {
        Self::build_inner(
            blueprint.config.clone(),
            Some(Arc::clone(&blueprint.watchdog_config)),
        )
    }

    fn build_inner(
        config: NodeConfig,
        shared: Option<Arc<easis_watchdog::config::WatchdogConfig>>,
    ) -> Self {
        let mut signals = SignalDb::new();
        let mut registry = RunnableRegistry::new();
        let mut bundles: Vec<AppBundle<CentralWorld>> = Vec::new();
        if config.steer {
            bundles.push(steer::build(&mut signals, &mut registry));
        }
        if config.safespeed {
            bundles.push(safespeed::build(&mut signals, &mut registry));
        }
        if config.safelane {
            bundles.push(safelane::build(&mut signals, &mut registry));
        }
        if config.light {
            bundles.push(lightctl::build(&mut signals, &mut registry));
        }
        assert!(!bundles.is_empty(), "enable at least one application");

        let mut os: Os<CentralWorld> = if config.kernel_trace {
            Os::new()
        } else {
            Os::with_disabled_trace()
        };
        let mut mapping = SystemMapping::new();
        let mut tasks = BTreeMap::new();
        let mut alarms = BTreeMap::new();
        let mut apps = BTreeMap::new();
        let mut periods: BTreeMap<String, Duration> = BTreeMap::new();
        let mut app_alarm_raw: BTreeMap<ApplicationId, u32> = BTreeMap::new();
        let mut app_prefixes: BTreeMap<ApplicationId, &'static str> = BTreeMap::new();
        let mut wd_builder = WatchdogConfig::builder(config.wd_period)
            .error_threshold(config.error_threshold)
            .deactivate_on_faulty_task(!config.keep_monitoring_faulty);

        for bundle in bundles {
            let app = mapping.add_application(bundle.app_name);
            apps.insert(bundle.app_name.to_string(), app);
            app_prefixes.insert(app, bundle.signal_prefix);
            let ids = bundle.runnable_ids();
            let cpu_scale = config.cpu_scale_ppm as f64 / 1_000_000.0;
            let nominal: Duration = ids
                .iter()
                .map(|&r| registry.spec(r).expect("registered").nominal_cost())
                .fold(Duration::ZERO, |a, b| a + b)
                .mul_f64(cpu_scale);
            let task_cfg = TaskConfig::new(bundle.task_name, bundle.priority)
                .with_deadline(bundle.period)
                .with_execution_budget(nominal * config.budget_factor)
                .with_max_activations(2);
            let body = SequencedTask::fixed(bundle.task_name, bundle.runnables);
            let task = os.add_task(task_cfg, body);
            tasks.insert(bundle.task_name.to_string(), task);
            mapping.assign_task(task, app);
            for &rid in &ids {
                mapping.assign_runnable(rid, task);
            }
            let alarm = os.add_alarm(
                format!("{}Cycle", bundle.task_name),
                AlarmAction::ActivateTask(task),
            );
            alarms.insert(bundle.task_name.to_string(), alarm);
            periods.insert(bundle.task_name.to_string(), bundle.period);
            app_alarm_raw.insert(app, alarm.0);

            // Fault hypothesis per runnable, derived from the period ratio.
            let (cycles, expected) = Self::hypothesis_shape(
                bundle.period,
                config.wd_period,
                config.window_factor,
            );
            for &rid in &ids {
                wd_builder = wd_builder.monitor(
                    RunnableHypothesis::new(rid)
                        .alive_at_least(expected, cycles)
                        .arrive_at_most(expected, cycles),
                );
            }
            // Program-flow table: the bundle's nominal cycle.
            let entry = ids[0];
            wd_builder = wd_builder.allow_entry(entry);
            for w in ids.windows(2) {
                wd_builder = wd_builder.allow_flow(w[0], w[1]);
            }
            if ids.len() > 1 {
                wd_builder = wd_builder.allow_flow(*ids.last().expect("non-empty"), entry);
            }
        }

        let obs = match config.obs_capacity {
            Some(capacity) => easis_obs::ObsSink::enabled(capacity),
            None => easis_obs::ObsSink::disabled(),
        };
        // The compile step (IdIndex interning, bitset flow table) is the
        // expensive part of the builder; a blueprint-backed build skips it
        // entirely and shares the frozen artifact.
        let wd_config = match shared {
            Some(compiled) => compiled,
            None => Arc::new(wd_builder.mapping(mapping.clone()).build()),
        };
        let mut watchdog = SoftwareWatchdog::from_shared(wd_config);
        watchdog.attach_obs(obs.clone());
        let mut fmf = FaultManagementFramework::new(SeverityMap::default(), config.policy);
        fmf.attach_obs(obs.clone());
        let mut world = CentralWorld::new(signals, watchdog, fmf, config.hw_timeout);
        world.obs = obs;
        world
            .controls
            .set_global_exec_scale_ppm(config.cpu_scale_ppm);
        world.app_alarms = app_alarm_raw;
        world.app_signal_prefixes = app_prefixes;
        world.initial_signals = world.signals.iter().map(|(_, _, v)| v).collect();

        // The watchdog task: highest priority, runs the cycle check and the
        // FMF integration. Freeze-frame condition names are interned (and
        // their signal ids resolved) once here, so a faulty cycle clones
        // `Arc`s instead of allocating strings.
        let wd_cost =
            Duration::from_micros(60).mul_f64(config.cpu_scale_ppm as f64 / 1_000_000.0);
        let freeze_conditions: Vec<(Arc<str>, SignalId)> = ["speed_measured", "lateral_measured"]
            .iter()
            .filter_map(|&name| world.signals.id_of(name).map(|id| (Arc::from(name), id)))
            .collect();
        let freeze = FreezeFrame {
            conditions: freeze_conditions
                .iter()
                .map(|(name, _)| (Arc::clone(name), 0.0))
                .collect(),
        };
        let wd_task = os.add_task(
            TaskConfig::new("SoftwareWatchdogTask", Priority(10)),
            WatchdogTaskBody {
                cost: wd_cost,
                freeze_conditions,
                freeze,
                report: CycleReport::default(),
                faults: Vec::new(),
                changes: Vec::new(),
                actions: Vec::new(),
            },
        );
        let wd_alarm = os.add_alarm("WatchdogCycle", AlarmAction::ActivateTask(wd_task));
        alarms.insert("SoftwareWatchdogTask".to_string(), wd_alarm);
        tasks.insert("SoftwareWatchdogTask".to_string(), wd_task);

        // Hardware-watchdog kick task: lowest priority, so a saturated CPU
        // starves it and the hardware watchdog fires.
        let kick_task = os.add_task(TaskConfig::new("HwKickTask", Priority(0)), HwKickBody);
        let kick_alarm = os.add_alarm("HwKickCycle", AlarmAction::ActivateTask(kick_task));
        alarms.insert("HwKickTask".to_string(), kick_alarm);
        tasks.insert("HwKickTask".to_string(), kick_task);

        let deadline_monitor = DeadlineMonitor::new();
        let exec_monitor = ExecutionTimeMonitor::new();
        os.add_observer(deadline_monitor.clone());
        os.add_observer(exec_monitor.clone());

        let hyperperiod = Self::hyperperiod_of(&config, &periods);

        CentralNode {
            os,
            world,
            registry,
            tasks,
            alarms,
            apps,
            deadline_monitor,
            exec_monitor,
            periods,
            config,
            started: false,
            epoch: 0,
            ffwd: FfwdState::new(hyperperiod),
        }
    }

    /// The steady-state hyperperiod of this configuration: the least
    /// common multiple of every activation period (app tasks, the
    /// watchdog cycle, the hardware-watchdog kick cycle) *and* every
    /// fault-hypothesis window span (`cycles × wd_period`). After one
    /// hyperperiod, every alarm is back on the same grid offset and every
    /// monitoring window is back at the same phase, so all monitor
    /// counters land on the values they started from — the precondition
    /// for the content-equality classes of the macro-step derivation.
    /// Returns [`Duration::ZERO`] (macro-stepping structurally disabled)
    /// when the lcm exceeds [`FFWD_MAX_HYPERPERIOD`].
    fn hyperperiod_of(config: &NodeConfig, periods: &BTreeMap<String, Duration>) -> Duration {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 { a } else { gcd(b, a % b) }
        }
        fn lcm(a: u128, b: u64) -> u128 {
            a / gcd(a as u64, b) as u128 * b as u128
        }
        let wd_us = config.wd_period.as_micros();
        // The HwKick task's cycle is fixed at 10 ms in `start()`.
        let mut h_us: u128 = lcm(wd_us as u128, 10_000);
        for &period in periods.values() {
            let (cycles, _) = Self::hypothesis_shape(period, config.wd_period, config.window_factor);
            h_us = lcm(h_us, period.as_micros());
            h_us = lcm(h_us, cycles as u64 * wd_us);
            if h_us > FFWD_MAX_HYPERPERIOD.as_micros() as u128 {
                return Duration::ZERO;
            }
        }
        Duration::from_micros(h_us as u64)
    }

    /// Derives the (cycles, expected indications) shape of a fault
    /// hypothesis from the task period, the watchdog period and the window
    /// factor.
    fn hypothesis_shape(period: Duration, wd: Duration, factor: u32) -> (u32, u32) {
        let factor = factor.max(1);
        if period >= wd {
            assert!(
                (period % wd).is_zero(),
                "task period must be a multiple of the watchdog period"
            );
            let ratio = (period / wd) as u32;
            (ratio * factor, factor)
        } else {
            assert!(
                (wd % period).is_zero(),
                "watchdog period must be a multiple of the task period"
            );
            let per_cycle = (wd / period) as u32;
            (factor, per_cycle * factor)
        }
    }

    fn execute_treatment(
        w: &mut CentralWorld,
        ctx: &mut easis_osek::plan::EffectCtx<'_, CentralWorld>,
        treatment: &Treatment,
    ) {
        match treatment {
            Treatment::RestartTask(task) => {
                w.watchdog.acknowledge_task_recovered(*task);
            }
            Treatment::RestartApplication(app) => {
                let tasks = w.watchdog.config().mapping().tasks_of_app(*app);
                for task in tasks {
                    w.watchdog.acknowledge_task_recovered(task);
                }
                // A restarted component starts from initialised state.
                if let Some(&prefix) = w.app_signal_prefixes.get(app) {
                    w.reset_signals_with_prefix(prefix, ctx.now());
                }
            }
            Treatment::TerminateApplication(app) => {
                // Stop the activation source and leave supervision off.
                // Direct synchronous cancel on the kernel core; a second
                // terminate of an already-stopped app is a no-op, so the
                // AlarmNotInUse error is intentionally ignored (the legacy
                // request path swallowed it the same way).
                if let Some(&raw) = w.app_alarms.get(app) {
                    let _ = ctx.cancel_alarm(raw);
                }
            }
            Treatment::EcuReset => {
                let tasks: Vec<TaskId> =
                    w.watchdog.config().mapping().tasks().collect();
                for task in tasks {
                    w.watchdog.acknowledge_task_recovered(task);
                }
                let prefixes: Vec<&'static str> =
                    w.app_signal_prefixes.values().copied().collect();
                for prefix in prefixes {
                    w.reset_signals_with_prefix(prefix, ctx.now());
                }
                w.fmf.reset_budgets();
                w.ecu_resets += 1;
                ctx.trace("fmf", "ecu_reset", "software reset executed");
            }
        }
    }

    /// Starts the OS and arms all cyclic alarms. The watchdog's first
    /// check fires after one watchdog period and app tasks are offset by
    /// half their period, so every monitoring window — including the very
    /// first — contains exactly the expected number of activations
    /// ("checked shortly before the next period begins").
    pub fn start(&mut self) {
        assert!(!self.started, "node started twice");
        self.started = true;
        self.os.start(&mut self.world);
        let wd_period = self.config.wd_period;
        for (name, &alarm) in &self.alarms {
            let (offset, cycle) = match name.as_str() {
                "SoftwareWatchdogTask" => (wd_period, wd_period),
                "HwKickTask" => (Duration::from_millis(1), Duration::from_millis(10)),
                task_name => {
                    let period = self.periods[task_name];
                    (period / 2, period)
                }
            };
            self.os
                .set_rel_alarm(alarm, offset, Some(cycle))
                .expect("alarms arm exactly once");
        }
    }

    /// Resets the node to its just-built state so it can be `start()`ed
    /// again: kernel back to cold (tasks suspended, alarms disarmed,
    /// timers empty, trace cleared), world back to the initial snapshot,
    /// baseline monitor statistics cleared. The expensive structure —
    /// task bodies, the runnable registry, the compiled watchdog
    /// configuration — is kept. Campaigns pool one node per worker and
    /// reset it between trials; [`crate::scenario`]'s reset≡fresh property
    /// test pins that a trial on a reset node is byte-identical to one on
    /// a fresh build.
    pub fn reset(&mut self) {
        self.os.reset();
        self.world.reset();
        self.deadline_monitor.reset();
        self.exec_monitor.reset();
        self.started = false;
        self.ffwd.backoff = 0;
        self.ffwd.injection_armed = false;
        self.ffwd.stats = FfwdStats::default();
    }

    /// Captures a deterministic checkpoint of the started node — see
    /// [`CentralNode::snapshot_into`]. Allocates a fresh snapshot; pooled
    /// campaign workers keep one [`NodeSnapshot`] per slot and reuse it.
    ///
    /// # Panics
    ///
    /// Panics if the node was never started, or if an in-flight plan holds
    /// a boxed `Step::Effect` closure (node bodies only use `EffectRef`
    /// tokens, so this cannot happen for nodes built here).
    pub fn snapshot(&mut self) -> NodeSnapshot {
        let mut snap = NodeSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures a deterministic checkpoint of the started node into
    /// `snap`: kernel (tasks, timers, plans, alarms, trace), world
    /// (signals, controls, watchdog, FMF, hardware watchdog, logs) and the
    /// baseline-monitor statistics. The snapshot's buffer capacity is
    /// retained, so re-capturing into a warm snapshot is allocation-free
    /// in the steady state. Each component records the capture lineage
    /// (`easis_sim::snap`), making a later [`CentralNode::restore_from`]
    /// O(dirty). See [`NodeSnapshot`] for what is deliberately excluded.
    ///
    /// # Panics
    ///
    /// See [`CentralNode::snapshot`].
    pub fn snapshot_into(&mut self, snap: &mut NodeSnapshot) {
        assert!(self.started, "snapshot a started node");
        self.os.snapshot_into(&mut snap.os);
        self.world.signals.snapshot_into(&mut snap.signals);
        snap.controls.clone_from(&self.world.controls);
        self.world.watchdog.snapshot_into(&mut snap.watchdog);
        self.world.fmf.snapshot_into(&mut snap.fmf);
        snap.hw_watchdog.clone_from(&self.world.hw_watchdog);
        snap.treatments.clone_from(&self.world.treatments);
        snap.ecu_resets = self.world.ecu_resets;
        snap.fault_log.clear();
        snap.fault_log.extend_from_slice(&self.world.fault_log);
        snap.rx_mailbox.clone_from(&self.world.rx_mailbox);
        snap.deadline_stats = self.deadline_monitor.stats();
        snap.exec_stats = self.exec_monitor.stats();
    }

    /// Restores the node to a previously captured checkpoint. Only valid
    /// on the node the snapshot was taken from or a structurally identical
    /// one (same blueprint); the kernel layer asserts the table shapes it
    /// can check cheaply. Vector state is written back with `clone_from`,
    /// so a pooled node's capacity survives repeated restores.
    ///
    /// When the node still descends from `snap` (nothing reset the
    /// lineage in between), each component copies only the regions
    /// written since the capture — restoring a clean tail touches a small
    /// fraction of the node. The returned [`RestoreStats`] aggregate the
    /// per-component region counts; [`RestoreStats::dirty_fraction`]
    /// feeds the campaign bench's `restore_dirty_fraction` probe.
    pub fn restore_from(&mut self, snap: &NodeSnapshot) -> RestoreStats {
        let mut stats = self.os.restore_from(&snap.os);
        stats.absorb(self.world.signals.restore_from(&snap.signals));
        stats.absorb(self.world.watchdog.restore_from(&snap.watchdog));
        stats.absorb(self.world.fmf.restore_from(&snap.fmf));
        // World-level always-copied regions. Controls flip on every
        // injection window, the hardware watchdog is kicked every cycle,
        // and the logs/monitor stats are cheap when clean (empty
        // `clone_from`s) — none earns per-write stamping.
        stats.region(true);
        self.world.controls.clone_from(&snap.controls);
        stats.region(true);
        self.world.hw_watchdog.clone_from(&snap.hw_watchdog);
        stats.region(true);
        self.world.treatments.clone_from(&snap.treatments);
        self.world.fault_log.clear();
        self.world.fault_log.extend_from_slice(&snap.fault_log);
        self.world.rx_mailbox.clone_from(&snap.rx_mailbox);
        self.world.ecu_resets = snap.ecu_resets;
        stats.region(true);
        self.deadline_monitor.restore_stats(&snap.deadline_stats);
        self.exec_monitor.restore_stats(&snap.exec_stats);
        self.started = true;
        self.epoch += 1;
        stats
    }

    /// The node's fork generation: how many times it has been restored
    /// from a checkpoint.
    pub fn fork_epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs the kernel until `end` in one uninterrupted span, without any
    /// injector ticking. The forked campaign runner
    /// ([`crate::scenario::run_plan`]) uses this between injection
    /// boundaries, where `Injector::tick` is provably a no-op (nothing to
    /// arm or disarm): chopping the simulation at exactly the arm/disarm
    /// instants reproduces the per-millisecond tick loop of
    /// [`CentralNode::run_until`] bit-identically while skipping ~1500
    /// redundant kernel re-entries per trial.
    ///
    /// When the span is eligible ([`CentralNode::set_fastforward`],
    /// `EASIS_FASTFORWARD`, no armed injector window, no enabled traces),
    /// the hyperperiod macro-stepping engine first certifies the
    /// steady-state schedule — simulate one hyperperiod, derive its
    /// closed-form state delta, simulate a guard hyperperiod and require
    /// the exact same delta — and then fast-forwards whole hyperperiod
    /// multiples in O(1) per hyperperiod. Certification is *exact*: any
    /// state that the delta cannot express (pending fault logs, DTC aging,
    /// stale timers, a wheel rotation boundary) rejects the derivation and
    /// the engine falls back to event-level simulation, so the final node
    /// state is bit-identical to a never-fast-forwarded run.
    pub fn run_span(&mut self, end: Instant) {
        assert!(self.started, "call start() first");
        let span = end.saturating_duration_since(self.os.now());
        let before = self.ffwd.stats;
        if self.ffwd_eligible() {
            self.macro_step_span(end);
        }
        // The residue below one hyperperiod — or the entire span when
        // macro-stepping stood down — runs at event level.
        self.os.run_until(end, &mut self.world);
        self.ffwd.stats.span += span;
        let after = self.ffwd.stats;
        crate::ffwd::record(
            (after.fastforwarded - before.fastforwarded).as_micros(),
            span.as_micros(),
            after.fallbacks - before.fallbacks,
            after.certifications - before.certifications,
        );
    }

    /// Whether [`CentralNode::run_span`] may macro-step right now. The
    /// divergence triggers stand the engine down entirely: an armed
    /// injector window mutates runnable controls at millisecond ticks the
    /// closed-form delta cannot see, and enabled kernel/observability
    /// traces append per-event records whose absence would be observable.
    fn ffwd_eligible(&self) -> bool {
        !self.ffwd.h.is_zero()
            && self
                .ffwd
                .enabled_override
                .unwrap_or_else(crate::ffwd::env_default)
            && !self.ffwd.injection_armed
            && !self.os.trace().is_enabled()
            && !self.world.obs.is_enabled()
    }

    /// Captures a certification image (cheaper than a [`NodeSnapshot`]:
    /// append-only logs as lengths, monotone monitor statistics as
    /// totals — warm captures allocate nothing).
    fn ffwd_image(&self, img: &mut FfwdImage) {
        self.os.image_into(&mut img.os);
        self.world.signals.image_into(&mut img.signals);
        self.world.watchdog.image_into(&mut img.watchdog);
        self.world.fmf.image_into(&mut img.fmf);
        match &mut img.hw_watchdog {
            Some(hw) => hw.clone_from(&self.world.hw_watchdog),
            slot => *slot = Some(self.world.hw_watchdog.clone()),
        }
        img.treatments = self.world.treatments.len();
        img.fault_log = self.world.fault_log.len();
        img.rx_mailbox = self.world.rx_mailbox.len();
        img.ecu_resets = self.world.ecu_resets;
        img.deadline = (
            self.deadline_monitor.total(),
            self.deadline_monitor.first_detection(),
        );
        img.exec = (self.exec_monitor.total(), self.exec_monitor.first_detection());
    }

    /// The macro-stepping loop behind [`CentralNode::run_span`]:
    /// certify the per-hyperperiod delta against a guard hyperperiod, then
    /// apply it `k` at a time, capped at the next wheel rotation boundary.
    /// A rejected certification backs off exponentially (1→2→4→8
    /// hyperperiods simulated plainly, plus a one-millisecond sampling
    /// phase nudge) so transients — DTC aging, pending cancellations,
    /// post-treatment settling, samples phased onto a task-period
    /// boundary — drain before the retry.
    fn macro_step_span(&mut self, end: Instant) {
        // The engine state moves out while the node simulates (`run_until`
        // needs `&mut self.os`/`&mut self.world` alongside the buffers).
        let mut ff = std::mem::take(&mut self.ffwd);
        let h = ff.h;
        'certify: loop {
            if ff.backoff > 0 {
                // Exponential penalty plus a one-millisecond phase nudge: a
                // rejected sample may sit exactly on a task-period boundary
                // where the kernel is mid-dispatch every hyperperiod (ready
                // bits set, a task running), and h-spaced resampling would
                // stay on that phase forever. The nudge walks the sampler
                // off such instants; the nudged span itself runs at event
                // level, so it costs time, never exactness.
                let penalty = h * ff.backoff as u64 + Duration::from_millis(1);
                let penalty_end = (self.os.now() + penalty).min(end);
                self.os.run_until(penalty_end, &mut self.world);
            }
            let now = self.os.now();
            // Certification consumes two hyperperiods; anything shorter
            // than three leaves no jump to pay for it.
            if end.saturating_duration_since(now) < h * 3 {
                break;
            }
            self.ffwd_image(&mut ff.img_a);
            self.os.run_until(now + h, &mut self.world);
            self.ffwd_image(&mut ff.img_b);
            if !derive_node_delta(&ff.img_a, &ff.img_b, h, &mut ff.scratch, &mut ff.delta) {
                ff.stats.fallbacks += 1;
                ff.backoff = (ff.backoff * 2).clamp(1, 8);
                continue;
            }
            // Guard hyperperiod: the event stream must reproduce the exact
            // same delta before any closed-form application is trusted.
            self.os.run_until(now + h * 2, &mut self.world);
            self.ffwd_image(&mut ff.img_a);
            if !derive_node_delta(&ff.img_b, &ff.img_a, h, &mut ff.scratch, &mut ff.delta2)
                || ff.delta != ff.delta2
            {
                ff.stats.fallbacks += 1;
                ff.backoff = (ff.backoff * 2).clamp(1, 8);
                continue;
            }
            ff.backoff = 0;
            ff.stats.certifications += 1;
            loop {
                let now = self.os.now();
                let k_span = end.saturating_duration_since(now) / h;
                if k_span == 0 {
                    break 'certify;
                }
                let now_us = now.as_micros();
                let boundary = ((now_us >> WHEEL_ROTATION_BITS) + 1) << WHEEL_ROTATION_BITS;
                let k_rot = (boundary - now_us - 1) / h.as_micros();
                // An aging DTC memory bounds the jump to just short of
                // the earliest age-out: removal is a discrete event the
                // delta cannot express, so it must be simulated — and it
                // *changes* the steady state, so the delta must then be
                // re-certified (unlike a rotation crossing, which only
                // relabels the wheel).
                let k_age = match ff.delta.fmf.dtc_aging {
                    0 => u64::MAX,
                    inc => match self.world.fmf.pending_cycles_to_age_out() {
                        Some(remaining) => (remaining.saturating_sub(1) as u64) / inc as u64,
                        None => 0,
                    },
                };
                let k = k_span.min(k_rot).min(k_age);
                if k == 0 {
                    ff.stats.fallbacks += 1;
                    self.os.run_until(now + h, &mut self.world);
                    if k_age == 0 {
                        continue 'certify;
                    }
                    // The rotation boundary falls inside the next
                    // hyperperiod: it was crossed event-by-event just now
                    // (the overflow cascade must physically run); the
                    // delta is still valid, resume jumping.
                    continue;
                }
                self.os.apply_cycle_program(&ff.delta.os, k);
                self.world.watchdog.apply_cycle_delta(&ff.delta.watchdog, k);
                self.world
                    .signals
                    .shift_updated_at(&ff.delta.signal_slots, h * k);
                self.world.hw_watchdog.shift_last_kick(h * k);
                self.world.fmf.apply_cycle_delta(&ff.delta.fmf, k);
                ff.stats.fastforwarded += h * k;
            }
        }
        self.ffwd = ff;
    }

    /// Per-node macro-stepping override: `Some(false)` disables tail
    /// fast-forwarding for this node regardless of `EASIS_FASTFORWARD`,
    /// `Some(true)` forces it on, `None` (the default) follows the
    /// process-wide [`crate::ffwd::env_default`].
    pub fn set_fastforward(&mut self, enabled: Option<bool>) {
        self.ffwd.enabled_override = enabled;
    }

    /// Marks the injector window armed/disarmed for
    /// [`CentralNode::run_span`]: an armed window can rewrite runnable
    /// controls at any millisecond tick, so macro-stepping stands down
    /// until the caller disarms again.
    pub fn set_injection_armed(&mut self, armed: bool) {
        self.ffwd.injection_armed = armed;
    }

    /// This node's macro-stepping counters since build or
    /// [`CentralNode::reset`].
    pub fn ffwd_stats(&self) -> FfwdStats {
        self.ffwd.stats
    }

    /// The configuration-derived steady-state hyperperiod
    /// ([`Duration::ZERO`] when macro-stepping is structurally disabled).
    pub fn hyperperiod(&self) -> Duration {
        self.ffwd.h
    }

    /// Runs the node until `end`, ticking the injector once per
    /// millisecond (the injection granularity of the experiments). The
    /// injector inherits the node's observability sink, so arm/disarm
    /// markers land on the same trace as the detections they provoke.
    pub fn run_until(&mut self, end: Instant, injector: &mut Injector) {
        assert!(self.started, "call start() first");
        injector.attach_obs(self.world.obs.clone());
        let step = Duration::from_millis(1);
        while self.os.now() < end {
            let slice_end = (self.os.now() + step).min(end);
            injector.tick(self.os.now(), &mut self.world.controls, &mut self.os);
            self.os.run_until(slice_end, &mut self.world);
        }
        injector.tick(self.os.now(), &mut self.world.controls, &mut self.os);
    }

    /// Runnable id by name (panics on unknown names — experiment code).
    pub fn runnable(&self, name: &str) -> RunnableId {
        self.registry
            .id_of(name)
            .unwrap_or_else(|| panic!("unknown runnable {name}"))
    }

    /// Live watchdog counters of a runnable by name.
    pub fn counters_of(&self, name: &str) -> RunnableCounters {
        self.world
            .watchdog
            .counters(self.runnable(name))
            .expect("monitored runnable")
    }

    /// The node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }
}

/// Per-node macro-stepping counters (see [`CentralNode::ffwd_stats`];
/// process-wide aggregation lives in [`crate::ffwd`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FfwdStats {
    /// Simulated time skipped by certified hyperperiod jumps.
    pub fastforwarded: Duration,
    /// Simulated time [`CentralNode::run_span`] covered in total,
    /// fast-forwarded or not (the fraction's denominator).
    pub span: Duration,
    /// Rejected certification attempts plus rotation-boundary crossings
    /// simulated event-by-event.
    pub fallbacks: u64,
    /// Successful certifications (guard hyperperiod reproduced the delta).
    pub certifications: u64,
}

/// The per-node macro-stepping engine: the configuration-derived
/// hyperperiod, the stand-down switches, the retained image/delta buffers
/// (so repeated certifications are allocation-free in the steady state),
/// and the per-node counters.
#[derive(Debug, Default)]
struct FfwdState {
    h: Duration,
    enabled_override: Option<bool>,
    injection_armed: bool,
    backoff: u32,
    img_a: FfwdImage,
    img_b: FfwdImage,
    delta: NodeCycleDelta,
    delta2: NodeCycleDelta,
    scratch: CycleScratch,
    stats: FfwdStats,
}

impl FfwdState {
    fn new(h: Duration) -> Self {
        FfwdState {
            h,
            ..FfwdState::default()
        }
    }
}

/// One certification image: the node state the delta derivation compares.
/// Deliberately cheaper than a [`NodeSnapshot`]: the append-only logs are
/// captured as lengths (within one uninterrupted span, an unchanged length
/// proves unchanged content) and the monotone baseline-monitor statistics
/// as totals, so a warm capture clones no maps. Runnable controls are not
/// captured at all — only injector ticks mutate them, and an armed
/// injector window already stands the engine down.
#[derive(Debug, Default)]
struct FfwdImage {
    os: OsSnapshot,
    signals: SignalDbSnapshot,
    watchdog: WatchdogSnapshot,
    fmf: FmfSnapshot,
    /// `None` only before the first capture (`HardwareWatchdog` has no
    /// `Default`); the value is flat, so `clone_from` is heap-free.
    hw_watchdog: Option<HardwareWatchdog>,
    treatments: usize,
    fault_log: usize,
    rx_mailbox: usize,
    ecu_resets: u32,
    deadline: (u32, Option<(TaskId, Instant)>),
    exec: (u32, Option<(TaskId, Instant)>),
}

/// The compiled node-level steady-state delta: one hyperperiod's kernel
/// cycle program, watchdog cycle delta, the signal slots whose timestamps
/// shift by exactly one hyperperiod, and the FMF's DTC aging advance.
#[derive(Debug, Default, PartialEq)]
struct NodeCycleDelta {
    os: CycleProgram,
    watchdog: WatchdogCycleDelta,
    signal_slots: Vec<u32>,
    fmf: FmfCycleDelta,
}

/// Derives the closed-form per-hyperperiod delta between two images taken
/// exactly `h` apart, or reports that the span is not in certifiable
/// steady state. Every append-only log must be untouched, every monotone
/// monitor counter unchanged, the hardware watchdog an exact `h`
/// time-shift, and the kernel/watchdog/signal/FMF layers must each yield
/// a well-formed shift (the FMF's being a uniform DTC-aging advance — the
/// post-fault drain the tail spends hundreds of milliseconds in).
fn derive_node_delta(
    a: &FfwdImage,
    b: &FfwdImage,
    h: Duration,
    scratch: &mut CycleScratch,
    out: &mut NodeCycleDelta,
) -> bool {
    if a.treatments != b.treatments
        || a.fault_log != b.fault_log
        || a.rx_mailbox != b.rx_mailbox
        || a.ecu_resets != b.ecu_resets
        || a.deadline != b.deadline
        || a.exec != b.exec
        || !FmfSnapshot::derive_cycle_delta(&a.fmf, &b.fmf, &mut out.fmf)
    {
        return false;
    }
    let (Some(hw_a), Some(hw_b)) = (&a.hw_watchdog, &b.hw_watchdog) else {
        return false;
    };
    let mut shifted = hw_a.clone();
    shifted.shift_last_kick(h);
    if shifted != *hw_b {
        return false;
    }
    OsSnapshot::derive_cycle_program(&a.os, &b.os, h, scratch, &mut out.os)
        && WatchdogSnapshot::derive_cycle_delta(&a.watchdog, &b.watchdog, h, &mut out.watchdog)
        && SignalDbSnapshot::derive_shift(&a.signals, &b.signals, h, &mut out.signal_slots)
}

/// A deterministic checkpoint of a started [`CentralNode`] at one instant:
/// the campaign prefix-reuse primitive. Trials sharing an injection point
/// fork from the snapshot taken there instead of re-simulating the golden
/// prefix ([`crate::scenario::run_plan`]), and a campaign publishes each
/// golden-prefix checkpoint once behind an `Arc` so every worker forks
/// from the same shared capture. The snapshot is plain data — no world
/// handles, no closures — so it is `Send + Sync`.
///
/// Static structure is deliberately excluded — the runnable registry, the
/// compiled watchdog configuration, task bodies (their buffers are
/// per-cycle scratch), the deployment tables, the node configuration and
/// the observability sink are not captured. A snapshot therefore only
/// restores onto the node it was taken from, or a structurally identical
/// one built from the same blueprint.
#[derive(Debug)]
pub struct NodeSnapshot {
    os: OsSnapshot,
    signals: SignalDbSnapshot,
    controls: RunnableControls,
    watchdog: WatchdogSnapshot,
    fmf: FmfSnapshot,
    hw_watchdog: HardwareWatchdog,
    treatments: Vec<TreatmentAction>,
    ecu_resets: u32,
    fault_log: Vec<DetectedFault>,
    rx_mailbox: Vec<(u16, Vec<u8>)>,
    deadline_stats: TaskMonitorStats,
    exec_stats: TaskMonitorStats,
}

impl Default for NodeSnapshot {
    fn default() -> Self {
        NodeSnapshot {
            os: OsSnapshot::default(),
            signals: SignalDbSnapshot::default(),
            controls: RunnableControls::default(),
            watchdog: WatchdogSnapshot::default(),
            fmf: FmfSnapshot::default(),
            // Placeholder until the first capture `clone_from`s the real
            // one (`HardwareWatchdog` has no Default: a zero timeout is
            // rejected by construction).
            hw_watchdog: HardwareWatchdog::new(Duration::from_micros(1)),
            treatments: Vec::new(),
            ecu_resets: 0,
            fault_log: Vec::new(),
            rx_mailbox: Vec::new(),
            deadline_stats: TaskMonitorStats::default(),
            exec_stats: TaskMonitorStats::default(),
        }
    }
}

impl NodeSnapshot {
    /// The simulated instant at which the snapshot was taken.
    pub fn taken_at(&self) -> Instant {
        self.os.taken_at()
    }

    /// Lineage-blind content equality, the equivalence-test comparator for
    /// macro-stepped versus event-level runs. The kernel is compared
    /// through its canonical rendering — the timer wheel's *physical*
    /// layout is legitimately non-canonical after a fast-forward, only its
    /// logical content must match. Signal and watchdog state go through
    /// their zero-shift derivations (every monotone field must be exactly
    /// equal); everything else compares structurally. Capture lineage
    /// (snapshot ids, epochs) is deliberately ignored.
    pub fn content_eq(&self, other: &NodeSnapshot) -> bool {
        let mut slots = Vec::new();
        let mut wd = WatchdogCycleDelta::default();
        self.os_canonical() == other.os_canonical()
            && SignalDbSnapshot::derive_shift(
                &self.signals,
                &other.signals,
                Duration::ZERO,
                &mut slots,
            )
            && WatchdogSnapshot::derive_cycle_delta(
                &self.watchdog,
                &other.watchdog,
                Duration::ZERO,
                &mut wd,
            )
            && wd == WatchdogCycleDelta::default()
            && self.fmf.content_eq(&other.fmf)
            && self.controls == other.controls
            && self.hw_watchdog == other.hw_watchdog
            && self.treatments == other.treatments
            && self.ecu_resets == other.ecu_resets
            && self.fault_log == other.fault_log
            && self.rx_mailbox == other.rx_mailbox
            && self.deadline_stats == other.deadline_stats
            && self.exec_stats == other.exec_stats
    }

    /// The kernel's canonical rendering (mismatch diagnostics for
    /// [`NodeSnapshot::content_eq`]).
    pub fn os_canonical(&self) -> String {
        let mut out = String::new();
        self.os.canonical_fmt(&mut out);
        out
    }
}

/// Arena body of the watchdog task: plans `Compute(cost) + EffectRef(0)`
/// into the kernel's retained buffer; the effect runs the cycle check and
/// the FMF integration of §4.4.
///
/// Every buffer the effect needs lives in the body and is reused across
/// cycles: the cycle report (`run_cycle_into` target), the outbox drain
/// vectors, the decided-action queue, and the freeze frame itself — its
/// condition names are interned at build time and a faulty cycle only
/// rewrites the `f64` values in place before lending the frame to the FMF
/// by reference. A fault-detecting cycle therefore allocates only where
/// genuinely new state is born (first occurrence of a DTC code, growth of
/// the world's fault/treatment logs past their pooled capacity).
///
/// All of these are per-cycle scratch — cleared or overwritten before each
/// use — so they carry no state across cycles and are deliberately outside
/// [`NodeSnapshot`].
struct WatchdogTaskBody {
    cost: Duration,
    freeze_conditions: Vec<(Arc<str>, SignalId)>,
    freeze: FreezeFrame,
    report: CycleReport,
    faults: Vec<DetectedFault>,
    changes: Vec<StateChange>,
    actions: Vec<TreatmentAction>,
}

impl TaskBody<CentralWorld> for WatchdogTaskBody {
    fn plan_into(&mut self, _now: Instant, _world: &CentralWorld, out: &mut Plan<CentralWorld>) {
        out.push_compute(self.cost);
        out.push_effect_ref(0);
    }

    fn run_effect(&mut self, _token: u32, w: &mut CentralWorld, ctx: &mut EffectCtx<'_, CentralWorld>) {
        let now = ctx.now();
        w.watchdog.run_cycle_into(now, &mut self.report);
        if ctx.trace_enabled() {
            for fault in &self.report.faults {
                ctx.trace("watchdog", "fault", fault.to_string());
            }
        }
        if w.hw_watchdog.poll(now) {
            ctx.trace("hw_wd", "hw_expired", "");
        }
        self.faults.clear();
        self.changes.clear();
        w.watchdog.drain_faults_into(&mut self.faults);
        w.watchdog.drain_state_changes_into(&mut self.changes);
        w.fault_log.extend_from_slice(&self.faults);
        if self.faults.is_empty() {
            w.fmf.healthy_cycle(); // DTC aging
        } else {
            // Freeze frame: the operating conditions at detection (the
            // signals a tester would want). Refreshed only when a fault is
            // actually ingested; the names are interned and the frame is
            // lent by reference, so the capture allocates nothing.
            for (slot, (name, id)) in
                self.freeze.conditions.iter_mut().zip(&self.freeze_conditions)
            {
                debug_assert!(Arc::ptr_eq(&slot.0, name));
                slot.1 = w.signals.read(*id);
            }
            for &fault in &self.faults {
                w.fmf.ingest_fault_with_conditions(fault, &self.freeze);
            }
        }
        for &change in &self.changes {
            w.fmf.ingest_state_change(change);
        }
        w.fmf.drain_actions_into(&mut self.actions);
        for action in self.actions.drain(..) {
            if ctx.trace_enabled() {
                ctx.trace("fmf", "treatment", action.treatment.to_string());
            }
            CentralNode::execute_treatment(w, ctx, &action.treatment);
            w.treatments.push(action);
        }
    }

    fn name(&self) -> &str {
        "SoftwareWatchdogTask"
    }
}

/// Arena body of the hardware-watchdog kick task.
struct HwKickBody;

impl TaskBody<CentralWorld> for HwKickBody {
    fn plan_into(&mut self, _now: Instant, _world: &CentralWorld, out: &mut Plan<CentralWorld>) {
        out.push_compute(Duration::from_micros(5));
        out.push_effect_ref(0);
    }

    fn run_effect(&mut self, _token: u32, w: &mut CentralWorld, ctx: &mut EffectCtx<'_, CentralWorld>) {
        let _ = w.hw_watchdog.kick(ctx.now());
    }

    fn name(&self) -> &str {
        "HwKickTask"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_watchdog::report::HealthState;

    fn ms(n: u64) -> Instant {
        Instant::from_millis(n)
    }

    #[test]
    fn nominal_full_node_runs_clean_for_a_second() {
        let mut node = CentralNode::build(NodeConfig::default());
        node.start();
        let mut injector = Injector::none();
        node.run_until(ms(1_000), &mut injector);
        assert!(node.world.fault_log.is_empty(), "{:?}", node.world.fault_log);
        assert_eq!(node.world.watchdog.ecu_state(), HealthState::Ok);
        assert_eq!(node.world.hw_watchdog.expirations(), 0);
        assert_eq!(node.deadline_monitor.stats().total(), 0);
        assert_eq!(node.exec_monitor.stats().total(), 0);
        assert!(node.world.watchdog.cycles_run() >= 98);
        // All three apps heartbeat: 9 runnables monitored.
        assert_eq!(node.world.watchdog.config().monitored().count(), 9);
    }

    #[test]
    fn safespeed_only_node_monitors_three_runnables() {
        let mut node = CentralNode::build(NodeConfig::safespeed_only());
        node.start();
        let mut injector = Injector::none();
        node.run_until(ms(200), &mut injector);
        assert_eq!(node.world.watchdog.config().monitored().count(), 3);
        assert!(node.world.fault_log.is_empty());
        let c = node.counters_of("SAFE_CC_process");
        assert!(c.activation);
        assert_eq!(c.aliveness_errors, 0);
    }

    #[test]
    fn hypothesis_shape_handles_both_ratio_directions() {
        // 10ms task, 10ms wd: 1 per cycle.
        assert_eq!(
            CentralNode::hypothesis_shape(Duration::from_millis(10), Duration::from_millis(10), 1),
            (1, 1)
        );
        // 20ms task, 10ms wd: 1 per 2 cycles.
        assert_eq!(
            CentralNode::hypothesis_shape(Duration::from_millis(20), Duration::from_millis(10), 1),
            (2, 1)
        );
        // 5ms task, 10ms wd: 2 per cycle.
        assert_eq!(
            CentralNode::hypothesis_shape(Duration::from_millis(5), Duration::from_millis(10), 1),
            (1, 2)
        );
        // Factor stretches the window.
        assert_eq!(
            CentralNode::hypothesis_shape(Duration::from_millis(10), Duration::from_millis(10), 4),
            (4, 4)
        );
    }

    #[test]
    fn snapshot_restore_replays_a_faulty_run_identically() {
        use easis_injection::injector::{ErrorClass, Injection};
        let mut node = CentralNode::build(NodeConfig::safespeed_only());
        node.start();
        let mut pre = Injector::none();
        node.run_until(ms(200), &mut pre);
        let snap = node.snapshot();
        assert_eq!(snap.taken_at(), ms(200));
        let run_tail = |node: &mut CentralNode| {
            let target = node.runnable("SAFE_CC_process");
            let mut injector = Injector::new([Injection::new(
                ErrorClass::SkipRunnable { runnable: target },
                ms(250),
                ms(400),
            )]);
            node.run_until(ms(1_000), &mut injector);
            (
                node.world.fault_log.clone(),
                node.world.treatments.clone(),
                format!("{:?}", node.os.trace()),
                node.world.watchdog.cycles_run(),
            )
        };
        let first = run_tail(&mut node);
        assert!(!first.0.is_empty(), "tail must detect the injected fault");
        node.restore_from(&snap);
        assert_eq!(node.os.now(), ms(200));
        assert!(node.world.fault_log.is_empty());
        let second = run_tail(&mut node);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1, second.1);
        assert_eq!(first.2, second.2);
        assert_eq!(first.3, second.3);
    }

    #[test]
    fn hyperperiod_covers_every_period_and_window() {
        for config in [NodeConfig::default(), NodeConfig::safespeed_only()] {
            let node = CentralNode::build(config);
            let h = node.hyperperiod();
            assert!(!h.is_zero());
            assert!((h % node.config().wd_period).is_zero());
            assert!((h % Duration::from_millis(10)).is_zero(), "HwKick cycle");
            for &period in node.periods.values() {
                assert!((h % period).is_zero(), "{h:?} vs {period:?}");
            }
        }
    }

    #[test]
    fn macro_stepped_span_matches_event_level_simulation() {
        let build = |ffwd: bool| {
            let mut node = CentralNode::build(NodeConfig {
                kernel_trace: false,
                ..NodeConfig::default()
            });
            node.set_fastforward(Some(ffwd));
            node.start();
            node.run_span(Instant::from_millis(1_500));
            node
        };
        let mut fast = build(true);
        let mut plain = build(false);
        let stats = fast.ffwd_stats();
        assert!(stats.certifications >= 1, "{stats:?}");
        assert!(stats.fastforwarded > Duration::ZERO, "{stats:?}");
        assert_eq!(plain.ffwd_stats().fastforwarded, Duration::ZERO);
        assert_eq!(fast.os.now(), plain.os.now());
        let a = fast.snapshot();
        let b = plain.snapshot();
        assert!(
            a.content_eq(&b),
            "macro-stepped state diverged:\n{}\nvs\n{}",
            a.os_canonical(),
            b.os_canonical()
        );
    }

    #[test]
    fn skipped_runnable_is_detected_and_treated() {
        use easis_injection::injector::{ErrorClass, Injection};
        let mut node = CentralNode::build(NodeConfig::safespeed_only());
        node.start();
        let target = node.runnable("SAFE_CC_process");
        let mut injector = Injector::new([Injection::new(
            ErrorClass::SkipRunnable { runnable: target },
            ms(200),
            ms(400),
        )]);
        node.run_until(ms(1_000), &mut injector);
        // PFC and aliveness faults were logged…
        assert!(!node.world.fault_log.is_empty());
        // …the task went faulty and the FMF restarted SafeSpeed.
        assert!(node
            .world
            .treatments
            .iter()
            .any(|t| matches!(t.treatment, Treatment::RestartApplication(_))));
        // After the injection window, recovery holds: the final state is Ok.
        assert_eq!(
            node.world.watchdog.task_state(node.tasks["SafeSpeedTask"]),
            HealthState::Ok
        );
    }
}

#[cfg(test)]
mod config_audit_tests {
    use super::*;

    #[test]
    fn derived_watchdog_configs_audit_clean() {
        for config in [NodeConfig::default(), NodeConfig::safespeed_only()] {
            let node = CentralNode::build(config);
            let issues = easis_watchdog::validate::validate(node.world.watchdog.config());
            assert!(issues.is_empty(), "config audit found: {issues:?}");
        }
    }
}

//! The evaluation scenario library.
//!
//! Each function regenerates one evaluation artifact of the paper (see
//! DESIGN.md's per-experiment index): the Figure 5 aliveness test, the
//! Figure 6 unit-collaboration test, the arrival-rate and program-flow
//! tests described in prose, and the campaign trial runner behind the
//! coverage/latency/granularity tables of the outlook.

use crate::node::{CentralNode, NodeBlueprint, NodeConfig};
use easis_injection::campaign::TrialSpec;
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_injection::stats::{DetectorId, TrialOutcome};
use easis_sim::series::SeriesSet;
use easis_sim::time::{Duration, Instant};
use easis_watchdog::report::{FaultKind, HealthState};

/// Sampling interval of the figure series (the paper's plots use a 10 ms
/// scalar on the x axis).
pub const SAMPLE_PERIOD: Duration = Duration::from_millis(10);

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

/// Runs `node` to `end`, sampling `sample(node, series)` every
/// [`SAMPLE_PERIOD`], offset 5 ms from the watchdog checks so the counter
/// sawtooth is visible mid-cycle.
fn run_sampled(
    node: &mut CentralNode,
    injector: &mut Injector,
    end: Instant,
    series: &mut SeriesSet,
    mut sample: impl FnMut(&CentralNode, Instant, &mut SeriesSet),
) {
    // +7 ms lands between the heartbeat (task phase +5 ms) and the next
    // watchdog check, so the counter sawtooth is visible.
    let mut next = ms(7);
    while node.os.now() < end {
        let slice = next.min(end);
        node.run_until(slice, injector);
        sample(node, node.os.now(), series);
        next = slice + SAMPLE_PERIOD;
    }
}

/// **FIG5** — test with an injected aliveness error.
///
/// The SafeSpeed task's activation alarm is slowed to `scale_ppm` of
/// nominal between 1.0 s and 2.0 s (the ControlDesk "time scalar" slider),
/// so the runnables heartbeat too rarely. Series: the Aliveness Counter
/// (AC) and Cycle Counter (CCA) of `SAFE_CC_process` and the cumulative
/// "AM Result". The monitoring window spans two watchdog cycles so the
/// AC/CCA sawtooth of the paper's plot is visible; the error threshold is
/// raised so the counter series keep evolving for the whole window.
pub fn fig5_aliveness(scale_ppm: u64) -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000, // keep counting for the plot
        window_factor: 2,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let alarm = node.alarms["SafeSpeedTask"];
    let mut injector = Injector::new([Injection::new(
        ErrorClass::AlarmScale {
            alarm,
            scale_ppm,
        },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("fig5_aliveness");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        let c = n.counters_of("SAFE_CC_process");
        s.push(t, "AC", c.ac as f64);
        s.push(t, "CCA", c.cca as f64);
        s.push(t, "AM Result", c.aliveness_errors as f64);
    });
    series
}

/// **FIG6** — collaboration of the fault detection units.
///
/// An invalid execution branch skips `SAFE_CC_process` from 1.0 s on. The
/// PFC unit reports a program-flow error every period; the aliveness
/// window is two watchdog cycles, so exactly one aliveness window closes
/// before the PFC error count crosses the threshold of 3 and flips the
/// task state to faulty — "after the detection of three program flow
/// errors … the task state is set to faulty. Only one accumulated
/// aliveness error is reported."
pub fn fig6_collaboration() -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        window_factor: 2,
        error_threshold: 3,
        // Leave the faulty state visible for the plot: no treatment.
        policy: easis_fmf::policy::TreatmentPolicy::observe_only(),
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let task = node.tasks["SafeSpeedTask"];
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("fig6_collaboration");
    run_sampled(&mut node, &mut injector, ms(2_000), &mut series, |n, t, s| {
        s.push(t, "PFC Result", n.world.watchdog.pfc_errors_total() as f64);
        let am: u32 = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
            .iter()
            .map(|r| n.counters_of(r).aliveness_errors)
            .sum();
        s.push(t, "AM Result", am as f64);
        let faulty = n.world.watchdog.task_state(task).is_faulty();
        s.push(t, "Task State", if faulty { 1.0 } else { 0.0 });
    });
    series
}

/// **E-ARR** — test with an injected arrival-rate error: duplicate
/// aliveness indications of `GetSensorValue` between 1.0 s and 2.0 s.
pub fn exp_arrival_rate(extra: u32) -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("GetSensorValue");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::DuplicateDispatch {
            runnable: target,
            extra,
        },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("exp_arrival_rate");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        let c = n.counters_of("GetSensorValue");
        s.push(t, "ARC", c.arc as f64);
        s.push(t, "CCAR", c.ccar as f64);
        s.push(t, "ARM Result", c.arrival_rate_errors as f64);
    });
    series
}

/// **E-PFC** — test with an injected control-flow error: the actuator
/// runnable `Speed_process` is bypassed between 1.0 s and 2.0 s.
pub fn exp_program_flow() -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("Speed_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("exp_program_flow");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        s.push(t, "PFC Result", n.world.watchdog.pfc_errors_total() as f64);
        // Violations are attributed to the *observed* unexpected successor:
        // with Speed_process bypassed, that is the next cycle's entry.
        s.push(
            t,
            "PFC on observed successor",
            n.counters_of("GetSensorValue").program_flow_errors as f64,
        );
    });
    series
}

/// Maps a watchdog fault kind onto its coverage-table detector column.
fn detector_of(kind: FaultKind) -> DetectorId {
    match kind {
        FaultKind::Aliveness => DetectorId::SwAliveness,
        FaultKind::ArrivalRate => DetectorId::SwArrivalRate,
        FaultKind::ProgramFlow => DetectorId::SwProgramFlow,
    }
}

/// The node configuration every campaign trial runs on: the full node
/// (all three applications), treatment disabled and monitoring kept past
/// the faulty verdict so a fast unit (PFC) does not mask a slower one
/// (arrival rate) — campaign trials measure raw detection capability per
/// unit.
pub fn campaign_node_config() -> NodeConfig {
    NodeConfig {
        keep_monitoring_faulty: true,
        policy: easis_fmf::policy::TreatmentPolicy::observe_only(),
        // Outcomes come from the fault log and monitor stats; the kernel
        // trace would only burn three allocations per dispatch-path event.
        kernel_trace: false,
        ..NodeConfig::default()
    }
}

/// Runs one campaign trial on a freshly built full node (all three
/// applications) and reports which detectors caught the injected error,
/// with their latencies relative to the injection start.
pub fn run_trial(spec: &TrialSpec, horizon: Instant) -> TrialOutcome {
    let mut node = CentralNode::build(campaign_node_config());
    let mut injector = Injector::new([spec.injection.clone()]);
    run_trial_on(&mut node, &mut injector, spec, horizon)
}

thread_local! {
    /// Per-worker pooled node and injector, tagged with the blueprint
    /// stamp the node was built from. One pooled world per worker thread
    /// covers a whole campaign: trials reset the node and reload the
    /// injector instead of rebuilding either.
    static NODE_POOL: std::cell::RefCell<Option<(u64, CentralNode, Injector)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs one campaign trial on this worker's pooled node, building it from
/// `blueprint` on first use and [`CentralNode::reset`]ting it afterwards.
/// The worker's pooled [`Injector`] is [`Injector::reload`]ed with this
/// trial's injection, so steady-state trials reuse its arming buffer too.
/// The reset≡fresh property test pins that the outcome is byte-identical
/// to [`run_trial`] on a fresh build.
pub fn run_trial_pooled(
    blueprint: &NodeBlueprint,
    spec: &TrialSpec,
    horizon: Instant,
) -> TrialOutcome {
    NODE_POOL.with(|pool| {
        let mut slot = pool.borrow_mut();
        match slot.as_mut() {
            Some((stamp, node, injector)) if *stamp == blueprint.stamp() => {
                node.reset();
                injector.reload([spec.injection.clone()]);
            }
            _ => {
                *slot = Some((
                    blueprint.stamp(),
                    CentralNode::build_from_blueprint(blueprint),
                    Injector::new([spec.injection.clone()]),
                ));
            }
        }
        let (_, node, injector) = slot.as_mut().expect("pool populated above");
        run_trial_on(node, injector, spec, horizon)
    })
}

/// The shared trial body: starts the (fresh or just-reset) node, runs the
/// already-loaded injector to the horizon and extracts the detector
/// outcome. The outcome's class tag is the process-interned handle, so
/// stamping it allocates nothing.
fn run_trial_on(
    node: &mut CentralNode,
    injector: &mut Injector,
    spec: &TrialSpec,
    horizon: Instant,
) -> TrialOutcome {
    node.start();
    let from = spec.injection.from;
    node.run_until(horizon, injector);

    let mut outcome = TrialOutcome::new(spec.injection.class.interned_tag());
    for fault in &node.world.fault_log {
        if fault.at >= from {
            outcome.record(
                detector_of(fault.kind),
                fault.at.saturating_duration_since(from),
            );
        }
    }
    if let Some(expiry) = node.world.hw_watchdog.first_expiry() {
        if expiry >= from {
            outcome.record(DetectorId::HwWatchdog, expiry.saturating_duration_since(from));
        }
    }
    if let Some((_, at)) = node.deadline_monitor.stats().first_detection() {
        if at >= from {
            outcome.record(
                DetectorId::DeadlineMonitor,
                at.saturating_duration_since(from),
            );
        }
    }
    if let Some((_, at)) = node.exec_monitor.stats().first_detection() {
        if at >= from {
            outcome.record(
                DetectorId::ExecTimeMonitor,
                at.saturating_duration_since(from),
            );
        }
    }
    outcome
}

/// Runs every trial of `plan` on the given executor. The watchdog
/// configuration is compiled once into a [`NodeBlueprint`] and each
/// worker pools one node built from it, resetting it between trials
/// ([`run_trial_pooled`]). Trials stay hermetic — `reset()` restores the
/// exact fresh-build state — so any worker count produces stats
/// bit-identical to a serial run.
pub fn run_plan(
    plan: &easis_injection::campaign::CampaignPlan,
    horizon: Instant,
    executor: &easis_injection::executor::CampaignExecutor,
) -> easis_injection::stats::CampaignStats {
    let blueprint = NodeBlueprint::compile(campaign_node_config());
    executor.run(plan, |spec| run_trial_pooled(&blueprint, spec, horizon))
}

/// Runs every trial of `plan` the way campaigns ran before the throughput
/// engine: each trial builds its own node from scratch — watchdog config
/// compile included — with the kernel execution trace recording (the
/// pre-engine node had no way to switch it off). No pooling, no shared
/// compiled config. Kept as the baseline `campaign_bench` measures the
/// engine against; the outcomes are bit-identical to [`run_plan`] (the
/// trace never feeds a trial outcome), which the bench asserts.
pub fn run_plan_fresh(
    plan: &easis_injection::campaign::CampaignPlan,
    horizon: Instant,
    executor: &easis_injection::executor::CampaignExecutor,
) -> easis_injection::stats::CampaignStats {
    let config = NodeConfig {
        kernel_trace: true,
        ..campaign_node_config()
    };
    executor.run(plan, move |spec| {
        let mut node = CentralNode::build(config.clone());
        let mut injector = Injector::new([spec.injection.clone()]);
        run_trial_on(&mut node, &mut injector, spec, horizon)
    })
}

/// A quick health check of a golden (fault-free) run: returns `true` when
/// no detector fired over the horizon. Used by tests and as the campaign's
/// false-positive control.
pub fn golden_run_is_clean(horizon: Instant) -> bool {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let mut injector = Injector::none();
    node.run_until(horizon, &mut injector);
    node.world.fault_log.is_empty()
        && node.world.hw_watchdog.expirations() == 0
        && node.deadline_monitor.stats().total() == 0
        && node.exec_monitor.stats().total() == 0
        && node.world.watchdog.ecu_state() == HealthState::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_stays_clean() {
        assert!(golden_run_is_clean(ms(500)));
    }

    #[test]
    fn fig5_shows_aliveness_errors_only_inside_the_window() {
        let series = fig5_aliveness(3_000_000); // 3× slower task
        let am = series.series("AM Result").expect("AM series");
        // No errors before the injection…
        let before: f64 = am
            .samples()
            .iter()
            .filter(|s| s.at < ms(1_000))
            .map(|s| s.value)
            .fold(0.0, f64::max);
        assert_eq!(before, 0.0);
        // …a growing count inside it…
        let during = am.samples().iter().rfind(|s| s.at < ms(2_000)).unwrap();
        assert!(during.value >= 10.0, "AM Result during: {}", during.value);
        // …and no further growth after disarm (plus one residual window).
        let last = am.last_value().unwrap();
        let at_2100: f64 = am
            .samples()
            .iter()
            .rfind(|s| s.at <= ms(2_100))
            .unwrap()
            .value;
        assert!(last - at_2100 <= 1.0, "post-window growth: {at_2100} → {last}");
    }

    #[test]
    fn fig6_pfc_crosses_threshold_before_aliveness_accumulates() {
        let series = fig6_collaboration();
        let pfc = series.series("PFC Result").expect("PFC series");
        let am = series.series("AM Result").expect("AM series");
        let task = series.series("Task State").expect("task series");
        // Task flipped to faulty when PFC reached 3.
        let faulty_at = task.first_reached(1.0).expect("task went faulty");
        let pfc_at_flip = pfc
            .samples()
            .iter()
            .rfind(|s| s.at <= faulty_at)
            .unwrap()
            .value;
        assert!((3.0..=4.0).contains(&pfc_at_flip), "PFC at flip: {pfc_at_flip}");
        // Exactly one accumulated aliveness error, as in the paper.
        assert_eq!(am.last_value().unwrap(), 1.0);
        // PFC freezes after deactivation.
        assert!(pfc.last_value().unwrap() <= pfc_at_flip + 1.0);
    }

    #[test]
    fn arrival_rate_errors_step_during_duplicate_dispatch() {
        let series = exp_arrival_rate(2);
        let arm = series.series("ARM Result").expect("ARM series");
        assert_eq!(
            arm.samples()
                .iter()
                .filter(|s| s.at < ms(1_000))
                .map(|s| s.value)
                .fold(0.0, f64::max),
            0.0
        );
        assert!(arm.last_value().unwrap() >= 50.0, "{}", arm.last_value().unwrap());
    }

    #[test]
    fn program_flow_errors_attributed_to_observed_successor() {
        let series = exp_program_flow();
        let total = series.series("PFC Result").unwrap().last_value().unwrap();
        assert!(total >= 50.0, "PFC total {total}");
    }

    #[test]
    fn heartbeat_loss_trial_is_caught_only_by_the_software_watchdog() {
        use easis_injection::injector::{ErrorClass, Injection};
        let spec = TrialSpec {
            seed: 1,
            injection: Injection::new(
                ErrorClass::HeartbeatLoss {
                    runnable: easis_rte::runnable::RunnableId(4), // SAFE_CC in full node
                },
                ms(300),
                ms(600),
            ),
        };
        let outcome = run_trial(&spec, ms(1_000));
        assert!(outcome.detected_by(DetectorId::SwAliveness));
        assert!(!outcome.detected_by(DetectorId::HwWatchdog));
        assert!(!outcome.detected_by(DetectorId::DeadlineMonitor));
        assert!(!outcome.detected_by(DetectorId::ExecTimeMonitor));
    }

    #[test]
    fn run_plan_is_identical_serial_and_parallel() {
        use easis_injection::campaign::CampaignBuilder;
        use easis_injection::executor::CampaignExecutor;
        let horizon = ms(700);
        let plan = CampaignBuilder::new(11, (3..6).map(easis_rte::runnable::RunnableId).collect())
            .loop_targets(vec![easis_rte::runnable::RunnableId(4)])
            .trials_per_class(1)
            .window(ms(200), easis_sim::time::Duration::from_millis(200))
            .with_horizon(horizon)
            .build();
        let serial = run_plan(&plan, horizon, &CampaignExecutor::serial());
        let parallel = run_plan(&plan, horizon, &CampaignExecutor::new(2));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), plan.len());
    }

    #[test]
    fn extreme_slowdown_trial_is_caught_by_task_monitors_too() {
        use easis_injection::injector::{ErrorClass, Injection};
        let spec = TrialSpec {
            seed: 2,
            injection: Injection::new(
                ErrorClass::ExecutionSlowdown {
                    runnable: easis_rte::runnable::RunnableId(4),
                    scale_ppm: 300_000_000, // 300× ≈ 36ms for SAFE_CC
                },
                ms(300),
                ms(600),
            ),
        };
        let outcome = run_trial(&spec, ms(1_000));
        assert!(outcome.detected_by(DetectorId::SwAliveness));
        assert!(outcome.detected_by(DetectorId::DeadlineMonitor));
        assert!(outcome.detected_by(DetectorId::ExecTimeMonitor));
    }
}

//! The evaluation scenario library.
//!
//! Each function regenerates one evaluation artifact of the paper (see
//! DESIGN.md's per-experiment index): the Figure 5 aliveness test, the
//! Figure 6 unit-collaboration test, the arrival-rate and program-flow
//! tests described in prose, and the campaign trial runner behind the
//! coverage/latency/granularity tables of the outlook.

use crate::node::{CentralNode, NodeBlueprint, NodeConfig, NodeSnapshot};
use easis_injection::campaign::TrialSpec;
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_injection::stats::{DetectorId, TrialOutcome};
use easis_sim::series::SeriesSet;
use easis_sim::time::{Duration, Instant};
use easis_watchdog::report::{FaultKind, HealthState};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Sampling interval of the figure series (the paper's plots use a 10 ms
/// scalar on the x axis).
pub const SAMPLE_PERIOD: Duration = Duration::from_millis(10);

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

/// Runs `node` to `end`, sampling `sample(node, series)` every
/// [`SAMPLE_PERIOD`], offset 5 ms from the watchdog checks so the counter
/// sawtooth is visible mid-cycle.
fn run_sampled(
    node: &mut CentralNode,
    injector: &mut Injector,
    end: Instant,
    series: &mut SeriesSet,
    mut sample: impl FnMut(&CentralNode, Instant, &mut SeriesSet),
) {
    // +7 ms lands between the heartbeat (task phase +5 ms) and the next
    // watchdog check, so the counter sawtooth is visible.
    let mut next = ms(7);
    while node.os.now() < end {
        let slice = next.min(end);
        node.run_until(slice, injector);
        sample(node, node.os.now(), series);
        next = slice + SAMPLE_PERIOD;
    }
}

/// **FIG5** — test with an injected aliveness error.
///
/// The SafeSpeed task's activation alarm is slowed to `scale_ppm` of
/// nominal between 1.0 s and 2.0 s (the ControlDesk "time scalar" slider),
/// so the runnables heartbeat too rarely. Series: the Aliveness Counter
/// (AC) and Cycle Counter (CCA) of `SAFE_CC_process` and the cumulative
/// "AM Result". The monitoring window spans two watchdog cycles so the
/// AC/CCA sawtooth of the paper's plot is visible; the error threshold is
/// raised so the counter series keep evolving for the whole window.
pub fn fig5_aliveness(scale_ppm: u64) -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000, // keep counting for the plot
        window_factor: 2,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let alarm = node.alarms["SafeSpeedTask"];
    let mut injector = Injector::new([Injection::new(
        ErrorClass::AlarmScale {
            alarm,
            scale_ppm,
        },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("fig5_aliveness");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        let c = n.counters_of("SAFE_CC_process");
        s.push(t, "AC", c.ac as f64);
        s.push(t, "CCA", c.cca as f64);
        s.push(t, "AM Result", c.aliveness_errors as f64);
    });
    series
}

/// **FIG6** — collaboration of the fault detection units.
///
/// An invalid execution branch skips `SAFE_CC_process` from 1.0 s on. The
/// PFC unit reports a program-flow error every period; the aliveness
/// window is two watchdog cycles, so exactly one aliveness window closes
/// before the PFC error count crosses the threshold of 3 and flips the
/// task state to faulty — "after the detection of three program flow
/// errors … the task state is set to faulty. Only one accumulated
/// aliveness error is reported."
pub fn fig6_collaboration() -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        window_factor: 2,
        error_threshold: 3,
        // Leave the faulty state visible for the plot: no treatment.
        policy: easis_fmf::policy::TreatmentPolicy::observe_only(),
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let task = node.tasks["SafeSpeedTask"];
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("fig6_collaboration");
    run_sampled(&mut node, &mut injector, ms(2_000), &mut series, |n, t, s| {
        s.push(t, "PFC Result", n.world.watchdog.pfc_errors_total() as f64);
        let am: u32 = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
            .iter()
            .map(|r| n.counters_of(r).aliveness_errors)
            .sum();
        s.push(t, "AM Result", am as f64);
        let faulty = n.world.watchdog.task_state(task).is_faulty();
        s.push(t, "Task State", if faulty { 1.0 } else { 0.0 });
    });
    series
}

/// **E-ARR** — test with an injected arrival-rate error: duplicate
/// aliveness indications of `GetSensorValue` between 1.0 s and 2.0 s.
pub fn exp_arrival_rate(extra: u32) -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("GetSensorValue");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::DuplicateDispatch {
            runnable: target,
            extra,
        },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("exp_arrival_rate");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        let c = n.counters_of("GetSensorValue");
        s.push(t, "ARC", c.arc as f64);
        s.push(t, "CCAR", c.ccar as f64);
        s.push(t, "ARM Result", c.arrival_rate_errors as f64);
    });
    series
}

/// **E-PFC** — test with an injected control-flow error: the actuator
/// runnable `Speed_process` is bypassed between 1.0 s and 2.0 s.
pub fn exp_program_flow() -> SeriesSet {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000,
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let target = node.runnable("Speed_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::SkipRunnable { runnable: target },
        ms(1_000),
        ms(2_000),
    )]);
    let mut series = SeriesSet::new("exp_program_flow");
    run_sampled(&mut node, &mut injector, ms(3_000), &mut series, |n, t, s| {
        s.push(t, "PFC Result", n.world.watchdog.pfc_errors_total() as f64);
        // Violations are attributed to the *observed* unexpected successor:
        // with Speed_process bypassed, that is the next cycle's entry.
        s.push(
            t,
            "PFC on observed successor",
            n.counters_of("GetSensorValue").program_flow_errors as f64,
        );
    });
    series
}

/// Maps a watchdog fault kind onto its coverage-table detector column.
fn detector_of(kind: FaultKind) -> DetectorId {
    match kind {
        FaultKind::Aliveness => DetectorId::SwAliveness,
        FaultKind::ArrivalRate => DetectorId::SwArrivalRate,
        FaultKind::ProgramFlow => DetectorId::SwProgramFlow,
    }
}

/// The node configuration every campaign trial runs on: the full node
/// (all three applications), treatment disabled and monitoring kept past
/// the faulty verdict so a fast unit (PFC) does not mask a slower one
/// (arrival rate) — campaign trials measure raw detection capability per
/// unit.
pub fn campaign_node_config() -> NodeConfig {
    NodeConfig {
        keep_monitoring_faulty: true,
        policy: easis_fmf::policy::TreatmentPolicy::observe_only(),
        // Outcomes come from the fault log and monitor stats; the kernel
        // trace would only burn three allocations per dispatch-path event.
        kernel_trace: false,
        ..NodeConfig::default()
    }
}

/// Runs one campaign trial on a freshly built full node (all three
/// applications) and reports which detectors caught the injected error,
/// with their latencies relative to the injection start.
pub fn run_trial(spec: &TrialSpec, horizon: Instant) -> TrialOutcome {
    let mut node = CentralNode::build(campaign_node_config());
    let mut injector = Injector::new([spec.injection.clone()]);
    run_trial_on(&mut node, &mut injector, spec, horizon)
}

/// One worker's pooled campaign state: the node and injector the worker
/// reuses across trials, plus the pooled [`NodeSnapshot`] checkpoint
/// buffer the forked runner refills via [`CentralNode::snapshot_into`] —
/// capacity-retained, so steady-state capture allocates nothing.
struct PoolSlot {
    /// Blueprint stamp the node was built from; a different stamp rebuilds
    /// the slot.
    stamp: u64,
    node: CentralNode,
    injector: Injector,
    /// Golden-prefix checkpoint buffer; contents are only meaningful when
    /// `ckpt_at` is set.
    ckpt: NodeSnapshot,
    /// The fork instant `ckpt` captures, or `None` before the first
    /// capture. The buffer always holds *golden* (injection-free) state:
    /// it is only ever filled right after the node reached a fork along
    /// the detector-free prefix, so it stays valid across chunks even
    /// though each chunk resets the node (the reset severs the snapshot
    /// lineage, which merely downgrades the next restore to the exact
    /// full path).
    ckpt_at: Option<Instant>,
}

impl PoolSlot {
    fn build(blueprint: &NodeBlueprint, injector: Injector) -> Self {
        PoolSlot {
            stamp: blueprint.stamp(),
            node: CentralNode::build_from_blueprint(blueprint),
            injector,
            ckpt: NodeSnapshot::default(),
            ckpt_at: None,
        }
    }
}

thread_local! {
    /// Per-worker pooled campaign state, tagged with the blueprint stamp
    /// the node was built from. One pooled world per worker thread covers
    /// a whole campaign: trials reset the node and reload the injector
    /// instead of rebuilding either.
    static NODE_POOL: std::cell::RefCell<Option<PoolSlot>> =
        const { std::cell::RefCell::new(None) };
}

/// Campaign-wide caches shared by every worker of one [`run_plan`] call.
///
/// * `prefix` — golden-prefix checkpoints keyed by `(blueprint stamp,
///   fork instant)`. The first worker whose chunk has to simulate a long
///   stretch of golden prefix publishes the resulting snapshot behind an
///   [`Arc`]; other workers restore from it instead of re-simulating the
///   prefix, turning N×prefix work into 1×. Publications are spaced by
///   [`PREFIX_PUBLISH_SPACING`] so the map stays small and the lock cold.
/// * `memo` — the equivalence-collapsing tail cache (see [`TailKey`]),
///   formerly per-chunk, now shared so twins in different chunks collapse
///   too.
///
/// Both caches only ever hold state derived from the deterministic golden
/// run, so hits cannot change outcomes — the serial≡parallel test and the
/// campaign golden pin that stats are bit-identical at any worker count.
#[derive(Default)]
struct CampaignCaches {
    prefix: Mutex<BTreeMap<(u64, Instant), Arc<NodeSnapshot>>>,
    memo: Mutex<HashMap<TailKey, SharedDetections>>,
}

/// Memoised tail record: per-detector first absolute detection instants
/// (see [`absolute_detections`]), shared behind an `Arc` so a memo hit
/// clones a pointer, not the list.
type SharedDetections = Arc<Vec<(DetectorId, Instant)>>;

/// Minimum golden-prefix gap a shared checkpoint must close before a
/// worker consults or feeds the campaign-wide `prefix` cache. Below this,
/// the worker's own pooled checkpoint (or a short `run_span`) is cheaper
/// than a lock round-trip plus a full (alien-lineage) restore.
const PREFIX_PUBLISH_SPACING: Duration = Duration::from_millis(64);

/// Runs one campaign trial on this worker's pooled node, building it from
/// `blueprint` on first use and [`CentralNode::reset`]ting it afterwards.
/// The worker's pooled [`Injector`] is [`Injector::reload`]ed with this
/// trial's injection, so steady-state trials reuse its arming buffer too.
/// The reset≡fresh property test pins that the outcome is byte-identical
/// to [`run_trial`] on a fresh build.
pub fn run_trial_pooled(
    blueprint: &NodeBlueprint,
    spec: &TrialSpec,
    horizon: Instant,
) -> TrialOutcome {
    NODE_POOL.with(|pool| {
        let mut slot = pool.borrow_mut();
        match slot.as_mut() {
            Some(s) if s.stamp == blueprint.stamp() => {
                s.node.reset();
                s.injector.reload([spec.injection.clone()]);
            }
            _ => {
                *slot = Some(PoolSlot::build(
                    blueprint,
                    Injector::new([spec.injection.clone()]),
                ));
            }
        }
        let s = slot.as_mut().expect("pool populated above");
        run_trial_on(&mut s.node, &mut s.injector, spec, horizon)
    })
}

/// The shared trial body: starts the (fresh or just-reset) node, runs the
/// already-loaded injector to the horizon and extracts the detector
/// outcome.
fn run_trial_on(
    node: &mut CentralNode,
    injector: &mut Injector,
    spec: &TrialSpec,
    horizon: Instant,
) -> TrialOutcome {
    node.start();
    node.run_until(horizon, injector);
    extract_outcome(node, spec)
}

/// Reads the detector outcome of a finished trial off the node's fault
/// log, hardware watchdog and baseline-monitor statistics. The outcome's
/// class tag is the process-interned handle, so stamping it allocates
/// nothing.
fn extract_outcome(node: &CentralNode, spec: &TrialSpec) -> TrialOutcome {
    let from = spec.injection.from;
    let mut outcome = TrialOutcome::new(spec.injection.class.interned_tag());
    for fault in &node.world.fault_log {
        if fault.at >= from {
            outcome.record(
                detector_of(fault.kind),
                fault.at.saturating_duration_since(from),
            );
        }
    }
    if let Some(expiry) = node.world.hw_watchdog.first_expiry() {
        if expiry >= from {
            outcome.record(DetectorId::HwWatchdog, expiry.saturating_duration_since(from));
        }
    }
    if let Some((_, at)) = node.deadline_monitor.stats().first_detection() {
        if at >= from {
            outcome.record(
                DetectorId::DeadlineMonitor,
                at.saturating_duration_since(from),
            );
        }
    }
    if let Some((_, at)) = node.exec_monitor.stats().first_detection() {
        if at >= from {
            outcome.record(
                DetectorId::ExecTimeMonitor,
                at.saturating_duration_since(from),
            );
        }
    }
    outcome
}

/// The first instant at which the baseline per-millisecond tick loop of
/// [`CentralNode::run_until`] would call `Injector::tick` with `now >= at`
/// — ticks land on every whole millisecond up to and including the
/// (whole-millisecond) horizon.
fn ceil_to_tick(at: Instant) -> Instant {
    Instant::from_micros(at.as_micros().div_ceil(1_000) * 1_000)
}

/// The fork point of a trial: the tick instant at which the baseline loop
/// would arm its injection, clamped to the horizon (an injection past the
/// horizon never arms — golden trials fork at the horizon itself).
/// Everything before the fork is injection-independent golden prefix.
fn fork_instant(spec: &TrialSpec, horizon: Instant) -> Instant {
    ceil_to_tick(spec.injection.from).min(horizon)
}

/// The tick instant at which the baseline loop would disarm the
/// injection: the first tick at or after `to` that comes *after* the
/// arming tick (one `Injector::tick` call performs at most one phase
/// transition per injection). `None` when the injection stays armed to
/// the horizon (or never arms).
fn disarm_instant(spec: &TrialSpec, fork: Instant, horizon: Instant) -> Option<Instant> {
    if ceil_to_tick(spec.injection.from) > horizon {
        return None; // never armed
    }
    let step = Duration::from_millis(1);
    let disarm = ceil_to_tick(spec.injection.to).max(fork + step);
    (disarm <= horizon).then_some(disarm)
}

/// Key identifying a trial's *effective* tail behavior: the error class
/// plus the tick instants at which the baseline loop would arm and disarm
/// it. `Injector::tick` only acts on whole-tick phase edges and the node
/// never reads a trial's seed or raw (sub-tick) window bounds, so two
/// trials with equal keys simulate identically from the fork onward —
/// only the latency baseline (`injection.from`) differs between them.
type TailKey = (ErrorClass, Instant, Option<Instant>);

/// `true` when no detector has fired on `node` yet — i.e. the golden
/// prefix up to the current instant is detection-free. Only then may a
/// trial tail be memoized: every detection instant of such a tail is at
/// or after the fork tick, hence at or after *any* sub-tick `from` that
/// maps to this fork, so [`extract_outcome`]'s `at >= from` filter is
/// vacuous and its latencies are a constant offset of the absolute
/// instants cached by [`absolute_detections`].
fn prefix_is_detection_free(node: &CentralNode) -> bool {
    node.world.fault_log.is_empty()
        && node.world.hw_watchdog.first_expiry().is_none()
        && node.deadline_monitor.stats().first_detection().is_none()
        && node.exec_monitor.stats().first_detection().is_none()
}

/// The per-detector *first* detection instants of a finished trial, in
/// absolute simulated time. This is [`extract_outcome`] before the
/// subtraction of the injection start: `TrialOutcome::record` keeps the
/// earliest latency per detector, and subtracting a constant commutes
/// with taking the minimum, so replaying this list through
/// [`outcome_from_cached`] reproduces the extracted outcome exactly.
fn absolute_detections(node: &CentralNode) -> Vec<(DetectorId, Instant)> {
    let mut firsts: std::collections::BTreeMap<DetectorId, Instant> =
        std::collections::BTreeMap::new();
    let mut note = |detector: DetectorId, at: Instant| {
        firsts
            .entry(detector)
            .and_modify(|first| {
                if at < *first {
                    *first = at;
                }
            })
            .or_insert(at);
    };
    for fault in &node.world.fault_log {
        note(detector_of(fault.kind), fault.at);
    }
    if let Some(expiry) = node.world.hw_watchdog.first_expiry() {
        note(DetectorId::HwWatchdog, expiry);
    }
    if let Some((_, at)) = node.deadline_monitor.stats().first_detection() {
        note(DetectorId::DeadlineMonitor, at);
    }
    if let Some((_, at)) = node.exec_monitor.stats().first_detection() {
        note(DetectorId::ExecTimeMonitor, at);
    }
    firsts.into_iter().collect()
}

/// Rebuilds a [`TrialOutcome`] for `spec` from the cached absolute
/// detection instants of a behaviorally identical trial.
fn outcome_from_cached(cached: &[(DetectorId, Instant)], spec: &TrialSpec) -> TrialOutcome {
    let from = spec.injection.from;
    let mut outcome = TrialOutcome::new(spec.injection.class.interned_tag());
    for &(detector, at) in cached {
        outcome.record(detector, at.saturating_duration_since(from));
    }
    outcome
}

/// Runs one trial's tail on a node already restored to this trial's fork
/// instant, with `injector` freshly loaded: ticks once at the fork (the
/// arming tick), runs uninterrupted to the disarm tick, ticks, then runs
/// uninterrupted to the horizon. Exactly three kernel re-entries replace
/// the baseline's ~one-per-millisecond, and every skipped tick is provably
/// a no-op (`Injector::tick` only acts on the Pending→Armed and
/// Armed→Done edges), so the outcome is bit-identical to
/// [`CentralNode::run_until`] over the same window.
fn run_trial_tail(
    node: &mut CentralNode,
    injector: &mut Injector,
    spec: &TrialSpec,
    horizon: Instant,
) -> TrialOutcome {
    injector.attach_obs(node.world.obs.clone());
    let fork = node.os.now();
    // Macro-stepping stands down while the injection window is armed: the
    // armed injector rewrites runnable controls, state the closed-form
    // hyperperiod delta does not cover. The golden prefix and the
    // post-disarm tail remain eligible.
    let arms = ceil_to_tick(spec.injection.from) <= horizon;
    injector.tick(fork, &mut node.world.controls, &mut node.os);
    node.set_injection_armed(arms);
    if let Some(disarm) = disarm_instant(spec, fork, horizon) {
        node.run_span(disarm);
        injector.tick(disarm, &mut node.world.controls, &mut node.os);
        node.set_injection_armed(false);
    }
    if node.os.now() < horizon {
        node.run_span(horizon);
        injector.tick(horizon, &mut node.world.controls, &mut node.os);
    }
    node.set_injection_armed(false);
    extract_outcome(node, spec)
}

/// Runs one contiguous chunk of campaign trials on this worker's pooled
/// node with **golden-run prefix checkpointing**: the chunk is processed
/// in injection-time order, the pooled node is advanced once along the
/// golden (injection-free) prefix, and the pooled [`NodeSnapshot`] buffer
/// is refilled at each distinct fork instant; every trial forks from its
/// checkpoint instead of re-simulating the prefix. Restores and captures
/// go through the delta-snapshot protocol (`easis_sim::snap`): a trial
/// tail only dirties the regions it actually touched, so the rewind back
/// to the checkpoint copies O(dirty) state, not the whole node. Outcomes
/// are returned in spec order, so the merged stats are bit-identical to
/// the per-trial runners.
///
/// Two campaign-wide caches (shared across chunks and workers, see
/// [`CampaignCaches`]) sit on top:
///
/// * **Shared prefix checkpoints** — when a chunk would have to simulate
///   more than [`PREFIX_PUBLISH_SPACING`] of golden prefix, it first looks
///   for a published checkpoint at or before the fork and restores from
///   that (exact: an alien-lineage restore takes the full path), then
///   publishes the checkpoint it captured so the next worker skips the
///   same stretch.
/// * **Equivalence collapsing** (the fault-list collapsing of hardware
///   fault-injection campaigns): trials that share a [`TailKey`] — same
///   error class, same arming tick, same disarm tick — are simulated
///   once; later twins synthesize their outcome from the cached
///   per-detector detection instants. The cache is only fed while the
///   golden prefix is detection-free (see [`prefix_is_detection_free`]),
///   which makes the synthesis provably exact, and a campaign whose
///   parameters never repeat simply never hits.
fn run_chunk_forked(
    blueprint: &NodeBlueprint,
    caches: &CampaignCaches,
    specs: &[TrialSpec],
    horizon: Instant,
) -> Vec<TrialOutcome> {
    NODE_POOL.with(|pool| {
        let mut slot = pool.borrow_mut();
        match slot.as_mut() {
            Some(s) if s.stamp == blueprint.stamp() => {
                s.node.reset();
            }
            _ => {
                *slot = Some(PoolSlot::build(blueprint, Injector::none()));
            }
        }
        let s = slot.as_mut().expect("pool populated above");
        s.node.start();

        // Group trials by fork instant (stable within a fork, so equal
        // forks replay in spec order — not that order could matter: each
        // trial starts from the same restored checkpoint).
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by_key(|&i| fork_instant(&specs[i], horizon));

        let mut outcomes: Vec<Option<TrialOutcome>> = specs.iter().map(|_| None).collect();
        for &i in &order {
            let spec = &specs[i];
            let fork = fork_instant(spec, horizon);
            let key: TailKey = (
                spec.injection.class.clone(),
                fork,
                disarm_instant(spec, fork, horizon),
            );
            // A behaviorally identical trial already ran (here or on
            // another worker): synthesize the outcome without touching
            // the node.
            let cached = caches.memo.lock().expect("memo lock").get(&key).cloned();
            if let Some(cached) = cached {
                outcomes[i] = Some(outcome_from_cached(&cached, spec));
                continue;
            }
            if s.ckpt_at == Some(fork) {
                // The common case: another trial of this fork instant just
                // ran — rewind the dirty tail, O(dirty).
                s.node.restore_from(&s.ckpt);
            } else {
                // The fork moved. Rewind to the worker's own checkpoint if
                // it lies at or before the fork (forks ascend within a
                // chunk, but a *new* chunk may fork earlier than the last
                // chunk's final checkpoint — such a stale buffer must not
                // be used as a base), and close a large remaining gap from
                // a checkpoint another worker already published.
                let local_at = s.ckpt_at.filter(|&at| at <= fork);
                let gap = fork.saturating_duration_since(local_at.unwrap_or(Instant::ZERO));
                let published = if gap > PREFIX_PUBLISH_SPACING {
                    let prefix = caches.prefix.lock().expect("prefix lock");
                    prefix
                        .range((blueprint.stamp(), Instant::ZERO)..=(blueprint.stamp(), fork))
                        .next_back()
                        .filter(|((_, at), _)| Some(*at) > local_at)
                        .map(|(_, snap)| Arc::clone(snap))
                } else {
                    None
                };
                match (&published, local_at) {
                    (Some(snap), _) => {
                        s.node.restore_from(snap);
                    }
                    (None, Some(_)) => {
                        s.node.restore_from(&s.ckpt);
                    }
                    // Cold start: the node sits freshly started at t=0.
                    (None, None) => {}
                }
                let base = s.node.os.now();
                if base < fork {
                    s.node.run_span(fork);
                }
                s.node.snapshot_into(&mut s.ckpt);
                s.ckpt_at = Some(fork);
                // This chunk just simulated a stretch of golden prefix no
                // published checkpoint covered — publish ours so other
                // workers skip it. The spacing bound keeps publications
                // rare (a handful per campaign), so the extra full
                // capture and the lock stay off the per-trial path.
                if fork.saturating_duration_since(base) > PREFIX_PUBLISH_SPACING {
                    let snap = Arc::new(s.node.snapshot());
                    caches
                        .prefix
                        .lock()
                        .expect("prefix lock")
                        .entry((blueprint.stamp(), fork))
                        .or_insert(snap);
                }
            }
            let fork_clean = prefix_is_detection_free(&s.node);
            s.injector.reload([spec.injection.clone()]);
            let outcome = run_trial_tail(&mut s.node, &mut s.injector, spec, horizon);
            if fork_clean {
                caches
                    .memo
                    .lock()
                    .expect("memo lock")
                    .entry(key)
                    .or_insert_with(|| Arc::new(absolute_detections(&s.node)));
            }
            outcomes[i] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every ordered index ran"))
            .collect()
    })
}

/// Runs every trial of `plan` on the given executor with golden-run
/// prefix checkpointing (`run_chunk_forked`): the watchdog configuration
/// is compiled once into a [`NodeBlueprint`], each worker pools one node
/// built from it, and within each chunk the injection-free prefix is
/// simulated once and delta-snapshot-forked per trial, with golden
/// checkpoints shared across workers through the campaign-wide caches
/// created for this call. Restore is exact — the prefix-reuse≡pooled property
/// test and the campaign golden pin that any worker count produces stats
/// bit-identical to a serial per-trial run.
pub fn run_plan(
    plan: &easis_injection::campaign::CampaignPlan,
    horizon: Instant,
    executor: &easis_injection::executor::CampaignExecutor,
) -> easis_injection::stats::CampaignStats {
    let blueprint = NodeBlueprint::compile(campaign_node_config());
    let caches = CampaignCaches::default();
    executor.run_chunked(plan, |specs, _base| {
        run_chunk_forked(&blueprint, &caches, specs, horizon)
    })
}

/// Runs every trial of `plan` with per-worker node pooling but without
/// prefix checkpointing: every trial re-simulates its golden prefix under
/// the baseline per-millisecond tick loop ([`run_trial_pooled`]). This is
/// the engine [`run_plan`] is measured against in `campaign_bench`'s
/// `prefix_reuse` probe; outcomes are bit-identical.
pub fn run_plan_pooled(
    plan: &easis_injection::campaign::CampaignPlan,
    horizon: Instant,
    executor: &easis_injection::executor::CampaignExecutor,
) -> easis_injection::stats::CampaignStats {
    let blueprint = NodeBlueprint::compile(campaign_node_config());
    executor.run(plan, |spec| run_trial_pooled(&blueprint, spec, horizon))
}

/// Runs every trial of `plan` the way campaigns ran before the throughput
/// engine: each trial builds its own node from scratch — watchdog config
/// compile included — with the kernel execution trace recording (the
/// pre-engine node had no way to switch it off). No pooling, no shared
/// compiled config. Kept as the baseline `campaign_bench` measures the
/// engine against; the outcomes are bit-identical to [`run_plan`] (the
/// trace never feeds a trial outcome), which the bench asserts.
pub fn run_plan_fresh(
    plan: &easis_injection::campaign::CampaignPlan,
    horizon: Instant,
    executor: &easis_injection::executor::CampaignExecutor,
) -> easis_injection::stats::CampaignStats {
    let config = NodeConfig {
        kernel_trace: true,
        ..campaign_node_config()
    };
    executor.run(plan, move |spec| {
        let mut node = CentralNode::build(config.clone());
        let mut injector = Injector::new([spec.injection.clone()]);
        run_trial_on(&mut node, &mut injector, spec, horizon)
    })
}

/// A quick health check of a golden (fault-free) run: returns `true` when
/// no detector fired over the horizon. Used by tests and as the campaign's
/// false-positive control.
pub fn golden_run_is_clean(horizon: Instant) -> bool {
    let mut node = CentralNode::build(NodeConfig::default());
    node.start();
    let mut injector = Injector::none();
    node.run_until(horizon, &mut injector);
    node.world.fault_log.is_empty()
        && node.world.hw_watchdog.expirations() == 0
        && node.deadline_monitor.stats().total() == 0
        && node.exec_monitor.stats().total() == 0
        && node.world.watchdog.ecu_state() == HealthState::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_stays_clean() {
        assert!(golden_run_is_clean(ms(500)));
    }

    #[test]
    fn fig5_shows_aliveness_errors_only_inside_the_window() {
        let series = fig5_aliveness(3_000_000); // 3× slower task
        let am = series.series("AM Result").expect("AM series");
        // No errors before the injection…
        let before: f64 = am
            .samples()
            .iter()
            .filter(|s| s.at < ms(1_000))
            .map(|s| s.value)
            .fold(0.0, f64::max);
        assert_eq!(before, 0.0);
        // …a growing count inside it…
        let during = am.samples().iter().rfind(|s| s.at < ms(2_000)).unwrap();
        assert!(during.value >= 10.0, "AM Result during: {}", during.value);
        // …and no further growth after disarm (plus one residual window).
        let last = am.last_value().unwrap();
        let at_2100: f64 = am
            .samples()
            .iter()
            .rfind(|s| s.at <= ms(2_100))
            .unwrap()
            .value;
        assert!(last - at_2100 <= 1.0, "post-window growth: {at_2100} → {last}");
    }

    #[test]
    fn fig6_pfc_crosses_threshold_before_aliveness_accumulates() {
        let series = fig6_collaboration();
        let pfc = series.series("PFC Result").expect("PFC series");
        let am = series.series("AM Result").expect("AM series");
        let task = series.series("Task State").expect("task series");
        // Task flipped to faulty when PFC reached 3.
        let faulty_at = task.first_reached(1.0).expect("task went faulty");
        let pfc_at_flip = pfc
            .samples()
            .iter()
            .rfind(|s| s.at <= faulty_at)
            .unwrap()
            .value;
        assert!((3.0..=4.0).contains(&pfc_at_flip), "PFC at flip: {pfc_at_flip}");
        // Exactly one accumulated aliveness error, as in the paper.
        assert_eq!(am.last_value().unwrap(), 1.0);
        // PFC freezes after deactivation.
        assert!(pfc.last_value().unwrap() <= pfc_at_flip + 1.0);
    }

    #[test]
    fn arrival_rate_errors_step_during_duplicate_dispatch() {
        let series = exp_arrival_rate(2);
        let arm = series.series("ARM Result").expect("ARM series");
        assert_eq!(
            arm.samples()
                .iter()
                .filter(|s| s.at < ms(1_000))
                .map(|s| s.value)
                .fold(0.0, f64::max),
            0.0
        );
        assert!(arm.last_value().unwrap() >= 50.0, "{}", arm.last_value().unwrap());
    }

    #[test]
    fn program_flow_errors_attributed_to_observed_successor() {
        let series = exp_program_flow();
        let total = series.series("PFC Result").unwrap().last_value().unwrap();
        assert!(total >= 50.0, "PFC total {total}");
    }

    #[test]
    fn heartbeat_loss_trial_is_caught_only_by_the_software_watchdog() {
        use easis_injection::injector::{ErrorClass, Injection};
        let spec = TrialSpec {
            seed: 1,
            injection: Injection::new(
                ErrorClass::HeartbeatLoss {
                    runnable: easis_rte::runnable::RunnableId(4), // SAFE_CC in full node
                },
                ms(300),
                ms(600),
            ),
        };
        let outcome = run_trial(&spec, ms(1_000));
        assert!(outcome.detected_by(DetectorId::SwAliveness));
        assert!(!outcome.detected_by(DetectorId::HwWatchdog));
        assert!(!outcome.detected_by(DetectorId::DeadlineMonitor));
        assert!(!outcome.detected_by(DetectorId::ExecTimeMonitor));
    }

    #[test]
    fn forked_pooled_and_fresh_runners_agree() {
        use easis_injection::campaign::CampaignBuilder;
        use easis_injection::executor::CampaignExecutor;
        let horizon = ms(700);
        let plan =
            CampaignBuilder::new(23, (3..6).map(easis_rte::runnable::RunnableId).collect())
                .loop_targets(vec![easis_rte::runnable::RunnableId(4)])
                .trials_per_class(2)
                .window(ms(200), easis_sim::time::Duration::from_millis(200))
                .with_horizon(horizon)
                .build();
        let exec = CampaignExecutor::serial();
        let forked = run_plan(&plan, horizon, &exec);
        let pooled = run_plan_pooled(&plan, horizon, &exec);
        let fresh = run_plan_fresh(&plan, horizon, &exec);
        assert_eq!(forked, pooled);
        assert_eq!(forked, fresh);
    }

    #[test]
    fn forked_runner_handles_window_edges_like_the_baseline() {
        use easis_injection::campaign::CampaignPlan;
        use easis_injection::executor::CampaignExecutor;
        let horizon = ms(600);
        let target = easis_rte::runnable::RunnableId(4);
        let mk = |from_us: u64, to_us: u64| TrialSpec {
            seed: 5,
            injection: Injection::new(
                ErrorClass::HeartbeatLoss { runnable: target },
                Instant::from_micros(from_us),
                Instant::from_micros(to_us),
            ),
        };
        let plan = CampaignPlan::from_trials(vec![
            mk(300_500, 300_900), // sub-millisecond window between ticks
            mk(250_000, 250_001), // disarm lands on the tick after arming
            mk(400_000, 900_000), // stays armed through the horizon
            mk(599_500, 800_000), // arms on the final tick
            mk(700_000, 800_000), // entirely past the horizon (golden)
            mk(250_000, 450_000), // plain whole-millisecond window
        ]);
        let exec = CampaignExecutor::serial();
        assert_eq!(
            run_plan(&plan, horizon, &exec),
            run_plan_pooled(&plan, horizon, &exec)
        );
    }

    #[test]
    fn run_plan_is_identical_serial_and_parallel() {
        use easis_injection::campaign::CampaignBuilder;
        use easis_injection::executor::CampaignExecutor;
        let horizon = ms(700);
        let plan = CampaignBuilder::new(11, (3..6).map(easis_rte::runnable::RunnableId).collect())
            .loop_targets(vec![easis_rte::runnable::RunnableId(4)])
            .trials_per_class(1)
            .window(ms(200), easis_sim::time::Duration::from_millis(200))
            .with_horizon(horizon)
            .build();
        let serial = run_plan(&plan, horizon, &CampaignExecutor::serial());
        let parallel = run_plan(&plan, horizon, &CampaignExecutor::new(2));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), plan.len());
    }

    #[test]
    fn extreme_slowdown_trial_is_caught_by_task_monitors_too() {
        use easis_injection::injector::{ErrorClass, Injection};
        let spec = TrialSpec {
            seed: 2,
            injection: Injection::new(
                ErrorClass::ExecutionSlowdown {
                    runnable: easis_rte::runnable::RunnableId(4),
                    scale_ppm: 300_000_000, // 300× ≈ 36ms for SAFE_CC
                },
                ms(300),
                ms(600),
            ),
        };
        let outcome = run_trial(&spec, ms(1_000));
        assert!(outcome.detected_by(DetectorId::SwAliveness));
        assert!(outcome.detected_by(DetectorId::DeadlineMonitor));
        assert!(outcome.detected_by(DetectorId::ExecTimeMonitor));
    }
}


//! # easis-validator — the EASIS architecture validator
//!
//! The integration crate reproducing the paper's §4 validation setup: the
//! central node (AutoBox) hosting the ISS applications together with the
//! Software Watchdog and the Fault Management Framework, the surrounding
//! sensor/actuator/driving-dynamics nodes, the CAN/FlexRay domains with
//! the gateway, and the scenario library that regenerates the evaluation.
//!
//! * [`world`] — the central node's shared state;
//! * [`node`] — central-node assembly (tasks, alarms, fault hypotheses,
//!   baselines, treatment execution) and the hyperperiod macro-stepping
//!   engine behind [`node::CentralNode::run_span`];
//! * [`ffwd`] — process-wide macro-stepping switches and metrics
//!   (`EASIS_FASTFORWARD`, campaign-bench aggregation);
//! * [`scenario`] — the evaluation scenarios (Figure 5, Figure 6,
//!   arrival-rate and program-flow tests, campaign trials);
//! * [`hil`] — the full hardware-in-the-loop assembly with vehicle plant
//!   and buses;
//! * [`distributed`] — the two-ECU variant (SafeSpeed node on FlexRay,
//!   SafeLane node on CAN) with interrupt-driven frame reception.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod ffwd;
pub mod hil;
pub mod node;
pub mod scenario;
pub mod world;

pub use distributed::DistributedValidator;
pub use node::{CentralNode, NodeConfig};
pub use world::CentralWorld;

//! The central node's world.
//!
//! [`CentralWorld`] is the shared state of the validator's central node
//! (the AutoBox in the paper): the signal database and manipulation
//! controls of the runnable layer, plus the L3 dependability services —
//! Software Watchdog, Fault Management Framework — and the L1 hardware
//! watchdog. Heartbeat glue calls route straight into the watchdog
//! service, exactly the first interface of paper §4.4.

use easis_baselines::hw_watchdog::HardwareWatchdog;
use easis_fmf::framework::FaultManagementFramework;
use easis_fmf::policy::TreatmentAction;
use easis_obs::ObsSink;
use easis_rte::control::RunnableControls;
use easis_rte::mapping::ApplicationId;
use easis_rte::runnable::RunnableId;
use easis_rte::signal::SignalDb;
use easis_rte::world::EcuWorld;
use easis_sim::time::{Duration, Instant};
use easis_watchdog::SoftwareWatchdog;
use std::collections::BTreeMap;

/// Shared state of the central node.
#[derive(Debug)]
pub struct CentralWorld {
    /// Signal database (inter-runnable communication).
    pub signals: SignalDb,
    /// ControlDesk-style manipulation controls (error injection surface).
    pub controls: RunnableControls,
    /// The Software Watchdog dependability service (L3).
    pub watchdog: SoftwareWatchdog,
    /// The Fault Management Framework (L3).
    pub fmf: FaultManagementFramework,
    /// The ECU hardware watchdog (L1 baseline).
    pub hw_watchdog: HardwareWatchdog,
    /// Raw alarm ids of each application's activation alarm (used by the
    /// terminate treatment to stop the activation source).
    pub app_alarms: BTreeMap<ApplicationId, u32>,
    /// Internal-signal prefix of each application (restart treatment
    /// resets those signals to their initial values).
    pub app_signal_prefixes: BTreeMap<ApplicationId, &'static str>,
    /// Snapshot of every signal's initial value, taken at node start.
    pub initial_signals: Vec<f64>,
    /// Every treatment the node executed, in order.
    pub treatments: Vec<TreatmentAction>,
    /// ECU software resets performed.
    pub ecu_resets: u32,
    /// All detected faults, retained for experiment scraping (the service
    /// outboxes are drained into the FMF each watchdog cycle).
    pub fault_log: Vec<easis_watchdog::report::DetectedFault>,
    /// Receive mailbox of the node's communication controller: the bus
    /// integration pushes `(raw frame id, payload)` here and raises the RX
    /// interrupt; the ISR handler drains it into the signal database.
    pub rx_mailbox: Vec<(u16, Vec<u8>)>,
    /// The node's observability sink: one handle shared by the watchdog,
    /// the FMF and (via [`crate::node::CentralNode::run_until`]) the
    /// injector. Disabled by default — recording is then a no-op.
    pub obs: ObsSink,
}

impl CentralWorld {
    /// Resets every signal whose name starts with `prefix` back to its
    /// initial value — the state-restoration half of an application
    /// restart (a freshly loaded component starts from initialised RAM).
    pub fn reset_signals_with_prefix(&mut self, prefix: &str, now: Instant) {
        let targets: Vec<(easis_rte::signal::SignalId, f64)> = self
            .signals
            .iter()
            .filter(|(id, name, _)| {
                name.starts_with(prefix) && id.index() < self.initial_signals.len()
            })
            .map(|(id, _, _)| (id, self.initial_signals[id.index()]))
            .collect();
        for (id, initial) in targets {
            self.signals.write(id, initial, now);
        }
    }

    /// Resets the world to its just-built-and-started state: signals back
    /// to their initial snapshot, controls nominal (global CPU scale
    /// preserved), every dependability service reset, treatment/fault logs
    /// and the RX mailbox cleared. The static wiring — app alarm map,
    /// signal prefixes, the initial-signal snapshot itself and the
    /// observability sink — is kept. Part of the world-pooling contract:
    /// after `reset()` a trial on this world is byte-identical to one on a
    /// freshly built world.
    pub fn reset(&mut self) {
        let initial = std::mem::take(&mut self.initial_signals);
        self.signals.restore(&initial);
        self.initial_signals = initial;
        self.controls.reset();
        self.watchdog.reset();
        self.fmf.reset();
        self.hw_watchdog.reset();
        self.treatments.clear();
        self.ecu_resets = 0;
        self.fault_log.clear();
        self.rx_mailbox.clear();
    }

    /// Assembles the world around a configured watchdog service.
    pub fn new(
        signals: SignalDb,
        watchdog: SoftwareWatchdog,
        fmf: FaultManagementFramework,
        hw_timeout: Duration,
    ) -> Self {
        CentralWorld {
            signals,
            controls: RunnableControls::new(),
            watchdog,
            fmf,
            hw_watchdog: HardwareWatchdog::new(hw_timeout),
            app_alarms: BTreeMap::new(),
            app_signal_prefixes: BTreeMap::new(),
            initial_signals: Vec::new(),
            treatments: Vec::new(),
            ecu_resets: 0,
            fault_log: Vec::new(),
            rx_mailbox: Vec::new(),
            obs: ObsSink::disabled(),
        }
    }
}

impl EcuWorld for CentralWorld {
    fn signals(&self) -> &SignalDb {
        &self.signals
    }
    fn signals_mut(&mut self) -> &mut SignalDb {
        &mut self.signals
    }
    fn controls(&self) -> &RunnableControls {
        &self.controls
    }
    fn indicate_heartbeat(&mut self, runnable: RunnableId, now: Instant) {
        self.watchdog.heartbeat(runnable, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_sim::time::Duration;
    use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};

    #[test]
    fn heartbeats_route_into_the_watchdog() {
        let config = WatchdogConfig::builder(Duration::from_millis(10))
            .monitor(RunnableHypothesis::new(RunnableId(0)).alive_at_least(1, 1))
            .build();
        let mut world = CentralWorld::new(
            SignalDb::new(),
            SoftwareWatchdog::new(config),
            FaultManagementFramework::default(),
            Duration::from_millis(50),
        );
        world.indicate_heartbeat(RunnableId(0), Instant::from_millis(5));
        assert_eq!(world.watchdog.counters(RunnableId(0)).unwrap().ac, 1);
    }
}

//! Property-based tests of the Fault Management Framework: DTC memory
//! invariants and treatment escalation monotonicity.

use easis_fmf::dtc::{DtcCode, DtcStore, FreezeFrame};
use easis_fmf::framework::FaultManagementFramework;
use easis_fmf::policy::{Treatment, TreatmentPolicy};
use easis_fmf::record::SeverityMap;
use easis_rte::mapping::ApplicationId;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use easis_watchdog::report::{DetectedFault, FaultKind, StateChange};
use proptest::prelude::*;

fn fault(runnable: u32, kind_idx: usize, ms: u64) -> DetectedFault {
    DetectedFault {
        at: Instant::from_millis(ms),
        runnable: RunnableId(runnable),
        kind: FaultKind::ALL[kind_idx % 3],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DTC store's occurrence counters sum to the number of recorded
    /// faults, and codes biject with (runnable, kind) pairs.
    #[test]
    fn dtc_occurrences_conserve_recordings(
        events in prop::collection::vec((0u32..6, 0usize..3), 1..150),
    ) {
        let mut store = DtcStore::new(3, 1_000);
        for (i, &(r, k)) in events.iter().enumerate() {
            store.record(fault(r, k, i as u64), FreezeFrame::default());
        }
        let total: u32 = store.iter().map(|rec| rec.occurrences).sum();
        prop_assert_eq!(total as usize, events.len());
        let distinct: std::collections::BTreeSet<(u32, usize)> =
            events.iter().copied().map(|(r, k)| (r, k % 3)).collect();
        prop_assert_eq!(store.len(), distinct.len());
        // Code decoding round-trips.
        for rec in store.iter() {
            let code = DtcCode::of(rec.code.runnable(), rec.code.kind().unwrap());
            prop_assert_eq!(code, rec.code);
        }
    }

    /// first_seen ≤ last_seen always, and occurrences ≥ 1.
    #[test]
    fn dtc_timestamps_are_ordered(
        times in prop::collection::vec(0u64..10_000, 1..60),
    ) {
        let mut store = DtcStore::new(2, 1_000);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for &t in &sorted {
            store.record(fault(0, 0, t), FreezeFrame::default());
        }
        let rec = store.iter().next().unwrap();
        prop_assert!(rec.first_seen <= rec.last_seen);
        prop_assert_eq!(rec.occurrences as usize, sorted.len());
        prop_assert_eq!(rec.first_seen, Instant::from_millis(sorted[0]));
    }

    /// Treatment escalation is monotone: restarts never resume after
    /// termination, and restart count never exceeds the budget.
    #[test]
    fn escalation_is_monotone(budget in 0u32..6, episodes in 1u32..15) {
        let policy = TreatmentPolicy {
            max_app_restarts: budget,
            reset_on_ecu_faulty: false,
            treat: true,
        };
        let mut fmf = FaultManagementFramework::new(SeverityMap::default(), policy);
        let app = ApplicationId(0);
        let mut seen_terminate = false;
        for i in 0..episodes {
            fmf.ingest_state_change(StateChange::ApplicationFaulty {
                app,
                at: Instant::from_millis(i as u64 * 10),
            });
            for action in fmf.take_actions() {
                match action.treatment {
                    Treatment::RestartApplication(_) => {
                        prop_assert!(!seen_terminate, "restart after terminate");
                    }
                    Treatment::TerminateApplication(_) => seen_terminate = true,
                    _ => {}
                }
            }
        }
        prop_assert!(fmf.restarts_of(app) <= budget);
        prop_assert_eq!(seen_terminate, episodes > budget);
    }

    /// The observe-only policy never produces an action, whatever arrives.
    #[test]
    fn observe_only_never_acts(events in prop::collection::vec(0u32..3, 1..40)) {
        let mut fmf = FaultManagementFramework::new(
            SeverityMap::default(),
            TreatmentPolicy::observe_only(),
        );
        for (i, &e) in events.iter().enumerate() {
            let at = Instant::from_millis(i as u64);
            match e {
                0 => fmf.ingest_state_change(StateChange::ApplicationFaulty {
                    app: ApplicationId(0),
                    at,
                }),
                1 => fmf.ingest_state_change(StateChange::EcuFaulty { at }),
                _ => fmf.ingest_fault(fault(0, 0, i as u64)),
            }
        }
        prop_assert_eq!(fmf.pending_actions(), 0);
        prop_assert_eq!(fmf.ecu_resets(), 0);
    }
}

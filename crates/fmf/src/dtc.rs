//! Diagnostic trouble code (DTC) fault memory.
//!
//! Production automotive fault management persists detections as DTCs with
//! occurrence counters, status bits and a freeze frame of the conditions at
//! first detection — this is what the workshop tester reads out. The EASIS
//! Fault Management Framework "gathers the information on the detected
//! faults"; [`DtcStore`] is that gathered memory, following the ISO 14229
//! status-bit spirit (pending → confirmed → aged out).

use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use easis_watchdog::report::{DetectedFault, FaultKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A diagnostic trouble code. Encodes the fault source and kind:
/// `0x94_RRRR_KK` with `RRRR` the runnable id and `KK` the fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DtcCode(pub u32);

impl DtcCode {
    /// Derives the code of a watchdog fault.
    pub fn of(runnable: RunnableId, kind: FaultKind) -> Self {
        let kind_code = match kind {
            FaultKind::Aliveness => 0x01,
            FaultKind::ArrivalRate => 0x02,
            FaultKind::ProgramFlow => 0x03,
        };
        DtcCode(0x9400_0000 | ((runnable.0 & 0xFFFF) << 8) | kind_code)
    }

    /// The encoded runnable.
    pub fn runnable(self) -> RunnableId {
        RunnableId((self.0 >> 8) & 0xFFFF)
    }

    /// The encoded fault kind, if valid.
    pub fn kind(self) -> Option<FaultKind> {
        match self.0 & 0xFF {
            0x01 => Some(FaultKind::Aliveness),
            0x02 => Some(FaultKind::ArrivalRate),
            0x03 => Some(FaultKind::ProgramFlow),
            _ => None,
        }
    }
}

impl fmt::Display for DtcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DTC-{:08X}", self.0)
    }
}

/// Maturity of a stored code (ISO 14229 spirit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DtcStatus {
    /// Seen, but below the confirmation threshold.
    #[default]
    Pending,
    /// Confirmed (threshold reached); survives until cleared or aged out.
    Confirmed,
}

/// Environmental snapshot captured at first occurrence.
///
/// Condition names are interned `Arc<str>`s: platforms capture the same
/// condition set on every faulty cycle, so cloning a frame bumps refcounts
/// instead of re-allocating the name strings (the campaign hot path ingests
/// hundreds of frames per faulty trial).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FreezeFrame {
    /// Named operating-condition values (e.g. vehicle speed).
    pub conditions: Vec<(std::sync::Arc<str>, f64)>,
}

/// One stored code.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct DtcRecord {
    /// The code.
    pub code: DtcCode,
    /// First occurrence time.
    pub first_seen: Instant,
    /// Latest occurrence time.
    pub last_seen: Instant,
    /// Occurrence counter.
    pub occurrences: u32,
    /// Pending / confirmed.
    pub status: DtcStatus,
    /// Conditions at first occurrence.
    pub freeze_frame: FreezeFrame,
    /// Healthy operating cycles since the last occurrence (for aging).
    healthy_cycles: u32,
}

impl Clone for DtcRecord {
    fn clone(&self) -> Self {
        DtcRecord {
            code: self.code,
            first_seen: self.first_seen,
            last_seen: self.last_seen,
            occurrences: self.occurrences,
            status: self.status,
            freeze_frame: self.freeze_frame.clone(),
            healthy_cycles: self.healthy_cycles,
        }
    }

    // Field-wise so pooled records rewrite their freeze-frame buffer in
    // place (condition names are `Arc<str>`s: cloning an element bumps a
    // refcount, never re-allocates the string).
    fn clone_from(&mut self, source: &Self) {
        self.code = source.code;
        self.first_seen = source.first_seen;
        self.last_seen = source.last_seen;
        self.occurrences = source.occurrences;
        self.status = source.status;
        self.freeze_frame
            .conditions
            .clone_from(&source.freeze_frame.conditions);
        self.healthy_cycles = source.healthy_cycles;
    }
}

/// The fault memory.
///
/// # Examples
///
/// ```
/// use easis_fmf::dtc::{DtcCode, DtcStore, FreezeFrame};
/// use easis_rte::runnable::RunnableId;
/// use easis_sim::time::Instant;
/// use easis_watchdog::report::{DetectedFault, FaultKind};
///
/// let mut store = DtcStore::new(2, 10);
/// let fault = DetectedFault {
///     at: Instant::from_millis(30),
///     runnable: RunnableId(1),
///     kind: FaultKind::Aliveness,
/// };
/// store.record(fault, FreezeFrame::default());
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtcStore {
    codes: BTreeMap<DtcCode, DtcRecord>,
    confirm_threshold: u32,
    aging_cycles: u32,
    /// Retired records (cleared or aged out), recycled by the next insert
    /// so its freeze-frame buffer is rewritten in place instead of cloned
    /// — a pooled world re-records the same codes trial after trial.
    spare: Vec<DtcRecord>,
    /// Scratch for codes that age out in one healthy cycle (reused, so
    /// aging never allocates).
    aged_scratch: Vec<DtcCode>,
}

impl DtcStore {
    /// Creates a store: a code confirms after `confirm_threshold`
    /// occurrences and a *pending* code ages out after `aging_cycles`
    /// healthy operating cycles (confirmed codes persist until cleared).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(confirm_threshold: u32, aging_cycles: u32) -> Self {
        assert!(confirm_threshold > 0, "confirmation threshold must be positive");
        assert!(aging_cycles > 0, "aging horizon must be positive");
        DtcStore {
            codes: BTreeMap::new(),
            confirm_threshold,
            aging_cycles,
            spare: Vec::new(),
            aged_scratch: Vec::new(),
        }
    }

    /// Records a fault occurrence; the freeze frame is kept only for the
    /// first occurrence. Returns the code.
    pub fn record(&mut self, fault: DetectedFault, freeze_frame: FreezeFrame) -> DtcCode {
        self.record_ref(fault, &freeze_frame)
    }

    /// [`DtcStore::record`] borrowing the freeze frame: the frame is cloned
    /// only when a *new* code is inserted, so re-occurrences — the common
    /// case on a faulty campaign trial, which ingests the same code every
    /// cycle — never copy conditions. Callers can keep one reusable frame
    /// buffer alive across the whole trial.
    pub fn record_ref(&mut self, fault: DetectedFault, freeze_frame: &FreezeFrame) -> DtcCode {
        let code = DtcCode::of(fault.runnable, fault.kind);
        let threshold = self.confirm_threshold;
        let record = match self.codes.entry(code) {
            std::collections::btree_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::btree_map::Entry::Vacant(entry) => {
                // Recycle a retired record if one is pooled: its freeze
                // frame is overwritten in place (`clone_from` reuses the
                // conditions buffer), so re-recording a cleared code
                // allocates nothing beyond the map node.
                let mut record = self.spare.pop().unwrap_or_else(|| DtcRecord {
                    code,
                    first_seen: fault.at,
                    last_seen: fault.at,
                    occurrences: 0,
                    status: DtcStatus::Pending,
                    freeze_frame: FreezeFrame::default(),
                    healthy_cycles: 0,
                });
                record.code = code;
                record.first_seen = fault.at;
                record.last_seen = fault.at;
                record.occurrences = 0;
                record.status = DtcStatus::Pending;
                record
                    .freeze_frame
                    .conditions
                    .clone_from(&freeze_frame.conditions);
                record.healthy_cycles = 0;
                entry.insert(record)
            }
        };
        record.occurrences += 1;
        record.last_seen = fault.at;
        record.healthy_cycles = 0;
        if record.occurrences >= threshold {
            record.status = DtcStatus::Confirmed;
        }
        code
    }

    /// Marks one healthy operating cycle: pending codes age and eventually
    /// drop out; confirmed codes persist. Aged-out records retire to the
    /// spare pool for recycling.
    pub fn healthy_cycle(&mut self) {
        let aging = self.aging_cycles;
        for (code, rec) in self.codes.iter_mut() {
            if rec.status == DtcStatus::Confirmed {
                continue;
            }
            rec.healthy_cycles += 1;
            if rec.healthy_cycles >= aging {
                self.aged_scratch.push(*code);
            }
        }
        while let Some(code) = self.aged_scratch.pop() {
            if let Some(record) = self.codes.remove(&code) {
                self.spare.push(record);
            }
        }
    }

    /// Clears one code (tester "clear DTC"). Returns `true` if it existed.
    pub fn clear(&mut self, code: DtcCode) -> bool {
        match self.codes.remove(&code) {
            Some(record) => {
                self.spare.push(record);
                true
            }
            None => false,
        }
    }

    /// Clears the whole memory, retiring every record to the spare pool
    /// (world pooling support: the next trial's inserts rewrite the
    /// pooled freeze-frame buffers instead of cloning fresh ones).
    pub fn clear_all(&mut self) {
        while let Some((_, record)) = self.codes.pop_first() {
            self.spare.push(record);
        }
    }

    /// Looks up a record.
    pub fn get(&self, code: DtcCode) -> Option<&DtcRecord> {
        self.codes.get(&code)
    }

    /// All records, sorted by code.
    pub fn iter(&self) -> impl Iterator<Item = &DtcRecord> {
        self.codes.values()
    }

    /// Confirmed records only (what a tester readout shows by default).
    pub fn confirmed(&self) -> impl Iterator<Item = &DtcRecord> {
        self.codes
            .values()
            .filter(|r| r.status == DtcStatus::Confirmed)
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Captures the stored records into `snap`, retaining the snapshot's
    /// buffer capacity: records overwrite prior entries in place
    /// (`clone_from` reuses each freeze-frame buffer), so repeatedly
    /// snapshotting a faulty prefix allocates nothing once warm.
    pub fn snapshot_into(&self, snap: &mut DtcStoreSnapshot) {
        snap.records.truncate(self.codes.len());
        let mut live = self.codes.values();
        for slot in snap.records.iter_mut() {
            slot.clone_from(live.next().expect("truncated to live length"));
        }
        for record in live {
            snap.records.push(record.clone());
        }
    }

    /// Applies `k` certified hyperperiods of DTC aging in closed form:
    /// every *pending* record's healthy-cycle counter advances by `inc`
    /// per hyperperiod (the increment [`DtcStoreSnapshot::derive_aging`]
    /// measured). Callers must cap `k` so no record reaches the aging
    /// horizon — crossing it removes the record, a discrete event the
    /// closed form cannot express (see
    /// [`DtcStore::pending_cycles_to_age_out`]).
    pub fn apply_aging(&mut self, inc: u32, k: u64) {
        if inc == 0 || k == 0 {
            return;
        }
        let aging = self.aging_cycles;
        let add: u32 = (inc as u64 * k)
            .try_into()
            .expect("aging advance fits u32 (capped below the horizon)");
        for rec in self.codes.values_mut() {
            if rec.status == DtcStatus::Confirmed {
                continue;
            }
            rec.healthy_cycles += add;
            debug_assert!(
                rec.healthy_cycles < aging,
                "aging advanced past the age-out horizon"
            );
        }
    }

    /// Healthy cycles until the *earliest* pending record ages out, or
    /// `None` when nothing is aging (empty memory or all codes
    /// confirmed). The macro-stepping engine caps its jump just short of
    /// this and simulates the age-out event itself.
    pub fn pending_cycles_to_age_out(&self) -> Option<u32> {
        self.codes
            .values()
            .filter(|r| r.status != DtcStatus::Confirmed)
            .map(|r| self.aging_cycles.saturating_sub(r.healthy_cycles))
            .min()
    }

    /// Restores the memory captured by [`DtcStore::snapshot_into`]. Live
    /// records retire to the spare pool first, and every rebuilt record is
    /// drawn back out of it — the same recycling path
    /// [`DtcStore::record_ref`] uses — so restoring over a pooled world
    /// rewrites record bodies in place instead of cloning fresh ones.
    pub fn restore_from(&mut self, snap: &DtcStoreSnapshot) {
        self.clear_all();
        for record in &snap.records {
            let pooled = match self.spare.pop() {
                Some(mut pooled) => {
                    pooled.clone_from(record);
                    pooled
                }
                None => record.clone(),
            };
            self.codes.insert(pooled.code, pooled);
        }
    }
}

/// Plain-data image of a [`DtcStore`]'s records (sorted by code). The
/// thresholds are construction-time configuration and live outside it.
/// `PartialEq` compares the records including their aging counters;
/// [`DtcStoreSnapshot::derive_aging`] relaxes exactly one axis — a
/// uniform healthy-cycle advance on pending codes — so the macro-stepping
/// engine can fast-forward through a draining fault memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DtcStoreSnapshot {
    records: Vec<DtcRecord>,
}

impl DtcStoreSnapshot {
    /// Derives the uniform per-hyperperiod aging increment between two
    /// images one hyperperiod apart. Succeeds (writing the increment,
    /// possibly 0) only when the images hold the *same* records — codes,
    /// occurrence counters, timestamps, status, freeze frames all equal —
    /// and every pending record's healthy-cycle counter advanced by the
    /// same amount. Anything else (a new occurrence, a confirmation, an
    /// age-out removal) is a discrete event the closed form cannot
    /// express, and the derivation rejects.
    pub fn derive_aging(a: &Self, b: &Self, out: &mut u32) -> bool {
        if a.records.len() != b.records.len() {
            return false;
        }
        let mut inc: Option<u32> = None;
        for (ra, rb) in a.records.iter().zip(&b.records) {
            if ra.code != rb.code
                || ra.first_seen != rb.first_seen
                || ra.last_seen != rb.last_seen
                || ra.occurrences != rb.occurrences
                || ra.status != rb.status
                || ra.freeze_frame != rb.freeze_frame
            {
                return false;
            }
            if ra.status == DtcStatus::Confirmed {
                // Confirmed codes never age; the counter must sit still.
                if ra.healthy_cycles != rb.healthy_cycles {
                    return false;
                }
                continue;
            }
            let Some(step) = rb.healthy_cycles.checked_sub(ra.healthy_cycles) else {
                return false;
            };
            if *inc.get_or_insert(step) != step {
                return false;
            }
        }
        *out = inc.unwrap_or(0);
        true
    }
}

impl Default for DtcStore {
    fn default() -> Self {
        DtcStore::new(3, 40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(runnable: u32, kind: FaultKind, ms: u64) -> DetectedFault {
        DetectedFault {
            at: Instant::from_millis(ms),
            runnable: RunnableId(runnable),
            kind,
        }
    }

    #[test]
    fn code_derivation_round_trips() {
        let code = DtcCode::of(RunnableId(7), FaultKind::ProgramFlow);
        assert_eq!(code.runnable(), RunnableId(7));
        assert_eq!(code.kind(), Some(FaultKind::ProgramFlow));
        assert!(code.to_string().starts_with("DTC-94"));
        assert_eq!(DtcCode(0x9400_0000).kind(), None);
    }

    #[test]
    fn occurrences_accumulate_and_confirm() {
        let mut store = DtcStore::new(3, 10);
        let f = fault(1, FaultKind::Aliveness, 10);
        let code = store.record(f, FreezeFrame::default());
        store.record(fault(1, FaultKind::Aliveness, 20), FreezeFrame::default());
        assert_eq!(store.get(code).unwrap().status, DtcStatus::Pending);
        store.record(fault(1, FaultKind::Aliveness, 30), FreezeFrame::default());
        let rec = store.get(code).unwrap();
        assert_eq!(rec.status, DtcStatus::Confirmed);
        assert_eq!(rec.occurrences, 3);
        assert_eq!(rec.first_seen, Instant::from_millis(10));
        assert_eq!(rec.last_seen, Instant::from_millis(30));
        assert_eq!(store.confirmed().count(), 1);
    }

    #[test]
    fn freeze_frame_is_from_first_occurrence() {
        let mut store = DtcStore::new(2, 10);
        let code = store.record(
            fault(2, FaultKind::ArrivalRate, 5),
            FreezeFrame {
                conditions: vec![("speed".into(), 13.9)],
            },
        );
        store.record(
            fault(2, FaultKind::ArrivalRate, 50),
            FreezeFrame {
                conditions: vec![("speed".into(), 99.0)],
            },
        );
        assert_eq!(
            store.get(code).unwrap().freeze_frame.conditions[0].1,
            13.9
        );
    }

    #[test]
    fn distinct_sources_get_distinct_codes() {
        let mut store = DtcStore::new(1, 10);
        store.record(fault(1, FaultKind::Aliveness, 1), FreezeFrame::default());
        store.record(fault(1, FaultKind::ProgramFlow, 2), FreezeFrame::default());
        store.record(fault(2, FaultKind::Aliveness, 3), FreezeFrame::default());
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn pending_codes_age_out_confirmed_persist() {
        let mut store = DtcStore::new(2, 3);
        let pending = store.record(fault(1, FaultKind::Aliveness, 1), FreezeFrame::default());
        let confirmed = store.record(fault(2, FaultKind::Aliveness, 2), FreezeFrame::default());
        store.record(fault(2, FaultKind::Aliveness, 3), FreezeFrame::default());
        for _ in 0..3 {
            store.healthy_cycle();
        }
        assert!(store.get(pending).is_none(), "pending code must age out");
        assert!(store.get(confirmed).is_some(), "confirmed code must persist");
    }

    #[test]
    fn reoccurrence_resets_aging() {
        let mut store = DtcStore::new(5, 3);
        let code = store.record(fault(1, FaultKind::Aliveness, 1), FreezeFrame::default());
        store.healthy_cycle();
        store.healthy_cycle();
        store.record(fault(1, FaultKind::Aliveness, 40), FreezeFrame::default());
        store.healthy_cycle();
        store.healthy_cycle();
        assert!(store.get(code).is_some(), "aging must restart on reoccurrence");
    }

    #[test]
    fn clear_semantics() {
        let mut store = DtcStore::new(1, 10);
        let code = store.record(fault(1, FaultKind::Aliveness, 1), FreezeFrame::default());
        assert!(store.clear(code));
        assert!(!store.clear(code));
        store.record(fault(1, FaultKind::Aliveness, 2), FreezeFrame::default());
        store.clear_all();
        assert!(store.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = DtcStore::new(0, 1);
    }

    #[test]
    fn closed_form_aging_matches_event_level_healthy_cycles() {
        let build = || {
            let mut store = DtcStore::new(3, 40);
            // One pending (1 occurrence < 3) and one confirmed code.
            store.record(fault(1, FaultKind::Aliveness, 10), FreezeFrame::default());
            for ms in [20, 30, 40] {
                store.record(fault(2, FaultKind::ProgramFlow, ms), FreezeFrame::default());
            }
            store
        };
        let mut stepped = build();
        let mut jumped = build();
        // 6 hyperperiods of 2 healthy cycles each, still below the
        // 40-cycle horizon.
        for _ in 0..12 {
            stepped.healthy_cycle();
        }
        jumped.apply_aging(2, 6);
        let (mut a, mut b) = (DtcStoreSnapshot::default(), DtcStoreSnapshot::default());
        stepped.snapshot_into(&mut a);
        jumped.snapshot_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(stepped.pending_cycles_to_age_out(), Some(28));
    }

    #[test]
    fn derive_aging_measures_pending_advance_only() {
        let mut store = DtcStore::new(3, 40);
        store.record(fault(1, FaultKind::Aliveness, 10), FreezeFrame::default());
        for ms in [20, 30, 40] {
            store.record(fault(2, FaultKind::ProgramFlow, ms), FreezeFrame::default());
        }
        let mut a = DtcStoreSnapshot::default();
        let mut b = DtcStoreSnapshot::default();
        store.snapshot_into(&mut a);
        store.healthy_cycle();
        store.healthy_cycle();
        store.snapshot_into(&mut b);
        let mut inc = 99;
        assert!(DtcStoreSnapshot::derive_aging(&a, &b, &mut inc));
        assert_eq!(inc, 2);
        // At rest the increment is zero…
        assert!(DtcStoreSnapshot::derive_aging(&a, &a, &mut inc));
        assert_eq!(inc, 0);
        // …a new occurrence is a discrete event and rejects…
        store.record(fault(1, FaultKind::Aliveness, 90), FreezeFrame::default());
        store.snapshot_into(&mut b);
        assert!(!DtcStoreSnapshot::derive_aging(&a, &b, &mut inc));
        // …and so does an age-out removal.
        let mut c = DtcStoreSnapshot::default();
        for _ in 0..40 {
            store.healthy_cycle();
        }
        store.snapshot_into(&mut c);
        assert!(!DtcStoreSnapshot::derive_aging(&b, &c, &mut inc));
    }

    #[test]
    fn nothing_pending_means_no_age_out_horizon() {
        let mut store = DtcStore::new(1, 10);
        assert_eq!(store.pending_cycles_to_age_out(), None);
        store.record(fault(1, FaultKind::Aliveness, 5), FreezeFrame::default());
        // confirm_threshold 1: immediately confirmed, never ages.
        assert_eq!(store.pending_cycles_to_age_out(), None);
        store.apply_aging(2, 5); // no-op on confirmed codes
        let mut snap = DtcStoreSnapshot::default();
        store.snapshot_into(&mut snap);
        let mut inc = 7;
        assert!(DtcStoreSnapshot::derive_aging(&snap, &snap, &mut inc));
        assert_eq!(inc, 0);
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_spare_pool() {
        let mut store = DtcStore::new(2, 10);
        let code = store.record(
            fault(1, FaultKind::Aliveness, 5),
            FreezeFrame {
                conditions: vec![("speed".into(), 42.0)],
            },
        );
        let mut snap = DtcStoreSnapshot::default();
        store.snapshot_into(&mut snap);
        // Diverge: confirm the code and add another.
        store.record(fault(1, FaultKind::Aliveness, 15), FreezeFrame::default());
        store.record(fault(2, FaultKind::ProgramFlow, 20), FreezeFrame::default());
        assert_eq!(store.get(code).unwrap().status, DtcStatus::Confirmed);
        store.restore_from(&snap);
        assert_eq!(store.len(), 1);
        let rec = store.get(code).unwrap();
        assert_eq!(rec.status, DtcStatus::Pending);
        assert_eq!(rec.occurrences, 1);
        assert_eq!(rec.freeze_frame.conditions[0].1, 42.0);
        // The displaced extra record retired to the pool: a re-insert
        // recycles it rather than building a fresh one.
        store.record(fault(3, FaultKind::ArrivalRate, 30), FreezeFrame::default());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn repeated_snapshot_capture_reuses_buffers() {
        let mut store = DtcStore::new(2, 10);
        store.record(
            fault(1, FaultKind::Aliveness, 5),
            FreezeFrame {
                conditions: vec![("speed".into(), 1.0), ("rpm".into(), 2.0)],
            },
        );
        let mut snap = DtcStoreSnapshot::default();
        store.snapshot_into(&mut snap);
        let cap_before = snap.records.capacity();
        let ptr_before = snap.records[0].freeze_frame.conditions.as_ptr();
        store.record(fault(1, FaultKind::Aliveness, 15), FreezeFrame::default());
        store.snapshot_into(&mut snap);
        assert_eq!(snap.records.capacity(), cap_before);
        assert_eq!(
            snap.records[0].freeze_frame.conditions.as_ptr(),
            ptr_before,
            "freeze-frame buffer must be rewritten in place"
        );
        assert_eq!(snap.records[0].occurrences, 2);
    }
}

//! Treatment policy.
//!
//! The paper's fault-treatment decision tree (§3.5):
//!
//! * global ECU state faulty → "the ECU might be subjected to a software
//!   reset";
//! * ECU state OK → "the faulty application software components might be
//!   restarted or terminated";
//! * other tasks of terminated/restarted applications "might be terminated
//!   and restarted with the services provided by the operating system".
//!
//! [`TreatmentPolicy`] encodes this with an escalation rule: an application
//! is restarted up to `max_app_restarts` times; beyond that it is
//! terminated (fail-silent degradation).

use easis_osek::task::TaskId;
use easis_rte::mapping::ApplicationId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A fault treatment to be executed by the platform integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Treatment {
    /// Restart a single task (clear its watchdog vector, re-arm it).
    RestartTask(TaskId),
    /// Restart every task of an application.
    RestartApplication(ApplicationId),
    /// Terminate an application permanently (fail-silent).
    TerminateApplication(ApplicationId),
    /// Software-reset the whole ECU.
    EcuReset,
}

impl Treatment {
    /// Stable machine-readable tag of the treatment class (used by the
    /// observability layer and experiment reports).
    pub fn label(&self) -> &'static str {
        match self {
            Treatment::RestartTask(_) => "restart_task",
            Treatment::RestartApplication(_) => "restart_application",
            Treatment::TerminateApplication(_) => "terminate_application",
            Treatment::EcuReset => "ecu_reset",
        }
    }
}

impl fmt::Display for Treatment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Treatment::RestartTask(t) => write!(f, "restart task {t}"),
            Treatment::RestartApplication(a) => write!(f, "restart application {a}"),
            Treatment::TerminateApplication(a) => write!(f, "terminate application {a}"),
            Treatment::EcuReset => write!(f, "ECU software reset"),
        }
    }
}

/// A scheduled treatment with its justification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreatmentAction {
    /// Decision time.
    pub at: Instant,
    /// The treatment to execute.
    pub treatment: Treatment,
    /// Human-readable reason for the fault log. An `Arc<str>` handle to a
    /// reason interned by the framework (one allocation per distinct
    /// reason, not per action); serializes as a plain string.
    pub reason: Arc<str>,
}

/// Escalating treatment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreatmentPolicy {
    /// How often an application may be restarted before termination.
    pub max_app_restarts: u32,
    /// Whether an ECU-faulty verdict triggers a software reset.
    pub reset_on_ecu_faulty: bool,
    /// Master switch: when `false` the framework only logs — no restarts,
    /// terminations or resets (used by raw-detection experiments).
    pub treat: bool,
}

impl Default for TreatmentPolicy {
    fn default() -> Self {
        TreatmentPolicy {
            max_app_restarts: 3,
            reset_on_ecu_faulty: true,
            treat: true,
        }
    }
}

impl TreatmentPolicy {
    /// A policy that never acts (detection-measurement experiments).
    pub fn observe_only() -> Self {
        TreatmentPolicy {
            treat: false,
            ..TreatmentPolicy::default()
        }
    }

    /// Decides the treatment for a faulty application given how many times
    /// it was already restarted.
    pub fn for_faulty_app(&self, app: ApplicationId, restarts_so_far: u32) -> Treatment {
        if restarts_so_far < self.max_app_restarts {
            Treatment::RestartApplication(app)
        } else {
            Treatment::TerminateApplication(app)
        }
    }

    /// Decides the treatment for a faulty global ECU state, if any.
    pub fn for_faulty_ecu(&self) -> Option<Treatment> {
        self.reset_on_ecu_faulty.then_some(Treatment::EcuReset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_restarts_until_budget_then_terminates() {
        let p = TreatmentPolicy::default();
        let app = ApplicationId(0);
        assert_eq!(p.for_faulty_app(app, 0), Treatment::RestartApplication(app));
        assert_eq!(p.for_faulty_app(app, 2), Treatment::RestartApplication(app));
        assert_eq!(p.for_faulty_app(app, 3), Treatment::TerminateApplication(app));
        assert_eq!(p.for_faulty_app(app, 10), Treatment::TerminateApplication(app));
    }

    #[test]
    fn ecu_reset_is_policy_gated() {
        let mut p = TreatmentPolicy::default();
        assert_eq!(p.for_faulty_ecu(), Some(Treatment::EcuReset));
        p.reset_on_ecu_faulty = false;
        assert_eq!(p.for_faulty_ecu(), None);
    }

    #[test]
    fn labels_are_stable_tags() {
        assert_eq!(Treatment::RestartTask(TaskId(0)).label(), "restart_task");
        assert_eq!(
            Treatment::RestartApplication(ApplicationId(0)).label(),
            "restart_application"
        );
        assert_eq!(
            Treatment::TerminateApplication(ApplicationId(0)).label(),
            "terminate_application"
        );
        assert_eq!(Treatment::EcuReset.label(), "ecu_reset");
    }

    #[test]
    fn treatments_render_readably() {
        assert_eq!(Treatment::EcuReset.to_string(), "ECU software reset");
        assert!(Treatment::RestartApplication(ApplicationId(1))
            .to_string()
            .contains("App1"));
        assert!(Treatment::RestartTask(TaskId(2)).to_string().contains("T2"));
        assert!(Treatment::TerminateApplication(ApplicationId(3))
            .to_string()
            .contains("terminate"));
    }
}

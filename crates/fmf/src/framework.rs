//! The Fault Management Framework service.
//!
//! [`FaultManagementFramework`] is the "general fault treatment system that
//! gathers the information on the detected faults" (paper §4.4). It ingests
//! the Software Watchdog's fault and state-change outboxes, keeps the fault
//! log, applies the [`TreatmentPolicy`] and queues [`TreatmentAction`]s
//! for the platform integration to execute.

use crate::dtc::{DtcStore, DtcStoreSnapshot, FreezeFrame};
use crate::policy::{Treatment, TreatmentAction, TreatmentPolicy};
use crate::record::{FaultRecord, Severity, SeverityMap};
use easis_obs::{ObsEvent, ObsSink};
use easis_rte::mapping::ApplicationId;
use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::Instant;
use easis_watchdog::report::{DetectedFault, FaultKind, StateChange};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The FMF service.
#[derive(Debug, Clone)]
pub struct FaultManagementFramework {
    severity_map: SeverityMap,
    policy: TreatmentPolicy,
    log: Vec<FaultRecord>,
    dtc: DtcStore,
    actions: Vec<TreatmentAction>,
    app_restarts: BTreeMap<ApplicationId, u32>,
    terminated_apps: Vec<ApplicationId>,
    ecu_resets: u32,
    obs: ObsSink,
    /// Interned treatment reasons, one `Arc<str>` per application ever
    /// treated. The rendered strings are exactly what the old
    /// `format!`-per-action path produced; interning just means an
    /// application's second (and every later) treatment allocates
    /// nothing. Deliberately kept across [`reset`](Self::reset): a pooled
    /// world treats the same applications trial after trial.
    app_reasons: BTreeMap<ApplicationId, Arc<str>>,
    /// Last-write epochs of the delta-restore regions (see
    /// `easis_sim::snap`): fault log, DTC memory, action queue, and the
    /// restart budgets (`app_restarts` + `terminated_apps` move together).
    log_stamp: u64,
    dtc_stamp: u64,
    actions_stamp: u64,
    budgets_stamp: u64,
    epoch: u64,
    derived_from: u64,
}

impl FaultManagementFramework {
    /// Creates the framework with the given classification and policy.
    pub fn new(severity_map: SeverityMap, policy: TreatmentPolicy) -> Self {
        FaultManagementFramework {
            severity_map,
            policy,
            log: Vec::new(),
            dtc: DtcStore::default(),
            actions: Vec::new(),
            app_restarts: BTreeMap::new(),
            terminated_apps: Vec::new(),
            ecu_resets: 0,
            obs: ObsSink::disabled(),
            app_reasons: BTreeMap::new(),
            log_stamp: 0,
            dtc_stamp: 0,
            actions_stamp: 0,
            budgets_stamp: 0,
            epoch: 0,
            derived_from: 0,
        }
    }

    /// Attaches an observability sink; a disabled sink (the default)
    /// makes every recording call a no-op.
    pub fn attach_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Records a detected fault in the log and the DTC memory.
    pub fn ingest_fault(&mut self, fault: DetectedFault) {
        self.ingest_fault_with_conditions(fault, &FreezeFrame::default());
    }

    /// Records a detected fault with freeze-frame conditions (captured by
    /// the platform at detection time, e.g. the current vehicle speed).
    /// Borrows the frame: it is cloned only when the fault's DTC first
    /// occurs, so a caller-held reusable frame buffer makes repeated
    /// ingestion of the same code allocation-free.
    pub fn ingest_fault_with_conditions(
        &mut self,
        fault: DetectedFault,
        freeze_frame: &FreezeFrame,
    ) {
        self.log.push(FaultRecord {
            fault,
            severity: self.severity_map.classify(fault.kind),
        });
        self.log_stamp = self.epoch;
        self.dtc.record_ref(fault, freeze_frame);
        self.dtc_stamp = self.epoch;
    }

    /// Marks one healthy operating cycle for DTC aging (call it e.g. once
    /// per watchdog cycle without detections).
    pub fn healthy_cycle(&mut self) {
        // An empty memory has nothing to age: the common clean-trial call
        // must not dirty the DTC region.
        if !self.dtc.is_empty() {
            self.dtc.healthy_cycle();
            self.dtc_stamp = self.epoch;
        }
    }

    /// Read access to the DTC fault memory.
    pub fn dtc(&self) -> &DtcStore {
        &self.dtc
    }

    /// Applies `k` certified hyperperiods of framework evolution in
    /// closed form. The only state a quiescent hyperperiod moves is DTC
    /// aging ([`FmfSnapshot::derive_cycle_delta`] rejects anything else),
    /// so this advances the pending records' healthy-cycle counters and
    /// stamps the DTC region dirty for the delta-restore protocol.
    pub fn apply_cycle_delta(&mut self, delta: &FmfCycleDelta, k: u64) {
        if delta.dtc_aging > 0 && k > 0 {
            self.dtc.apply_aging(delta.dtc_aging, k);
            self.dtc_stamp = self.epoch;
        }
    }

    /// Healthy cycles until the earliest pending DTC ages out (`None`
    /// when nothing is aging) — the macro-stepping engine's jump cap, see
    /// [`crate::dtc::DtcStore::pending_cycles_to_age_out`].
    pub fn pending_cycles_to_age_out(&self) -> Option<u32> {
        self.dtc.pending_cycles_to_age_out()
    }

    /// Mutable access to the DTC fault memory (tester clear operations).
    /// Conservatively stamps the DTC region dirty — the borrow can write
    /// anything.
    pub fn dtc_mut(&mut self) -> &mut DtcStore {
        self.dtc_stamp = self.epoch;
        &mut self.dtc
    }

    /// Processes a watchdog state change, possibly queueing treatments.
    pub fn ingest_state_change(&mut self, change: StateChange) {
        match change {
            StateChange::TaskFaulty { .. } => {
                // Task-level verdicts are treated at the application level;
                // the change is implicit in the ApplicationFaulty that
                // accompanies it.
            }
            StateChange::ApplicationFaulty { app, at } => {
                if !self.policy.treat {
                    return;
                }
                if self.terminated_apps.contains(&app) {
                    return; // already failed silent
                }
                let restarts = self.app_restarts.get(&app).copied().unwrap_or(0);
                let treatment = self.policy.for_faulty_app(app, restarts);
                match treatment {
                    Treatment::RestartApplication(_) => {
                        *self.app_restarts.entry(app).or_insert(0) += 1;
                        self.budgets_stamp = self.epoch;
                    }
                    Treatment::TerminateApplication(_) => {
                        self.terminated_apps.push(app);
                        self.budgets_stamp = self.epoch;
                    }
                    _ => {}
                }
                let reason = self.app_faulty_reason(app);
                self.push_action(at, treatment, reason);
            }
            StateChange::EcuFaulty { at } => {
                if !self.policy.treat {
                    return;
                }
                if let Some(treatment) = self.policy.for_faulty_ecu() {
                    self.ecu_resets += 1;
                    self.push_action(at, treatment, ecu_faulty_reason());
                }
            }
        }
    }

    /// Convenience: ingest everything a watchdog cycle produced.
    pub fn ingest_all(
        &mut self,
        faults: impl IntoIterator<Item = DetectedFault>,
        changes: impl IntoIterator<Item = StateChange>,
    ) {
        for f in faults {
            self.ingest_fault(f);
        }
        for c in changes {
            self.ingest_state_change(c);
        }
    }

    /// The interned "application … faulty" reason for `app`, rendered on
    /// the first treatment of that application and shared thereafter.
    fn app_faulty_reason(&mut self, app: ApplicationId) -> Arc<str> {
        Arc::clone(
            self.app_reasons
                .entry(app)
                .or_insert_with(|| format!("application {app} faulty").into()),
        )
    }

    fn push_action(&mut self, at: Instant, treatment: Treatment, reason: Arc<str>) {
        self.obs.record(
            at,
            ObsEvent::FmfReaction {
                treatment: treatment.label(),
            },
        );
        self.actions.push(TreatmentAction {
            at,
            treatment,
            reason,
        });
        self.actions_stamp = self.epoch;
    }

    /// Drains the queued treatment actions for execution.
    pub fn take_actions(&mut self) -> Vec<TreatmentAction> {
        if !self.actions.is_empty() {
            self.actions_stamp = self.epoch;
        }
        std::mem::take(&mut self.actions)
    }

    /// Drains decided actions into `out` (appending), retaining the queue
    /// allocation — the allocation-free alternative to
    /// [`FaultManagementFramework::take_actions`] for the campaign hot
    /// path.
    pub fn drain_actions_into(&mut self, out: &mut Vec<TreatmentAction>) {
        if !self.actions.is_empty() {
            self.actions_stamp = self.epoch;
        }
        out.append(&mut self.actions);
    }

    /// Number of queued, unexecuted actions.
    pub fn pending_actions(&self) -> usize {
        self.actions.len()
    }

    /// The complete fault log.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Faults of one kind in the log.
    pub fn count_kind(&self, kind: FaultKind) -> usize {
        self.log.iter().filter(|r| r.fault.kind == kind).count()
    }

    /// Faults at or above a severity.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.log.iter().filter(|r| r.severity >= severity).count()
    }

    /// Restart count of an application.
    pub fn restarts_of(&self, app: ApplicationId) -> u32 {
        self.app_restarts.get(&app).copied().unwrap_or(0)
    }

    /// `true` if the application was terminated (failed silent).
    pub fn is_terminated(&self, app: ApplicationId) -> bool {
        self.terminated_apps.contains(&app)
    }

    /// Number of ECU software resets commanded.
    pub fn ecu_resets(&self) -> u32 {
        self.ecu_resets
    }

    /// Marks a recovery cycle complete: clears restart budgets (e.g. after
    /// an ECU reset, everything starts fresh).
    pub fn reset_budgets(&mut self) {
        self.app_restarts.clear();
        self.terminated_apps.clear();
        self.budgets_stamp = self.epoch;
    }

    /// Full reset to the just-built state — log, DTC memory, queued
    /// actions, budgets and counters — keeping the severity map, policy
    /// and observability sink (world pooling support). Clears in place:
    /// buffer capacity and DTC thresholds survive, so a pooled world's
    /// reset allocates nothing.
    pub fn reset(&mut self) {
        self.log.clear();
        self.dtc.clear_all();
        self.actions.clear();
        self.app_restarts.clear();
        self.terminated_apps.clear();
        self.ecu_resets = 0;
        // Every region is dirty relative to any earlier snapshot, and the
        // lineage is severed so a later restore takes the full path.
        self.log_stamp = self.epoch;
        self.dtc_stamp = self.epoch;
        self.actions_stamp = self.epoch;
        self.budgets_stamp = self.epoch;
        self.derived_from = 0;
    }

    /// Captures the framework's runtime state — fault log, DTC memory,
    /// queued actions, restart budgets, reset counter — into a
    /// deterministic snapshot. The severity map, policy, observability
    /// sink and the interned-reason cache are static (the cache affects
    /// only allocation identity, never rendered content) and stay out.
    /// Convenience wrapper over
    /// [`FaultManagementFramework::snapshot_into`].
    pub fn snapshot(&mut self) -> FmfSnapshot {
        let mut snap = FmfSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures runtime state into `snap`, retaining the snapshot's buffer
    /// capacity (allocation-free once warm; the DTC image recycles its
    /// record bodies in place). Follows the `easis_sim::snap` protocol:
    /// the capture records the lineage so a later
    /// [`FaultManagementFramework::restore_from`] only copies the regions
    /// written since.
    pub fn snapshot_into(&mut self, snap: &mut FmfSnapshot) {
        snap.log.clear();
        snap.log.extend_from_slice(&self.log);
        snap.log_stamp = self.log_stamp;
        self.dtc.snapshot_into(&mut snap.dtc);
        snap.dtc_stamp = self.dtc_stamp;
        snap.actions.clone_from(&self.actions);
        snap.actions_stamp = self.actions_stamp;
        snap.app_restarts.clear();
        snap.app_restarts
            .extend(self.app_restarts.iter().map(|(&app, &n)| (app, n)));
        snap.terminated_apps.clear();
        snap.terminated_apps.extend_from_slice(&self.terminated_apps);
        snap.budgets_stamp = self.budgets_stamp;
        snap.ecu_resets = self.ecu_resets;
        snap.epoch = self.epoch;
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures runtime state into `snap` without participating in the
    /// delta-restore lineage: the framework's epoch and `derived_from` are
    /// untouched and the image carries `id == 0`, so a capture interleaved
    /// between a campaign checkpoint and its restore (the macro-stepping
    /// engine samples mid-span) cannot degrade the restore to the
    /// full-copy path.
    pub fn image_into(&self, snap: &mut FmfSnapshot) {
        snap.log.clear();
        snap.log.extend_from_slice(&self.log);
        snap.log_stamp = self.log_stamp;
        self.dtc.snapshot_into(&mut snap.dtc);
        snap.dtc_stamp = self.dtc_stamp;
        snap.actions.clone_from(&self.actions);
        snap.actions_stamp = self.actions_stamp;
        snap.app_restarts.clear();
        snap.app_restarts
            .extend(self.app_restarts.iter().map(|(&app, &n)| (app, n)));
        snap.terminated_apps.clear();
        snap.terminated_apps.extend_from_slice(&self.terminated_apps);
        snap.budgets_stamp = self.budgets_stamp;
        snap.ecu_resets = self.ecu_resets;
        snap.epoch = self.epoch;
        snap.id = 0;
    }

    /// Restores runtime state captured by
    /// [`FaultManagementFramework::snapshot`], copying only the regions
    /// written since the capture when the lineage allows it (O(dirty)).
    pub fn restore_from(&mut self, snap: &FmfSnapshot) -> RestoreStats {
        let mut stats = RestoreStats::default();
        let full = self.derived_from != snap.id;
        let copy = full || self.log_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.log.clear();
            self.log.extend_from_slice(&snap.log);
            self.log_stamp = snap.log_stamp;
        }
        let copy = full || self.dtc_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.dtc.restore_from(&snap.dtc);
            self.dtc_stamp = snap.dtc_stamp;
        }
        let copy = full || self.actions_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.actions.clone_from(&snap.actions);
            self.actions_stamp = snap.actions_stamp;
        }
        let copy = full || self.budgets_stamp > snap.epoch;
        stats.region(copy);
        if copy {
            self.app_restarts.clear();
            self.app_restarts
                .extend(snap.app_restarts.iter().copied());
            self.terminated_apps.clear();
            self.terminated_apps
                .extend_from_slice(&snap.terminated_apps);
            self.budgets_stamp = snap.budgets_stamp;
        }
        // Header region, always copied (one scalar).
        stats.region(true);
        self.ecu_resets = snap.ecu_resets;
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }
}

/// A deterministic capture of FMF runtime state — see
/// [`FaultManagementFramework::snapshot`]. Plain data (the budget map is
/// flattened, the DTC memory imaged as a record list), so node-level
/// snapshots embedding it can be shared across campaign workers.
#[derive(Debug, Clone, Default)]
pub struct FmfSnapshot {
    log: Vec<FaultRecord>,
    log_stamp: u64,
    dtc: DtcStoreSnapshot,
    dtc_stamp: u64,
    actions: Vec<TreatmentAction>,
    actions_stamp: u64,
    app_restarts: Vec<(ApplicationId, u32)>,
    terminated_apps: Vec<ApplicationId>,
    budgets_stamp: u64,
    ecu_resets: u32,
    epoch: u64,
    id: u64,
}

impl FmfSnapshot {
    /// Content equality, ignoring lineage bookkeeping (stamps, epoch, id).
    pub fn content_eq(&self, other: &FmfSnapshot) -> bool {
        self.log == other.log
            && self.dtc == other.dtc
            && self.actions == other.actions
            && self.app_restarts == other.app_restarts
            && self.terminated_apps == other.terminated_apps
            && self.ecu_resets == other.ecu_resets
    }

    /// Derives the closed-form per-hyperperiod framework delta between
    /// two images one hyperperiod apart. The log, action queue, restart
    /// budgets and reset counter must sit perfectly still — any new
    /// record is a discrete event — but the DTC memory may *drain*: a
    /// pending code aging toward removal advances its healthy-cycle
    /// counter every healthy cycle, and that uniform advance is the one
    /// motion the delta expresses (see
    /// [`crate::dtc::DtcStoreSnapshot::derive_aging`]).
    pub fn derive_cycle_delta(a: &Self, b: &Self, out: &mut FmfCycleDelta) -> bool {
        a.log == b.log
            && a.actions == b.actions
            && a.app_restarts == b.app_restarts
            && a.terminated_apps == b.terminated_apps
            && a.ecu_resets == b.ecu_resets
            && DtcStoreSnapshot::derive_aging(&a.dtc, &b.dtc, &mut out.dtc_aging)
    }
}

/// The closed-form per-hyperperiod evolution of a quiescent
/// [`FaultManagementFramework`]: the healthy-cycle advance of every
/// pending DTC record. Everything else the framework owns must be at rest
/// for [`FmfSnapshot::derive_cycle_delta`] to certify.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FmfCycleDelta {
    /// Healthy cycles per hyperperiod added to each pending DTC record.
    pub dtc_aging: u32,
}

impl Default for FaultManagementFramework {
    fn default() -> Self {
        FaultManagementFramework::new(SeverityMap::default(), TreatmentPolicy::default())
    }
}

/// The process-interned "global ECU state faulty" reason — one shared
/// allocation no matter how many ECU resets any framework commands.
fn ecu_faulty_reason() -> Arc<str> {
    static REASON: OnceLock<Arc<str>> = OnceLock::new();
    Arc::clone(REASON.get_or_init(|| Arc::from("global ECU state faulty")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::task::TaskId;
    use easis_rte::runnable::RunnableId;

    fn fault(ms: u64, kind: FaultKind) -> DetectedFault {
        DetectedFault {
            at: Instant::from_millis(ms),
            runnable: RunnableId(0),
            kind,
        }
    }

    fn app_faulty(ms: u64) -> StateChange {
        StateChange::ApplicationFaulty {
            app: ApplicationId(0),
            at: Instant::from_millis(ms),
        }
    }

    #[test]
    fn faults_are_logged_and_classified() {
        let mut fmf = FaultManagementFramework::default();
        fmf.ingest_fault(fault(1, FaultKind::Aliveness));
        fmf.ingest_fault(fault(2, FaultKind::ProgramFlow));
        assert_eq!(fmf.log().len(), 2);
        assert_eq!(fmf.count_kind(FaultKind::Aliveness), 1);
        assert_eq!(fmf.count_at_least(Severity::Critical), 1);
        assert_eq!(fmf.count_at_least(Severity::Major), 2);
    }

    #[test]
    fn faulty_app_restarts_then_terminates() {
        let mut fmf = FaultManagementFramework::default(); // budget 3
        for i in 0..5 {
            fmf.ingest_state_change(app_faulty(i * 10));
        }
        let actions = fmf.take_actions();
        let restarts = actions
            .iter()
            .filter(|a| matches!(a.treatment, Treatment::RestartApplication(_)))
            .count();
        let terminates = actions
            .iter()
            .filter(|a| matches!(a.treatment, Treatment::TerminateApplication(_)))
            .count();
        assert_eq!(restarts, 3);
        assert_eq!(terminates, 1); // 5th change hits an already-terminated app
        assert_eq!(fmf.restarts_of(ApplicationId(0)), 3);
        assert!(fmf.is_terminated(ApplicationId(0)));
    }

    #[test]
    fn ecu_faulty_triggers_reset() {
        let mut fmf = FaultManagementFramework::default();
        fmf.ingest_state_change(StateChange::EcuFaulty {
            at: Instant::from_millis(50),
        });
        let actions = fmf.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].treatment, Treatment::EcuReset);
        assert_eq!(fmf.ecu_resets(), 1);
    }

    #[test]
    fn ecu_reset_can_be_disabled_by_policy() {
        let policy = TreatmentPolicy {
            reset_on_ecu_faulty: false,
            ..TreatmentPolicy::default()
        };
        let mut fmf = FaultManagementFramework::new(SeverityMap::default(), policy);
        fmf.ingest_state_change(StateChange::EcuFaulty {
            at: Instant::ZERO,
        });
        assert_eq!(fmf.pending_actions(), 0);
    }

    #[test]
    fn task_faulty_alone_produces_no_action() {
        let mut fmf = FaultManagementFramework::default();
        fmf.ingest_state_change(StateChange::TaskFaulty {
            task: TaskId(0),
            at: Instant::ZERO,
        });
        assert_eq!(fmf.pending_actions(), 0);
    }

    #[test]
    fn ingest_all_and_drain() {
        let mut fmf = FaultManagementFramework::default();
        fmf.ingest_all(
            vec![fault(1, FaultKind::Aliveness)],
            vec![app_faulty(1)],
        );
        assert_eq!(fmf.log().len(), 1);
        assert_eq!(fmf.take_actions().len(), 1);
        assert!(fmf.take_actions().is_empty());
    }

    #[test]
    fn treatments_record_fmf_reaction_events() {
        let mut fmf = FaultManagementFramework::default();
        let sink = ObsSink::enabled(8);
        fmf.attach_obs(sink.clone());
        fmf.ingest_state_change(app_faulty(10));
        assert_eq!(sink.counter("fmf_reaction"), 1);
        let events = sink.events();
        assert_eq!(
            events[0].event,
            ObsEvent::FmfReaction {
                treatment: "restart_application"
            }
        );
        assert_eq!(events[0].at, Instant::from_millis(10));
    }

    #[test]
    fn reasons_render_like_the_format_strings_and_are_interned() {
        let mut fmf = FaultManagementFramework::default();
        fmf.ingest_state_change(app_faulty(1));
        fmf.ingest_state_change(app_faulty(2));
        fmf.ingest_state_change(StateChange::EcuFaulty {
            at: Instant::from_millis(3),
        });
        let actions = fmf.take_actions();
        assert_eq!(&*actions[0].reason, "application App0 faulty");
        assert_eq!(&*actions[1].reason, "application App0 faulty");
        assert_eq!(&*actions[2].reason, "global ECU state faulty");
        // Interned: both App0 actions share one allocation, and the cache
        // survives reset() (pooled worlds treat the same apps per trial).
        assert!(std::sync::Arc::ptr_eq(&actions[0].reason, &actions[1].reason));
        fmf.reset();
        fmf.ingest_state_change(app_faulty(10));
        let again = fmf.take_actions();
        assert!(std::sync::Arc::ptr_eq(&actions[0].reason, &again[0].reason));
    }

    #[test]
    fn reset_budgets_restores_restart_capacity() {
        let mut fmf = FaultManagementFramework::default();
        for i in 0..4 {
            fmf.ingest_state_change(app_faulty(i));
        }
        assert!(fmf.is_terminated(ApplicationId(0)));
        fmf.reset_budgets();
        assert!(!fmf.is_terminated(ApplicationId(0)));
        assert_eq!(fmf.restarts_of(ApplicationId(0)), 0);
        fmf.ingest_state_change(app_faulty(100));
        let actions = fmf.take_actions();
        assert!(matches!(
            actions.last().unwrap().treatment,
            Treatment::RestartApplication(_)
        ));
    }

    /// Drives a tail after a capture, delta-restores, and asserts the
    /// replay is observably identical — then severs the lineage with
    /// `reset()` and asserts the full path replays identically too.
    #[test]
    fn snapshot_delta_restore_replays_identically() {
        let drive_prefix = |fmf: &mut FaultManagementFramework| {
            fmf.ingest_fault(fault(1, FaultKind::Aliveness));
            fmf.ingest_state_change(app_faulty(5));
        };
        // A fault-only tail: dirties the log + DTC regions but leaves the
        // restart budgets (and any treatment decisions) untouched.
        let drive_tail = |fmf: &mut FaultManagementFramework| {
            fmf.ingest_fault(fault(20, FaultKind::ArrivalRate));
            fmf.ingest_fault(fault(25, FaultKind::ProgramFlow));
        };
        let observe = |fmf: &FaultManagementFramework| {
            (
                fmf.log().to_vec(),
                fmf.pending_actions(),
                fmf.restarts_of(ApplicationId(0)),
                fmf.ecu_resets(),
                fmf.dtc().iter().map(|r| format!("{r:?}")).collect::<Vec<_>>(),
            )
        };

        let mut fmf = FaultManagementFramework::default();
        drive_prefix(&mut fmf);
        let snap = fmf.snapshot();
        let at_capture = observe(&fmf);

        drive_tail(&mut fmf);
        let after_tail = observe(&fmf);
        assert_ne!(at_capture, after_tail);

        let stats = fmf.restore_from(&snap);
        assert!(
            stats.regions_copied < stats.regions_total,
            "lineage intact: the delta path must skip clean regions \
             ({stats:?})"
        );
        assert_eq!(observe(&fmf), at_capture);
        drive_tail(&mut fmf);
        assert_eq!(observe(&fmf), after_tail);

        // reset() severs the lineage: the restore must take the full path
        // and still replay identically.
        fmf.reset();
        let stats = fmf.restore_from(&snap);
        assert_eq!(stats.regions_copied, stats.regions_total);
        assert_eq!(observe(&fmf), at_capture);
        drive_tail(&mut fmf);
        assert_eq!(observe(&fmf), after_tail);
    }
}

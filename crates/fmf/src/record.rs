//! Fault records and severity classification.
//!
//! The Fault Management Framework "gathers the information on the detected
//! faults, and informs the applications about the fault detection" (paper
//! §4.4). Incoming watchdog faults are stamped with a severity so that
//! treatment can depend "on the source, type and severity of the detected
//! faults" (§3.2).

use easis_watchdog::report::{DetectedFault, FaultKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a recorded fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Log only.
    Info,
    /// Degraded but tolerable.
    Minor,
    /// Requires treatment.
    Major,
    /// Safety goal threatened — immediate treatment.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Minor => "minor",
            Severity::Major => "major",
            Severity::Critical => "critical",
        })
    }
}

/// Maps fault kinds to severities. The default matches the EASIS
/// deliverable's conservative stance: timing faults are major, flow faults
/// critical (a corrupted program counter may corrupt state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeverityMap {
    /// Severity of aliveness faults.
    pub aliveness: Severity,
    /// Severity of arrival-rate faults.
    pub arrival_rate: Severity,
    /// Severity of program-flow faults.
    pub program_flow: Severity,
}

impl Default for SeverityMap {
    fn default() -> Self {
        SeverityMap {
            aliveness: Severity::Major,
            arrival_rate: Severity::Major,
            program_flow: Severity::Critical,
        }
    }
}

impl SeverityMap {
    /// Severity of the given kind.
    pub fn classify(&self, kind: FaultKind) -> Severity {
        match kind {
            FaultKind::Aliveness => self.aliveness,
            FaultKind::ArrivalRate => self.arrival_rate,
            FaultKind::ProgramFlow => self.program_flow,
        }
    }
}

/// A classified fault in the FMF log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The underlying detection.
    pub fault: DetectedFault,
    /// Assigned severity.
    pub severity: Severity,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity, self.fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_rte::runnable::RunnableId;
    use easis_sim::time::Instant;

    #[test]
    fn severity_ordering_escalates() {
        assert!(Severity::Critical > Severity::Major);
        assert!(Severity::Major > Severity::Minor);
        assert!(Severity::Minor > Severity::Info);
    }

    #[test]
    fn default_map_matches_design() {
        let m = SeverityMap::default();
        assert_eq!(m.classify(FaultKind::Aliveness), Severity::Major);
        assert_eq!(m.classify(FaultKind::ArrivalRate), Severity::Major);
        assert_eq!(m.classify(FaultKind::ProgramFlow), Severity::Critical);
    }

    #[test]
    fn record_display_names_severity_and_fault() {
        let rec = FaultRecord {
            fault: DetectedFault {
                at: Instant::from_millis(5),
                runnable: RunnableId(1),
                kind: FaultKind::Aliveness,
            },
            severity: Severity::Major,
        };
        let s = rec.to_string();
        assert!(s.contains("major") && s.contains("aliveness"), "{s}");
    }
}

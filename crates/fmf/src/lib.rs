//! # easis-fmf — the EASIS Fault Management Framework
//!
//! The companion dependability service of the Software Watchdog (paper
//! §4.4 and its reference \[12\]): it receives the watchdog's detected faults and
//! state changes, classifies them by severity, and decides coordinated
//! fault treatments per the paper's §3.5 decision tree — application
//! restart/termination while the ECU is healthy, a software reset when the
//! global ECU state turns faulty.
//!
//! # Examples
//!
//! ```
//! use easis_fmf::framework::FaultManagementFramework;
//! use easis_fmf::policy::Treatment;
//! use easis_rte::mapping::ApplicationId;
//! use easis_sim::time::Instant;
//! use easis_watchdog::report::StateChange;
//!
//! let mut fmf = FaultManagementFramework::default();
//! fmf.ingest_state_change(StateChange::ApplicationFaulty {
//!     app: ApplicationId(0),
//!     at: Instant::from_millis(30),
//! });
//! let actions = fmf.take_actions();
//! assert_eq!(actions[0].treatment, Treatment::RestartApplication(ApplicationId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtc;
pub mod framework;
pub mod policy;
pub mod record;

pub use dtc::{DtcCode, DtcRecord, DtcStatus, DtcStore, DtcStoreSnapshot, FreezeFrame};
pub use framework::{FaultManagementFramework, FmfCycleDelta, FmfSnapshot};
pub use policy::{Treatment, TreatmentAction, TreatmentPolicy};
pub use record::{FaultRecord, Severity, SeverityMap};

//! Criterion benchmarks of the platform substrates: OSEK scheduling
//! throughput, the supervised central node, and the full HIL loop —
//! simulated seconds per wall-clock second.

use criterion::{criterion_group, criterion_main, Criterion};
use easis_injection::injector::Injector;
use easis_osek::alarm::AlarmAction;
use easis_osek::kernel::Os;
use easis_osek::plan::Plan;
use easis_osek::task::{Priority, TaskConfig};
use easis_sim::time::{Duration, Instant};
use easis_validator::hil::HilValidator;
use easis_validator::{CentralNode, NodeConfig};
use std::hint::black_box;

fn bench_osek(c: &mut Criterion) {
    c.bench_function("osek_1s_three_periodic_tasks", |b| {
        b.iter(|| {
            let mut os: Os<u64> = Os::with_disabled_trace();
            for (i, period) in [(0u32, 5u64), (1, 10), (2, 20)] {
                let t = os.add_task(
                    TaskConfig::new(format!("t{i}"), Priority(i as u8 + 1)),
                    move |_, _: &u64| {
                        Plan::new()
                            .compute(Duration::from_micros(200))
                            .effect(|w, _| *w += 1)
                    },
                );
                let a = os.add_alarm(format!("a{i}"), AlarmAction::ActivateTask(t));
                // Arming happens after start below; stash via closure scope.
                let _ = (a, period);
            }
            let mut w = 0u64;
            os.start(&mut w);
            for (i, period) in [(0u32, 5u64), (1, 10), (2, 20)] {
                let a = easis_osek::alarm::AlarmId(i);
                os.set_rel_alarm(a, Duration::from_millis(period), Some(Duration::from_millis(period)))
                    .expect("arm");
            }
            os.run_until(Instant::from_millis(1_000), &mut w);
            black_box(w)
        })
    });
}

fn bench_central_node(c: &mut Criterion) {
    c.bench_function("central_node_1s_supervised", |b| {
        b.iter(|| {
            let mut node = CentralNode::build(NodeConfig::default());
            node.start();
            let mut injector = Injector::none();
            node.run_until(Instant::from_millis(1_000), &mut injector);
            black_box(node.world.watchdog.cycles_run())
        })
    });
}

fn bench_hil(c: &mut Criterion) {
    c.bench_function("hil_1s_closed_loop", |b| {
        b.iter(|| {
            let mut hil = HilValidator::motorway(25.0, 13.9, None, 1);
            let mut injector = Injector::none();
            let report = hil.run(Duration::from_secs(1), &mut injector, None);
            black_box(report.can_frames)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_osek, bench_central_node, bench_hil
}
criterion_main!(benches);

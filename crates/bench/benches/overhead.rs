//! Criterion micro-benchmarks of the monitoring primitives (wall-clock
//! counterpart of the cycle-model table T-OVH): heartbeat indication,
//! watchdog cycle check, PFC look-up and CFCSS block entry.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use easis_baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::time::{Duration, Instant};
use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis_watchdog::pfc::{FlowTable, ProgramFlowChecker};
use easis_watchdog::SoftwareWatchdog;
use std::hint::black_box;

fn safespeed_watchdog(runnables: u32) -> SoftwareWatchdog {
    let mut builder =
        WatchdogConfig::builder(Duration::from_millis(10)).allow_entry(RunnableId(0));
    for i in 0..runnables {
        builder = builder
            .monitor(
                RunnableHypothesis::new(RunnableId(i))
                    .alive_at_least(1, 1)
                    .arrive_at_most(2, 1),
            )
            .allow_flow(RunnableId(i), RunnableId((i + 1) % runnables));
    }
    SoftwareWatchdog::new(builder.build())
}

fn bench_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("watchdog");
    group.bench_function("heartbeat_indication", |b| {
        b.iter_batched_ref(
            || safespeed_watchdog(3),
            |wd| {
                for i in 0..3 {
                    wd.heartbeat(RunnableId(i), Instant::from_millis(5));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cycle_check_3_runnables", |b| {
        b.iter_batched_ref(
            || {
                let mut wd = safespeed_watchdog(3);
                for i in 0..3 {
                    wd.heartbeat(RunnableId(i), Instant::from_millis(5));
                }
                wd
            },
            |wd| black_box(wd.run_cycle(Instant::from_millis(10))),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cycle_check_30_runnables", |b| {
        b.iter_batched_ref(
            || {
                let mut wd = safespeed_watchdog(30);
                for i in 0..30 {
                    wd.heartbeat(RunnableId(i), Instant::from_millis(5));
                }
                wd
            },
            |wd| black_box(wd.run_cycle(Instant::from_millis(10))),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_flow_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_checking");
    // Look-up table over 3 runnables.
    let mut table = FlowTable::new();
    for i in 0..3u32 {
        table.allow(RunnableId(i), RunnableId((i + 1) % 3));
    }
    group.bench_function("pfc_lookup_per_runnable", |b| {
        let mut pfc = ProgramFlowChecker::new(table.clone());
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 3;
            black_box(pfc.observe(RunnableId(i)))
        })
    });
    // CFCSS at 24 blocks per runnable.
    let program = CfcssProgram::instrument(ControlFlowGraph::chain(72), 5);
    group.bench_function("cfcss_per_runnable_24_blocks", |b| {
        let mut monitor = CfcssMonitor::new(program.clone(), BlockId(0));
        let mut costs = CostMeter::new();
        let mut pos = 0u32;
        b.iter(|| {
            for _ in 0..24 {
                pos = (pos + 1) % 72;
                black_box(monitor.enter(BlockId(pos), &mut costs));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_heartbeat, bench_flow_checking
}
criterion_main!(benches);

//! **HIL** — the validation context of §4.1/§4.2: SafeSpeed and SafeLane
//! running closed-loop on the architecture validator (vehicle plant, CAN,
//! gateway, FlexRay, central node with watchdog + FMF).
//!
//! Prints the vehicle-speed/limit/brake series of the motorway run with a
//! limit drop at 500 m and a driver distraction episode, plus the bus and
//! dependability statistics.

use easis_bench::{emit_json, header};
use easis_injection::injector::Injector;
use easis_sim::series::SeriesSet;
use easis_sim::time::Duration;
use easis_validator::hil::HilValidator;
use easis_vehicle::driver::DriftEpisode;

fn main() {
    header(
        "HIL",
        "§4.1/§4.2 — SafeSpeed + SafeLane on the architecture validator",
        "90 s motorway run: limit drop 25→13.9 m/s at 500 m; drift at 30 s",
    );
    let drift = DriftEpisode {
        from_s: 30.0,
        to_s: 34.0,
        steer: 0.02,
    };
    let mut hil = HilValidator::motorway(25.0, 13.9, Some(drift), 42);
    let mut injector = Injector::none();
    let mut series = SeriesSet::new("hil_closed_loop");
    let report = hil.run(Duration::from_secs(90), &mut injector, Some(&mut series));

    print!("{}", series.render_table(30));
    println!("final speed / limit:  {:.2} / {:.2} m/s", report.final_speed, report.final_limit);
    println!("lane warning fired:   {}", report.ldw_warned);
    println!("watchdog faults:      {}", report.faults_detected);
    println!("CAN / FlexRay frames: {} / {}", report.can_frames, report.flexray_frames);
    assert!((report.final_speed - report.final_limit).abs() < 2.0);
    assert_eq!(report.faults_detected, 0, "healthy run must stay clean");
    emit_json("hil_closed_loop", &series);
}

//! **T-GRAN** — the granularity argument of the paper's §2: hardware
//! watchdogs and task-level monitors are "not fine enough for runnables".
//!
//! Restricts the campaign to the three purely runnable-level error classes
//! (heartbeat loss, skipped runnable, duplicate dispatch) — faults that do
//! not change task timing — and reports how many each monitor *family*
//! detects.

use easis_bench::{emit_json, header};
use easis_injection::campaign::{CampaignBuilder, CampaignPlan};
use easis_injection::executor::CampaignExecutor;
use easis_injection::stats::DetectorId;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    family: String,
    detected: usize,
    injected: usize,
    coverage_pct: f64,
}

fn main() {
    let trials_per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    header(
        "T-GRAN",
        "§2 claim — task-level monitoring is too coarse for runnables",
        "runnable-level-only faults; detection per monitor family",
    );
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xBEEF, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();

    // Keep only the classes that leave task timing intact.
    let runnable_level = ["heartbeat_loss", "skip_runnable", "duplicate_dispatch"];
    let sub_plan = CampaignPlan::from_trials(
        plan.trials()
            .iter()
            .filter(|t| runnable_level.contains(&t.injection.class.tag()))
            .cloned()
            .collect::<Vec<_>>(),
    );
    let executor = CampaignExecutor::from_env();
    println!(
        "running {} runnable-level trials on {} worker(s)…\n",
        sub_plan.len(),
        executor.workers()
    );
    let outcomes = scenario::run_plan(&sub_plan, horizon, &executor);
    let outcomes = outcomes.trials();

    let injected = outcomes.len();
    let sw = outcomes.iter().filter(|o| o.detected_by_sw_watchdog()).count();
    let task_level = outcomes
        .iter()
        .filter(|o| {
            o.detected_by(DetectorId::DeadlineMonitor)
                || o.detected_by(DetectorId::ExecTimeMonitor)
        })
        .count();
    let hw = outcomes
        .iter()
        .filter(|o| o.detected_by(DetectorId::HwWatchdog))
        .count();

    let rows = vec![
        Row {
            family: "Software Watchdog (runnable granularity)".into(),
            detected: sw,
            injected,
            coverage_pct: 100.0 * sw as f64 / injected as f64,
        },
        Row {
            family: "Deadline/budget monitors (task granularity)".into(),
            detected: task_level,
            injected,
            coverage_pct: 100.0 * task_level as f64 / injected as f64,
        },
        Row {
            family: "Hardware watchdog (ECU granularity)".into(),
            detected: hw,
            injected,
            coverage_pct: 100.0 * hw as f64 / injected as f64,
        },
    ];
    println!("{:<46} {:>9} {:>9} {:>10}", "monitor family", "detected", "injected", "coverage");
    for r in &rows {
        println!(
            "{:<46} {:>9} {:>9} {:>9.0}%",
            r.family, r.detected, r.injected, r.coverage_pct
        );
    }
    println!(
        "\npaper shape check: only the Software Watchdog sees faults confined\n\
         to a single runnable; the coarser monitors are structurally blind."
    );
    assert_eq!(sw, injected, "SW watchdog must catch all runnable-level faults");
    assert_eq!(hw, 0);
    emit_json("table_granularity", &rows);
}

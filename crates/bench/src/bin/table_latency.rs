//! **T-LAT** — detection latency ("early detection of timing faults",
//! paper §3).
//!
//! The same campaign as T-COV, reported as detection-latency distributions
//! (min / median / p95 from injection start) per error class and monitor.

use easis_bench::{emit_json, header};
use easis_injection::campaign::CampaignBuilder;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::scenario;

fn main() {
    let trials_per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    header(
        "T-LAT",
        "§3 claim — early detection of timing and flow faults",
        "detection latency distributions over the T-COV campaign",
    );
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xC0FFEE, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();
    println!("running {} trials…\n", plan.len());
    let stats = plan.run(|trial| scenario::run_trial(trial, horizon));

    print!("{}", stats.render_latency_table());
    println!(
        "\npaper shape check: PFC detects within one task period (immediate\n\
         look-up on the heartbeat); heartbeat monitoring within one watchdog\n\
         monitoring period; the hardware watchdog only after its full timeout."
    );
    emit_json("table_latency", &stats);
}

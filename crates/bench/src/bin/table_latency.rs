//! **T-LAT** — detection latency ("early detection of timing faults",
//! paper §3).
//!
//! The same campaign as T-COV, reported as detection-latency distributions
//! (min / median / p95 / p99 from injection start) per error class and
//! monitor.
//!
//! Usage: `table_latency [trials_per_class] [workers]` — trials default
//! to 10 per class; workers default to `EASIS_WORKERS` or the machine's
//! available parallelism. The emitted JSON is bit-identical for any
//! worker count.

use easis_bench::{emit_json, header};
use easis_injection::campaign::CampaignBuilder;
use easis_injection::executor::CampaignExecutor;
use easis_injection::report::CampaignReport;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::scenario;

fn main() {
    let trials_per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let executor = match std::env::args().nth(2).and_then(|s| s.parse().ok()) {
        Some(workers) => CampaignExecutor::new(workers),
        None => CampaignExecutor::from_env(),
    };
    header(
        "T-LAT",
        "§3 claim — early detection of timing and flow faults",
        "detection latency distributions over the T-COV campaign",
    );
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xC0FFEE, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();
    println!(
        "running {} trials on {} worker(s)…\n",
        plan.len(),
        executor.workers()
    );
    let started = std::time::Instant::now();
    let stats = scenario::run_plan(&plan, horizon, &executor);
    let elapsed = started.elapsed();

    print!("{}", stats.render_latency_table());
    let report = CampaignReport::from_stats(&stats);
    println!();
    print!("{}", report.render());
    println!(
        "\n[{} trials in {:.2} s on {} worker(s)]",
        stats.len(),
        elapsed.as_secs_f64(),
        executor.workers()
    );
    println!(
        "\npaper shape check: PFC detects within one task period (immediate\n\
         look-up on the heartbeat); heartbeat monitoring within one watchdog\n\
         monitoring period; the hardware watchdog only after its full timeout."
    );
    emit_json("table_latency", &report);
}

//! **HOTPATH** — per-event overhead of the dense-index data plane.
//!
//! The watchdog sits on every runnable dispatch, so its per-event cost is
//! *the* overhead that decides whether runnable-granularity monitoring
//! beats task-level deadline monitoring (the paper picks a look-up-table
//! PFC over embedded signatures for exactly this reason). This bin
//! measures the three hot operations —
//!
//! 1. **heartbeat indication** (`HeartbeatMonitor::record`),
//! 2. **PFC transition check** (`ProgramFlowChecker::observe`),
//! 3. **end-of-cycle window check** (`HeartbeatMonitor::end_of_cycle`) —
//!
//! against faithful re-implementations of the pre-dense `BTreeMap` data
//! plane (map-keyed counter structs, two-level successor-map probes with
//! the quadratic `is_monitored` fallback), and asserts the dense paths are
//! at least 2× faster. A fourth probe, **direct dispatch**, measures the
//! split-borrow `EffectRef` path (body run in place, OS services called
//! directly on a kernel-backed `EffectCtx`) against a faithful replica of
//! the moved-body baseline it replaced (body taken out of the TCB, effect
//! run on a detached context, service-request queue drained, body put
//! back — replicated locally in this bin now that the production shim is
//! retired). It also drives a full `SoftwareWatchdog` through
//! steady-state cycles under a counting allocator and asserts **zero**
//! heap allocations per nominal cycle. Results land in
//! `BENCH_hotpath.json` (stable schema, `schema_version` 2) so future PRs
//! have a perf trajectory to beat.
//!
//! Usage: `hotpath_bench [iterations]` (default 2,000,000; the ≥2×
//! speedup assertions are skipped below 1,000,000 iterations so CI smoke
//! runs stay timing-noise-proof).

use easis_osek::error::OsError;
use easis_osek::plan::{EffectCtx, KernelServices, Plan, ServiceCore, TaskBody};
use easis_osek::task::{EventMask, TaskId, TaskState};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::time::{Duration, Instant};
use easis_sim::trace::TraceRecorder;
use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis_watchdog::heartbeat::HeartbeatMonitor;
use easis_watchdog::pfc::{FlowTable, ProgramFlowChecker};
use easis_watchdog::SoftwareWatchdog;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation so steady-state `run_cycle` can be proven
/// allocation-free, not just claimed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const MONITORED: u32 = 64;
const DEFAULT_ITERATIONS: u64 = 2_000_000;
/// Below this the ≥2× assertions are timing noise, not signal.
const ASSERT_FLOOR: u64 = 1_000_000;

// ---------------------------------------------------------------------
// Map-based baselines: the pre-dense data plane, re-implemented verbatim
// so the speedup is measured by the same bin on the same workload.
// ---------------------------------------------------------------------

struct MapHeartbeatState {
    hypothesis: RunnableHypothesis,
    ac: u32,
    arc: u32,
    cca: u32,
    ccar: u32,
    active: bool,
    aliveness_errors: u32,
    arrival_rate_errors: u32,
}

/// The old `HeartbeatMonitor`: one map probe per indication, map walk per
/// cycle check.
struct MapHeartbeatMonitor {
    states: BTreeMap<RunnableId, MapHeartbeatState>,
}

impl MapHeartbeatMonitor {
    fn new(hypotheses: impl IntoIterator<Item = RunnableHypothesis>) -> Self {
        MapHeartbeatMonitor {
            states: hypotheses
                .into_iter()
                .map(|h| {
                    (
                        h.runnable,
                        MapHeartbeatState {
                            active: h.initially_active,
                            hypothesis: h,
                            ac: 0,
                            arc: 0,
                            cca: 0,
                            ccar: 0,
                            aliveness_errors: 0,
                            arrival_rate_errors: 0,
                        },
                    )
                })
                .collect(),
        }
    }

    fn record(&mut self, runnable: RunnableId, costs: &mut CostMeter) {
        costs.charge(easis_watchdog::heartbeat::HEARTBEAT_COST_CYCLES);
        if let Some(st) = self.states.get_mut(&runnable) {
            if st.active {
                st.ac = st.ac.saturating_add(1);
                st.arc = st.arc.saturating_add(1);
            }
        }
    }

    fn end_of_cycle(&mut self, costs: &mut CostMeter) -> u32 {
        let mut faults = 0;
        for st in self.states.values_mut() {
            if !st.active {
                continue;
            }
            costs.charge(easis_watchdog::heartbeat::CHECK_COST_CYCLES);
            if let Some(spec) = st.hypothesis.aliveness {
                st.cca += 1;
                if st.cca >= spec.cycles {
                    if st.ac < spec.min_indications {
                        st.aliveness_errors += 1;
                        faults += 1;
                    }
                    st.ac = 0;
                    st.cca = 0;
                }
            }
            if let Some(spec) = st.hypothesis.arrival_rate {
                st.ccar += 1;
                if st.ccar >= spec.cycles {
                    if st.arc > spec.max_indications {
                        st.arrival_rate_errors += 1;
                        faults += 1;
                    }
                    st.arc = 0;
                    st.ccar = 0;
                }
            }
        }
        faults
    }
}

/// The old `ProgramFlowChecker`: two-level successor-map probe per
/// transition, plus the quadratic `values().any(..)` monitored-set
/// fallback this PR's satellite task removed.
struct MapFlowChecker {
    successors: BTreeMap<RunnableId, BTreeSet<RunnableId>>,
    entries: BTreeSet<RunnableId>,
    last: Option<RunnableId>,
    errors_detected: u64,
}

impl MapFlowChecker {
    fn new(table: &FlowTable) -> Self {
        let mut successors: BTreeMap<RunnableId, BTreeSet<RunnableId>> = BTreeMap::new();
        for (pred, succ) in table.pairs() {
            successors.entry(pred).or_default().insert(succ);
        }
        // The workload table has a constrained entry set, so `is_entry`
        // answers membership directly.
        let entries: BTreeSet<RunnableId> =
            table.monitored_ids().filter(|&r| table.is_entry(r)).collect();
        MapFlowChecker {
            successors,
            entries,
            last: None,
            errors_detected: 0,
        }
    }

    fn is_monitored(&self, runnable: RunnableId) -> bool {
        self.entries.contains(&runnable)
            || self.successors.contains_key(&runnable)
            || self.successors.values().any(|set| set.contains(&runnable))
    }

    fn is_entry(&self, runnable: RunnableId) -> bool {
        self.entries.is_empty() || self.entries.contains(&runnable)
    }

    fn is_allowed(&self, predecessor: RunnableId, successor: RunnableId) -> bool {
        self.successors
            .get(&predecessor)
            .is_some_and(|s| s.contains(&successor))
    }

    fn observe(&mut self, runnable: RunnableId) -> bool {
        if !self.is_monitored(runnable) {
            return true;
        }
        let ok = match self.last {
            None => self.is_entry(runnable),
            Some(prev) => self.is_allowed(prev, runnable),
        };
        if !ok {
            self.errors_detected += 1;
        }
        self.last = Some(runnable);
        ok
    }
}

// ---------------------------------------------------------------------
// Effect-dispatch probe: split-borrow direct-call dispatch vs the
// moved-body + request-queue baseline the redesign replaced.
// ---------------------------------------------------------------------

/// A minimal [`ServiceCore`] standing in for the kernel's scheduler core:
/// service calls mutate a counter the way real ones mutate TCBs, so the
/// probe measures dispatch mechanics, not kernel scheduling.
struct BenchCore {
    activations: u64,
    trace: TraceRecorder,
}

impl BenchCore {
    fn new() -> Self {
        BenchCore {
            activations: 0,
            trace: TraceRecorder::disabled(),
        }
    }
}

impl ServiceCore<u64> for BenchCore {
    fn activate_task(&mut self, _task: TaskId, world: &mut u64) -> Result<(), OsError> {
        self.activations += 1;
        *world = world.wrapping_add(self.activations);
        Ok(())
    }

    fn set_event(&mut self, _task: TaskId, _mask: EventMask, _world: &mut u64) -> Result<(), OsError> {
        Ok(())
    }

    fn cancel_alarm_raw(&mut self, _raw_alarm_id: u32) -> Result<(), OsError> {
        Ok(())
    }

    fn task_state(&self, _task: TaskId) -> Result<TaskState, OsError> {
        Ok(TaskState::Suspended)
    }

    fn trace_mut(&mut self) -> &mut TraceRecorder {
        &mut self.trace
    }

    fn trace_enabled(&self) -> bool {
        false
    }
}

/// An effect-heavy arena-style body: every `run_effect` touches its own
/// state, the world, and issues one OS service call — the workload the
/// paper's watchdog task puts on the kernel boundary every cycle.
struct DispatchBody {
    peer: TaskId,
    fired: u64,
}

impl TaskBody<u64> for DispatchBody {
    fn plan_into(&mut self, _now: Instant, _world: &u64, out: &mut Plan<u64>) {
        out.push_effect_ref(0);
    }

    fn run_effect(&mut self, _token: u32, world: &mut u64, ctx: &mut EffectCtx<'_, u64>) {
        self.fired += 1;
        *world = world.wrapping_add(self.fired);
        let _ = ctx.activate_task(self.peer, world);
    }

    fn name(&self) -> &str {
        "dispatch-bench"
    }
}

// The pre-redesign moved-body machinery, replicated locally now that the
// production `ServiceRequest` shim is gone: a detached effect context that
// queues service requests (first push allocates — the queue is fresh per
// effect), drained against the core after the body is put back.

// Unused variants kept so the replica models the retired three-variant
// enum's size and match shape, not a degenerate single-variant one.
#[allow(dead_code)]
enum BenchServiceRequest {
    ActivateTask(TaskId),
    SetEvent(TaskId, EventMask),
    CancelAlarm(u32),
}

struct MovedCtx<'a> {
    #[allow(dead_code)]
    trace: &'a mut TraceRecorder,
    requests: Vec<BenchServiceRequest>,
}

impl MovedCtx<'_> {
    fn request_activate(&mut self, task: TaskId) {
        self.requests.push(BenchServiceRequest::ActivateTask(task));
    }
}

/// The pre-split-borrow body shape: effects see only the detached context.
trait MovedTaskBody {
    fn run_effect(&mut self, token: u32, world: &mut u64, ctx: &mut MovedCtx<'_>);
}

struct MovedDispatchBody {
    peer: TaskId,
    fired: u64,
}

impl MovedTaskBody for MovedDispatchBody {
    fn run_effect(&mut self, _token: u32, world: &mut u64, ctx: &mut MovedCtx<'_>) {
        self.fired += 1;
        *world = world.wrapping_add(self.fired);
        ctx.request_activate(self.peer);
    }
}

fn bench_direct_dispatch(iterations: u64) -> DispatchComparison {
    const TASKS: usize = 16;

    // Split-borrow path: the body runs in place and calls the service
    // directly and synchronously through its kernel-backed context.
    let mut core = BenchCore::new();
    let mut bodies: Vec<Box<dyn TaskBody<u64>>> = (0..TASKS)
        .map(|i| {
            Box::new(DispatchBody { peer: TaskId(i as u32), fired: 0 })
                as Box<dyn TaskBody<u64>>
        })
        .collect();
    let mut world = 0u64;
    let mut i = 0usize;
    let direct_ns = measure(iterations, || {
        let mut ctx = EffectCtx::for_kernel(
            Instant::ZERO,
            TaskId((i % TASKS) as u32),
            KernelServices::new(&mut core),
        );
        bodies[i % TASKS].run_effect(0, &mut world, &mut ctx);
        i = i.wrapping_add(1);
    });
    black_box((world, core.activations));

    // Moved-body baseline, replicated faithfully from the pre-split-borrow
    // kernel: take the body out of its TCB slot, run the effect on a
    // detached context, drain the request queue (whose first push
    // allocates — the context is fresh per effect), put the body back,
    // then replay the queued requests against the core.
    let mut core = BenchCore::new();
    let mut slots: Vec<Option<Box<dyn MovedTaskBody>>> = (0..TASKS)
        .map(|i| {
            Some(Box::new(MovedDispatchBody { peer: TaskId(i as u32), fired: 0 })
                as Box<dyn MovedTaskBody>)
        })
        .collect();
    let mut trace = TraceRecorder::disabled();
    let mut world = 0u64;
    let mut i = 0usize;
    let moved_ns = measure(iterations, || {
        let mut body = slots[i % TASKS].take().expect("body present in slot");
        let mut ctx = MovedCtx { trace: &mut trace, requests: Vec::new() };
        body.run_effect(0, &mut world, &mut ctx);
        let requests = ctx.requests;
        slots[i % TASKS] = Some(body);
        for request in requests {
            match request {
                BenchServiceRequest::ActivateTask(t) => {
                    let _ = ServiceCore::activate_task(&mut core, t, &mut world);
                }
                BenchServiceRequest::SetEvent(t, m) => {
                    let _ = ServiceCore::set_event(&mut core, t, m, &mut world);
                }
                BenchServiceRequest::CancelAlarm(a) => {
                    let _ = core.cancel_alarm_raw(a);
                }
            }
        }
        i = i.wrapping_add(1);
    });
    black_box((world, core.activations));

    DispatchComparison::new(direct_ns, moved_ns)
}

// ---------------------------------------------------------------------
// Workload: 64 monitored runnables in one dispatch chain 0→1→…→63→0.
// ---------------------------------------------------------------------

fn hypotheses() -> Vec<RunnableHypothesis> {
    (0..MONITORED)
        .map(|i| {
            RunnableHypothesis::new(RunnableId(i))
                .alive_at_least(1, 4)
                .arrive_at_most(8, 4)
        })
        .collect()
}

fn chain_table() -> FlowTable {
    let mut table = FlowTable::new();
    table.allow_entry(RunnableId(0));
    for i in 0..MONITORED {
        table.allow(RunnableId(i), RunnableId((i + 1) % MONITORED));
    }
    table
}

/// Timing passes per measurement; the fastest is reported.
const REPS: u64 = 7;

/// Runs `op` in [`REPS`] back-to-back passes of `iterations / REPS` calls
/// each and returns the fastest pass's ns/op. Taking the minimum is the
/// standard low-noise micro-bench estimator: interference (preemption,
/// frequency dips, timer interrupts) only ever *adds* time, so the best
/// pass is the closest observation of the true cost — one bad pass can
/// no longer poison the whole measurement.
fn measure<F: FnMut()>(iterations: u64, mut op: F) -> f64 {
    let per_pass = (iterations / REPS).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = std::time::Instant::now();
        for _ in 0..per_pass {
            op();
        }
        let ns = start.elapsed().as_nanos() as f64 / per_pass as f64;
        best = best.min(ns);
    }
    best
}

// ---------------------------------------------------------------------
// Report schema (schema_version 2 — keep stable, future PRs diff this;
// v2 added the `direct_dispatch` probe).
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct Comparison {
    dense: f64,
    map_baseline: f64,
    speedup: f64,
}

impl Comparison {
    fn new(dense: f64, map_baseline: f64) -> Self {
        Comparison {
            dense,
            map_baseline,
            speedup: map_baseline / dense,
        }
    }
}

#[derive(Serialize)]
struct DispatchComparison {
    direct: f64,
    moved_body_baseline: f64,
    speedup: f64,
}

impl DispatchComparison {
    fn new(direct: f64, moved_body_baseline: f64) -> Self {
        DispatchComparison {
            direct,
            moved_body_baseline,
            speedup: moved_body_baseline / direct,
        }
    }
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    iterations: u64,
    monitored_runnables: u32,
    ns_per_heartbeat: Comparison,
    ns_per_pfc_check: Comparison,
    ns_per_cycle_check: Comparison,
    direct_dispatch: DispatchComparison,
    steady_state_cycle_allocs: u64,
}

fn bench_heartbeat(iterations: u64) -> Comparison {
    let mut dense = HeartbeatMonitor::new(hypotheses());
    let mut costs = CostMeter::new();
    let mut i = 0u32;
    let dense_ns = measure(iterations, || {
        dense.record(RunnableId(i % MONITORED), Instant::ZERO, &mut costs);
        i = i.wrapping_add(1);
    });
    black_box(dense.counters(RunnableId(0)));

    let mut map = MapHeartbeatMonitor::new(hypotheses());
    let mut costs = CostMeter::new();
    let mut i = 0u32;
    let map_ns = measure(iterations, || {
        map.record(RunnableId(i % MONITORED), &mut costs);
        i = i.wrapping_add(1);
    });
    black_box(map.states.len());
    Comparison::new(dense_ns, map_ns)
}

fn bench_pfc(iterations: u64) -> Comparison {
    let table = chain_table();
    let mut dense = ProgramFlowChecker::new(table.clone());
    let mut i = 0u32;
    let dense_ns = measure(iterations, || {
        black_box(dense.observe(RunnableId(i % MONITORED)));
        i = i.wrapping_add(1);
    });
    assert_eq!(dense.errors_detected(), 0, "chain workload must stay clean");

    let mut map = MapFlowChecker::new(&table);
    let mut i = 0u32;
    let map_ns = measure(iterations, || {
        black_box(map.observe(RunnableId(i % MONITORED)));
        i = i.wrapping_add(1);
    });
    assert_eq!(map.errors_detected, 0, "baseline must agree with dense");
    Comparison::new(dense_ns, map_ns)
}

fn bench_cycle_check(iterations: u64) -> Comparison {
    // One "cycle" = beat every runnable once, then run the window check;
    // the reported figure is ns per end-of-cycle sweep (64 runnables).
    let cycles = (iterations / MONITORED as u64).max(1_000);

    let mut dense = HeartbeatMonitor::new(hypotheses());
    let mut costs = CostMeter::new();
    let mut faults = Vec::new();
    let dense_ns = measure(cycles, || {
        for i in 0..MONITORED {
            dense.record(RunnableId(i), Instant::ZERO, &mut costs);
        }
        dense.end_of_cycle_into(Instant::ZERO, &mut costs, &mut faults);
    });
    assert!(faults.is_empty(), "nominal cycles must stay fault-free");

    let mut map = MapHeartbeatMonitor::new(hypotheses());
    let mut costs = CostMeter::new();
    let mut total_faults = 0u32;
    let map_ns = measure(cycles, || {
        for i in 0..MONITORED {
            map.record(RunnableId(i), &mut costs);
        }
        total_faults += map.end_of_cycle(&mut costs);
    });
    assert_eq!(total_faults, 0, "baseline must agree with dense");
    Comparison::new(dense_ns, map_ns)
}

/// Drives a full service (heartbeats + run_cycle) in its steady state and
/// returns the allocations per cycle (must be zero).
fn steady_state_allocs() -> u64 {
    let mut mapping = easis_rte::mapping::SystemMapping::new();
    let app = mapping.add_application("Hotpath");
    mapping.assign_task(easis_osek::task::TaskId(0), app);
    for i in 0..MONITORED {
        mapping.assign_runnable(RunnableId(i), easis_osek::task::TaskId(0));
    }
    let mut builder = WatchdogConfig::builder(Duration::from_millis(10)).mapping(mapping);
    builder = builder.allow_entry(RunnableId(0));
    for i in 0..MONITORED {
        builder = builder.allow_flow(RunnableId(i), RunnableId((i + 1) % MONITORED));
    }
    for hypothesis in hypotheses() {
        builder = builder.monitor(hypothesis);
    }
    let mut watchdog = SoftwareWatchdog::new(builder.build());

    let cycle = |watchdog: &mut SoftwareWatchdog, n: u64| {
        for i in 0..MONITORED {
            watchdog.heartbeat(RunnableId(i), Instant::from_millis(n * 10 + 5));
        }
        let report = watchdog.run_cycle(Instant::from_millis(n * 10 + 10));
        assert!(report.faults.is_empty(), "steady state must stay clean");
    };

    // Warm up so every capacity-retained buffer reaches its fixpoint.
    for n in 0..16 {
        cycle(&mut watchdog, n);
    }
    const MEASURED_CYCLES: u64 = 1_000;
    let before = allocations();
    for n in 16..16 + MEASURED_CYCLES {
        cycle(&mut watchdog, n);
    }
    let total = allocations() - before;
    black_box(watchdog.costs().total_cycles());
    // Report per-cycle to keep the figure stable if MEASURED_CYCLES moves.
    total / MEASURED_CYCLES
}

fn validate_emitted_json(path: &str) {
    let text = std::fs::read_to_string(path).expect("BENCH_hotpath.json written");
    let value = serde_json::parse_value(&text).expect("BENCH_hotpath.json parses");
    let serde::Value::Map(entries) = value else {
        panic!("BENCH_hotpath.json must be a JSON object");
    };
    for key in [
        "schema_version",
        "iterations",
        "monitored_runnables",
        "ns_per_heartbeat",
        "ns_per_pfc_check",
        "ns_per_cycle_check",
        "direct_dispatch",
        "steady_state_cycle_allocs",
    ] {
        assert!(
            entries.iter().any(|(k, _)| k == key),
            "BENCH_hotpath.json missing key {key:?}"
        );
    }
}

fn main() {
    let iterations = std::env::args()
        .nth(1)
        .map(|raw| raw.parse::<u64>().expect("iterations must be a number"))
        .unwrap_or(DEFAULT_ITERATIONS);

    println!("================================================================");
    println!("experiment HOTPATH — per-event overhead, dense vs map data plane");
    println!("{iterations} iterations over {MONITORED} monitored runnables");
    println!("================================================================");

    let heartbeat = bench_heartbeat(iterations);
    let pfc = bench_pfc(iterations);
    let cycle = bench_cycle_check(iterations);
    let dispatch = bench_direct_dispatch(iterations);
    let cycle_allocs = steady_state_allocs();

    println!("{:<22} {:>10} {:>12} {:>9}", "operation", "dense ns", "map ns", "speedup");
    for (name, c) in [
        ("heartbeat indication", &heartbeat),
        ("pfc transition check", &pfc),
        ("end-of-cycle sweep", &cycle),
    ] {
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>8.1}x",
            name, c.dense, c.map_baseline, c.speedup
        );
    }
    println!(
        "{:<22} {:>10.1} {:>12.1} {:>8.1}x",
        "effect dispatch", dispatch.direct, dispatch.moved_body_baseline, dispatch.speedup
    );
    println!("steady-state run_cycle allocations/cycle: {cycle_allocs}");

    assert_eq!(
        cycle_allocs, 0,
        "steady-state run_cycle must not allocate (counting allocator saw traffic)"
    );
    if iterations >= ASSERT_FLOOR {
        assert!(
            heartbeat.speedup >= 2.0,
            "heartbeat dense path must be ≥2× the map baseline, got {:.2}×",
            heartbeat.speedup
        );
        assert!(
            pfc.speedup >= 2.0,
            "PFC dense path must be ≥2× the map baseline, got {:.2}×",
            pfc.speedup
        );
        // The split-borrow dispatch must never regress past the moved-body
        // baseline it replaced; the design target is ≥1.2× on this
        // effect-heavy loop.
        assert!(
            dispatch.speedup >= 1.0,
            "direct dispatch must be no slower than the moved-body baseline, got {:.2}×",
            dispatch.speedup
        );
    } else {
        println!("(speedup assertions skipped below {ASSERT_FLOOR} iterations)");
    }

    let report = Report {
        schema_version: 2,
        iterations,
        monitored_runnables: MONITORED,
        ns_per_heartbeat: heartbeat,
        ns_per_pfc_check: pfc,
        ns_per_cycle_check: cycle,
        direct_dispatch: dispatch,
        steady_state_cycle_allocs: cycle_allocs,
    };
    let path = "BENCH_hotpath.json";
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, json).expect("BENCH_hotpath.json writable");
    validate_emitted_json(path);
    println!("[record written to {path}]");
}

//! **A-PROBE** — ablation of the paper's passive-monitoring choice
//! (§3.3: "In EASIS, we chose a passive approach").
//!
//! The passive heartbeat counters and the active challenge–response probe
//! face three runnable conditions — healthy, dead, and *stuck replayer*
//! (glue keeps emitting old indications while the logic is dead) — and the
//! table reports detection plus per-cycle monitoring cost. The replayer
//! column is the capability the passive choice gives up; the cost column is
//! what it saves.
//!
//! Both monitors are driven through the unified [`MonitoringUnit`]
//! interface: the driver below broadcasts the condition's indications and
//! runs the periodic check without knowing which unit it is exercising —
//! the same loop works for either approach.

use easis_bench::{emit_json, header};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::time::Instant;
use easis_watchdog::config::RunnableHypothesis;
use easis_watchdog::heartbeat::HeartbeatMonitor;
use easis_watchdog::probe::{expected_response, ActiveProbeMonitor};
use easis_watchdog::unit::{MonitorEvent, MonitoringUnit};
use serde::Serialize;

const CYCLES: u64 = 1_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Condition {
    Healthy,
    Dead,
    StuckReplayer,
}

#[derive(Serialize)]
struct Row {
    monitor: String,
    healthy_false_alarms: u64,
    dead_detections: u64,
    replayer_detections: u64,
    cycles_per_runnable_cycle: f64,
}

/// Drives any monitoring unit over `CYCLES` watchdog cycles; the
/// condition decides which indications `events_for` produces each cycle.
fn drive(
    unit: &mut dyn MonitoringUnit,
    mut events_for: impl FnMut(u64) -> Vec<MonitorEvent>,
) -> (u64, u64) {
    let mut costs = CostMeter::new();
    let mut detections = 0;
    for cycle in 1..=CYCLES {
        for event in events_for(cycle) {
            unit.observe(event, &mut costs);
        }
        detections += unit
            .check(Instant::from_millis(cycle * 10), &mut costs)
            .len() as u64;
    }
    (detections, costs.total_cycles())
}

fn run_passive(condition: Condition) -> (u64, u64) {
    let r = RunnableId(0);
    let mut monitor = HeartbeatMonitor::new([RunnableHypothesis::new(r).alive_at_least(1, 1)]);
    drive(&mut monitor, |cycle| match condition {
        Condition::Healthy | Condition::StuckReplayer => vec![MonitorEvent::Heartbeat {
            runnable: r,
            at: Instant::from_millis(cycle * 10 - 5),
        }],
        Condition::Dead => Vec::new(),
    })
}

fn run_active(condition: Condition) -> (u64, u64) {
    let r = RunnableId(0);
    // The challenge stream is a pure function of the seed (one draw per
    // runnable per cycle check), so a shadow monitor with the same seed
    // yields the fresh response the healthy glue would compute each cycle.
    let mut shadow = ActiveProbeMonitor::new([r], 42);
    let stale = expected_response(shadow.challenge_for(r).unwrap());
    let mut fresh = Vec::new();
    let mut shadow_costs = CostMeter::new();
    for _ in 1..=CYCLES {
        fresh.push(expected_response(shadow.challenge_for(r).unwrap()));
        let _ = shadow.end_of_cycle(Instant::ZERO, &mut shadow_costs);
    }
    let mut monitor = ActiveProbeMonitor::new([r], 42);
    drive(&mut monitor, |cycle| {
        let at = Instant::from_millis(cycle * 10 - 5);
        match condition {
            Condition::Healthy => vec![MonitorEvent::ProbeResponse {
                runnable: r,
                response: fresh[(cycle - 1) as usize],
                at,
            }],
            Condition::StuckReplayer => vec![MonitorEvent::ProbeResponse {
                runnable: r,
                response: stale,
                at,
            }],
            Condition::Dead => Vec::new(),
        }
    })
}

fn main() {
    header(
        "A-PROBE",
        "§3.3 design choice — passive counters vs active challenge-response",
        "healthy / dead / stuck-replayer runnable over 1000 watchdog cycles",
    );
    let (p_healthy, p_cost) = run_passive(Condition::Healthy);
    let (p_dead, _) = run_passive(Condition::Dead);
    let (p_replay, _) = run_passive(Condition::StuckReplayer);
    let (a_healthy, a_cost) = run_active(Condition::Healthy);
    let (a_dead, _) = run_active(Condition::Dead);
    let (a_replay, _) = run_active(Condition::StuckReplayer);

    let rows = vec![
        Row {
            monitor: "passive heartbeat counters (paper)".into(),
            healthy_false_alarms: p_healthy,
            dead_detections: p_dead,
            replayer_detections: p_replay,
            cycles_per_runnable_cycle: p_cost as f64 / CYCLES as f64,
        },
        Row {
            monitor: "active challenge-response".into(),
            healthy_false_alarms: a_healthy,
            dead_detections: a_dead,
            replayer_detections: a_replay,
            cycles_per_runnable_cycle: a_cost as f64 / CYCLES as f64,
        },
    ];
    println!(
        "{:<36} {:>12} {:>10} {:>12} {:>14}",
        "monitor", "false alarms", "dead det.", "replay det.", "cycles/cycle"
    );
    for r in &rows {
        println!(
            "{:<36} {:>12} {:>10} {:>12} {:>14.1}",
            r.monitor,
            r.healthy_false_alarms,
            r.dead_detections,
            r.replayer_detections,
            r.cycles_per_runnable_cycle
        );
    }
    println!(
        "\ndesign-choice reading: both approaches catch dead runnables; only\n\
         the active probe catches replayed indications, at ~{:.0}% higher\n\
         per-cycle cost — the trade the paper resolved in favour of passive.",
        (rows[1].cycles_per_runnable_cycle / rows[0].cycles_per_runnable_cycle - 1.0) * 100.0
    );
    assert_eq!(rows[0].healthy_false_alarms, 0);
    assert_eq!(rows[1].healthy_false_alarms, 0);
    assert_eq!(rows[0].dead_detections, CYCLES);
    assert_eq!(rows[1].dead_detections, CYCLES);
    assert_eq!(rows[0].replayer_detections, 0);
    assert!(rows[1].replayer_detections >= CYCLES - 1);
    assert!(rows[1].cycles_per_runnable_cycle > rows[0].cycles_per_runnable_cycle);
    emit_json("ablation_passive_active", &rows);
}

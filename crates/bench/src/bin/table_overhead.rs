//! **T-OVH** — monitoring overhead: look-up-table PFC vs embedded
//! signatures (paper §3.4: the table was chosen "to minimize performance
//! penalty and extensive modification requirements").
//!
//! Replays an identical monitored execution (N periods of the 3-runnable
//! SafeSpeed chain) through the Software Watchdog and through CFCSS at
//! several basic-block densities, and reports total cycles plus CPU time
//! on the AutoBox and S12XF models.

use easis_baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
use easis_bench::{emit_json, header};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::{CostMeter, CpuModel};
use easis_sim::time::{Duration, Instant};
use easis_watchdog::config::{RunnableHypothesis, WatchdogConfig};
use easis_watchdog::pfc::LOOKUP_COST_CYCLES;
use easis_watchdog::SoftwareWatchdog;
use serde::Serialize;

const PERIODS: u64 = 10_000;
const RUNNABLES: u32 = 3;

#[derive(Serialize)]
struct Row {
    monitor: String,
    blocks_per_runnable: usize,
    total_cycles: u64,
    autobox_us: u64,
    s12xf_us: u64,
    relative: f64,
}

fn watchdog_cycles() -> u64 {
    let mut builder =
        WatchdogConfig::builder(Duration::from_millis(10)).allow_entry(RunnableId(0));
    for i in 0..RUNNABLES {
        builder = builder
            .monitor(RunnableHypothesis::new(RunnableId(i)).alive_at_least(1, 1))
            .allow_flow(RunnableId(i), RunnableId((i + 1) % RUNNABLES));
    }
    let mut wd = SoftwareWatchdog::new(builder.build());
    for period in 0..PERIODS {
        let now = Instant::from_millis(10 * (period + 1));
        for i in 0..RUNNABLES {
            wd.heartbeat(RunnableId(i), now);
        }
        wd.run_cycle(now);
    }
    assert_eq!(wd.pfc_errors_total(), 0);
    wd.costs().total_cycles()
}

fn cfcss_cycles(blocks_per_runnable: usize) -> u64 {
    let blocks = blocks_per_runnable * RUNNABLES as usize;
    let program = CfcssProgram::instrument(ControlFlowGraph::chain(blocks), 99);
    let mut monitor = CfcssMonitor::new(program, BlockId(0));
    let mut costs = CostMeter::new();
    for _ in 0..PERIODS {
        for b in 1..=blocks {
            let failed = monitor.enter(BlockId((b % blocks) as u32), &mut costs);
            assert!(!failed, "legal path must stay clean");
        }
    }
    costs.total_cycles()
}

fn main() {
    header(
        "T-OVH",
        "§3.4 claim — look-up table minimises the performance penalty",
        "identical monitored execution through both checkers; 10k periods x 3 runnables",
    );
    // Flow-checking-only baseline: one table look-up per runnable
    // execution. The full watchdog row adds heartbeat counting and the
    // periodic checks, i.e. the complete service, for context.
    let pfc_only = LOOKUP_COST_CYCLES * RUNNABLES as u64 * PERIODS;
    let wd = watchdog_cycles();
    let mut rows = vec![
        Row {
            monitor: "PFC look-up table (flow checking only)".into(),
            blocks_per_runnable: 0,
            total_cycles: pfc_only,
            autobox_us: CpuModel::AUTOBOX.cycles_to_time(pfc_only).as_micros(),
            s12xf_us: CpuModel::S12XF.cycles_to_time(pfc_only).as_micros(),
            relative: 1.0,
        },
        Row {
            monitor: "Software Watchdog (all three units)".into(),
            blocks_per_runnable: 0,
            total_cycles: wd,
            autobox_us: CpuModel::AUTOBOX.cycles_to_time(wd).as_micros(),
            s12xf_us: CpuModel::S12XF.cycles_to_time(wd).as_micros(),
            relative: wd as f64 / pfc_only as f64,
        },
    ];
    for blocks in [8usize, 16, 24, 48] {
        let cycles = cfcss_cycles(blocks);
        rows.push(Row {
            monitor: format!("CFCSS signatures ({blocks} blocks/runnable)"),
            blocks_per_runnable: blocks,
            total_cycles: cycles,
            autobox_us: CpuModel::AUTOBOX.cycles_to_time(cycles).as_micros(),
            s12xf_us: CpuModel::S12XF.cycles_to_time(cycles).as_micros(),
            relative: cycles as f64 / pfc_only as f64,
        });
    }

    println!(
        "{:<40} {:>13} {:>12} {:>12} {:>9}",
        "monitor", "total cycles", "AutoBox[us]", "S12XF[us]", "vs PFC"
    );
    for r in &rows {
        println!(
            "{:<40} {:>13} {:>12} {:>12} {:>8.1}x",
            r.monitor, r.total_cycles, r.autobox_us, r.s12xf_us, r.relative
        );
    }
    println!(
        "\npaper shape check: signature checking scales with basic-block count\n\
         and always costs a multiple of the runnable-granularity look-up table."
    );
    assert!(
        rows[2..].iter().all(|r| r.relative > 2.0),
        "CFCSS flow checking must cost a multiple of the look-up table"
    );
    emit_json("table_overhead", &rows);
}

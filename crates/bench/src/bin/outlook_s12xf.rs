//! **O-S12XF** — the paper's outlook: "The functionalities and performance
//! of the Software Watchdog … are further evaluated on an evaluation
//! microcontroller S12XF from Freescale."
//!
//! We cannot have the silicon; instead the identical software stack runs
//! with every compute cost scaled by the AutoBox→S12XF clock ratio
//! (480 MHz → 50 MHz ⇒ 9.6×). The experiment checks whether the full node
//! (all three ISS applications + watchdog + kick task) remains schedulable
//! and false-positive-free on the slower target, and what the CPU budget
//! looks like.

use easis_bench::{emit_json, header};
use easis_injection::injector::Injector;
use easis_sim::cpu::CpuModel;
use easis_sim::time::Instant;
use easis_validator::{CentralNode, NodeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    clock_mhz: u64,
    cpu_utilization_pct: f64,
    watchdog_cycles_run: u64,
    false_positives: usize,
    deadline_misses: u32,
    budget_overruns: u32,
}

fn run(platform: &str, clock_hz: u64, scale_ppm: u64) -> Row {
    let mut node = CentralNode::build(NodeConfig {
        cpu_scale_ppm: scale_ppm,
        ..NodeConfig::default()
    });
    node.start();
    let mut injector = Injector::none();
    node.run_until(Instant::from_millis(2_000), &mut injector);
    Row {
        platform: platform.to_string(),
        clock_mhz: clock_hz / 1_000_000,
        cpu_utilization_pct: node.os.utilization() * 100.0,
        watchdog_cycles_run: node.world.watchdog.cycles_run(),
        false_positives: node.world.fault_log.len(),
        deadline_misses: node.deadline_monitor.stats().total(),
        budget_overruns: node.exec_monitor.stats().total(),
    }
}

fn main() {
    header(
        "O-S12XF",
        "outlook — evaluation on the Freescale S12XF",
        "identical stack, compute costs scaled by the 480MHz→50MHz clock ratio",
    );
    let ratio_ppm =
        CpuModel::AUTOBOX.clock_hz() * 1_000_000 / CpuModel::S12XF.clock_hz();
    let rows = vec![
        run("AutoBox DS1005", CpuModel::AUTOBOX.clock_hz(), 1_000_000),
        run("Freescale S12XF", CpuModel::S12XF.clock_hz(), ratio_ppm),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12} {:>10} {:>9}",
        "platform", "clock", "CPU util", "wd cycles", "false pos", "dl miss", "budget"
    );
    for r in &rows {
        println!(
            "{:<18} {:>7}MHz {:>9.1}% {:>10} {:>12} {:>10} {:>9}",
            r.platform,
            r.clock_mhz,
            r.cpu_utilization_pct,
            r.watchdog_cycles_run,
            r.false_positives,
            r.deadline_misses,
            r.budget_overruns
        );
    }
    println!(
        "\noutlook answer: the stack fits the S12XF — utilisation rises by the\n\
         clock ratio but stays below 100%, all deadlines hold, and the\n\
         watchdog produces no false positives on the slower target."
    );
    assert!(rows[1].cpu_utilization_pct < 100.0);
    assert_eq!(rows[1].false_positives, 0);
    assert_eq!(rows[1].deadline_misses, 0);
    emit_json("outlook_s12xf", &rows);
}

//! **FIG5** — regenerates the paper's Figure 5: "Test with injected
//! aliveness error".
//!
//! The ControlDesk slider is replayed as an alarm-cycle scale of 3× on the
//! SafeSpeed task between 1.0 s and 2.0 s. The plotted series are the
//! Aliveness Counter (AC), the Cycle Counter for Aliveness (CCA) and the
//! cumulative aliveness-error count ("AM Result") of `SAFE_CC_process`,
//! sampled every 10 ms like the paper's x axis.

use easis_bench::{emit_json, header};
use easis_validator::scenario;

fn main() {
    header(
        "FIG5",
        "Figure 5 — test with injected aliveness error",
        "alarm-cycle scale 3x on SafeSpeedTask, window 1.0s–2.0s of a 3.0s run",
    );
    let series = scenario::fig5_aliveness(3_000_000);
    print!("{}", series.render_table(40));
    print!("{}", series.render_plot(100, 8));

    let am = series.series("AM Result").expect("AM series");
    let errors = am.last_value().unwrap_or(0.0);
    let first = am.first_reached(1.0);
    println!("aliveness errors detected: {errors}");
    match first {
        Some(t) => println!(
            "first detection: {} ({} ms after injection start)",
            t,
            t.as_millis().saturating_sub(1_000)
        ),
        None => println!("first detection: never"),
    }
    println!(
        "\npaper shape check: errors only accumulate inside the injection \
         window and the AM Result staircase tracks the missed periods."
    );
    assert!(errors >= 10.0, "expected a staircase of detections");
    emit_json("fig5_aliveness", &series);
}

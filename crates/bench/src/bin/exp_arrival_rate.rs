//! **E-ARR** — the arrival-rate test the paper describes in prose
//! ("Similar test with arrival rate error … were performed as well").
//!
//! `GetSensorValue` emits two extra aliveness indications per execution
//! between 1.0 s and 2.0 s (excessive dispatch); the ARC exceeds the fault
//! hypothesis maximum and the arrival-rate monitor reports once per
//! monitoring period.

use easis_bench::{emit_json, header};
use easis_validator::scenario;

fn main() {
    header(
        "E-ARR",
        "prose §4.5 — test with injected arrival rate error",
        "2 extra heartbeats per execution of GetSensorValue, window 1.0s–2.0s of a 3.0s run",
    );
    let series = scenario::exp_arrival_rate(2);
    print!("{}", series.render_table(40));
    print!("{}", series.render_plot(100, 8));

    let arm = series.series("ARM Result").expect("ARM series");
    println!("arrival-rate errors detected: {:?}", arm.last_value());
    let before_window = arm
        .samples()
        .iter()
        .filter(|s| s.at < easis_sim::time::Instant::from_millis(1_000))
        .map(|s| s.value)
        .fold(0.0, f64::max);
    println!("false positives before the window: {before_window}");
    assert_eq!(before_window, 0.0);
    assert!(arm.last_value().unwrap_or(0.0) >= 50.0);
    emit_json("exp_arrival_rate", &series);
}

//! **E-PFC** — the control-flow test the paper describes in prose
//! ("… and control flow error were performed as well").
//!
//! The actuator runnable `Speed_process` is bypassed between 1.0 s and
//! 2.0 s; every period the look-up table sees the illegal transition
//! `SAFE_CC_process → GetSensorValue` and the PFC unit reports.

use easis_bench::{emit_json, header};
use easis_validator::scenario;

fn main() {
    header(
        "E-PFC",
        "prose §4.5 — test with injected control flow error",
        "invalid branch skips Speed_process, window 1.0s–2.0s of a 3.0s run",
    );
    let series = scenario::exp_program_flow();
    print!("{}", series.render_table(40));
    print!("{}", series.render_plot(100, 8));

    let total = series.series("PFC Result").expect("PFC series");
    println!("program-flow errors detected: {:?}", total.last_value());
    println!(
        "attribution: the error is charged to the observed (unexpected) \
         successor runnable."
    );
    assert!(total.last_value().unwrap_or(0.0) >= 50.0);
    emit_json("exp_program_flow", &series);
}

//! **FIG6** — regenerates the paper's Figure 6: "Collaboration of fault
//! detection units".
//!
//! An invalid execution branch bypasses `SAFE_CC_process` from 1.0 s on.
//! The PFC unit reports one program-flow error per period; with the
//! aliveness window two watchdog cycles long, exactly one aliveness error
//! accumulates before the PFC count crosses the threshold of 3 and flips
//! the task state to faulty — "the real cause of the erroneous state
//! is identified through the collaboration of the units".

use easis_bench::{emit_json, header};
use easis_validator::scenario;

fn main() {
    header(
        "FIG6",
        "Figure 6 — collaboration of fault detection units",
        "invalid branch skips SAFE_CC_process from 1.0s; threshold 3; aliveness window 2 cycles",
    );
    let series = scenario::fig6_collaboration();
    print!("{}", series.render_table(40));
    print!("{}", series.render_plot(100, 8));

    let pfc = series.series("PFC Result").expect("PFC series");
    let am = series.series("AM Result").expect("AM series");
    let task = series.series("Task State").expect("task series");
    let flip = task.first_reached(1.0);
    println!("program-flow errors when task flipped: {:?}", pfc.last_value());
    println!("accumulated aliveness errors:          {:?}", am.last_value());
    println!("task state flipped to faulty at:       {flip:?}");
    println!(
        "\npaper shape check: 3 PFC errors set the task faulty; only one \
         accumulated aliveness error is reported."
    );
    assert!(flip.is_some(), "task must flip to faulty");
    assert_eq!(am.last_value().unwrap_or(99.0), 1.0);
    emit_json("fig6_collaboration", &series);
}

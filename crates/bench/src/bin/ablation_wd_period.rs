//! **A-PER** — ablation of the watchdog check period (DESIGN.md §5,
//! "checked shortly before the next period begins").
//!
//! A faster watchdog cycle detects heartbeat losses sooner but spends more
//! cycles on checks. The sweep injects a heartbeat loss on
//! `SAFE_CC_process` under watchdog periods of 5/10/20 ms and reports the
//! first detection latency together with the monitoring cost rate.

use easis_bench::{emit_json, header};
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_sim::cpu::CpuModel;
use easis_sim::time::{Duration, Instant};
use easis_validator::{CentralNode, NodeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    wd_period_ms: u64,
    detection_latency_ms: Option<u64>,
    monitor_cycles_per_s: u64,
    s12xf_load_pct: f64,
}

fn main() {
    header(
        "A-PER",
        "design choice — watchdog cycle length vs detection latency",
        "heartbeat loss on SAFE_CC_process under 5/10/20 ms watchdog cycles",
    );
    let from = Instant::from_millis(500);
    let horizon = Instant::from_millis(1_500);
    let mut rows = Vec::new();
    for wd_ms in [5u64, 10, 20] {
        let mut node = CentralNode::build(NodeConfig {
            wd_period: Duration::from_millis(wd_ms),
            error_threshold: 1_000,
            ..NodeConfig::safespeed_only()
        });
        node.start();
        let target = node.runnable("SAFE_CC_process");
        let mut injector = Injector::new([Injection::new(
            ErrorClass::HeartbeatLoss { runnable: target },
            from,
            Instant::from_millis(900),
        )]);
        node.run_until(horizon, &mut injector);
        let first = node
            .world
            .fault_log
            .iter()
            .find(|f| f.at >= from)
            .map(|f| f.at.as_millis() - from.as_millis());
        let cycles = node.world.watchdog.costs().total_cycles();
        let elapsed_s = horizon.as_secs_f64();
        let per_s = (cycles as f64 / elapsed_s) as u64;
        let load = per_s as f64 / CpuModel::S12XF.clock_hz() as f64 * 100.0;
        rows.push(Row {
            wd_period_ms: wd_ms,
            detection_latency_ms: first,
            monitor_cycles_per_s: per_s,
            s12xf_load_pct: load,
        });
    }

    println!(
        "{:>13} {:>22} {:>18} {:>14}",
        "wd period[ms]", "detection latency[ms]", "monitor cycles/s", "S12XF load[%]"
    );
    for r in &rows {
        println!(
            "{:>13} {:>22} {:>18} {:>14.4}",
            r.wd_period_ms,
            r.detection_latency_ms
                .map(|v| v.to_string())
                .unwrap_or_else(|| "missed".into()),
            r.monitor_cycles_per_s,
            r.s12xf_load_pct
        );
    }
    println!(
        "\nobservation: the check period bounds worst-case detection latency\n\
         (latency ≈ remaining window), while the monitoring load stays far\n\
         below 1% even on the S12XF — the paper's low-overhead claim."
    );
    assert!(rows.iter().all(|r| r.detection_latency_ms.is_some()));
    assert!(rows.iter().all(|r| r.s12xf_load_pct < 1.0));
    emit_json("ablation_wd_period", &rows);
}

//! **T-SAFE** — vehicle-level impact of the dependability service.
//!
//! The paper motivates the Software Watchdog with the safety of integrated
//! safety systems; this experiment quantifies the end effect. While the car
//! approaches a 13.9 m/s limit drop, an invalid branch permanently disables
//! `SAFE_CC_process` (the limiter's control law). Three configurations:
//!
//! * **unprotected** — no fail-safe reaction: the stale commands let the
//!   driver sail through the limit;
//! * **supervised + fail-safe** — the watchdog's faulty verdict makes the
//!   actuator node limp home;
//! * **golden** — no fault, as reference.

use easis_bench::{emit_json, header};
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_sim::time::{Duration, Instant};
use easis_validator::hil::HilValidator;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    configuration: String,
    overspeed_exposure: f64,
    peak_overspeed_ms: f64,
    final_speed_ms: f64,
    faults_detected: usize,
    failsafe_engaged: bool,
}

fn run(failsafe: bool, inject: bool) -> Row {
    let mut hil = HilValidator::motorway(25.0, 13.9, None, 5);
    if failsafe {
        hil = hil.with_failsafe();
    }
    let mut injector = if inject {
        let target = hil.central.runnable("SAFE_CC_process");
        Injector::new([Injection::new(
            ErrorClass::SkipRunnable { runnable: target },
            Instant::from_millis(10_000), // before the 500 m limit drop
            Instant::from_millis(90_000),
        )])
    } else {
        Injector::none()
    };
    let report = hil.run(Duration::from_secs(60), &mut injector, None);
    let configuration = match (inject, failsafe) {
        (false, _) => "golden (no fault)",
        (true, false) => "fault, unprotected",
        (true, true) => "fault, watchdog + fail-safe",
    };
    Row {
        configuration: configuration.to_string(),
        overspeed_exposure: report.overspeed_exposure,
        peak_overspeed_ms: report.peak_overspeed,
        final_speed_ms: report.final_speed,
        faults_detected: report.faults_detected,
        failsafe_engaged: hil.failsafe_engaged(),
    }
}

fn main() {
    header(
        "T-SAFE",
        "motivation §1 — dependability service improves system safety",
        "permanent SAFE_CC_process failure while approaching a 13.9 m/s limit",
    );
    let rows = vec![run(false, false), run(false, true), run(true, true)];

    println!(
        "{:<30} {:>17} {:>15} {:>13} {:>8} {:>10}",
        "configuration", "exposure[m/s*s]", "peak over[m/s]", "final[m/s]", "faults", "fail-safe"
    );
    for r in &rows {
        println!(
            "{:<30} {:>17.1} {:>15.2} {:>13.2} {:>8} {:>10}",
            r.configuration,
            r.overspeed_exposure,
            r.peak_overspeed_ms,
            r.final_speed_ms,
            r.faults_detected,
            r.failsafe_engaged
        );
    }
    println!(
        "\npaper shape check: without supervision the failed limiter lets the\n\
         driver hold ~25 m/s in the 13.9 m/s zone; with the watchdog verdict\n\
         driving a fail-safe reaction the overspeed episode is contained."
    );
    let golden = &rows[0];
    let unprotected = &rows[1];
    let protected = &rows[2];
    assert!(unprotected.overspeed_exposure > 5.0 * golden.overspeed_exposure);
    assert!(protected.overspeed_exposure < unprotected.overspeed_exposure / 4.0);
    assert!(protected.failsafe_engaged);
    emit_json("table_safety_impact", &rows);
}

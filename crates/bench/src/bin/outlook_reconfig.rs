//! **O-RECFG** — the paper's outlook: fault handling strategies
//! "especially concerning dynamic reconfiguration of applications".
//!
//! At t = 1 s the SafeSpeed application legitimately switches to a degraded
//! 20 ms mode (e.g. after a partial restart). A static fault hypothesis
//! then produces a stream of false aliveness/arrival alarms; with the
//! watchdog's dynamic reconfiguration interface the hypotheses follow the
//! mode change and supervision stays exact — errors injected *after* the
//! reconfiguration are still caught.

use easis_bench::{emit_json, header};
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_sim::time::Instant;
use easis_validator::{CentralNode, NodeConfig};
use easis_watchdog::config::RunnableHypothesis;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    configuration: String,
    false_alarms_after_mode_change: usize,
    injected_fault_detected: bool,
}

/// Runs 3 s: mode change to 20 ms at 1 s, a real heartbeat loss injected
/// at 2.0–2.4 s. Returns (false alarms in 1–2 s, real fault detected).
fn run(reconfigure: bool) -> Row {
    let mut node = CentralNode::build(NodeConfig {
        error_threshold: 1_000, // count alarms instead of treating
        ..NodeConfig::safespeed_only()
    });
    node.start();
    let alarm = node.alarms["SafeSpeedTask"];
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        Instant::from_millis(2_000),
        Instant::from_millis(2_400),
    )]);

    // Phase 1: nominal 10 ms mode.
    node.run_until(Instant::from_millis(1_000), &mut injector);
    assert!(node.world.fault_log.is_empty(), "clean before the mode change");

    // Mode change: the task now runs every 20 ms.
    node.os
        .alarm_mut(alarm)
        .expect("alarm exists")
        .set_cycle_scale_ppm(2_000_000);
    if reconfigure {
        for name in ["GetSensorValue", "SAFE_CC_process", "Speed_process"] {
            let rid = node.runnable(name);
            node.world.watchdog.reconfigure(
                RunnableHypothesis::new(rid)
                    .alive_at_least(1, 2)
                    .arrive_at_most(1, 2),
            );
        }
    }

    // Phase 2: degraded mode, still healthy.
    node.run_until(Instant::from_millis(2_000), &mut injector);
    let false_alarms = node.world.fault_log.len();

    // Phase 3: a real heartbeat loss.
    node.run_until(Instant::from_millis(3_000), &mut injector);
    let detected = node
        .world
        .fault_log
        .iter()
        .any(|f| f.at >= Instant::from_millis(2_000) && f.runnable == target);

    Row {
        configuration: if reconfigure {
            "dynamic reconfiguration".to_string()
        } else {
            "static hypothesis".to_string()
        },
        false_alarms_after_mode_change: false_alarms,
        injected_fault_detected: detected,
    }
}

fn main() {
    header(
        "O-RECFG",
        "outlook — dynamic reconfiguration of applications",
        "SafeSpeed drops to a 20 ms degraded mode at 1 s; heartbeat loss at 2 s",
    );
    let rows = vec![run(false), run(true)];
    println!(
        "{:<26} {:>30} {:>22}",
        "configuration", "false alarms (mode change)", "real fault detected"
    );
    for r in &rows {
        println!(
            "{:<26} {:>30} {:>22}",
            r.configuration, r.false_alarms_after_mode_change, r.injected_fault_detected
        );
    }
    println!(
        "\noutlook answer: without reconfiguration the static hypothesis turns\n\
         a legitimate mode change into an alarm storm; the reconfiguration\n\
         interface keeps supervision exact across the change."
    );
    assert!(rows[0].false_alarms_after_mode_change > 10);
    assert_eq!(rows[1].false_alarms_after_mode_change, 0);
    assert!(rows[1].injected_fault_detected);
    emit_json("outlook_reconfig", &rows);
}

//! **TRACE-DUMP** — the flight recorder's view of one faulty trial.
//!
//! Replays the deterministic heartbeat-loss trial on the paper's central
//! node with the observability sink enabled and prints the retained trace
//! as JSON Lines, one event per line, oldest first. The binary then
//! asserts the acceptance ordering of the trace — injection arming before
//! the aliveness miss, the miss inside a cycle-check bracket, the TSI
//! state transition after the miss — so CI can run it as a smoke test.

use easis_bench::header;
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_obs::{FaultClass, ObsEvent, StateScope};
use easis_sim::time::Instant;
use easis_validator::{CentralNode, NodeConfig};

fn ms(n: u64) -> Instant {
    Instant::from_millis(n)
}

fn main() {
    header(
        "TRACE-DUMP",
        "flight-recorder timeline of a heartbeat-loss trial",
        "SafeSpeed node, heartbeat loss 200–400 ms, 1 s simulated",
    );
    let config = NodeConfig {
        obs_capacity: Some(4096),
        ..NodeConfig::safespeed_only()
    };
    let mut node = CentralNode::build(config);
    node.start();
    let target = node.runnable("SAFE_CC_process");
    let mut injector = Injector::new([Injection::new(
        ErrorClass::HeartbeatLoss { runnable: target },
        ms(200),
        ms(400),
    )]);
    node.run_until(ms(1_000), &mut injector);

    let jsonl = node.world.obs.to_jsonl();
    print!("{jsonl}");

    // Acceptance ordering.
    let events = node.world.obs.events();
    assert!(!events.is_empty(), "enabled sink recorded nothing");
    let find = |pred: &dyn Fn(&ObsEvent) -> bool| {
        events
            .iter()
            .position(|e| pred(&e.event))
            .unwrap_or_else(|| panic!("expected event missing from trace"))
    };
    let armed = find(&|e| {
        matches!(e, ObsEvent::InjectionActivated { class } if *class == "heartbeat_loss")
    });
    let miss = find(&|e| {
        matches!(e, ObsEvent::FaultDetected { runnable, kind }
            if *runnable == target && *kind == FaultClass::Aliveness)
    });
    let transition = find(&|e| {
        matches!(e, ObsEvent::StateTransition { scope: StateScope::Task(_), faulty: true })
    });
    assert!(armed < miss, "miss before arming");
    assert!(miss <= transition, "transition before miss");
    assert!(events[armed].at <= events[miss].at);
    assert!(events[miss].at <= events[transition].at);
    let bracket_open = events[..miss]
        .iter()
        .rposition(|e| matches!(e.event, ObsEvent::CycleCheckStart { .. }))
        .expect("miss outside any cycle check");
    assert!(bracket_open < miss);

    let snapshot = node.world.obs.metrics_snapshot();
    eprintln!(
        "\n[{} events retained, {} dropped; cycle-check latency over {} cycles]",
        events.len(),
        node.world.obs.dropped(),
        snapshot
            .site("watchdog.cycle_check")
            .map_or(0, |s| s.count),
    );
    eprintln!("trace ordering OK: armed -> aliveness miss -> task faulty");
}

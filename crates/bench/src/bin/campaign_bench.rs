//! **CAMPAIGN-THROUGHPUT** — end-to-end trial throughput of the fault
//! campaign engine.
//!
//! The coverage/latency tables of the paper's outlook need thousands of
//! injection trials, each simulating a full central node to its horizon —
//! so campaign wall-clock is the cost that decides how dense a coverage
//! grid is affordable. This bin measures the T-COV campaign (the same
//! plan shape as the golden campaign report, scaled up) through three
//! execution paths:
//!
//! 1. **forked** — [`run_plan`]: golden-run prefix checkpointing. Each
//!    worker sorts its chunk by injection time, simulates the clean
//!    (injection-free) prefix once, snapshots the node at each distinct
//!    fork instant and restores every trial from its checkpoint, so only
//!    the post-injection tail is re-simulated (the default path since
//!    prefix checkpointing landed);
//! 2. **pooled** — [`run_plan_pooled`]: the previous engine. One pooled
//!    node per worker, `reset()` between trials, but every trial
//!    re-simulates its full prefix under the per-millisecond tick loop;
//! 3. **fresh** — [`run_plan_fresh`]: every trial builds its own node
//!    from scratch — config compile included — with the kernel execution
//!    trace recording, exactly how campaigns ran before the throughput
//!    engine (the pre-engine node had no switch to turn the trace off).
//!
//! All three paths must produce bit-identical [`CampaignStats`]
//! (asserted). At the full 1000-trial campaign the `prefix_reuse` probe
//! asserts the forked path at **≥1.5× the pooled trials/sec** (restore
//! is cheaper than re-simulating the prefix, and the uninterrupted tail
//! spans skip the baseline's per-millisecond injector round-trips); on
//! ≥4 workers the pooled path must additionally stay **≥2× fresh**. The
//! setup-vs-run split (per-trial node build vs pooled reset vs one-off
//! blueprint compile) is measured separately so the report shows *where*
//! the speedup comes from.
//!
//! Since the plan-arena task bodies landed, the bin additionally proves
//! the steady-state claim under a counting global allocator: a clean
//! (no-fault) pooled trial on a warmed node is measured at the reference
//! horizon and at twice the horizon, and the counts must be **equal** —
//! doubling the simulated time (and with it every task activation) adds
//! zero heap allocations, i.e. the plan/effect/step-buffer path is
//! allocation-free (asserted). A *faulty* trial — one whose injection
//! fires inside the horizon and is detected — is probed the same way:
//! with the pooled fault records, drained-into treatment actions and the
//! in-place DTC freeze frame it may allocate at most
//! [`FAULTY_TRIAL_ALLOC_FLOOR`] blocks (asserted; the residue is the
//! outcome's detection map plus first-occurrence DTC inserts). A
//! per-worker-count trials/sec sweep over 1/2/4/8 workers records how
//! the forked path scales.
//!
//! Since the delta-snapshot protocol landed (`easis_sim::snap`), the
//! `snapshot` probe measures the checkpoint machinery itself on a
//! standalone node: a warm capacity-retained capture
//! ([`CentralNode::snapshot_into`]), a delta restore after a clean
//! (injection-free) tail run to the horizon, the dirty fraction that
//! restore reported, and the heap allocations of a warmed capture. Two
//! gates are asserted at every size: a warmed capture allocates at most
//! [`SNAPSHOT_ALLOC_FLOOR`] blocks, and the clean-tail restore's dirty
//! fraction is **< 1.0** — the epoch stamps must prune regions the tail
//! never touched, or delta restore has regressed to a full copy.
//!
//! Since hyperperiod macro-stepping landed (`easis_validator::ffwd`), the
//! `tail_fastforward` probe brackets the forked headline run with the
//! process-wide fast-forward metrics: the fraction of forked span skipped
//! by certified macro-jumps, the certification/fallback counts, and the
//! speedup against the pre-macro-stepping forked baseline
//! ([`FORKED_BASELINE_TRIALS_PER_SEC`]). At full scale the forked path
//! must reach [`FFWD_SPEEDUP_FLOOR`]× that baseline, and the worker
//! sweep's workers=2 entry must reach [`SWEEP_SCALING_FLOOR`]× the
//! workers=1 rate — the latter only on hosts with more than one core,
//! because an oversubscribed sweep measures contention, not scaling.
//!
//! Results land in `BENCH_campaign.json` (stable schema,
//! `schema_version` 5; `host_cores` records the recording host's
//! available parallelism next to the sweep so readers can tell scaling
//! from oversubscription; each sweep entry carries its
//! `parallel_efficiency` = trials/sec ÷ (workers × workers=1 trials/sec)).
//!
//! Usage: `campaign_bench [trials_per_class]` (default 200 → 1000 trials
//! over the 5 error classes; the speedup assertions are skipped below
//! the default so CI smoke runs stay timing-noise-proof — the
//! allocation gates always apply). Worker count comes from
//! `EASIS_WORKERS` (default: available parallelism).
//!
//! [`run_plan`]: easis_validator::scenario::run_plan
//! [`run_plan_pooled`]: easis_validator::scenario::run_plan_pooled
//! [`run_plan_fresh`]: easis_validator::scenario::run_plan_fresh
//! [`NodeBlueprint`]: easis_validator::node::NodeBlueprint
//! [`CampaignStats`]: easis_injection::stats::CampaignStats

use easis_injection::campaign::{CampaignBuilder, CampaignPlan, TrialSpec};
use easis_injection::executor::CampaignExecutor;
use easis_injection::injector::{ErrorClass, Injection};
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_sim::snap::RestoreStats;
use easis_validator::node::{CentralNode, NodeBlueprint, NodeSnapshot};
use easis_validator::scenario::{
    campaign_node_config, run_plan, run_plan_fresh, run_plan_pooled, run_trial_pooled,
};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation so the steady-state trial path can be proven
/// allocation-free, not just claimed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// trials_per_class of the full campaign (5 error classes → 1000 trials).
const DEFAULT_TRIALS_PER_CLASS: usize = 200;
/// Below the full campaign the speedup assertions are timing noise, not
/// signal.
const ASSERT_FLOOR_TRIALS_PER_CLASS: usize = DEFAULT_TRIALS_PER_CLASS;
/// The pooled-vs-fresh ≥2× assertion also needs real parallelism to be
/// meaningful (the prefix-reuse gate does not: checkpointing is a
/// per-worker saving, so it holds at any worker count).
const ASSERT_FLOOR_WORKERS: usize = 4;
/// Campaign passes per path; the fastest pass is reported (interference
/// only ever adds time, so the best pass is the closest observation).
const CAMPAIGN_REPS: u32 = 3;
/// Passes for the cheap per-node setup measurements.
const SETUP_REPS: u32 = 10;

/// Simulated horizon of every trial.
const HORIZON: Instant = Instant::from_millis(1_500);

/// Forked-path trials/sec of the reference T-COV campaign *before*
/// hyperperiod macro-stepping landed (BENCH_campaign.json of the prefix-
/// checkpointing PR, workers=1 on the single-core reference host). The
/// tail-fastforward probe asserts the macro-stepped forked path at
/// ≥[`FFWD_SPEEDUP_FLOOR`]× this figure at the full campaign.
const FORKED_BASELINE_TRIALS_PER_SEC: f64 = 4_865.0;

/// Required forked-path speedup over [`FORKED_BASELINE_TRIALS_PER_SEC`].
const FFWD_SPEEDUP_FLOOR: f64 = 1.5;

/// Required scaling of the forked path from one to two workers when the
/// recording host actually has more than one core (on a single-core host
/// the sweep measures oversubscription and the gate is skipped).
const SWEEP_SCALING_FLOOR: f64 = 1.3;

/// Maximum heap blocks a clean steady-state pooled trial may allocate.
/// With the pooled injector (`Injector::reload`) and the interned
/// outcome tag (`ErrorClass::interned_tag`) the per-trial constants are
/// gone — a warmed trial measures 0; one block of slack absorbs
/// collection growth-point jitter without letting a real per-trial
/// allocation through.
const STEADY_STATE_ALLOC_FLOOR: u64 = 1;

/// Maximum heap blocks a warmed `CentralNode::snapshot_into` capture may
/// allocate. Every snapshot buffer is capacity-retained, so a warm
/// capture measures 0; one block of slack absorbs collection
/// growth-point jitter without letting a real per-capture allocation
/// through.
const SNAPSHOT_ALLOC_FLOOR: u64 = 1;

/// Maximum heap blocks a *fault-detecting* pooled trial may allocate on
/// a warmed node. Fault records, state changes, treatment actions and
/// the DTC freeze frame are pooled/rewritten in place; what remains is
/// the outcome's detection `BTreeMap` node plus the DTC store's
/// first-occurrence inserts (each fault class re-enters an emptied map
/// after `reset()`).
const FAULTY_TRIAL_ALLOC_FLOOR: u64 = 4;

/// The T-COV campaign plan: same seed, target set and injection window as
/// the golden campaign report (`tests/goldens/campaign_report.json`),
/// scaled to `trials_per_class`.
fn t_cov_plan(trials_per_class: usize) -> CampaignPlan {
    CampaignBuilder::new(0xC0FFEE, (0..9).map(RunnableId).collect())
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(HORIZON)
        .build()
}

/// Runs `op` `reps` times and returns the fastest elapsed nanoseconds.
fn best_of<F: FnMut()>(reps: u32, mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        op();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

// ---------------------------------------------------------------------
// Report schema (schema_version 4 — keep stable, future PRs diff this).
// ---------------------------------------------------------------------

/// One campaign execution path, full-plan wall clock and derived rates.
#[derive(Serialize)]
struct PathTiming {
    elapsed_ms: f64,
    trials_per_sec: f64,
    /// Host nanoseconds spent per simulated millisecond, aggregated over
    /// all workers (wall clock / total simulated time).
    ns_per_simulated_ms: f64,
}

impl PathTiming {
    fn new(elapsed_ns: f64, trials: u64, simulated_ms_per_trial: u64) -> Self {
        PathTiming {
            elapsed_ms: elapsed_ns / 1e6,
            trials_per_sec: trials as f64 / (elapsed_ns / 1e9),
            ns_per_simulated_ms: elapsed_ns / (trials * simulated_ms_per_trial) as f64,
        }
    }
}

/// Where the per-trial time goes before any simulation happens.
#[derive(Serialize)]
struct SetupSplit {
    /// One-off cost of compiling the watchdog config into a blueprint
    /// (paid once per campaign on the pooled path).
    blueprint_compile_ns: f64,
    /// Per-trial node construction on the fresh path (config compile
    /// included).
    fresh_build_ns_per_trial: f64,
    /// Per-trial `CentralNode::reset` on the pooled path.
    pooled_reset_ns_per_trial: f64,
    /// Fraction of the fresh path's wall clock spent building nodes.
    fresh_setup_fraction: f64,
    /// Fraction of the pooled path's wall clock spent resetting nodes.
    pooled_setup_fraction: f64,
}

/// Steady-state allocation probe of one clean and one faulty pooled
/// trial. The doubling delta is the gate: zero means no per-activation
/// (plan/effect/step-buffer) allocation survives on the hot path.
#[derive(Serialize)]
struct AllocProbe {
    /// Heap allocations of one clean (no-fault) pooled trial on a warmed
    /// node, reference horizon.
    clean_trial_allocs: u64,
    /// Same probe at twice the simulated horizon (twice the activations).
    clean_trial_allocs_2x_horizon: u64,
    /// `2x − 1x`: allocations attributable to simulated time. Must be 0.
    horizon_scaling_allocs: i64,
    /// Heap allocations of one fault-detecting pooled trial on a warmed
    /// node (pooled fault records + in-place DTC freeze frame; floor
    /// [`FAULTY_TRIAL_ALLOC_FLOOR`]).
    faulty_trial_allocs: u64,
}

/// Golden-run prefix checkpointing: the forked path measured against the
/// pooled (full-prefix re-simulation) baseline on the same executor.
#[derive(Serialize)]
struct PrefixReuseProbe {
    /// Forked trials/sec over pooled trials/sec. Asserted ≥ 1.5 at the
    /// full campaign.
    speedup_vs_pooled: f64,
}

/// Delta-snapshot probe on a standalone node: what one capture and one
/// clean-tail restore cost, and how much state the restore really moves.
#[derive(Serialize)]
struct SnapshotProbe {
    /// Warm `CentralNode::snapshot_into` into a capacity-retained buffer.
    capture_ns: f64,
    /// Delta `restore_from` after a clean (injection-free) tail run from
    /// the fork instant to the horizon.
    restore_ns: f64,
    /// Regions copied / regions examined by that restore. Asserted
    /// < 1.0: the epoch stamps must prune regions the tail never wrote.
    restore_dirty_fraction: f64,
    /// Heap allocations of a warmed capture (floor
    /// [`SNAPSHOT_ALLOC_FLOOR`]).
    snapshot_allocs: u64,
}

/// Hyperperiod macro-stepping (tail fast-forward) on the forked path:
/// how much of the simulated span the engine skipped and what the
/// headline throughput gained over the pre-macro-stepping baseline.
#[derive(Serialize)]
struct TailFastforwardProbe {
    /// Fraction of the simulated time covered by `run_span` during the
    /// forked headline reps that was fast-forwarded by certified
    /// hyperperiod jumps. Asserted > 0 at the full campaign.
    ffwd_span_fraction: f64,
    /// Rejected certifications plus rotation-boundary crossings simulated
    /// event-by-event during the forked headline reps.
    fallbacks: u64,
    /// Successful certifications during the forked headline reps.
    certifications: u64,
    /// The forked headline trials/sec (same figure as `forked`).
    trials_per_sec: f64,
    /// Forked trials/sec over [`FORKED_BASELINE_TRIALS_PER_SEC`].
    /// Asserted ≥ [`FFWD_SPEEDUP_FLOOR`] at the full campaign.
    speedup_vs_baseline: f64,
}

/// Forked-path throughput at one worker count (the multi-core sweep).
#[derive(Serialize)]
struct SweepEntry {
    workers: u64,
    trials_per_sec: f64,
    /// `trials_per_sec / (workers × workers-1 trials_per_sec)`: 1.0 is
    /// perfect linear scaling, values near `1/workers` mean no scaling
    /// (expected when the host has fewer cores than workers).
    parallel_efficiency: f64,
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    trials: u64,
    workers: u64,
    simulated_ms_per_trial: u64,
    setup: SetupSplit,
    forked: PathTiming,
    pooled: PathTiming,
    fresh: PathTiming,
    prefix_reuse: PrefixReuseProbe,
    tail_fastforward: TailFastforwardProbe,
    speedup_pooled_vs_fresh: f64,
    steady_state: AllocProbe,
    snapshot: SnapshotProbe,
    worker_sweep: Vec<SweepEntry>,
    /// Caveat stamped next to the recorded numbers: on a host with fewer
    /// cores than workers the sweep measures thread scheduling overhead,
    /// not scaling — workers>1 can legitimately trail workers=1 there.
    worker_sweep_note: &'static str,
    /// Available parallelism of the recording host — the sweep entries
    /// beyond this count measure oversubscription, not scaling.
    host_cores: u64,
}

/// Caveat recorded alongside the sweep (see [`Report::worker_sweep_note`]).
const WORKER_SWEEP_NOTE: &str = "trials/sec by worker count on this recording \
     host; with fewer physical cores than workers the entries measure \
     oversubscription (thread scheduling), not scaling — on a single-core \
     host workers=2 trailing workers=1 is expected, not a regression";

/// Measures the one-off and per-trial setup costs outside the campaign.
fn measure_setup() -> (f64, f64, f64) {
    let compile_ns = best_of(SETUP_REPS, || {
        black_box(NodeBlueprint::compile(campaign_node_config()));
    });
    let build_ns = best_of(SETUP_REPS, || {
        black_box(CentralNode::build(campaign_node_config()));
    });
    // Reset a node that has actually run a trial's worth of simulation, so
    // the measured reset covers dirty state, not a no-op on a clean world.
    let blueprint = NodeBlueprint::compile(campaign_node_config());
    let mut node = CentralNode::build_from_blueprint(&blueprint);
    let mut injector = easis_injection::injector::Injector::none();
    let mut reset_ns = f64::INFINITY;
    for _ in 0..SETUP_REPS {
        node.start();
        node.run_until(Instant::from_millis(100), &mut injector);
        let start = std::time::Instant::now();
        node.reset();
        reset_ns = reset_ns.min(start.elapsed().as_nanos() as f64);
    }
    (compile_ns, build_ns, reset_ns)
}

/// A trial whose injection window lies beyond any probed horizon: the
/// node runs entirely nominal cycles — the steady state of a campaign.
fn clean_spec() -> TrialSpec {
    TrialSpec {
        seed: 0xA11C,
        injection: Injection::new(
            ErrorClass::SkipRunnable {
                runnable: RunnableId(0),
            },
            Instant::from_millis(10_000_000),
            Instant::from_millis(10_000_100),
        ),
    }
}

/// A trial whose injection fires inside the horizon and is detected by
/// the watchdog: skipping SAFE_CC (a monitored, loop-bearing runnable)
/// for 400 ms trips aliveness, arrival-rate and program-flow faults, so
/// the probe exercises fault records, DTC inserts, freeze-frame capture
/// and the (observe-only) treatment pipeline.
fn faulty_spec() -> TrialSpec {
    TrialSpec {
        seed: 0xFA17,
        injection: Injection::new(
            ErrorClass::SkipRunnable {
                runnable: RunnableId(4),
            },
            Instant::from_millis(300),
            Instant::from_millis(700),
        ),
    }
}

/// Measures heap allocations of one pooled trial of `spec` on a warmed
/// node (minimum over several runs, so incidental lazy initialisation
/// cannot inflate the figure). Runs on the calling thread's pool slot.
fn measure_trial_allocs(blueprint: &NodeBlueprint, spec: &TrialSpec, horizon: Instant) -> u64 {
    // Warm the pool: the first trial builds the node, the following ones
    // grow every retained buffer (arena slots, timer wheel, logs, fault
    // records) to the steady state of this horizon and fault profile.
    for _ in 0..3 {
        black_box(run_trial_pooled(blueprint, spec, horizon));
    }
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        black_box(run_trial_pooled(blueprint, spec, horizon));
        best = best.min(allocations() - before);
    }
    best
}

/// Measures the delta-snapshot machinery on a standalone node (not the
/// campaign thread pool's slot, which the headline runs must keep
/// undisturbed): warm capture cost and allocations, then the delta
/// restore after a clean tail run from the fork instant to the horizon —
/// the checkpoint pattern of the forked campaign path.
fn measure_snapshot_probe(blueprint: &NodeBlueprint) -> SnapshotProbe {
    let fork = Instant::from_millis(300);
    let mut node = CentralNode::build_from_blueprint(blueprint);
    node.start();
    node.run_span(fork);
    let mut snap = NodeSnapshot::default();
    // First capture grows every retained buffer to its steady size.
    node.snapshot_into(&mut snap);
    let mut snapshot_allocs = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        node.snapshot_into(&mut snap);
        snapshot_allocs = snapshot_allocs.min(allocations() - before);
    }
    let capture_ns = best_of(SETUP_REPS, || {
        node.snapshot_into(&mut snap);
    });
    // The restore is timed against a freshly dirtied clean tail each
    // pass; the dirty set is deterministic, so the stats of any pass
    // describe them all.
    let mut stats = RestoreStats::default();
    let mut restore_ns = f64::INFINITY;
    for _ in 0..SETUP_REPS {
        node.run_span(HORIZON);
        let start = std::time::Instant::now();
        stats = node.restore_from(&snap);
        restore_ns = restore_ns.min(start.elapsed().as_nanos() as f64);
    }
    SnapshotProbe {
        capture_ns,
        restore_ns,
        restore_dirty_fraction: stats.dirty_fraction(),
        snapshot_allocs,
    }
}

fn validate_emitted_json(path: &str) {
    let text = std::fs::read_to_string(path).expect("BENCH_campaign.json written");
    let value = serde_json::parse_value(&text).expect("BENCH_campaign.json parses");
    let serde::Value::Map(entries) = value else {
        panic!("BENCH_campaign.json must be a JSON object");
    };
    for key in [
        "schema_version",
        "trials",
        "workers",
        "simulated_ms_per_trial",
        "setup",
        "forked",
        "pooled",
        "fresh",
        "prefix_reuse",
        "speedup_pooled_vs_fresh",
        "steady_state",
        "snapshot",
        "tail_fastforward",
        "worker_sweep",
        "worker_sweep_note",
        "host_cores",
    ] {
        assert!(
            entries.iter().any(|(k, _)| k == key),
            "BENCH_campaign.json missing key {key:?}"
        );
    }
    let snapshot = entries
        .iter()
        .find(|(k, _)| k == "snapshot")
        .map(|(_, v)| v)
        .expect("snapshot key checked above");
    let serde::Value::Map(snapshot) = snapshot else {
        panic!("BENCH_campaign.json `snapshot` must be a JSON object");
    };
    for key in [
        "capture_ns",
        "restore_ns",
        "restore_dirty_fraction",
        "snapshot_allocs",
    ] {
        assert!(
            snapshot.iter().any(|(k, _)| k == key),
            "BENCH_campaign.json snapshot probe missing key {key:?}"
        );
    }
    let tail = entries
        .iter()
        .find(|(k, _)| k == "tail_fastforward")
        .map(|(_, v)| v)
        .expect("tail_fastforward key checked above");
    let serde::Value::Map(tail) = tail else {
        panic!("BENCH_campaign.json `tail_fastforward` must be a JSON object");
    };
    for key in [
        "ffwd_span_fraction",
        "fallbacks",
        "certifications",
        "trials_per_sec",
        "speedup_vs_baseline",
    ] {
        assert!(
            tail.iter().any(|(k, _)| k == key),
            "BENCH_campaign.json tail_fastforward probe missing key {key:?}"
        );
    }
}

fn main() {
    let trials_per_class = std::env::args()
        .nth(1)
        .map(|raw| raw.parse::<usize>().expect("trials_per_class must be a number"))
        .unwrap_or(DEFAULT_TRIALS_PER_CLASS);

    let plan = t_cov_plan(trials_per_class);
    let trials = plan.len() as u64;
    let executor = CampaignExecutor::from_env();
    let workers = executor.workers();
    let simulated_ms_per_trial = HORIZON.as_millis();

    println!("================================================================");
    println!("experiment CAMPAIGN-THROUGHPUT — forked vs pooled vs fresh trials");
    println!("{trials} trials (T-COV plan), horizon {simulated_ms_per_trial} ms, {workers} workers");
    println!("================================================================");

    let (compile_ns, build_ns, reset_ns) = measure_setup();

    // Steady-state allocation probe: a clean pooled trial at the reference
    // horizon and at twice the horizon. Equal counts prove the per-
    // activation path (plans, effects, step buffers) allocates nothing —
    // only the per-trial constants (injector, outcome) remain.
    let probe_blueprint = NodeBlueprint::compile(campaign_node_config());
    let allocs_1x = measure_trial_allocs(&probe_blueprint, &clean_spec(), HORIZON);
    let allocs_2x = measure_trial_allocs(
        &probe_blueprint,
        &clean_spec(),
        Instant::from_millis(2 * HORIZON.as_millis()),
    );
    let scaling = allocs_2x as i64 - allocs_1x as i64;
    println!(
        "steady-state allocs/trial: {allocs_1x} at {simulated_ms_per_trial} ms, \
         {allocs_2x} at {} ms (horizon-scaling delta {scaling})",
        2 * simulated_ms_per_trial
    );
    assert!(
        scaling <= 0,
        "doubling the simulated horizon must add zero allocations (got \
         +{scaling}) — the plan/effect/step-buffer path has regressed from \
         allocation-free"
    );
    // Absolute floor: with the pooled injector and the interned outcome
    // tag a clean steady-state trial allocates nothing. Gate with one
    // block of slack so a new per-trial or per-activation allocation
    // anywhere in the kernel/RTE/watchdog cycle fails loudly.
    assert!(
        allocs_1x <= STEADY_STATE_ALLOC_FLOOR,
        "clean steady-state trial allocated {allocs_1x} heap blocks \
         (floor {STEADY_STATE_ALLOC_FLOOR}) — a per-trial or per-activation \
         allocation crept back in"
    );

    // Faulty-cycle probe: a trial that detects real faults must stay
    // within the pooled-buffer floor — fault records, state changes,
    // treatment actions and the freeze frame are reused, so only the
    // outcome map and first-occurrence DTC inserts remain.
    let faulty_allocs = measure_trial_allocs(&probe_blueprint, &faulty_spec(), HORIZON);
    println!("faulty-trial allocs/trial: {faulty_allocs} (floor {FAULTY_TRIAL_ALLOC_FLOOR})");
    assert!(
        faulty_allocs <= FAULTY_TRIAL_ALLOC_FLOOR,
        "fault-detecting trial allocated {faulty_allocs} heap blocks \
         (floor {FAULTY_TRIAL_ALLOC_FLOOR}) — a per-fault allocation \
         (record, freeze frame, action) crept back in"
    );

    // Delta-snapshot probe: the checkpoint machinery the forked path is
    // built on, measured in isolation. Both gates hold at every size —
    // they are structural, not timing.
    let snapshot = measure_snapshot_probe(&probe_blueprint);
    println!(
        "snapshot probe: capture {:.0} ns ({} allocs), clean-tail delta \
         restore {:.0} ns, dirty fraction {:.3}",
        snapshot.capture_ns,
        snapshot.snapshot_allocs,
        snapshot.restore_ns,
        snapshot.restore_dirty_fraction,
    );
    assert!(
        snapshot.snapshot_allocs <= SNAPSHOT_ALLOC_FLOOR,
        "warmed snapshot capture allocated {} heap blocks (floor \
         {SNAPSHOT_ALLOC_FLOOR}) — a snapshot buffer has stopped retaining \
         its capacity",
        snapshot.snapshot_allocs
    );
    assert!(
        snapshot.restore_dirty_fraction < 1.0,
        "clean-tail restore copied every region (dirty fraction {:.3}) — \
         the epoch stamps have stopped pruning and delta restore has \
         regressed to a full copy",
        snapshot.restore_dirty_fraction
    );

    // Fresh first so the later paths cannot inherit any warmed-up state
    // (they could not anyway — pools are per worker thread and the
    // executor spawns fresh threads per run — but the order makes that
    // obvious). Forked last: it is the production path, measured after
    // its own baseline.
    let mut fresh_stats = None;
    let fresh_ns = best_of(CAMPAIGN_REPS, || {
        fresh_stats = Some(run_plan_fresh(&plan, HORIZON, &executor));
    });
    let mut pooled_stats = None;
    let pooled_ns = best_of(CAMPAIGN_REPS, || {
        pooled_stats = Some(run_plan_pooled(&plan, HORIZON, &executor));
    });
    // Bracket the forked headline reps with the process-wide macro-
    // stepping counters: the span fraction is a ratio, so aggregating
    // over all reps does not skew it.
    easis_validator::ffwd::reset_metrics();
    let mut forked_stats = None;
    let forked_ns = best_of(CAMPAIGN_REPS, || {
        forked_stats = Some(run_plan(&plan, HORIZON, &executor));
    });
    let ffwd_metrics = easis_validator::ffwd::metrics();
    let fresh_stats = fresh_stats.expect("fresh campaign ran");
    let pooled_stats = pooled_stats.expect("pooled campaign ran");
    let forked_stats = forked_stats.expect("forked campaign ran");
    assert_eq!(
        pooled_stats, fresh_stats,
        "pooled and fresh campaigns must produce bit-identical stats"
    );
    assert_eq!(
        forked_stats, pooled_stats,
        "snapshot-forked and pooled campaigns must produce bit-identical stats"
    );

    let forked = PathTiming::new(forked_ns, trials, simulated_ms_per_trial);
    let pooled = PathTiming::new(pooled_ns, trials, simulated_ms_per_trial);
    let fresh = PathTiming::new(fresh_ns, trials, simulated_ms_per_trial);
    let speedup = fresh_ns / pooled_ns;
    let prefix_speedup = pooled_ns / forked_ns;
    let setup = SetupSplit {
        blueprint_compile_ns: compile_ns,
        fresh_build_ns_per_trial: build_ns,
        pooled_reset_ns_per_trial: reset_ns,
        // Builds/resets run on `workers` threads; compare against the
        // aggregate CPU time, not wall clock, so the fraction stays in
        // [0, 1] regardless of parallelism.
        fresh_setup_fraction: (build_ns * trials as f64) / (fresh_ns * workers as f64),
        pooled_setup_fraction: (reset_ns * trials as f64) / (pooled_ns * workers as f64),
    };

    println!(
        "{:<28} {:>12} {:>14} {:>16}",
        "path", "elapsed ms", "trials/sec", "ns/simulated ms"
    );
    for (name, t) in [
        ("forked (run_plan)", &forked),
        ("pooled (run_plan_pooled)", &pooled),
        ("fresh (run_plan_fresh)", &fresh),
    ] {
        println!(
            "{:<28} {:>12.1} {:>14.0} {:>16.0}",
            name, t.elapsed_ms, t.trials_per_sec, t.ns_per_simulated_ms
        );
    }
    let tail_fastforward = TailFastforwardProbe {
        ffwd_span_fraction: ffwd_metrics.span_fraction(),
        fallbacks: ffwd_metrics.fallbacks,
        certifications: ffwd_metrics.certifications,
        trials_per_sec: forked.trials_per_sec,
        speedup_vs_baseline: forked.trials_per_sec / FORKED_BASELINE_TRIALS_PER_SEC,
    };
    println!("prefix-reuse speedup (forked vs pooled): {prefix_speedup:.2}x");
    println!(
        "tail fast-forward: {:.1}% of forked span skipped, {} certifications, \
         {} fallbacks, {:.2}x vs pre-macro-stepping baseline \
         ({FORKED_BASELINE_TRIALS_PER_SEC:.0} trials/sec)",
        tail_fastforward.ffwd_span_fraction * 100.0,
        tail_fastforward.certifications,
        tail_fastforward.fallbacks,
        tail_fastforward.speedup_vs_baseline,
    );
    println!("pooled vs fresh speedup: {speedup:.2}x");
    println!(
        "setup: blueprint compile {:.0} ns (once), fresh build {:.0} ns/trial \
         ({:.0}% of fresh cpu), pooled reset {:.0} ns/trial ({:.1}% of pooled cpu)",
        setup.blueprint_compile_ns,
        setup.fresh_build_ns_per_trial,
        setup.fresh_setup_fraction * 100.0,
        setup.pooled_reset_ns_per_trial,
        setup.pooled_setup_fraction * 100.0,
    );

    if trials_per_class >= ASSERT_FLOOR_TRIALS_PER_CLASS {
        assert!(
            prefix_speedup >= 1.5,
            "prefix checkpointing must be ≥1.5× pooled trials/sec at the \
             full campaign, got {prefix_speedup:.2}×"
        );
        assert!(
            tail_fastforward.ffwd_span_fraction > 0.0,
            "macro-stepping fast-forwarded nothing over the full campaign — \
             the engine is disabled or every certification is rejected"
        );
        assert!(
            tail_fastforward.fallbacks < ffwd_metrics.span_us / 1_000,
            "{} macro-stepping fallbacks over {} simulated ms — the engine \
             is thrashing on rejected certifications instead of standing down",
            tail_fastforward.fallbacks,
            ffwd_metrics.span_us / 1_000,
        );
        assert!(
            tail_fastforward.speedup_vs_baseline >= FFWD_SPEEDUP_FLOOR,
            "macro-stepped forked path must reach ≥{FFWD_SPEEDUP_FLOOR}× the \
             pre-macro-stepping baseline of {FORKED_BASELINE_TRIALS_PER_SEC:.0} \
             trials/sec at the full campaign, got {:.0} trials/sec ({:.2}×)",
            tail_fastforward.trials_per_sec,
            tail_fastforward.speedup_vs_baseline,
        );
    } else {
        println!(
            "(prefix-reuse and tail-fastforward assertions skipped below \
             {ASSERT_FLOOR_TRIALS_PER_CLASS} trials/class)"
        );
    }
    if trials_per_class >= ASSERT_FLOOR_TRIALS_PER_CLASS && workers >= ASSERT_FLOOR_WORKERS {
        assert!(
            speedup >= 2.0,
            "pooled campaign must be ≥2× fresh trials/sec at the full \
             campaign on ≥{ASSERT_FLOOR_WORKERS} workers, got {speedup:.2}×"
        );
    } else {
        println!(
            "(pooled-vs-fresh assertion skipped below \
             {ASSERT_FLOOR_TRIALS_PER_CLASS} trials/class or \
             {ASSERT_FLOOR_WORKERS} workers)"
        );
    }

    // Multi-core scaling of the forked path: one sweep entry per worker
    // count, regardless of what EASIS_WORKERS says about the headline
    // runs. Read alongside `worker_sweep_note`: entries beyond the host's
    // core count measure oversubscription, not scaling.
    let sweep_reps = if trials_per_class >= ASSERT_FLOOR_TRIALS_PER_CLASS {
        2
    } else {
        1
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let mut worker_sweep: Vec<SweepEntry> = Vec::new();
    println!(
        "{:<28} {:>14} {:>12}",
        "worker sweep (forked)", "trials/sec", "efficiency"
    );
    for w in [1usize, 2, 4, 8] {
        let ex = CampaignExecutor::new(w);
        let ns = best_of(sweep_reps, || {
            black_box(run_plan(&plan, HORIZON, &ex));
        });
        let tps = trials as f64 / (ns / 1e9);
        let w1_tps = worker_sweep
            .first()
            .map(|e| e.trials_per_sec)
            .unwrap_or(tps);
        let efficiency = tps / (w1_tps * w as f64);
        println!(
            "{:<28} {:>14.0} {:>12.2}",
            format!("  {w} worker(s)"),
            tps,
            efficiency
        );
        worker_sweep.push(SweepEntry {
            workers: w as u64,
            trials_per_sec: tps,
            parallel_efficiency: efficiency,
        });
    }
    if trials_per_class >= ASSERT_FLOOR_TRIALS_PER_CLASS && host_cores > 1 {
        let w1_tps = worker_sweep[0].trials_per_sec;
        let w2_tps = worker_sweep[1].trials_per_sec;
        assert!(
            w2_tps >= SWEEP_SCALING_FLOOR * w1_tps,
            "forked path must scale across workers on a multi-core host: \
             workers=2 reached {w2_tps:.0} trials/sec, below \
             {SWEEP_SCALING_FLOOR}× the workers=1 rate of {w1_tps:.0}"
        );
    } else {
        println!(
            "(worker-scaling assertion skipped: host has {host_cores} core(s) \
             or reduced scale — oversubscribed sweeps measure contention, \
             not scaling)"
        );
    }

    let report = Report {
        schema_version: 5,
        trials,
        workers: workers as u64,
        simulated_ms_per_trial,
        setup,
        forked,
        pooled,
        fresh,
        prefix_reuse: PrefixReuseProbe {
            speedup_vs_pooled: prefix_speedup,
        },
        speedup_pooled_vs_fresh: speedup,
        steady_state: AllocProbe {
            clean_trial_allocs: allocs_1x,
            clean_trial_allocs_2x_horizon: allocs_2x,
            horizon_scaling_allocs: scaling,
            faulty_trial_allocs: faulty_allocs,
        },
        snapshot,
        tail_fastforward,
        worker_sweep,
        worker_sweep_note: WORKER_SWEEP_NOTE,
        host_cores,
    };
    let path = "BENCH_campaign.json";
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, json).expect("BENCH_campaign.json writable");
    validate_emitted_json(path);
    println!("[record written to {path}]");
}

//! **CAMPAIGN-THROUGHPUT** — end-to-end trial throughput of the fault
//! campaign engine.
//!
//! The coverage/latency tables of the paper's outlook need thousands of
//! injection trials, each simulating a full central node to its horizon —
//! so campaign wall-clock is the cost that decides how dense a coverage
//! grid is affordable. This bin measures the T-COV campaign (the same
//! plan shape as the golden campaign report, scaled up) through the two
//! execution paths:
//!
//! 1. **pooled** — [`run_plan`]: the watchdog configuration is compiled
//!    once into a shared [`NodeBlueprint`] and every worker reuses one
//!    pooled node, `reset()` between trials (the default path since the
//!    throughput engine landed);
//! 2. **fresh** — [`run_plan_fresh`]: every trial builds its own node
//!    from scratch — config compile included — with the kernel execution
//!    trace recording, exactly how campaigns ran before the throughput
//!    engine (the pre-engine node had no switch to turn the trace off).
//!
//! Both paths must produce bit-identical [`CampaignStats`] (asserted),
//! and at the full 1000-trial campaign on ≥4 workers the pooled path
//! must be **≥2× the fresh trials/sec** (asserted). The setup-vs-run
//! split (per-trial node build vs pooled reset vs one-off blueprint
//! compile) is measured separately so the report shows *where* the
//! speedup comes from. Results land in `BENCH_campaign.json` (stable
//! schema, `schema_version` 1).
//!
//! Usage: `campaign_bench [trials_per_class]` (default 200 → 1000 trials
//! over the 5 error classes; the ≥2× assertion is skipped below the
//! default so CI smoke runs stay timing-noise-proof). Worker count comes
//! from `EASIS_WORKERS` (default: available parallelism).
//!
//! [`run_plan`]: easis_validator::scenario::run_plan
//! [`run_plan_fresh`]: easis_validator::scenario::run_plan_fresh
//! [`NodeBlueprint`]: easis_validator::node::NodeBlueprint
//! [`CampaignStats`]: easis_injection::stats::CampaignStats

use easis_injection::campaign::{CampaignBuilder, CampaignPlan};
use easis_injection::executor::CampaignExecutor;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::node::{CentralNode, NodeBlueprint};
use easis_validator::scenario::{campaign_node_config, run_plan, run_plan_fresh};
use serde::Serialize;
use std::hint::black_box;

/// trials_per_class of the full campaign (5 error classes → 1000 trials).
const DEFAULT_TRIALS_PER_CLASS: usize = 200;
/// Below the full campaign the ≥2× assertion is timing noise, not signal.
const ASSERT_FLOOR_TRIALS_PER_CLASS: usize = DEFAULT_TRIALS_PER_CLASS;
/// The ≥2× assertion also needs real parallelism to be meaningful.
const ASSERT_FLOOR_WORKERS: usize = 4;
/// Campaign passes per path; the fastest pass is reported (interference
/// only ever adds time, so the best pass is the closest observation).
const CAMPAIGN_REPS: u32 = 3;
/// Passes for the cheap per-node setup measurements.
const SETUP_REPS: u32 = 10;

/// Simulated horizon of every trial.
const HORIZON: Instant = Instant::from_millis(1_500);

/// The T-COV campaign plan: same seed, target set and injection window as
/// the golden campaign report (`tests/goldens/campaign_report.json`),
/// scaled to `trials_per_class`.
fn t_cov_plan(trials_per_class: usize) -> CampaignPlan {
    CampaignBuilder::new(0xC0FFEE, (0..9).map(RunnableId).collect())
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(HORIZON)
        .build()
}

/// Runs `op` `reps` times and returns the fastest elapsed nanoseconds.
fn best_of<F: FnMut()>(reps: u32, mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        op();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

// ---------------------------------------------------------------------
// Report schema (schema_version 1 — keep stable, future PRs diff this).
// ---------------------------------------------------------------------

/// One campaign execution path, full-plan wall clock and derived rates.
#[derive(Serialize)]
struct PathTiming {
    elapsed_ms: f64,
    trials_per_sec: f64,
    /// Host nanoseconds spent per simulated millisecond, aggregated over
    /// all workers (wall clock / total simulated time).
    ns_per_simulated_ms: f64,
}

impl PathTiming {
    fn new(elapsed_ns: f64, trials: u64, simulated_ms_per_trial: u64) -> Self {
        PathTiming {
            elapsed_ms: elapsed_ns / 1e6,
            trials_per_sec: trials as f64 / (elapsed_ns / 1e9),
            ns_per_simulated_ms: elapsed_ns / (trials * simulated_ms_per_trial) as f64,
        }
    }
}

/// Where the per-trial time goes before any simulation happens.
#[derive(Serialize)]
struct SetupSplit {
    /// One-off cost of compiling the watchdog config into a blueprint
    /// (paid once per campaign on the pooled path).
    blueprint_compile_ns: f64,
    /// Per-trial node construction on the fresh path (config compile
    /// included).
    fresh_build_ns_per_trial: f64,
    /// Per-trial `CentralNode::reset` on the pooled path.
    pooled_reset_ns_per_trial: f64,
    /// Fraction of the fresh path's wall clock spent building nodes.
    fresh_setup_fraction: f64,
    /// Fraction of the pooled path's wall clock spent resetting nodes.
    pooled_setup_fraction: f64,
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    trials: u64,
    workers: u64,
    simulated_ms_per_trial: u64,
    setup: SetupSplit,
    pooled: PathTiming,
    fresh: PathTiming,
    speedup_pooled_vs_fresh: f64,
}

/// Measures the one-off and per-trial setup costs outside the campaign.
fn measure_setup() -> (f64, f64, f64) {
    let compile_ns = best_of(SETUP_REPS, || {
        black_box(NodeBlueprint::compile(campaign_node_config()));
    });
    let build_ns = best_of(SETUP_REPS, || {
        black_box(CentralNode::build(campaign_node_config()));
    });
    // Reset a node that has actually run a trial's worth of simulation, so
    // the measured reset covers dirty state, not a no-op on a clean world.
    let blueprint = NodeBlueprint::compile(campaign_node_config());
    let mut node = CentralNode::build_from_blueprint(&blueprint);
    let mut injector = easis_injection::injector::Injector::none();
    let mut reset_ns = f64::INFINITY;
    for _ in 0..SETUP_REPS {
        node.start();
        node.run_until(Instant::from_millis(100), &mut injector);
        let start = std::time::Instant::now();
        node.reset();
        reset_ns = reset_ns.min(start.elapsed().as_nanos() as f64);
    }
    (compile_ns, build_ns, reset_ns)
}

fn validate_emitted_json(path: &str) {
    let text = std::fs::read_to_string(path).expect("BENCH_campaign.json written");
    let value = serde_json::parse_value(&text).expect("BENCH_campaign.json parses");
    let serde::Value::Map(entries) = value else {
        panic!("BENCH_campaign.json must be a JSON object");
    };
    for key in [
        "schema_version",
        "trials",
        "workers",
        "simulated_ms_per_trial",
        "setup",
        "pooled",
        "fresh",
        "speedup_pooled_vs_fresh",
    ] {
        assert!(
            entries.iter().any(|(k, _)| k == key),
            "BENCH_campaign.json missing key {key:?}"
        );
    }
}

fn main() {
    let trials_per_class = std::env::args()
        .nth(1)
        .map(|raw| raw.parse::<usize>().expect("trials_per_class must be a number"))
        .unwrap_or(DEFAULT_TRIALS_PER_CLASS);

    let plan = t_cov_plan(trials_per_class);
    let trials = plan.len() as u64;
    let executor = CampaignExecutor::from_env();
    let workers = executor.workers();
    let simulated_ms_per_trial = HORIZON.as_millis();

    println!("================================================================");
    println!("experiment CAMPAIGN-THROUGHPUT — pooled vs fresh trial execution");
    println!("{trials} trials (T-COV plan), horizon {simulated_ms_per_trial} ms, {workers} workers");
    println!("================================================================");

    let (compile_ns, build_ns, reset_ns) = measure_setup();

    // Fresh first so the pooled path cannot inherit any warmed-up state
    // (it could not anyway — pools are per worker thread and the executor
    // spawns fresh threads per run — but the order makes that obvious).
    let mut fresh_stats = None;
    let fresh_ns = best_of(CAMPAIGN_REPS, || {
        fresh_stats = Some(run_plan_fresh(&plan, HORIZON, &executor));
    });
    let mut pooled_stats = None;
    let pooled_ns = best_of(CAMPAIGN_REPS, || {
        pooled_stats = Some(run_plan(&plan, HORIZON, &executor));
    });
    let fresh_stats = fresh_stats.expect("fresh campaign ran");
    let pooled_stats = pooled_stats.expect("pooled campaign ran");
    assert_eq!(
        pooled_stats, fresh_stats,
        "pooled and fresh campaigns must produce bit-identical stats"
    );

    let pooled = PathTiming::new(pooled_ns, trials, simulated_ms_per_trial);
    let fresh = PathTiming::new(fresh_ns, trials, simulated_ms_per_trial);
    let speedup = fresh_ns / pooled_ns;
    let setup = SetupSplit {
        blueprint_compile_ns: compile_ns,
        fresh_build_ns_per_trial: build_ns,
        pooled_reset_ns_per_trial: reset_ns,
        // Builds/resets run on `workers` threads; compare against the
        // aggregate CPU time, not wall clock, so the fraction stays in
        // [0, 1] regardless of parallelism.
        fresh_setup_fraction: (build_ns * trials as f64) / (fresh_ns * workers as f64),
        pooled_setup_fraction: (reset_ns * trials as f64) / (pooled_ns * workers as f64),
    };

    println!(
        "{:<28} {:>12} {:>14} {:>16}",
        "path", "elapsed ms", "trials/sec", "ns/simulated ms"
    );
    for (name, t) in [("pooled (run_plan)", &pooled), ("fresh (run_plan_fresh)", &fresh)] {
        println!(
            "{:<28} {:>12.1} {:>14.0} {:>16.0}",
            name, t.elapsed_ms, t.trials_per_sec, t.ns_per_simulated_ms
        );
    }
    println!("pooled vs fresh speedup: {speedup:.2}x");
    println!(
        "setup: blueprint compile {:.0} ns (once), fresh build {:.0} ns/trial \
         ({:.0}% of fresh cpu), pooled reset {:.0} ns/trial ({:.1}% of pooled cpu)",
        setup.blueprint_compile_ns,
        setup.fresh_build_ns_per_trial,
        setup.fresh_setup_fraction * 100.0,
        setup.pooled_reset_ns_per_trial,
        setup.pooled_setup_fraction * 100.0,
    );

    if trials_per_class >= ASSERT_FLOOR_TRIALS_PER_CLASS && workers >= ASSERT_FLOOR_WORKERS {
        assert!(
            speedup >= 2.0,
            "pooled campaign must be ≥2× fresh trials/sec at the full \
             campaign on ≥{ASSERT_FLOOR_WORKERS} workers, got {speedup:.2}×"
        );
    } else {
        println!(
            "(speedup assertion skipped below {ASSERT_FLOOR_TRIALS_PER_CLASS} trials/class \
             or {ASSERT_FLOOR_WORKERS} workers)"
        );
    }

    let report = Report {
        schema_version: 1,
        trials,
        workers: workers as u64,
        simulated_ms_per_trial,
        setup,
        pooled,
        fresh,
        speedup_pooled_vs_fresh: speedup,
    };
    let path = "BENCH_campaign.json";
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, json).expect("BENCH_campaign.json writable");
    validate_emitted_json(path);
    println!("[record written to {path}]");
}

//! **T-COV** — fault detection coverage (the paper's outlook experiment:
//! "further analysis of fault detection coverage").
//!
//! A seeded campaign injects every runnable-level error class into the full
//! central node (SafeSpeed + SafeLane + steer-by-wire) and reports the
//! detection coverage of the three Software Watchdog units against the
//! hardware watchdog and the task-granularity baselines.

use easis_bench::{emit_json, header};
use easis_injection::campaign::CampaignBuilder;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::scenario;

fn main() {
    let trials_per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    header(
        "T-COV",
        "outlook — fault detection coverage analysis",
        "5 error classes x N seeded trials on the full node; all six monitors",
    );
    // Full node runnable layout: steer 0-2, SafeSpeed 3-5, SafeLane 6-8;
    // loop terms exist on SAFE_CC_process (4) and LDW_process (7).
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xC0FFEE, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();
    println!("running {} trials…\n", plan.len());
    let stats = plan.run(|trial| scenario::run_trial(trial, horizon));

    print!("{}", stats.render_coverage_table());
    println!(
        "\npaper shape check: heartbeat-loss, skipped-runnable and duplicate-\n\
         dispatch errors are runnable-level — only the Software Watchdog units\n\
         detect them; timing-budget errors are also seen by the task-level\n\
         monitors; only CPU-saturating faults reach the hardware watchdog."
    );
    emit_json("table_coverage", &stats);
}

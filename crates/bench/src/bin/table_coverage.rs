//! **T-COV** — fault detection coverage (the paper's outlook experiment:
//! "further analysis of fault detection coverage").
//!
//! A seeded campaign injects every runnable-level error class into the full
//! central node (SafeSpeed + SafeLane + steer-by-wire) and reports the
//! detection coverage of the three Software Watchdog units against the
//! hardware watchdog and the task-granularity baselines, with Wilson-score
//! 95% confidence intervals on every coverage number.
//!
//! Usage: `table_coverage [trials_per_class] [workers]` — trials default
//! to 10 per class; workers default to `EASIS_WORKERS` or the machine's
//! available parallelism. The emitted JSON is bit-identical for any
//! worker count.

use easis_bench::{emit_json, header};
use easis_injection::campaign::CampaignBuilder;
use easis_injection::executor::CampaignExecutor;
use easis_injection::report::CampaignReport;
use easis_rte::runnable::RunnableId;
use easis_sim::time::{Duration, Instant};
use easis_validator::scenario;

fn main() {
    let trials_per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let executor = match std::env::args().nth(2).and_then(|s| s.parse().ok()) {
        Some(workers) => CampaignExecutor::new(workers),
        None => CampaignExecutor::from_env(),
    };
    header(
        "T-COV",
        "outlook — fault detection coverage analysis",
        "5 error classes x N seeded trials on the full node; all six monitors",
    );
    // Full node runnable layout: steer 0-2, SafeSpeed 3-5, SafeLane 6-8;
    // loop terms exist on SAFE_CC_process (4) and LDW_process (7).
    let targets: Vec<RunnableId> = (0..9).map(RunnableId).collect();
    let horizon = Instant::from_millis(1_500);
    let plan = CampaignBuilder::new(0xC0FFEE, targets)
        .loop_targets(vec![RunnableId(4), RunnableId(7)])
        .trials_per_class(trials_per_class)
        .window(Instant::from_millis(300), Duration::from_millis(400))
        .with_horizon(horizon)
        .build();
    println!(
        "running {} trials on {} worker(s)…\n",
        plan.len(),
        executor.workers()
    );
    let started = std::time::Instant::now();
    let stats = scenario::run_plan(&plan, horizon, &executor);
    let elapsed = started.elapsed();

    print!("{}", stats.render_coverage_table());
    let report = CampaignReport::from_stats(&stats);
    println!();
    print!("{}", report.render());
    println!(
        "\n[{} trials in {:.2} s on {} worker(s)]",
        stats.len(),
        elapsed.as_secs_f64(),
        executor.workers()
    );
    println!(
        "\npaper shape check: heartbeat-loss, skipped-runnable and duplicate-\n\
         dispatch errors are runnable-level — only the Software Watchdog units\n\
         detect them; timing-budget errors are also seen by the task-level\n\
         monitors; only CPU-saturating faults reach the hardware watchdog."
    );
    emit_json("table_coverage", &report);
}

//! **A-THR** — ablation of the TSI error threshold (DESIGN.md §5).
//!
//! The paper sets the task-faulty threshold to 3 in its Figure 6 case. A
//! lower threshold reacts faster but tolerates fewer transients; a higher
//! one delays fault treatment. This sweep injects the Figure 6 branch
//! error at each threshold and reports the time from injection to the
//! faulty verdict plus the number of errors that accumulated.

use easis_bench::{emit_json, header};
use easis_injection::injector::{ErrorClass, Injection, Injector};
use easis_sim::time::Instant;
use easis_validator::{CentralNode, NodeConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold: u32,
    verdict_latency_ms: Option<u64>,
    faults_until_verdict: usize,
}

fn main() {
    header(
        "A-THR",
        "design choice — TSI error indication threshold (paper uses 3)",
        "skip-runnable injection at thresholds 1..8; latency to the faulty verdict",
    );
    let from = Instant::from_millis(500);
    let mut rows = Vec::new();
    for threshold in [1u32, 2, 3, 5, 8] {
        let mut node = CentralNode::build(NodeConfig {
            error_threshold: threshold,
            policy: easis_fmf::policy::TreatmentPolicy::observe_only(),
            ..NodeConfig::safespeed_only()
        });
        node.start();
        let target = node.runnable("SAFE_CC_process");
        let task = node.tasks["SafeSpeedTask"];
        let mut injector = Injector::new([Injection::new(
            ErrorClass::SkipRunnable { runnable: target },
            from,
            Instant::from_millis(2_000),
        )]);
        let mut verdict_at = None;
        while node.os.now() < Instant::from_millis(2_000) {
            node.run_until(node.os.now() + easis_sim::time::Duration::from_millis(10), &mut injector);
            if verdict_at.is_none() && node.world.watchdog.task_state(task).is_faulty() {
                verdict_at = Some(node.os.now());
                break;
            }
        }
        let faults = node.world.fault_log.len() + node.world.watchdog.pending_faults();
        rows.push(Row {
            threshold,
            verdict_latency_ms: verdict_at.map(|t| t.as_millis() - from.as_millis()),
            faults_until_verdict: faults,
        });
    }

    println!("{:>9} {:>20} {:>22}", "threshold", "verdict latency[ms]", "faults until verdict");
    for r in &rows {
        println!(
            "{:>9} {:>20} {:>22}",
            r.threshold,
            r.verdict_latency_ms
                .map(|v| v.to_string())
                .unwrap_or_else(|| "never".into()),
            r.faults_until_verdict
        );
    }
    println!(
        "\nobservation: verdict latency grows roughly linearly with the\n\
         threshold (one PFC error per 10 ms task period)."
    );
    assert!(rows.iter().all(|r| r.verdict_latency_ms.is_some()));
    emit_json("ablation_threshold", &rows);
}

//! **OBS-OVERHEAD** — what the flight recorder costs.
//!
//! Two measurements:
//!
//! 1. **Host overhead** of [`easis_obs::ObsSink::record`], disabled vs
//!    enabled — the disabled path is the one every production-shaped run
//!    takes, so it must be a near-free branch; the enabled path buys the
//!    trace of `trace_dump` and its cost is reported here.
//! 2. **Simulated-cost invariance**: attaching a sink must not change the
//!    simulation's [`CostMeter`] by a single cycle, or the golden campaign
//!    reports would depend on whether observability is on. Asserted, not
//!    just reported.

use easis_bench::{emit_json, header};
use easis_obs::{ObsEvent, ObsSink};
use easis_rte::runnable::RunnableId;
use easis_sim::cpu::CostMeter;
use easis_sim::time::Instant as SimInstant;
use easis_watchdog::config::RunnableHypothesis;
use easis_watchdog::heartbeat::HeartbeatMonitor;
use serde::Serialize;

const RECORDS: u64 = 1_000_000;
const CYCLES: u64 = 10_000;

#[derive(Serialize)]
struct Report {
    records: u64,
    disabled_ns_per_record: f64,
    enabled_ns_per_record: f64,
    sim_cycles_without_obs: u64,
    sim_cycles_with_obs: u64,
}

fn ns_per_record(sink: &ObsSink) -> f64 {
    let event = ObsEvent::HeartbeatRecorded {
        runnable: RunnableId(0),
    };
    let start = std::time::Instant::now();
    for i in 0..RECORDS {
        sink.record(SimInstant::from_micros(i), event);
    }
    start.elapsed().as_nanos() as f64 / RECORDS as f64
}

/// Runs the heartbeat monitor for `CYCLES` cycles and returns the
/// simulated cost; the sink is the only difference between calls.
fn sim_cost(obs: ObsSink) -> u64 {
    let r = RunnableId(0);
    let mut monitor = HeartbeatMonitor::new([RunnableHypothesis::new(r).alive_at_least(1, 1)]);
    monitor.attach_obs(obs);
    let mut costs = CostMeter::new();
    for cycle in 1..=CYCLES {
        // Miss every fourth beat so the fault path records events too.
        if cycle % 4 != 0 {
            monitor.record(r, SimInstant::from_millis(cycle * 10 - 5), &mut costs);
        }
        let _ = monitor.end_of_cycle(SimInstant::from_millis(cycle * 10), &mut costs);
    }
    costs.total_cycles()
}

fn main() {
    header(
        "OBS-OVERHEAD",
        "flight-recorder record cost, disabled vs enabled",
        "1M record calls per mode; 10k monitor cycles for cost invariance",
    );
    let disabled = ns_per_record(&ObsSink::disabled());
    let enabled = ns_per_record(&ObsSink::enabled(65_536));
    let without_obs = sim_cost(ObsSink::disabled());
    let with_obs = sim_cost(ObsSink::enabled(65_536));

    println!("{:<34} {:>12}", "mode", "ns / record");
    println!("{:<34} {:>12.1}", "disabled sink (default)", disabled);
    println!("{:<34} {:>12.1}", "enabled sink (ring 64k)", enabled);
    println!(
        "\nsimulated cost over {CYCLES} monitor cycles: {} cycles without obs, \
         {} with obs",
        without_obs, with_obs
    );
    assert_eq!(
        without_obs, with_obs,
        "observability perturbed the simulated cost model"
    );
    println!("cost-model invariance holds: attaching a sink changes nothing");

    emit_json(
        "obs_overhead",
        &Report {
            records: RECORDS,
            disabled_ns_per_record: disabled,
            enabled_ns_per_record: enabled,
            sim_cycles_without_obs: without_obs,
            sim_cycles_with_obs: with_obs,
        },
    );
}

//! # easis-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries that regenerate the paper's
//! evaluation artifacts (one binary per figure/table; see DESIGN.md §4)
//! and for the Criterion micro-benchmarks. Every experiment prints its
//! human-readable table/series to stdout and drops a machine-readable JSON
//! record under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Directory where experiment records are written.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Writes a JSON record of an experiment result and announces the path.
pub fn emit_json<T: Serialize>(experiment: &str, payload: &T) {
    let dir = experiments_dir();
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    match serde_json::to_string_pretty(payload) {
        Ok(json) => match fs::write(&path, json) {
            Ok(()) => println!("\n[record written to {}]", path.display()),
            Err(err) => eprintln!("warning: cannot write {}: {err}", path.display()),
        },
        Err(err) => eprintln!("warning: cannot serialise {experiment}: {err}"),
    }
}

/// Prints the standard experiment header.
pub fn header(id: &str, paper_artifact: &str, description: &str) {
    println!("================================================================");
    println!("experiment {id} — reproduces: {paper_artifact}");
    println!("{description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_json_writes_a_file() {
        emit_json("selftest", &serde_json::json!({"ok": true}));
        let path = experiments_dir().join("selftest.json");
        let content = std::fs::read_to_string(&path).expect("file written");
        assert!(content.contains("ok"));
        let _ = std::fs::remove_file(path);
    }
}

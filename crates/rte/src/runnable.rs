//! Runnables.
//!
//! A *runnable* is the paper's unit of supervision: a code-sequence
//! component of an application software component, mapped onto an OS task
//! together with runnables from possibly different applications. Here a
//! runnable is a [`RunnableSpec`] (identity + execution-cost model) plus a
//! stateless [`RunnableLogic`] function over the ECU world. State the logic
//! needs across activations (integrators, debounce counters) lives in the
//! signal database, mirroring AUTOSAR inter-runnable variables.
//!
//! The cost model includes a data-dependent loop term — the paper's error
//! injection manipulates exactly this ("manipulation of loop counters").

use easis_osek::plan::EffectCtx;
use easis_sim::time::{Duration, Instant};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a runnable, unique per ECU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RunnableId(pub u32);

impl RunnableId {
    /// Index into per-ECU runnable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RunnableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Static description of a runnable: name and execution-cost model.
///
/// Execution cost per activation is
/// `base_cost + iterations * per_iteration_cost`, where `iterations`
/// defaults to [`RunnableSpec::default_iterations`] and can be overridden at
/// runtime through [`crate::control::RunnableControls`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableSpec {
    id: RunnableId,
    name: String,
    base_cost: Duration,
    per_iteration_cost: Duration,
    default_iterations: u32,
}

impl RunnableSpec {
    /// Creates a spec with a pure base cost (no loop term).
    pub fn new(id: RunnableId, name: impl Into<String>, base_cost: Duration) -> Self {
        RunnableSpec {
            id,
            name: name.into(),
            base_cost,
            per_iteration_cost: Duration::ZERO,
            default_iterations: 0,
        }
    }

    /// Adds a loop term: `iterations` runs of `per_iteration` cost each.
    pub fn with_loop(mut self, per_iteration: Duration, iterations: u32) -> Self {
        self.per_iteration_cost = per_iteration;
        self.default_iterations = iterations;
        self
    }

    /// Runnable id.
    pub fn id(&self) -> RunnableId {
        self.id
    }

    /// Runnable name (e.g. `"GetSensorValue"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed part of the execution cost.
    pub fn base_cost(&self) -> Duration {
        self.base_cost
    }

    /// Cost of one loop iteration.
    pub fn per_iteration_cost(&self) -> Duration {
        self.per_iteration_cost
    }

    /// Nominal loop iteration count.
    pub fn default_iterations(&self) -> u32 {
        self.default_iterations
    }

    /// Execution cost for a given iteration count.
    pub fn cost_with_iterations(&self, iterations: u32) -> Duration {
        self.base_cost + self.per_iteration_cost * iterations as u64
    }

    /// Nominal execution cost.
    pub fn nominal_cost(&self) -> Duration {
        self.cost_with_iterations(self.default_iterations)
    }
}

/// The functional logic of a runnable: an instantaneous effect over the ECU
/// world, executed when the runnable's compute segment completes.
///
/// Shared (`Arc`) so one logic can be planned into many activations.
pub type RunnableLogic<W> = Arc<dyn Fn(&mut W, &mut EffectCtx<'_, W>) + Send + Sync>;

/// A runnable ready for task assembly: spec + logic.
pub struct RunnableDef<W> {
    spec: RunnableSpec,
    logic: RunnableLogic<W>,
}

impl<W> Clone for RunnableDef<W> {
    fn clone(&self) -> Self {
        RunnableDef {
            spec: self.spec.clone(),
            logic: Arc::clone(&self.logic),
        }
    }
}

impl<W> fmt::Debug for RunnableDef<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunnableDef")
            .field("spec", &self.spec)
            .finish()
    }
}

impl<W> RunnableDef<W> {
    /// Pairs a spec with its logic.
    pub fn new(
        spec: RunnableSpec,
        logic: impl Fn(&mut W, &mut EffectCtx<'_, W>) + Send + Sync + 'static,
    ) -> Self {
        RunnableDef {
            spec,
            logic: Arc::new(logic),
        }
    }

    /// A runnable that does nothing but consume its cost (placeholder /
    /// load generator).
    pub fn no_op(spec: RunnableSpec) -> Self {
        RunnableDef::new(spec, |_w, _ctx| {})
    }

    /// The spec.
    pub fn spec(&self) -> &RunnableSpec {
        &self.spec
    }

    /// The logic, cheaply cloneable.
    pub fn logic(&self) -> RunnableLogic<W> {
        Arc::clone(&self.logic)
    }
}

/// Registry assigning dense [`RunnableId`]s per ECU and remembering specs.
///
/// The watchdog configuration and the PFC look-up table are keyed by these
/// ids, so registry construction is the single naming authority of one ECU.
#[derive(Debug, Clone, Default)]
pub struct RunnableRegistry {
    specs: Vec<RunnableSpec>,
}

impl RunnableRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        RunnableRegistry::default()
    }

    /// Registers a runnable, assigning the next id.
    pub fn register(&mut self, name: impl Into<String>, base_cost: Duration) -> RunnableSpec {
        let id = RunnableId(self.specs.len() as u32);
        let spec = RunnableSpec::new(id, name, base_cost);
        self.specs.push(spec.clone());
        spec
    }

    /// Registers a runnable with a loop cost term.
    pub fn register_with_loop(
        &mut self,
        name: impl Into<String>,
        base_cost: Duration,
        per_iteration: Duration,
        iterations: u32,
    ) -> RunnableSpec {
        let id = RunnableId(self.specs.len() as u32);
        let spec = RunnableSpec::new(id, name, base_cost).with_loop(per_iteration, iterations);
        self.specs.push(spec.clone());
        spec
    }

    /// Looks up a spec by id.
    pub fn spec(&self, id: RunnableId) -> Option<&RunnableSpec> {
        self.specs.get(id.index())
    }

    /// Looks up an id by name.
    pub fn id_of(&self, name: &str) -> Option<RunnableId> {
        self.specs.iter().find(|s| s.name() == name).map(|s| s.id())
    }

    /// Name of a runnable, or `"<unknown>"`.
    pub fn name_of(&self, id: RunnableId) -> &str {
        self.spec(id).map_or("<unknown>", |s| s.name())
    }

    /// Number of registered runnables.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All specs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RunnableSpec> {
        self.specs.iter()
    }
}

/// Timestamped heartbeat receiver — the interface through which glue code
/// reports runnable execution to the dependability services. The Software
/// Watchdog's heartbeat monitoring unit implements this.
pub trait HeartbeatSink {
    /// Called by the aliveness-indication glue each time `runnable`
    /// executes.
    fn indicate(&mut self, runnable: RunnableId, now: Instant);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_combines_base_and_loop() {
        let spec = RunnableSpec::new(RunnableId(0), "r", Duration::from_micros(100))
            .with_loop(Duration::from_micros(10), 5);
        assert_eq!(spec.nominal_cost(), Duration::from_micros(150));
        assert_eq!(spec.cost_with_iterations(20), Duration::from_micros(300));
        assert_eq!(spec.cost_with_iterations(0), Duration::from_micros(100));
    }

    #[test]
    fn registry_assigns_dense_ids() {
        let mut reg = RunnableRegistry::new();
        let a = reg.register("GetSensorValue", Duration::from_micros(50));
        let b = reg.register("SAFE_CC_process", Duration::from_micros(200));
        assert_eq!(a.id(), RunnableId(0));
        assert_eq!(b.id(), RunnableId(1));
        assert_eq!(reg.id_of("SAFE_CC_process"), Some(RunnableId(1)));
        assert_eq!(reg.name_of(RunnableId(0)), "GetSensorValue");
        assert_eq!(reg.name_of(RunnableId(9)), "<unknown>");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_with_loop_registers_loop_term() {
        let mut reg = RunnableRegistry::new();
        let s = reg.register_with_loop("r", Duration::from_micros(10), Duration::from_micros(2), 3);
        assert_eq!(s.nominal_cost(), Duration::from_micros(16));
    }

    #[test]
    fn runnable_def_shares_logic() {
        let spec = RunnableSpec::new(RunnableId(0), "r", Duration::ZERO);
        let def: RunnableDef<u32> = RunnableDef::new(spec, |w, _| *w += 1);
        let cloned = def.clone();
        let logic = cloned.logic();
        let mut w = 0u32;
        let mut trace = easis_sim::trace::TraceRecorder::new();
        let mut ctx = EffectCtx::new(Instant::ZERO, easis_osek::task::TaskId(0), &mut trace);
        logic(&mut w, &mut ctx);
        assert_eq!(w, 1);
        assert_eq!(def.spec().name(), "r");
    }

    #[test]
    fn no_op_runnable_has_empty_logic() {
        let spec = RunnableSpec::new(RunnableId(0), "idle", Duration::from_micros(5));
        let def: RunnableDef<u32> = RunnableDef::no_op(spec);
        let logic = def.logic();
        let mut w = 7u32;
        let mut trace = easis_sim::trace::TraceRecorder::new();
        let mut ctx = EffectCtx::new(Instant::ZERO, easis_osek::task::TaskId(0), &mut trace);
        logic(&mut w, &mut ctx);
        assert_eq!(w, 7);
    }
}

//! Schedule tables.
//!
//! Time-triggered dispatching as in OSEKtime / AUTOSAR OS schedule tables:
//! a periodic table of expiry points, each activating a task (or setting an
//! event) at a fixed offset into the period. The validator uses one to
//! phase its application tasks deterministically; the paper's runnables are
//! "mapped onto tasks and scheduled on the system architecture" in exactly
//! this style.

use easis_osek::alarm::{AlarmAction, AlarmId};
use easis_osek::error::OsError;
use easis_osek::kernel::Os;
use easis_osek::task::{EventMask, TaskId};
use easis_sim::time::Duration;

/// Action of one expiry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableAction {
    /// Activate a task at the expiry point.
    ActivateTask(TaskId),
    /// Set events on an extended task at the expiry point.
    SetEvent(TaskId, EventMask),
}

/// One expiry point: an offset into the table period plus its action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiryPoint {
    /// Offset from the period start (must be smaller than the period).
    pub offset: Duration,
    /// What happens at the offset.
    pub action: TableAction,
}

/// A periodic schedule table.
///
/// # Examples
///
/// ```
/// use easis_osek::task::TaskId;
/// use easis_rte::schedule::{ScheduleTable, TableAction};
/// use easis_sim::time::Duration;
///
/// let table = ScheduleTable::new(Duration::from_millis(10))
///     .at(Duration::ZERO, TableAction::ActivateTask(TaskId(0)))
///     .at(Duration::from_millis(5), TableAction::ActivateTask(TaskId(1)));
/// assert_eq!(table.points().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTable {
    period: Duration,
    points: Vec<ExpiryPoint>,
}

impl ScheduleTable {
    /// Creates an empty table with the given period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period: Duration) -> Self {
        assert!(!period.is_zero(), "table period must be positive");
        ScheduleTable {
            period,
            points: Vec::new(),
        }
    }

    /// Adds an expiry point.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not smaller than the period.
    pub fn at(mut self, offset: Duration, action: TableAction) -> Self {
        assert!(offset < self.period, "offset must lie inside the period");
        self.points.push(ExpiryPoint { offset, action });
        self.points.sort_by_key(|p| p.offset);
        self
    }

    /// The table period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The expiry points, sorted by offset.
    pub fn points(&self) -> &[ExpiryPoint] {
        &self.points
    }

    /// Arms the table on an OS: one cyclic alarm per expiry point. Points
    /// at offset zero fire first at the end of the initial period (a
    /// synchronous table start at t=0 would race OS startup).
    ///
    /// # Errors
    ///
    /// Propagates alarm-arming errors.
    pub fn arm<W>(&self, os: &mut Os<W>) -> Result<Vec<AlarmId>, OsError> {
        let mut alarms = Vec::with_capacity(self.points.len());
        for (i, point) in self.points.iter().enumerate() {
            let action = match point.action {
                TableAction::ActivateTask(t) => AlarmAction::ActivateTask(t),
                TableAction::SetEvent(t, m) => AlarmAction::SetEvent(t, m),
            };
            let alarm = os.add_alarm(format!("table_ep{i}"), action);
            let offset = if point.offset.is_zero() {
                self.period
            } else {
                point.offset
            };
            os.set_rel_alarm(alarm, offset, Some(self.period))?;
            alarms.push(alarm);
        }
        Ok(alarms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::BasicEcuWorld;
    use easis_osek::plan::Plan;
    use easis_osek::task::{Priority, TaskConfig, TaskKind};
    use easis_sim::time::Instant;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn logging_task(
        os: &mut Os<BasicEcuWorld>,
        name: &'static str,
        prio: u8,
    ) -> TaskId {
        os.add_task(
            TaskConfig::new(name, Priority(prio)),
            move |_: Instant, _: &BasicEcuWorld| {
                Plan::new()
                    .compute(Duration::from_micros(100))
                    .effect(move |w: &mut BasicEcuWorld, ctx| {
                        let now = ctx.now();
                        let id = w.signals.declare(name, 0.0);
                        let n = w.signals.read(id);
                        w.signals.write(id, n + 1.0, now);
                    })
            },
        )
    }

    #[test]
    fn phased_activations_follow_the_table() {
        let mut os: Os<BasicEcuWorld> = Os::new();
        let a = logging_task(&mut os, "a", 3);
        let b = logging_task(&mut os, "b", 3);
        let table = ScheduleTable::new(ms(10))
            .at(ms(2), TableAction::ActivateTask(a))
            .at(ms(7), TableAction::ActivateTask(b));
        let mut w = BasicEcuWorld::new();
        os.start(&mut w);
        table.arm(&mut os).unwrap();
        os.run_until(Instant::from_millis(50), &mut w);
        // Five periods each: activations at 2,12,…,42 and 7,17,…,47.
        assert_eq!(w.signals.read(w.signals.id_of("a").unwrap()), 5.0);
        assert_eq!(w.signals.read(w.signals.id_of("b").unwrap()), 5.0);
        // Order within a period: `a` always dispatches before `b`.
        let dispatches: Vec<&str> = os
            .trace()
            .of_kind("dispatch")
            .map(|e| e.detail.as_str())
            .collect();
        for pair in dispatches.chunks(2) {
            assert_eq!(pair, ["a", "b"]);
        }
    }

    #[test]
    fn zero_offset_points_start_one_period_late() {
        let mut os: Os<BasicEcuWorld> = Os::new();
        let a = logging_task(&mut os, "a", 3);
        let table = ScheduleTable::new(ms(10)).at(Duration::ZERO, TableAction::ActivateTask(a));
        let mut w = BasicEcuWorld::new();
        os.start(&mut w);
        table.arm(&mut os).unwrap();
        os.run_until(Instant::from_millis(35), &mut w);
        // Fires at 10, 20, 30.
        assert_eq!(w.signals.read(w.signals.id_of("a").unwrap()), 3.0);
    }

    #[test]
    fn set_event_points_wake_extended_tasks() {
        use easis_osek::plan::Step;
        let mut os: Os<BasicEcuWorld> = Os::new();
        let waiter = os.add_task(
            TaskConfig::new("waiter", Priority(2))
                .with_kind(TaskKind::Extended)
                .autostart(),
            |_: Instant, _: &BasicEcuWorld| {
                Plan::new()
                    .step(Step::WaitEvent(EventMask::bit(0)))
                    .effect(|w: &mut BasicEcuWorld, ctx| {
                        let now = ctx.now();
                        let id = w.signals.declare("woken", 0.0);
                        let n = w.signals.read(id);
                        w.signals.write(id, n + 1.0, now);
                    })
            },
        );
        let table = ScheduleTable::new(ms(10))
            .at(ms(4), TableAction::SetEvent(waiter, EventMask::bit(0)));
        let mut w = BasicEcuWorld::new();
        os.start(&mut w);
        table.arm(&mut os).unwrap();
        os.run_until(Instant::from_millis(15), &mut w);
        assert_eq!(w.signals.read(w.signals.id_of("woken").unwrap()), 1.0);
    }

    #[test]
    fn points_are_sorted_by_offset() {
        let t = ScheduleTable::new(ms(10))
            .at(ms(7), TableAction::ActivateTask(TaskId(0)))
            .at(ms(2), TableAction::ActivateTask(TaskId(1)));
        assert_eq!(t.points()[0].offset, ms(2));
        assert_eq!(t.points()[1].offset, ms(7));
        assert_eq!(t.period(), ms(10));
    }

    #[test]
    #[should_panic(expected = "inside the period")]
    fn offset_outside_period_rejected() {
        let _ = ScheduleTable::new(ms(10)).at(ms(10), TableAction::ActivateTask(TaskId(0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = ScheduleTable::new(Duration::ZERO);
    }
}

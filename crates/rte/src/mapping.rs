//! Application / task / runnable mapping.
//!
//! "Based on the mapping information of applications and tasks,
//! corresponding fault treatments with a global view of the ECU are taken"
//! (paper §3.5). [`SystemMapping`] is that information: which runnables run
//! in which task, and which tasks belong to which application software
//! component. The watchdog's task state indication unit and the Fault
//! Management Framework both navigate this structure when rolling runnable
//! errors up to task, application and global ECU state.

use crate::runnable::RunnableId;
use easis_osek::task::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an application software component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApplicationId(pub u32);

impl ApplicationId {
    /// Index into application tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ApplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "App{}", self.0)
    }
}

/// The ECU's deployment mapping: applications → tasks → runnables.
///
/// # Examples
///
/// ```
/// use easis_osek::task::TaskId;
/// use easis_rte::mapping::SystemMapping;
/// use easis_rte::runnable::RunnableId;
///
/// let mut map = SystemMapping::new();
/// let app = map.add_application("SafeSpeed");
/// map.assign_task(TaskId(0), app);
/// map.assign_runnable(RunnableId(0), TaskId(0));
/// assert_eq!(map.task_of(RunnableId(0)), Some(TaskId(0)));
/// assert_eq!(map.app_of(TaskId(0)), Some(app));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemMapping {
    app_names: Vec<String>,
    runnable_task: BTreeMap<RunnableId, TaskId>,
    task_app: BTreeMap<TaskId, ApplicationId>,
}

impl SystemMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        SystemMapping::default()
    }

    /// Declares an application software component.
    pub fn add_application(&mut self, name: impl Into<String>) -> ApplicationId {
        let id = ApplicationId(self.app_names.len() as u32);
        self.app_names.push(name.into());
        id
    }

    /// Maps a task to an application (a task belongs to one application;
    /// remapping overwrites).
    pub fn assign_task(&mut self, task: TaskId, app: ApplicationId) {
        self.task_app.insert(task, app);
    }

    /// Maps a runnable to the task hosting it (remapping overwrites).
    pub fn assign_runnable(&mut self, runnable: RunnableId, task: TaskId) {
        self.runnable_task.insert(runnable, task);
    }

    /// Task hosting a runnable.
    pub fn task_of(&self, runnable: RunnableId) -> Option<TaskId> {
        self.runnable_task.get(&runnable).copied()
    }

    /// Application owning a task.
    pub fn app_of(&self, task: TaskId) -> Option<ApplicationId> {
        self.task_app.get(&task).copied()
    }

    /// Application owning a runnable (through its task).
    pub fn app_of_runnable(&self, runnable: RunnableId) -> Option<ApplicationId> {
        self.task_of(runnable).and_then(|t| self.app_of(t))
    }

    /// Name of an application.
    pub fn app_name(&self, app: ApplicationId) -> Option<&str> {
        self.app_names.get(app.index()).map(String::as_str)
    }

    /// All runnables mapped to a task.
    pub fn runnables_of_task(&self, task: TaskId) -> Vec<RunnableId> {
        self.runnable_task
            .iter()
            .filter(|&(_, &t)| t == task)
            .map(|(&r, _)| r)
            .collect()
    }

    /// All tasks mapped to an application.
    pub fn tasks_of_app(&self, app: ApplicationId) -> Vec<TaskId> {
        self.task_app
            .iter()
            .filter(|&(_, &a)| a == app)
            .map(|(&t, _)| t)
            .collect()
    }

    /// All mapped tasks.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_app.keys().copied()
    }

    /// All mapped runnables.
    pub fn runnables(&self) -> impl Iterator<Item = RunnableId> + '_ {
        self.runnable_task.keys().copied()
    }

    /// Number of declared applications.
    pub fn application_count(&self) -> usize {
        self.app_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (SystemMapping, ApplicationId, ApplicationId) {
        let mut m = SystemMapping::new();
        let speed = m.add_application("SafeSpeed");
        let lane = m.add_application("SafeLane");
        m.assign_task(TaskId(0), speed);
        m.assign_task(TaskId(1), lane);
        m.assign_runnable(RunnableId(0), TaskId(0));
        m.assign_runnable(RunnableId(1), TaskId(0));
        m.assign_runnable(RunnableId(2), TaskId(1));
        (m, speed, lane)
    }

    #[test]
    fn navigation_up_and_down() {
        let (m, speed, lane) = demo();
        assert_eq!(m.task_of(RunnableId(1)), Some(TaskId(0)));
        assert_eq!(m.app_of(TaskId(1)), Some(lane));
        assert_eq!(m.app_of_runnable(RunnableId(0)), Some(speed));
        assert_eq!(m.runnables_of_task(TaskId(0)), vec![RunnableId(0), RunnableId(1)]);
        assert_eq!(m.tasks_of_app(speed), vec![TaskId(0)]);
        assert_eq!(m.app_name(speed), Some("SafeSpeed"));
        assert_eq!(m.application_count(), 2);
    }

    #[test]
    fn unmapped_objects_return_none() {
        let (m, _, _) = demo();
        assert_eq!(m.task_of(RunnableId(9)), None);
        assert_eq!(m.app_of(TaskId(9)), None);
        assert_eq!(m.app_of_runnable(RunnableId(9)), None);
        assert_eq!(m.app_name(ApplicationId(9)), None);
    }

    #[test]
    fn remapping_overwrites() {
        let (mut m, _, lane) = demo();
        m.assign_runnable(RunnableId(0), TaskId(1));
        assert_eq!(m.app_of_runnable(RunnableId(0)), Some(lane));
    }

    #[test]
    fn iterators_cover_everything() {
        let (m, _, _) = demo();
        assert_eq!(m.tasks().count(), 2);
        assert_eq!(m.runnables().count(), 3);
    }
}

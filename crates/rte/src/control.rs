//! Runtime calibration and manipulation controls.
//!
//! The paper injects errors with dSPACE ControlDesk by manipulating, at
//! runtime, "the timing parameter of runnables … loop counters and …
//! invalid execution branches". [`RunnableControls`] is that manipulation
//! surface: a per-runnable and per-task parameter store that the task
//! assembly consults on every activation. With all controls at their
//! defaults the system behaves nominally; the error-injection crate drives
//! experiments purely by writing here.

use crate::runnable::RunnableId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-runnable manipulation parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableControl {
    /// Execution-time scale in parts-per-million of nominal (the
    /// ControlDesk "time scalar" slider). `1_000_000` = nominal.
    pub exec_scale_ppm: u64,
    /// Overrides the loop iteration count of the cost model.
    pub iterations_override: Option<u32>,
    /// Drops the aliveness-indication glue call (models glue-code loss or
    /// a crashed runnable whose computation still burns time).
    pub suppress_heartbeat: bool,
    /// Emits this many additional heartbeats per execution (models
    /// excessive dispatch without scheduling it — used for targeted
    /// arrival-rate tests).
    pub extra_heartbeats: u32,
    /// Removes the runnable from every execution sequence (models an
    /// invalid branch that bypasses it).
    pub skip: bool,
}

impl Default for RunnableControl {
    fn default() -> Self {
        RunnableControl {
            exec_scale_ppm: 1_000_000,
            iterations_override: None,
            suppress_heartbeat: false,
            extra_heartbeats: 0,
            skip: false,
        }
    }
}

impl RunnableControl {
    /// `true` if every parameter is at its nominal default.
    pub fn is_nominal(&self) -> bool {
        *self == RunnableControl::default()
    }

    /// Effective iteration count given a spec default.
    pub fn effective_iterations(&self, default_iterations: u32) -> u32 {
        self.iterations_override.unwrap_or(default_iterations)
    }
}

/// Per-task manipulation parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskControl {
    /// Forces a branching sequencer to take branch `n` (an *invalid
    /// execution branch* when `n` names an off-nominal path).
    pub branch_override: Option<usize>,
}

/// The ECU-wide control store: one [`RunnableControl`] per runnable and one
/// [`TaskControl`] per task name.
///
/// # Examples
///
/// ```
/// use easis_rte::control::RunnableControls;
/// use easis_rte::runnable::RunnableId;
///
/// let mut controls = RunnableControls::new();
/// controls.runnable_mut(RunnableId(2)).exec_scale_ppm = 3_000_000;
/// assert_eq!(controls.runnable(RunnableId(2)).exec_scale_ppm, 3_000_000);
/// assert!(controls.runnable(RunnableId(7)).is_nominal());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableControls {
    runnables: Vec<RunnableControl>,
    tasks: BTreeMap<String, TaskControl>,
    /// Global execution-time scale in ppm applied to *every* runnable on
    /// top of its individual scale. Models running the identical software
    /// on a slower CPU (e.g. the outlook's 50 MHz S12XF instead of the
    /// 480 MHz AutoBox ⇒ ~9.6e6 ppm).
    global_exec_scale_ppm: u64,
}

impl Default for RunnableControls {
    fn default() -> Self {
        RunnableControls {
            runnables: Vec::new(),
            tasks: BTreeMap::new(),
            global_exec_scale_ppm: 1_000_000,
        }
    }
}

impl RunnableControls {
    /// Creates a store with everything nominal.
    pub fn new() -> Self {
        RunnableControls::default()
    }

    /// Sets the global execution-time scale (CPU-speed model).
    ///
    /// # Panics
    ///
    /// Panics if `ppm` is zero.
    pub fn set_global_exec_scale_ppm(&mut self, ppm: u64) {
        assert!(ppm > 0, "global scale must be positive");
        self.global_exec_scale_ppm = ppm;
    }

    /// The global execution-time scale in ppm.
    pub fn global_exec_scale_ppm(&self) -> u64 {
        self.global_exec_scale_ppm
    }

    /// Control block of a runnable (default values if never touched).
    pub fn runnable(&self, id: RunnableId) -> RunnableControl {
        self.runnables
            .get(id.index())
            .cloned()
            .unwrap_or_default()
    }

    /// Mutable control block of a runnable, growing the table as needed.
    pub fn runnable_mut(&mut self, id: RunnableId) -> &mut RunnableControl {
        if self.runnables.len() <= id.index() {
            self.runnables
                .resize_with(id.index() + 1, RunnableControl::default);
        }
        &mut self.runnables[id.index()]
    }

    /// Control block of a task (default values if never touched).
    pub fn task(&self, name: &str) -> TaskControl {
        self.tasks.get(name).cloned().unwrap_or_default()
    }

    /// Mutable control block of a task.
    pub fn task_mut(&mut self, name: &str) -> &mut TaskControl {
        self.tasks.entry(name.to_string()).or_default()
    }

    /// Resets every injection control to nominal (end of an injection
    /// window); the global CPU scale is a platform property and persists.
    pub fn reset(&mut self) {
        self.runnables.clear();
        self.tasks.clear();
    }

    /// `true` if every runnable and task control is nominal (the global
    /// CPU scale is not an injection and does not count).
    pub fn is_nominal(&self) -> bool {
        self.runnables.iter().all(RunnableControl::is_nominal)
            && self.tasks.values().all(|t| t.branch_override.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nominal() {
        let c = RunnableControls::new();
        assert!(c.is_nominal());
        assert!(c.runnable(RunnableId(5)).is_nominal());
        assert_eq!(c.task("any").branch_override, None);
    }

    #[test]
    fn runnable_mut_grows_table() {
        let mut c = RunnableControls::new();
        c.runnable_mut(RunnableId(3)).suppress_heartbeat = true;
        assert!(c.runnable(RunnableId(3)).suppress_heartbeat);
        assert!(c.runnable(RunnableId(0)).is_nominal());
        assert!(!c.is_nominal());
    }

    #[test]
    fn task_override_round_trips() {
        let mut c = RunnableControls::new();
        c.task_mut("SafeSpeedTask").branch_override = Some(2);
        assert_eq!(c.task("SafeSpeedTask").branch_override, Some(2));
        assert!(!c.is_nominal());
    }

    #[test]
    fn reset_restores_nominal() {
        let mut c = RunnableControls::new();
        c.runnable_mut(RunnableId(1)).skip = true;
        c.task_mut("t").branch_override = Some(1);
        c.reset();
        assert!(c.is_nominal());
    }

    #[test]
    fn global_scale_round_trips_and_survives_reset() {
        let mut c = RunnableControls::new();
        assert_eq!(c.global_exec_scale_ppm(), 1_000_000);
        c.set_global_exec_scale_ppm(9_600_000);
        c.runnable_mut(RunnableId(0)).skip = true;
        c.reset();
        assert_eq!(c.global_exec_scale_ppm(), 9_600_000);
        assert!(c.is_nominal(), "global scale is not an injection");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_global_scale_rejected() {
        RunnableControls::new().set_global_exec_scale_ppm(0);
    }

    #[test]
    fn effective_iterations_prefers_override() {
        let mut ctl = RunnableControl::default();
        assert_eq!(ctl.effective_iterations(7), 7);
        ctl.iterations_override = Some(100);
        assert_eq!(ctl.effective_iterations(7), 100);
    }
}

//! # easis-rte — the runnable layer of the EASIS platform
//!
//! The DSN 2007 Software Watchdog paper supervises *runnables*: code
//! sequence components of application software mapped onto OSEK tasks. This
//! crate provides that abstraction layer between applications and the OS:
//!
//! * [`signal`] — the signal database runnables communicate through;
//! * [`runnable`] — runnable specs (identity + cost model incl. loop
//!   terms), logic, registry, and the [`runnable::HeartbeatSink`] glue-code
//!   interface to the dependability services;
//! * [`assembly`] — [`assembly::SequencedTask`], the Stateflow-chart
//!   equivalent that turns runnable lists into preemptible OSEK task
//!   bodies with auto-inserted aliveness-indication glue;
//! * [`control`] — the ControlDesk-style runtime manipulation surface used
//!   for error injection (execution-time scalars, loop counters, invalid
//!   branches, heartbeat suppression/duplication);
//! * [`mapping`] — the application/task/runnable deployment map consumed
//!   by task state indication and fault treatment;
//! * [`schedule`] — OSEKtime/AUTOSAR-style schedule tables for phased
//!   time-triggered activation;
//! * [`world`] — the [`world::EcuWorld`] trait tying it all together.
//!
//! # Examples
//!
//! ```
//! use easis_osek::alarm::AlarmAction;
//! use easis_osek::kernel::Os;
//! use easis_osek::task::{Priority, TaskConfig};
//! use easis_rte::assembly::SequencedTask;
//! use easis_rte::runnable::{RunnableDef, RunnableRegistry};
//! use easis_rte::world::BasicEcuWorld;
//! use easis_sim::time::{Duration, Instant};
//!
//! // One periodic task with two monitored runnables.
//! let mut registry = RunnableRegistry::new();
//! let sense = registry.register("Sense", Duration::from_micros(50));
//! let act = registry.register("Act", Duration::from_micros(80));
//! let body = SequencedTask::fixed(
//!     "MainTask",
//!     vec![RunnableDef::no_op(sense), RunnableDef::no_op(act)],
//! );
//! let mut os: Os<BasicEcuWorld> = Os::new();
//! let task = os.add_task(TaskConfig::new("MainTask", Priority(2)), body);
//! let alarm = os.add_alarm("cyc", AlarmAction::ActivateTask(task));
//! let mut world = BasicEcuWorld::new();
//! os.start(&mut world);
//! os.set_rel_alarm(alarm, Duration::from_millis(10), Some(Duration::from_millis(10)))?;
//! os.run_until(Instant::from_millis(25), &mut world);
//! assert_eq!(world.heartbeats.len(), 4); // 2 periods × 2 runnables
//! # Ok::<(), easis_osek::error::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembly;
pub mod control;
pub mod mapping;
pub mod runnable;
pub mod schedule;
pub mod signal;
pub mod world;

pub use assembly::{BranchingSequencer, FixedSequencer, SequencedTask, Sequencer};
pub use control::{RunnableControl, RunnableControls, TaskControl};
pub use mapping::{ApplicationId, SystemMapping};
pub use runnable::{HeartbeatSink, RunnableDef, RunnableId, RunnableRegistry, RunnableSpec};
pub use schedule::{ExpiryPoint, ScheduleTable, TableAction};
pub use signal::{SignalDb, SignalDbSnapshot, SignalId};
pub use world::{BasicEcuWorld, EcuWorld};

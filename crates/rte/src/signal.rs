//! Signal database.
//!
//! Runnables communicate through named signals — the model-based equivalent
//! of AUTOSAR inter-runnable variables and sender/receiver ports. Signals
//! are `f64` values with a last-written timestamp; booleans are encoded as
//! `0.0` / `1.0`. Controller state (integrators, filters) is also kept in
//! signals, which keeps runnable logic stateless and lets the experiment
//! tooling inspect everything, like ControlDesk instrumenting a Simulink
//! model.

use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Index into the signal table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    name: String,
    value: f64,
    updated_at: Instant,
}

/// A database of named scalar signals.
///
/// # Examples
///
/// ```
/// use easis_rte::signal::SignalDb;
/// use easis_sim::time::Instant;
///
/// let mut db = SignalDb::new();
/// let speed = db.declare("vehicle_speed", 0.0);
/// db.write(speed, 13.9, Instant::from_millis(10));
/// assert_eq!(db.read(speed), 13.9);
/// assert_eq!(db.id_of("vehicle_speed"), Some(speed));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SignalDb {
    slots: Vec<Slot>,
    by_name: BTreeMap<String, SignalId>,
}

impl SignalDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        SignalDb::default()
    }

    /// Declares a signal with an initial value. Declaring an existing name
    /// returns the existing id and leaves its value untouched.
    pub fn declare(&mut self, name: &str, initial: f64) -> SignalId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SignalId(self.slots.len() as u32);
        self.slots.push(Slot {
            name: name.to_string(),
            value: initial,
            updated_at: Instant::ZERO,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Restores every signal to the given value snapshot (index order) and
    /// clears the update timestamps, as if the values had been the declared
    /// initials — the state-restoration half of world pooling.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the declared signals.
    pub fn restore(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.slots.len(), "snapshot covers all signals");
        for (slot, &value) in self.slots.iter_mut().zip(values) {
            slot.value = value;
            slot.updated_at = Instant::ZERO;
        }
    }

    /// Looks up a signal id by name.
    pub fn id_of(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Current value.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn read(&self, id: SignalId) -> f64 {
        self.slots[id.index()].value
    }

    /// Current value interpreted as a boolean (`!= 0.0`).
    pub fn read_bool(&self, id: SignalId) -> bool {
        self.read(id) != 0.0
    }

    /// Writes a value, stamping the write time.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn write(&mut self, id: SignalId, value: f64, now: Instant) {
        let slot = &mut self.slots[id.index()];
        slot.value = value;
        slot.updated_at = now;
    }

    /// Writes a boolean as `1.0` / `0.0`.
    pub fn write_bool(&mut self, id: SignalId, value: bool, now: Instant) {
        self.write(id, if value { 1.0 } else { 0.0 }, now);
    }

    /// When the signal was last written ([`Instant::ZERO`] if never).
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn updated_at(&self, id: SignalId) -> Instant {
        self.slots[id.index()].updated_at
    }

    /// Name of a signal.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn name(&self, id: SignalId) -> &str {
        &self.slots[id.index()].name
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &str, f64)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s.name.as_str(), s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_read_write_round_trip() {
        let mut db = SignalDb::new();
        let a = db.declare("a", 1.5);
        assert_eq!(db.read(a), 1.5);
        db.write(a, 2.5, Instant::from_millis(3));
        assert_eq!(db.read(a), 2.5);
        assert_eq!(db.updated_at(a), Instant::from_millis(3));
        assert_eq!(db.name(a), "a");
    }

    #[test]
    fn redeclare_returns_same_id_and_keeps_value() {
        let mut db = SignalDb::new();
        let a = db.declare("a", 1.0);
        db.write(a, 9.0, Instant::from_millis(1));
        let a2 = db.declare("a", 555.0);
        assert_eq!(a, a2);
        assert_eq!(db.read(a), 9.0);
    }

    #[test]
    fn bool_encoding() {
        let mut db = SignalDb::new();
        let flag = db.declare("flag", 0.0);
        assert!(!db.read_bool(flag));
        db.write_bool(flag, true, Instant::ZERO);
        assert!(db.read_bool(flag));
        assert_eq!(db.read(flag), 1.0);
    }

    #[test]
    fn unknown_name_lookup_is_none() {
        let db = SignalDb::new();
        assert_eq!(db.id_of("nope"), None);
        assert!(db.is_empty());
    }

    #[test]
    fn iter_lists_all_signals() {
        let mut db = SignalDb::new();
        db.declare("x", 1.0);
        db.declare("y", 2.0);
        let all: Vec<(&str, f64)> = db.iter().map(|(_, n, v)| (n, v)).collect();
        assert_eq!(all, vec![("x", 1.0), ("y", 2.0)]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic]
    fn reading_undeclared_id_panics() {
        let db = SignalDb::new();
        let _ = db.read(SignalId(0));
    }
}

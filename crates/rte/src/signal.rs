//! Signal database.
//!
//! Runnables communicate through named signals — the model-based equivalent
//! of AUTOSAR inter-runnable variables and sender/receiver ports. Signals
//! are `f64` values with a last-written timestamp; booleans are encoded as
//! `0.0` / `1.0`. Controller state (integrators, filters) is also kept in
//! signals, which keeps runnable logic stateless and lets the experiment
//! tooling inspect everything, like ControlDesk instrumenting a Simulink
//! model.

use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Index into the signal table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    name: String,
    value: f64,
    updated_at: Instant,
}

/// A database of named scalar signals.
///
/// # Examples
///
/// ```
/// use easis_rte::signal::SignalDb;
/// use easis_sim::time::Instant;
///
/// let mut db = SignalDb::new();
/// let speed = db.declare("vehicle_speed", 0.0);
/// db.write(speed, 13.9, Instant::from_millis(10));
/// assert_eq!(db.read(speed), 13.9);
/// assert_eq!(db.id_of("vehicle_speed"), Some(speed));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SignalDb {
    slots: Vec<Slot>,
    by_name: BTreeMap<String, SignalId>,
    /// Last-write epoch per signal — delta-restore bookkeeping, not part
    /// of the observable database (see `easis_sim::snap`).
    stamps: Vec<u64>,
    epoch: u64,
    derived_from: u64,
}

impl SignalDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        SignalDb::default()
    }

    /// Declares a signal with an initial value. Declaring an existing name
    /// returns the existing id and leaves its value untouched.
    pub fn declare(&mut self, name: &str, initial: f64) -> SignalId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SignalId(self.slots.len() as u32);
        self.slots.push(Slot {
            name: name.to_string(),
            value: initial,
            updated_at: Instant::ZERO,
        });
        self.stamps.push(self.epoch);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Restores every signal to the given value snapshot (index order) and
    /// clears the update timestamps, as if the values had been the declared
    /// initials — the state-restoration half of world pooling.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the declared signals.
    pub fn restore(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.slots.len(), "snapshot covers all signals");
        for (slot, &value) in self.slots.iter_mut().zip(values) {
            slot.value = value;
            slot.updated_at = Instant::ZERO;
        }
        // Every signal is dirty relative to any earlier snapshot, and the
        // lineage is severed so a later restore takes the full path.
        self.stamps.clear();
        self.stamps.resize(self.slots.len(), self.epoch);
        self.derived_from = 0;
    }

    /// Looks up a signal id by name.
    pub fn id_of(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Current value.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn read(&self, id: SignalId) -> f64 {
        self.slots[id.index()].value
    }

    /// Current value interpreted as a boolean (`!= 0.0`).
    pub fn read_bool(&self, id: SignalId) -> bool {
        self.read(id) != 0.0
    }

    /// Writes a value, stamping the write time.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn write(&mut self, id: SignalId, value: f64, now: Instant) {
        let slot = &mut self.slots[id.index()];
        slot.value = value;
        slot.updated_at = now;
        self.stamps[id.index()] = self.epoch;
    }

    /// Writes a boolean as `1.0` / `0.0`.
    pub fn write_bool(&mut self, id: SignalId, value: bool, now: Instant) {
        self.write(id, if value { 1.0 } else { 0.0 }, now);
    }

    /// When the signal was last written ([`Instant::ZERO`] if never).
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn updated_at(&self, id: SignalId) -> Instant {
        self.slots[id.index()].updated_at
    }

    /// Name of a signal.
    ///
    /// # Panics
    ///
    /// Panics on an undeclared id.
    pub fn name(&self, id: SignalId) -> &str {
        &self.slots[id.index()].name
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &str, f64)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s.name.as_str(), s.value))
    }

    /// Captures every signal's `(value, updated_at)` pair into `snap`,
    /// retaining the snapshot's buffer capacity (allocation-free once
    /// warm). Names are declaration-time constants and stay out. Follows
    /// the `easis_sim::snap` protocol: the capture records the lineage so
    /// a later [`SignalDb::restore_from`] only copies the signals written
    /// since.
    pub fn snapshot_into(&mut self, snap: &mut SignalDbSnapshot) {
        snap.values.clear();
        snap.values
            .extend(self.slots.iter().map(|s| (s.value, s.updated_at)));
        snap.stamps.clone_from(&self.stamps);
        snap.epoch = self.epoch;
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures every signal's `(value, updated_at)` pair into `snap`
    /// without participating in the delta-restore lineage: the database's
    /// epoch and `derived_from` are untouched and the image carries
    /// `id == 0`, so a capture interleaved between a campaign checkpoint
    /// and its restore cannot degrade the restore to the full-copy path.
    pub fn image_into(&self, snap: &mut SignalDbSnapshot) {
        snap.values.clear();
        snap.values
            .extend(self.slots.iter().map(|s| (s.value, s.updated_at)));
        snap.stamps.clone_from(&self.stamps);
        snap.epoch = self.epoch;
        snap.id = 0;
    }

    /// Shifts the `updated_at` stamp of the given slots forward by `by`,
    /// stamping each — the closed-form application of a
    /// [`SignalDbSnapshot::derive_shift`] result, `k` hyperperiods folded
    /// into one `by = h * k` shift.
    pub fn shift_updated_at(&mut self, slots: &[u32], by: easis_sim::time::Duration) {
        for &i in slots {
            let slot = &mut self.slots[i as usize];
            slot.updated_at += by;
            self.stamps[i as usize] = self.epoch;
        }
    }

    /// Restores signal values captured by [`SignalDb::snapshot_into`],
    /// copying only the signals written since the capture when the
    /// lineage allows it (O(dirty)).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a database with a different
    /// signal table (the declared set is a build-time constant).
    pub fn restore_from(&mut self, snap: &SignalDbSnapshot) -> RestoreStats {
        assert_eq!(
            snap.values.len(),
            self.slots.len(),
            "snapshot covers all signals"
        );
        let mut stats = RestoreStats::default();
        let full = self.derived_from != snap.id;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let copy = full || self.stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                let (value, updated_at) = snap.values[i];
                slot.value = value;
                slot.updated_at = updated_at;
                self.stamps[i] = snap.stamps[i];
            }
        }
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }
}

/// A deterministic capture of signal values — see
/// [`SignalDb::snapshot_into`]. Plain data (one `(value, updated_at)`
/// pair per declared signal), so node-level snapshots embedding it can be
/// shared across campaign workers.
#[derive(Debug, Clone, Default)]
pub struct SignalDbSnapshot {
    values: Vec<(f64, Instant)>,
    stamps: Vec<u64>,
    epoch: u64,
    id: u64,
}

impl SignalDbSnapshot {
    /// Derives the per-hyperperiod signal delta between two images taken
    /// exactly `h` apart: every value must be bit-identical (steady-state
    /// plants settle to exact fixed points; comparison is on the raw f64
    /// bits, so `NaN` and `-0.0` round-trip too) and every `updated_at`
    /// stamp must be either untouched or shifted by exactly `h`. Writes
    /// the shifted slot indices to `out` and returns `true`, or returns
    /// `false` when any value moved or a stamp shifted non-uniformly.
    pub fn derive_shift(
        a: &SignalDbSnapshot,
        b: &SignalDbSnapshot,
        h: easis_sim::time::Duration,
        out: &mut Vec<u32>,
    ) -> bool {
        if a.values.len() != b.values.len() {
            return false;
        }
        out.clear();
        for (i, (&(va, ta), &(vb, tb))) in a.values.iter().zip(&b.values).enumerate() {
            if va.to_bits() != vb.to_bits() {
                return false;
            }
            if tb == ta + h {
                out.push(i as u32);
            } else if tb != ta {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_read_write_round_trip() {
        let mut db = SignalDb::new();
        let a = db.declare("a", 1.5);
        assert_eq!(db.read(a), 1.5);
        db.write(a, 2.5, Instant::from_millis(3));
        assert_eq!(db.read(a), 2.5);
        assert_eq!(db.updated_at(a), Instant::from_millis(3));
        assert_eq!(db.name(a), "a");
    }

    #[test]
    fn redeclare_returns_same_id_and_keeps_value() {
        let mut db = SignalDb::new();
        let a = db.declare("a", 1.0);
        db.write(a, 9.0, Instant::from_millis(1));
        let a2 = db.declare("a", 555.0);
        assert_eq!(a, a2);
        assert_eq!(db.read(a), 9.0);
    }

    #[test]
    fn bool_encoding() {
        let mut db = SignalDb::new();
        let flag = db.declare("flag", 0.0);
        assert!(!db.read_bool(flag));
        db.write_bool(flag, true, Instant::ZERO);
        assert!(db.read_bool(flag));
        assert_eq!(db.read(flag), 1.0);
    }

    #[test]
    fn unknown_name_lookup_is_none() {
        let db = SignalDb::new();
        assert_eq!(db.id_of("nope"), None);
        assert!(db.is_empty());
    }

    #[test]
    fn iter_lists_all_signals() {
        let mut db = SignalDb::new();
        db.declare("x", 1.0);
        db.declare("y", 2.0);
        let all: Vec<(&str, f64)> = db.iter().map(|(_, n, v)| (n, v)).collect();
        assert_eq!(all, vec![("x", 1.0), ("y", 2.0)]);
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic]
    fn reading_undeclared_id_panics() {
        let db = SignalDb::new();
        let _ = db.read(SignalId(0));
    }

    #[test]
    fn snapshot_delta_restore_copies_only_written_signals() {
        let mut db = SignalDb::new();
        let a = db.declare("a", 1.0);
        let b = db.declare("b", 2.0);
        let c = db.declare("c", 3.0);
        db.write(a, 10.0, Instant::from_millis(1));
        let mut snap = SignalDbSnapshot::default();
        db.snapshot_into(&mut snap);

        db.write(b, 99.0, Instant::from_millis(5));
        let stats = db.restore_from(&snap);
        assert_eq!(stats.regions_total, 3);
        assert_eq!(stats.regions_copied, 1, "only `b` was written");
        assert_eq!(db.read(a), 10.0);
        assert_eq!(db.read(b), 2.0);
        assert_eq!(db.read(c), 3.0);
        assert_eq!(db.updated_at(b), Instant::ZERO);

        // The pooled-world restore severs the lineage: the next restore
        // must take the full path and still land on the snapshot exactly.
        db.restore(&[0.0, 0.0, 0.0]);
        let stats = db.restore_from(&snap);
        assert_eq!(stats.regions_copied, 3);
        assert_eq!(db.read(a), 10.0);
        assert_eq!(db.updated_at(a), Instant::from_millis(1));
    }

    #[test]
    fn snapshot_capture_is_capacity_retained() {
        let mut db = SignalDb::new();
        db.declare("x", 1.0);
        db.declare("y", 2.0);
        let mut snap = SignalDbSnapshot::default();
        db.snapshot_into(&mut snap);
        let values_ptr = snap.values.as_ptr();
        let stamps_ptr = snap.stamps.as_ptr();
        db.write(SignalId(0), 5.0, Instant::from_millis(2));
        db.snapshot_into(&mut snap);
        assert_eq!(values_ptr, snap.values.as_ptr());
        assert_eq!(stamps_ptr, snap.stamps.as_ptr());
        assert_eq!(snap.values[0].0, 5.0);
    }
}

//! The ECU world interface.
//!
//! The OSEK kernel is generic over a world type `W`; the runnable layer
//! narrows it to [`EcuWorld`]: anything that carries a signal database, the
//! manipulation controls, and a heartbeat path into the dependability
//! services. Integration crates (the HIL validator) implement this for
//! their composite world structs.

use crate::control::RunnableControls;
use crate::runnable::RunnableId;
use crate::signal::SignalDb;
use easis_sim::time::Instant;

/// World requirements of the runnable layer.
pub trait EcuWorld: Send {
    /// The signal database.
    fn signals(&self) -> &SignalDb;
    /// Mutable signal database.
    fn signals_mut(&mut self) -> &mut SignalDb;
    /// The runtime manipulation controls.
    fn controls(&self) -> &RunnableControls;
    /// Aliveness-indication path: glue code calls this once (or more, under
    /// injection) per runnable execution.
    fn indicate_heartbeat(&mut self, runnable: RunnableId, now: Instant);
}

/// A minimal self-contained world: signals + controls + a heartbeat log.
/// Used by unit tests, examples, and as a building block for bigger worlds.
#[derive(Debug, Default)]
pub struct BasicEcuWorld {
    /// Signal database.
    pub signals: SignalDb,
    /// Manipulation controls.
    pub controls: RunnableControls,
    /// Every heartbeat received, in order.
    pub heartbeats: Vec<(RunnableId, Instant)>,
}

impl BasicEcuWorld {
    /// Creates an empty world.
    pub fn new() -> Self {
        BasicEcuWorld::default()
    }
}

impl EcuWorld for BasicEcuWorld {
    fn signals(&self) -> &SignalDb {
        &self.signals
    }
    fn signals_mut(&mut self) -> &mut SignalDb {
        &mut self.signals
    }
    fn controls(&self) -> &RunnableControls {
        &self.controls
    }
    fn indicate_heartbeat(&mut self, runnable: RunnableId, now: Instant) {
        self.heartbeats.push((runnable, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_world_logs_heartbeats() {
        let mut w = BasicEcuWorld::new();
        w.indicate_heartbeat(RunnableId(2), Instant::from_millis(1));
        w.indicate_heartbeat(RunnableId(3), Instant::from_millis(2));
        assert_eq!(w.heartbeats.len(), 2);
        assert_eq!(w.heartbeats[0].0, RunnableId(2));
    }

    #[test]
    fn basic_world_exposes_signals_and_controls() {
        let mut w = BasicEcuWorld::new();
        let s = w.signals_mut().declare("x", 1.0);
        assert_eq!(w.signals().read(s), 1.0);
        assert!(w.controls().is_nominal());
    }
}

//! Task assembly: runnables → OSEK task bodies with heartbeat glue code.
//!
//! The paper models each application as runnables "triggered as
//! function-call subsystems by the Stateflow chart …, in which the
//! execution sequence of runnables is implemented", with additional
//! subsystems simulating "the glue code … which report the execution of the
//! runnables". [`SequencedTask`] is that chart: it owns the task's
//! runnables, asks a [`Sequencer`] for the activation's execution order,
//! and emits per runnable a compute segment followed by an effect that
//! (a) fires the aliveness-indication glue and (b) runs the runnable
//! logic. All manipulation controls are honoured here, so error injection
//! needs no special code paths in the applications.

use crate::runnable::{RunnableDef, RunnableId};
use crate::world::EcuWorld;
use easis_osek::plan::{EffectCtx, Plan, TaskBody};
use easis_sim::time::{Duration, Instant};

/// Trace source tag used by the runnable layer.
pub const TRACE_SOURCE: &str = "rte";

/// Chooses the runnable execution order for one task activation.
///
/// `branch_override` (from the task's control block) must be honoured by
/// implementations that model branching charts.
pub trait Sequencer<W>: Send {
    /// Returns indices into the task's runnable list, in execution order.
    fn sequence(&mut self, now: Instant, world: &W, branch_override: Option<usize>) -> Vec<usize>;

    /// Appends the activation's execution order to `out` (cleared by the
    /// caller). The default delegates to [`Sequencer::sequence`];
    /// implementations on the campaign hot path override it to fill the
    /// caller's reused buffer without allocating per activation.
    fn sequence_into(
        &mut self,
        now: Instant,
        world: &W,
        branch_override: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        out.extend(self.sequence(now, world, branch_override));
    }

    /// Number of distinct branches (1 for fixed sequences).
    fn branch_count(&self) -> usize {
        1
    }
}

/// Executes all runnables in declaration order — the common case of a
/// periodic task chart.
#[derive(Debug, Clone, Default)]
pub struct FixedSequencer {
    len: usize,
}

impl FixedSequencer {
    /// Sequencer over `len` runnables.
    pub fn new(len: usize) -> Self {
        FixedSequencer { len }
    }
}

impl<W> Sequencer<W> for FixedSequencer {
    fn sequence(&mut self, _now: Instant, _world: &W, _branch: Option<usize>) -> Vec<usize> {
        (0..self.len).collect()
    }

    fn sequence_into(
        &mut self,
        _now: Instant,
        _world: &W,
        _branch: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        out.extend(0..self.len);
    }
}

/// A branching chart: several alternative sequences, selected by a function
/// of the world (e.g. a mode signal). The task control's `branch_override`
/// forces a branch — including deliberately invalid ones, the paper's
/// "building invalid execution branches" injection.
pub struct BranchingSequencer<W> {
    branches: Vec<Vec<usize>>,
    select: Box<dyn Fn(&W) -> usize + Send>,
}

impl<W> std::fmt::Debug for BranchingSequencer<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchingSequencer")
            .field("branches", &self.branches)
            .finish()
    }
}

impl<W> BranchingSequencer<W> {
    /// Creates a sequencer over the given branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<Vec<usize>>, select: impl Fn(&W) -> usize + Send + 'static) -> Self {
        assert!(!branches.is_empty(), "need at least one branch");
        BranchingSequencer {
            branches,
            select: Box::new(select),
        }
    }
}

impl<W: Send> Sequencer<W> for BranchingSequencer<W> {
    fn sequence(&mut self, _now: Instant, world: &W, branch: Option<usize>) -> Vec<usize> {
        let idx = branch.unwrap_or_else(|| (self.select)(world));
        let idx = idx.min(self.branches.len() - 1);
        self.branches[idx].clone()
    }

    fn sequence_into(
        &mut self,
        _now: Instant,
        world: &W,
        branch: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        let idx = branch.unwrap_or_else(|| (self.select)(world));
        let idx = idx.min(self.branches.len() - 1);
        out.extend_from_slice(&self.branches[idx]);
    }

    fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

/// An OSEK task body executing a sequence of runnables with heartbeat glue.
pub struct SequencedTask<W> {
    task_name: String,
    runnables: Vec<RunnableDef<W>>,
    /// Per-runnable trace labels, pre-shared so planning an activation
    /// clones an `Arc` instead of allocating a `String` per runnable (the
    /// campaign hot path plans hundreds of activations per trial).
    names: Vec<std::sync::Arc<str>>,
    sequencer: Box<dyn Sequencer<W>>,
    /// Reused execution-order buffer ([`Sequencer::sequence_into`]).
    order_scratch: Vec<usize>,
}

impl<W> std::fmt::Debug for SequencedTask<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequencedTask")
            .field("task_name", &self.task_name)
            .field("runnables", &self.runnables.len())
            .finish()
    }
}

impl<W: EcuWorld + 'static> SequencedTask<W> {
    /// Creates a task body running `runnables` in declaration order.
    pub fn fixed(task_name: impl Into<String>, runnables: Vec<RunnableDef<W>>) -> Self {
        let len = runnables.len();
        SequencedTask {
            task_name: task_name.into(),
            names: runnables.iter().map(|r| r.spec().name().into()).collect(),
            runnables,
            sequencer: Box::new(FixedSequencer::new(len)),
            order_scratch: Vec::new(),
        }
    }

    /// Creates a task body with a custom sequencer.
    pub fn with_sequencer(
        task_name: impl Into<String>,
        runnables: Vec<RunnableDef<W>>,
        sequencer: impl Sequencer<W> + 'static,
    ) -> Self {
        SequencedTask {
            task_name: task_name.into(),
            names: runnables.iter().map(|r| r.spec().name().into()).collect(),
            runnables,
            sequencer: Box::new(sequencer),
            order_scratch: Vec::new(),
        }
    }

    /// The task name (key of its control block).
    pub fn task_name(&self) -> &str {
        &self.task_name
    }

    /// Ids of the runnables hosted by this task, in declaration order.
    pub fn runnable_ids(&self) -> Vec<RunnableId> {
        self.runnables.iter().map(|r| r.spec().id()).collect()
    }

    /// Nominal execution cost of the declaration-order sequence.
    pub fn nominal_cost(&self) -> Duration {
        self.runnables
            .iter()
            .fold(Duration::ZERO, |acc, r| acc + r.spec().nominal_cost())
    }
}

impl<W: EcuWorld + 'static> TaskBody<W> for SequencedTask<W> {
    /// Plans `Compute(cost) + EffectRef(runnable index)` pairs into the
    /// kernel's arena buffer — no boxed closure, no step-buffer allocation
    /// once the slot has grown to the sequence length. The effect half of
    /// each pair dispatches back into [`SequencedTask::run_effect`].
    fn plan_into(&mut self, now: Instant, world: &W, out: &mut Plan<W>) {
        let branch = world.controls().task(&self.task_name).branch_override;
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        self.sequencer.sequence_into(now, world, branch, &mut order);
        for &idx in &order {
            let Some(def) = self.runnables.get(idx) else {
                continue; // tolerate stale branch tables
            };
            let spec = def.spec();
            let ctl = world.controls().runnable(spec.id());
            if ctl.skip {
                continue;
            }
            let iters = ctl.effective_iterations(spec.default_iterations());
            let scale = ctl.exec_scale_ppm as f64 / 1_000_000.0
                * world.controls().global_exec_scale_ppm() as f64
                / 1_000_000.0;
            let cost = spec.cost_with_iterations(iters).mul_f64(scale);
            out.push_compute(cost);
            out.push_effect_ref(idx as u32);
        }
        self.order_scratch = order;
    }

    /// Executes runnable `token` (the declaration index planned by
    /// [`SequencedTask::plan_into`]) with its heartbeat glue.
    fn run_effect(&mut self, token: u32, world: &mut W, ctx: &mut EffectCtx<'_, W>) {
        let def = &self.runnables[token as usize];
        let id = def.spec().id();
        // Arc refcount bump, not an allocation: the logic must outlive the
        // `&mut self` borrow because it receives the world by `&mut`.
        let logic = def.logic();
        // Glue code: aliveness indication (controls re-read at execution
        // time so mid-run injection takes effect).
        let ctl = world.controls().runnable(id);
        if !ctl.suppress_heartbeat {
            world.indicate_heartbeat(id, ctx.now());
        }
        for _ in 0..ctl.extra_heartbeats {
            world.indicate_heartbeat(id, ctx.now());
        }
        logic(world, ctx);
        // `&*..` keeps the label borrowed: the recorder only converts to an
        // owned `String` when tracing is enabled.
        ctx.trace(TRACE_SOURCE, "runnable", &*self.names[token as usize]);
    }

    fn name(&self) -> &str {
        &self.task_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runnable::{RunnableRegistry, RunnableSpec};
    use crate::world::BasicEcuWorld;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::task::{Priority, TaskConfig};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }
    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    /// Builds a 3-runnable SafeSpeed-like task on a fresh OS.
    fn build(
        sequencer: Option<BranchingSequencer<BasicEcuWorld>>,
    ) -> (Os<BasicEcuWorld>, BasicEcuWorld, Vec<RunnableId>) {
        let mut reg = RunnableRegistry::new();
        let s0 = reg.register("GetSensorValue", us(50));
        let s1 = reg.register_with_loop("SAFE_CC_process", us(100), us(10), 5);
        let s2 = reg.register("Speed_process", us(50));
        let mut world = BasicEcuWorld::new();
        let out = world.signals_mut().declare("out", 0.0);
        let defs = vec![
            RunnableDef::no_op(s0.clone()),
            RunnableDef::new(s1.clone(), move |w: &mut BasicEcuWorld, ctx| {
                let now = ctx.now();
                let v = w.signals().read(out);
                w.signals_mut().write(out, v + 1.0, now);
            }),
            RunnableDef::no_op(s2.clone()),
        ];
        let body = match sequencer {
            None => SequencedTask::fixed("SafeSpeedTask", defs),
            Some(seq) => SequencedTask::with_sequencer("SafeSpeedTask", defs, seq),
        };
        let mut os = Os::new();
        let t = os.add_task(TaskConfig::new("SafeSpeedTask", Priority(3)), body);
        let a = os.add_alarm("cyc", AlarmAction::ActivateTask(t));
        os.start(&mut world);
        os.set_rel_alarm(a, ms(10), Some(ms(10))).unwrap();
        (os, world, vec![s0.id(), s1.id(), s2.id()])
    }

    #[test]
    fn nominal_run_heartbeats_in_sequence() {
        let (mut os, mut world, ids) = build(None);
        os.run_until(Instant::from_millis(35), &mut world);
        // 3 periods × 3 runnables.
        assert_eq!(world.heartbeats.len(), 9);
        let first: Vec<RunnableId> = world.heartbeats.iter().take(3).map(|&(r, _)| r).collect();
        assert_eq!(first, ids);
        // Logic ran: out incremented once per period.
        let out = world.signals.id_of("out").unwrap();
        assert_eq!(world.signals.read(out), 3.0);
    }

    #[test]
    fn heartbeat_times_reflect_compute_costs() {
        let (mut os, mut world, _) = build(None);
        os.run_until(Instant::from_millis(15), &mut world);
        // Period starts at 10ms: R0 at +50us, R1 at +50+150us, R2 at +250us.
        let times: Vec<u64> = world.heartbeats.iter().map(|&(_, t)| t.as_micros()).collect();
        assert_eq!(times, vec![10_050, 10_200, 10_250]);
    }

    #[test]
    fn skip_control_removes_runnable_from_sequence() {
        let (mut os, mut world, ids) = build(None);
        world.controls.runnable_mut(ids[1]).skip = true;
        os.run_until(Instant::from_millis(15), &mut world);
        let seen: Vec<RunnableId> = world.heartbeats.iter().map(|&(r, _)| r).collect();
        assert_eq!(seen, vec![ids[0], ids[2]]);
    }

    #[test]
    fn suppress_heartbeat_keeps_logic_but_drops_glue() {
        let (mut os, mut world, ids) = build(None);
        world.controls.runnable_mut(ids[1]).suppress_heartbeat = true;
        os.run_until(Instant::from_millis(15), &mut world);
        let seen: Vec<RunnableId> = world.heartbeats.iter().map(|&(r, _)| r).collect();
        assert_eq!(seen, vec![ids[0], ids[2]]);
        // Logic still executed.
        let out = world.signals.id_of("out").unwrap();
        assert_eq!(world.signals.read(out), 1.0);
    }

    #[test]
    fn extra_heartbeats_duplicate_indications() {
        let (mut os, mut world, ids) = build(None);
        world.controls.runnable_mut(ids[0]).extra_heartbeats = 2;
        os.run_until(Instant::from_millis(15), &mut world);
        let count0 = world.heartbeats.iter().filter(|&&(r, _)| r == ids[0]).count();
        assert_eq!(count0, 3);
    }

    #[test]
    fn exec_scale_stretches_compute() {
        let (mut os, mut world, ids) = build(None);
        world.controls.runnable_mut(ids[0]).exec_scale_ppm = 10_000_000; // 10x
        os.run_until(Instant::from_millis(15), &mut world);
        let times: Vec<u64> = world.heartbeats.iter().map(|&(_, t)| t.as_micros()).collect();
        assert_eq!(times[0], 10_500); // 50us → 500us
    }

    #[test]
    fn iteration_override_changes_loop_cost() {
        let (mut os, mut world, ids) = build(None);
        world.controls.runnable_mut(ids[1]).iterations_override = Some(100);
        os.run_until(Instant::from_millis(15), &mut world);
        // R1 cost: 100 + 100*10 = 1100us, so R2 heartbeat at 10_050+1100+50.
        let times: Vec<u64> = world.heartbeats.iter().map(|&(_, t)| t.as_micros()).collect();
        assert_eq!(times[2], 11_200);
    }

    #[test]
    fn branching_sequencer_selects_by_world_and_override() {
        let seq = BranchingSequencer::new(
            vec![vec![0, 1, 2], vec![0, 2]],
            |w: &BasicEcuWorld| {
                let mode = w.signals.id_of("mode").map(|m| w.signals.read(m)).unwrap_or(0.0);
                mode as usize
            },
        );
        let (mut os, mut world, ids) = build(Some(seq));
        world.signals.declare("mode", 0.0);
        os.run_until(Instant::from_millis(15), &mut world);
        assert_eq!(world.heartbeats.len(), 3);
        // Force the degenerate branch 1 (skips SAFE_CC_process).
        world.heartbeats.clear();
        world.controls.task_mut("SafeSpeedTask").branch_override = Some(1);
        os.run_until(Instant::from_millis(25), &mut world);
        let seen: Vec<RunnableId> = world.heartbeats.iter().map(|&(r, _)| r).collect();
        assert_eq!(seen, vec![ids[0], ids[2]]);
    }

    #[test]
    fn branch_override_is_clamped_to_valid_range() {
        let seq = BranchingSequencer::new(vec![vec![0, 1, 2], vec![0, 2]], |_: &BasicEcuWorld| 0);
        let (mut os, mut world, _) = build(Some(seq));
        world.controls.task_mut("SafeSpeedTask").branch_override = Some(99);
        os.run_until(Instant::from_millis(15), &mut world);
        assert_eq!(world.heartbeats.len(), 2); // clamped to branch 1
    }

    #[test]
    fn metadata_accessors() {
        let mut reg = RunnableRegistry::new();
        let s0 = reg.register("a", us(10));
        let s1 = reg.register("b", us(20));
        let body: SequencedTask<BasicEcuWorld> = SequencedTask::fixed(
            "T",
            vec![RunnableDef::no_op(s0), RunnableDef::no_op(s1)],
        );
        assert_eq!(body.task_name(), "T");
        assert_eq!(body.runnable_ids(), vec![RunnableId(0), RunnableId(1)]);
        assert_eq!(body.nominal_cost(), us(30));
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_branch_table_rejected() {
        let _ = BranchingSequencer::<BasicEcuWorld>::new(vec![], |_| 0);
    }

    #[test]
    fn spec_builder_is_consistent() {
        let spec = RunnableSpec::new(RunnableId(7), "x", us(1)).with_loop(us(2), 3);
        assert_eq!(spec.id(), RunnableId(7));
        assert_eq!(spec.nominal_cost(), us(7));
    }
}

//! Flight-recorder observability layer for the EASIS watchdog stack.
//!
//! The paper's Software Watchdog is itself an observability service — it
//! derives task/application/ECU state from per-runnable supervision
//! reports — but a reproduction that only reports *final* campaign
//! verdicts is a black box: when a trial misses a fault there is no way
//! to see which heartbeat, cycle check, or TSI transition went wrong.
//! This crate provides the missing introspection:
//!
//! - [`event::ObsEvent`] — the closed, `Copy`, allocation-free vocabulary
//!   of things the stack can report (heartbeats, cycle-check boundaries,
//!   detected faults, error-vector increments, state transitions, FMF
//!   reactions, injection window edges);
//! - [`recorder::FlightRecorder`] — a fixed-capacity ring buffer of
//!   [`event::TimedEvent`]s that keeps the most recent window of activity
//!   without ever allocating on the record path;
//! - [`metrics::MetricsRegistry`] — monotonic counters plus per-site
//!   latency histograms sharing one percentile implementation
//!   ([`metrics::LatencySummary`]) with the campaign reports in
//!   `easis-injection`;
//! - [`sink::ObsSink`] — the cloneable handle the instrumented services
//!   record through. Disabled by default (every call a no-op), enabled
//!   with a capacity; never charges the simulated cost model, so golden
//!   campaign output is byte-identical whether or not a sink is attached.
//!
//! # Example
//!
//! ```
//! use easis_obs::{ObsEvent, ObsSink};
//! use easis_rte::runnable::RunnableId;
//! use easis_sim::time::Instant;
//!
//! let sink = ObsSink::enabled(1024);
//! sink.record(
//!     Instant::from_millis(5),
//!     ObsEvent::HeartbeatRecorded { runnable: RunnableId(0) },
//! );
//! assert_eq!(sink.counter("heartbeat_recorded"), 1);
//! let jsonl = sink.to_jsonl();
//! assert!(jsonl.contains("HeartbeatRecorded"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{FaultClass, ObsEvent, StateScope, TimedEvent};
pub use metrics::{LatencySummary, MetricsRegistry, MetricsSnapshot};
pub use recorder::FlightRecorder;
pub use sink::ObsSink;

//! The [`ObsSink`] handle the instrumented services record through.
//!
//! A sink is either *disabled* — the default, a `None` inside — in which
//! case every call is a no-op that touches no shared state, or *enabled*
//! with a shared flight recorder + metrics registry behind a mutex. The
//! shared core is behind `Arc<Mutex<..>>` (not `Rc`) because the campaign
//! executor moves watchdog instances across scoped worker threads.
//!
//! Recording never charges the simulation [`CostMeter`]: observability is
//! a host-side concern and must not perturb the simulated cost model, or
//! the golden campaign report would change the moment a sink is attached.
//!
//! [`CostMeter`]: easis_sim::cpu::CostMeter

use crate::event::{ObsEvent, TimedEvent};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::recorder::FlightRecorder;
use easis_sim::time::{Duration, Instant};
use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct ObsCore {
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
}

#[derive(Debug)]
struct ObsShared {
    /// Whether recording is currently on. The hot-path check in
    /// [`ObsSink::record`] & co is a single relaxed load of this flag —
    /// the mutex below is only ever taken when recording actually
    /// happens, so a paused (or never-resumed) sink costs one atomic
    /// load per call and zero lock traffic.
    active: AtomicBool,
    core: Mutex<ObsCore>,
}

/// Cheap, cloneable handle to a shared flight recorder + metrics registry.
///
/// Cloning a sink shares the underlying recorder; a disabled sink clones
/// to another disabled sink. All methods are no-ops (or return empty data)
/// when disabled.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    shared: Option<Arc<ObsShared>>,
}

impl ObsSink {
    /// A disabled sink: every call is a no-op.
    pub fn disabled() -> Self {
        ObsSink { shared: None }
    }

    /// An enabled sink with a flight recorder of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        ObsSink {
            shared: Some(Arc::new(ObsShared {
                active: AtomicBool::new(true),
                core: Mutex::new(ObsCore {
                    recorder: FlightRecorder::new(capacity),
                    metrics: MetricsRegistry::new(),
                }),
            })),
        }
    }

    /// `true` when recording actually happens — the sink has a recorder
    /// *and* is not paused. A lock-free relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recording()
    }

    /// The lock-free hot-path gate: `Some` core iff the sink should
    /// record right now.
    #[inline]
    fn active_shared(&self) -> Option<&ObsShared> {
        let shared = self.shared.as_deref()?;
        shared.active.load(Ordering::Relaxed).then_some(shared)
    }

    #[inline]
    fn recording(&self) -> bool {
        self.active_shared().is_some()
    }

    /// Pauses recording in every clone of this sink: subsequent
    /// `record`/`count`/`observe_latency` calls return after one relaxed
    /// atomic load, without taking the lock. Retained events and metrics
    /// stay readable. A no-op on a disabled sink.
    pub fn pause(&self) {
        if let Some(shared) = &self.shared {
            shared.active.store(false, Ordering::Relaxed);
        }
    }

    /// Resumes recording after [`ObsSink::pause`]. A no-op on a disabled
    /// sink.
    pub fn resume(&self) {
        if let Some(shared) = &self.shared {
            shared.active.store(true, Ordering::Relaxed);
        }
    }

    /// Records an event at `at` and bumps the per-tag event counter.
    ///
    /// One lock acquisition covers both; a disabled or paused sink
    /// returns after a lock-free check without touching the core.
    #[inline]
    pub fn record(&self, at: Instant, event: ObsEvent) {
        if let Some(shared) = self.active_shared() {
            let mut core = shared.core.lock().expect("obs sink poisoned");
            core.metrics.count(event.tag(), 1);
            core.recorder.record(at, event);
        }
    }

    /// Adds `n` to a named counter (no event recorded).
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(shared) = self.active_shared() {
            let mut core = shared.core.lock().expect("obs sink poisoned");
            core.metrics.count(name, n);
        }
    }

    /// Records a latency observation at an instrumentation site.
    #[inline]
    pub fn observe_latency(&self, site: &'static str, latency: Duration) {
        if let Some(shared) = self.active_shared() {
            let mut core = shared.core.lock().expect("obs sink poisoned");
            core.metrics.observe(site, latency);
        }
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<TimedEvent> {
        match &self.shared {
            Some(shared) => shared.core.lock().expect("obs sink poisoned").recorder.events(),
            None => Vec::new(),
        }
    }

    /// Events overwritten because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        match &self.shared {
            Some(shared) => shared.core.lock().expect("obs sink poisoned").recorder.dropped(),
            None => 0,
        }
    }

    /// Current value of a counter (0 when disabled or never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.shared {
            Some(shared) => shared.core.lock().expect("obs sink poisoned").metrics.counter(name),
            None => 0,
        }
    }

    /// Snapshot of all counters and latency sites (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.shared {
            Some(shared) => shared.core.lock().expect("obs sink poisoned").metrics.snapshot(),
            None => MetricsSnapshot {
                counters: Vec::new(),
                sites: Vec::new(),
            },
        }
    }

    /// The retained trace as JSON Lines, one event per line, oldest first.
    ///
    /// Each line carries the event's stable snake_case `tag` next to the
    /// structured payload, so downstream tooling can filter lines without
    /// parsing the variant encoding.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            let mut value = Serialize::serialize(&event);
            value.map_insert("tag", Value::Str(event.event.tag().to_string()));
            let line = serde_json::to_string(&value).expect("event serialisation is infallible");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

// A sink is deliberately invisible to serde: watchdog state containers
// derive Serialize/Deserialize and the vendored derive has no field-skip
// support, so the sink serialises to null and deserialises disabled —
// persisted watchdog state never carries a live recorder.
impl Serialize for ObsSink {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for ObsSink {
    fn deserialize(_value: &Value) -> Result<Self, serde::Error> {
        Ok(ObsSink::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_rte::runnable::RunnableId;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }
    fn hb(n: u32) -> ObsEvent {
        ObsEvent::HeartbeatRecorded { runnable: RunnableId(n) }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = ObsSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(t(1), hb(0));
        sink.count("x", 5);
        sink.observe_latency("site", Duration::from_micros(3));
        assert!(sink.events().is_empty());
        assert_eq!(sink.counter("x"), 0);
        assert_eq!(sink.dropped(), 0);
        let snap = sink.metrics_snapshot();
        assert!(snap.counters.is_empty() && snap.sites.is_empty());
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!ObsSink::default().is_enabled());
    }

    #[test]
    fn pause_stops_recording_and_resume_restarts_it() {
        let sink = ObsSink::enabled(8);
        sink.record(t(1), hb(0));
        sink.pause();
        assert!(!sink.is_enabled());
        sink.record(t(2), hb(1));
        sink.count("x", 3);
        sink.observe_latency("site", Duration::from_micros(5));
        // Retained data stays readable while paused.
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.counter("x"), 0);
        sink.resume();
        assert!(sink.is_enabled());
        sink.record(t(3), hb(2));
        assert_eq!(sink.events().len(), 2);
    }

    #[test]
    fn pause_is_shared_across_clones_and_inert_on_disabled() {
        let sink = ObsSink::enabled(8);
        let clone = sink.clone();
        clone.pause();
        assert!(!sink.is_enabled());
        sink.resume();
        assert!(clone.is_enabled());
        let disabled = ObsSink::disabled();
        disabled.pause();
        disabled.resume();
        assert!(!disabled.is_enabled());
    }

    #[test]
    fn recording_counts_by_tag() {
        let sink = ObsSink::enabled(16);
        sink.record(t(1), hb(0));
        sink.record(t(2), hb(1));
        sink.record(t(3), ObsEvent::CycleCheckStart { cycle: 1 });
        assert_eq!(sink.counter("heartbeat_recorded"), 2);
        assert_eq!(sink.counter("cycle_check_start"), 1);
        assert_eq!(sink.events().len(), 3);
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = ObsSink::enabled(8);
        let clone = sink.clone();
        clone.record(t(5), hb(9));
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].event, hb(9));
    }

    #[test]
    fn jsonl_is_one_event_per_line_oldest_first() {
        let sink = ObsSink::enabled(8);
        sink.record(t(1), hb(0));
        sink.record(t(2), ObsEvent::CycleCheckEnd { cycle: 1, faults: 0 });
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"tag\":\"heartbeat_recorded\""), "{}", lines[0]);
        assert!(lines[1].contains("\"tag\":\"cycle_check_end\""), "{}", lines[1]);
        // Each line parses back to the original event.
        let back: TimedEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back.event, hb(0));
    }

    #[test]
    fn serde_round_trip_comes_back_disabled() {
        let sink = ObsSink::enabled(4);
        sink.record(t(1), hb(0));
        let value = Serialize::serialize(&sink);
        let back = <ObsSink as Deserialize>::deserialize(&value).unwrap();
        assert!(!back.is_enabled());
    }
}

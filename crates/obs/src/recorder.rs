//! The flight recorder: a fixed-capacity ring buffer of timed events.
//!
//! The buffer is allocated once at construction; recording into a full
//! buffer overwrites the oldest entry instead of growing, so the hot path
//! never allocates and a long campaign trial keeps the *most recent*
//! window of activity — exactly what post-mortem triage of a missed
//! detection needs.

use crate::event::{ObsEvent, TimedEvent};
use easis_sim::time::Instant;

/// Fixed-capacity ring buffer of [`TimedEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TimedEvent>,
    capacity: usize,
    /// Index of the oldest entry once the buffer wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one event at `at`. Overwrites the oldest entry when full.
    pub fn record(&mut self, at: Instant, event: ObsEvent) {
        let entry = TimedEvent {
            seq: self.next_seq,
            at,
            event,
        };
        self.next_seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_rte::runnable::RunnableId;

    fn hb(n: u32) -> ObsEvent {
        ObsEvent::HeartbeatRecorded { runnable: RunnableId(n) }
    }
    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..3 {
            rec.record(t(i), hb(i as u32));
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 0);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(events[0].event, hb(0));
    }

    #[test]
    fn wraparound_keeps_the_newest_window() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..7u64 {
            rec.record(t(i), hb(i as u32));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.recorded(), 7);
        let events = rec.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest-first after wrap");
    }

    #[test]
    fn sequence_numbers_survive_overwrites() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(t(i), ObsEvent::CycleCheckStart { cycle: i });
        }
        let events = rec.events();
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(events[1].event, ObsEvent::CycleCheckStart { cycle: 4 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
